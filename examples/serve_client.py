"""Talk to the compilation service over HTTP (`repro serve` in miniature).

Self-contained: spins up the real asyncio server on an ephemeral port via
``BackgroundServer``, then drives it with the stdlib ``ServiceClient``:

* submit-and-wait — a cold ``map`` job compiles server-side, warm reruns are
  served from the memory LRU / disk store;
* coalescing — concurrent identical cold submissions collapse into exactly
  one executed compile, every client sharing the same job record;
* artifacts — fetch the stored mapping / routed-circuit document by
  fingerprint, straight from the content-addressed store;
* stats — queue, service, and server counters from ``GET /v1/stats``.

Against a standalone server (``repro serve --port 8035``) the client half of
this file works unchanged — point ``ServiceClient`` at that host/port.

Run:  python examples/serve_client.py
(artifacts land in a temporary directory; nothing persists)
"""

import os
import tempfile
import threading
import time

from repro.serve import (
    BackgroundServer,
    CompileRequest,
    JobQueue,
    ServiceClient,
    ServiceError,
    faults,
)
from repro.service import MappingService


def submit_and_wait(client: ServiceClient) -> None:
    print("=" * 64)
    print("POST /v1/jobs?wait=1 : cold compile, then warm cache hits")
    print("=" * 64)
    request = CompileRequest(case="hubbard:2x2", job="map", kind="hatt")
    for label in ("cold", "warm"):
        start = time.perf_counter()
        record = client.submit(request, wait=True, timeout=300)
        wall_ms = (time.perf_counter() - start) * 1e3
        assert record.status == "done", record.error
        print(f"  {label}: job={record.id} source={record.source:<8} "
              f"{wall_ms:8.2f} ms")
    print()


def coalescing(client: ServiceClient, queue: JobQueue) -> None:
    print("=" * 64)
    print("Coalescing: 6 concurrent identical cold submissions, 1 compile")
    print("=" * 64)
    request = CompileRequest(case="hubbard:2x3", job="map", kind="hatt")
    executed_before = queue.stats()["executed"]
    records, lock = [], threading.Lock()

    def worker():
        with ServiceClient(client.host, client.port) as c:
            record = c.submit(request, wait=True, timeout=300)
            with lock:
                records.append(record)

    threads = [threading.Thread(target=worker) for _ in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    executed = queue.stats()["executed"] - executed_before
    print(f"  job ids seen: {sorted({r.id for r in records})}")
    print(f"  compiles executed: {executed}")
    print(f"  subscribers on the shared job: "
          f"{queue.get(records[0].id).subscribers}\n")
    assert executed == 1 and len({r.id for r in records}) == 1


def artifacts(client: ServiceClient) -> None:
    print("=" * 64)
    print("GET /v1/artifacts/{fp} : mapping and routed-circuit documents")
    print("=" * 64)
    mapped = client.submit(
        CompileRequest(case="hubbard:1x2", job="map", kind="hatt"),
        wait=True, timeout=300)
    doc = client.artifact(mapped.fingerprint)
    print(f"  map job      -> {doc['namespace']}/{mapped.fingerprint[:16]}… "
          f"(pauli_weight={mapped.result['pauli_weight']})")
    compiled = client.submit(
        CompileRequest(case="hubbard:1x2", job="compile", kind="jw",
                       arch="ionq_forte"),
        wait=True, timeout=300)
    doc = client.artifact(compiled.fingerprint)
    print(f"  compile job  -> {doc['namespace']}/{compiled.fingerprint[:16]}… "
          f"(routed_cx={doc['artifact']['routed_cx']})\n")


def resilient_submit(client: ServiceClient) -> None:
    """The recommended client-side retry discipline.

    The client never auto-retries a POST — the connection may die *after*
    the server processed it, and a blind retry could double-submit.  The
    loop below is the pattern instead: catch the typed error and re-submit
    (identical submissions coalesce server-side, so convergence is safe),
    and honor 503 ``Retry-After`` backpressure with a sleep.

    To make the transport branch actually run, one truncated HTTP response
    is injected via the fault harness (``REPRO_FAULTS=partial_write:1:0.5:1``).
    """
    print("=" * 64)
    print("Resilient submit: typed errors, re-submit to converge")
    print("=" * 64)
    os.environ[faults.FAULTS_ENV] = "partial_write:1:0.5:1"
    faults.reset()
    request = CompileRequest(case="hubbard:2x2", job="map", kind="hatt")
    record = None
    try:
        for attempt in range(1, 6):
            try:
                record = client.submit(request, wait=True, timeout=300)
                break
            except ServiceError as exc:
                if exc.kind == "connection":
                    print(f"  attempt {attempt}: transport died mid-POST -> "
                          "re-submit (coalesces server-side)")
                    continue
                if exc.status == 503:
                    delay = exc.retry_after or 1.0
                    print(f"  attempt {attempt}: shed with 503 -> "
                          f"sleep {delay:.1f}s, retry")
                    time.sleep(delay)
                    continue
                raise
    finally:
        os.environ.pop(faults.FAULTS_ENV, None)
        faults.reset()
    assert record is not None and record.status == "done", record
    print(f"  converged: job={record.id} source={record.source}\n")


def stats(client: ServiceClient) -> None:
    print("=" * 64)
    print("GET /v1/stats")
    print("=" * 64)
    doc = client.stats()
    queue_keys = ("submitted", "coalesced", "executed", "errors")
    print("  queue  :", {k: doc[k] for k in queue_keys})
    service_keys = ("compiles", "hits_memory", "hits_disk", "hit_rate")
    print("  service:", {k: doc["service"][k] for k in service_keys})
    print("  server :", doc["server"])


if __name__ == "__main__":
    with tempfile.TemporaryDirectory(prefix="repro-serve-client-") as root:
        service = MappingService(cache_dir=root)
        with JobQueue(service=service, workers=2) as queue, \
                BackgroundServer(queue) as bg, \
                ServiceClient(bg.host, bg.port) as client:
            print(f"server listening on {bg.host}:{bg.port}\n")
            submit_and_wait(client)
            coalescing(client, queue)
            artifacts(client)
            resilient_submit(client)
            stats(client)
