"""Fermi-Hubbard lattice sweep (paper Table II, small geometries).

Shows the HATT-vs-baselines Pauli weight and circuit metrics as the lattice
grows, including the SAT-optimal Fermihedral bound on the smallest lattice.

Run:  python examples/hubbard_sweep.py
"""

from repro.analysis import compare_mappings, format_table
from repro.fermihedral import fermihedral_mapping
from repro.models import hubbard_case


def sweep() -> None:
    rows = []
    for geometry in ("1x2", "2x2", "2x3"):
        h = hubbard_case(geometry)
        n = h.n_modes
        reports = compare_mappings(h, n, compile_circuit=True)
        row = [geometry, n]
        for name in ("JW", "BK", "BTT", "HATT"):
            row.append(reports[name].pauli_weight)
        row.append(reports["HATT"].cx_count)
        row.append(reports["JW"].cx_count)
        rows.append(row)
    print(format_table(
        "Fermi-Hubbard sweep (t=1, U=4, open boundary)",
        ["geometry", "modes", "JW", "BK", "BTT", "HATT", "HATT CNOT", "JW CNOT"],
        rows,
    ))


def optimal_bound() -> None:
    h = hubbard_case("1x1")  # 2 modes: one site, two spins
    result = fermihedral_mapping(h, time_limit=30.0)
    print(f"\n1x1 Hubbard SAT-optimal Pauli weight: {result.label} "
          f"(solve time {result.solve_time:.2f}s)")


if __name__ == "__main__":
    sweep()
    optimal_bound()
