"""Post-mapping toolchain: Z2 tapering + shot-based energy estimation.

The paper positions fermion-to-qubit mapping as one stage of a pipeline; this
example shows the downstream stages the library also provides:

1. map H2 with HATT,
2. find the Hamiltonian's Z2 symmetries and taper qubits away,
3. estimate the ground-state energy from measurement shots (qubit-wise
   commuting groups), the way hardware experiments like the paper's Fig. 11
   actually measure energies.

Run:  python examples/tapering_and_shots.py
"""

import numpy as np

from repro.hatt import hatt_mapping
from repro.mappings import find_z2_symmetries, jordan_wigner, taper
from repro.models.electronic import electronic_case
from repro.sim import estimate_energy, occupation_statevector


def tapering_demo() -> None:
    case = electronic_case("H2_sto3g")
    hq = jordan_wigner(case.n_modes).map(case.hamiltonian)
    print(f"H2 qubit Hamiltonian: {hq.n} qubits, {len(hq)} terms, "
          f"weight {hq.pauli_weight()}")
    symmetries = find_z2_symmetries(hq)
    print(f"Z2 symmetries found: {[repr(s) for s in symmetries]}")
    best = None
    import itertools

    for sector in itertools.product((1, -1), repeat=len(symmetries)):
        sub = taper(hq, symmetries=symmetries, sector=sector)
        e0 = sub.operator.ground_energy()
        if best is None or e0 < best[0]:
            best = (e0, sector, sub.operator.n)
    e0, sector, n_left = best
    print(f"best sector {sector}: ground energy {e0:.6f} Ha on {n_left} "
          f"qubit(s) (full FCI: {hq.ground_energy():.6f})")


def shots_demo() -> None:
    case = electronic_case("H2_sto3g")
    mapping = hatt_mapping(case.hamiltonian, n_modes=case.n_modes)
    hq = mapping.map(case.hamiltonian)
    state = occupation_statevector(mapping, case.hf_occupation)
    print("\nShot-based energy estimation of the HF state (HATT mapping):")
    for shots in (100, 1000, 10000):
        est = estimate_energy(state, hq, shots=shots, seed=1)
        err = abs(est.value - case.scf_energy)
        print(f"  {shots:6d} shots over {est.n_groups} QWC groups: "
              f"E = {est.value:+.4f} Ha (|error| {err:.4f}, "
              f"stderr {est.stderr:.4f})")
    print(f"  exact SCF reference:         E = {case.scf_energy:+.4f} Ha")


if __name__ == "__main__":
    np.random.seed(0)
    tapering_demo()
    shots_demo()
