"""Noisy simulation of H2 (paper Fig. 10 / Fig. 11, reduced grid).

For each mapping: prepare the Hartree-Fock state, apply one Trotter step,
and measure the energy over noisy trajectories.  Prints a small
(p1, p2) grid of bias/variance, then the IonQ-Forte-calibrated experiment.

Run:  python examples/noisy_h2.py
"""

from repro.analysis import format_table, noisy_energy_experiment
from repro.hatt import hatt_mapping
from repro.mappings import balanced_ternary_tree, bravyi_kitaev, jordan_wigner
from repro.models.electronic import electronic_case
from repro.sim import NoiseModel, ionq_forte_noise_model

SHOTS = 200  # the paper uses 1000; reduced here for a fast demo


def mappings_for(case):
    return {
        "JW": jordan_wigner(case.n_modes),
        "BK": bravyi_kitaev(case.n_modes),
        "BTT": balanced_ternary_tree(case.n_modes),
        "HATT": hatt_mapping(case.hamiltonian, n_modes=case.n_modes),
    }


def heatmap() -> None:
    case = electronic_case("H2_sto3g")
    rows = []
    for p1, p2 in ((1e-5, 1e-4), (5e-5, 5e-4), (1e-4, 1e-3)):
        for name, mapping in mappings_for(case).items():
            e = noisy_energy_experiment(
                case, mapping, NoiseModel(p1=p1, p2=p2), shots=SHOTS
            )
            rows.append([f"{p1:g}/{p2:g}", name, f"{e.bias:.4f}",
                         f"{e.variance:.5f}", e.cx_count])
    print(format_table(
        "H2 noisy simulation (bias/variance vs error rates)",
        ["p1/p2", "mapping", "bias", "variance", "CNOTs"],
        rows,
    ))


def ionq() -> None:
    case = electronic_case("H2_sto3g")
    noise = ionq_forte_noise_model()
    rows = []
    for name, mapping in mappings_for(case).items():
        e = noisy_energy_experiment(case, mapping, noise, shots=SHOTS)
        rows.append([name, f"{e.mean:.4f}", f"{e.noiseless:.4f}",
                     f"{e.variance:.5f}"])
    print()
    print(format_table(
        "H2 on the IonQ-Forte-calibrated noise model (paper Fig. 11)",
        ["mapping", "mean energy", "noiseless", "variance"],
        rows,
    ))


if __name__ == "__main__":
    heatmap()
    ionq()
