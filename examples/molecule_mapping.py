"""Electronic-structure pipeline: molecule -> RHF -> mapping -> circuit.

Runs the paper's H2 and LiH(frz) benchmarks end-to-end on the bundled
quantum-chemistry substrate and prints Table-I-style rows, plus a physics
sanity check (FCI ground-state energy from exact diagonalization of the
mapped qubit Hamiltonian).

Run:  python examples/molecule_mapping.py
"""

from repro.analysis import compare_mappings, format_table
from repro.mappings import jordan_wigner
from repro.models.electronic import electronic_case


def run_case(name: str) -> None:
    case = electronic_case(name)
    print(f"\n{name}: {case.n_modes} modes, {len(case.hamiltonian)} fermionic "
          f"terms, SCF = {case.scf_energy:.6f} Ha "
          f"(converged: {case.scf_converged})")
    reports = compare_mappings(case.hamiltonian, case.n_modes)
    rows = [r.row() for r in reports.values()]
    print(format_table(
        f"Table I row: {name}",
        ["mapping", "Pauli weight", "CNOT", "depth"],
        rows,
    ))


def fci_check() -> None:
    case = electronic_case("H2_sto3g")
    hq = jordan_wigner(case.n_modes).map(case.hamiltonian)
    print(f"\nH2 exact ground energy (mapped-Hamiltonian diagonalization): "
          f"{hq.ground_energy():.6f} Ha  (published STO-3G FCI ~ -1.1373)")


if __name__ == "__main__":
    for name in ("H2_sto3g", "LiH_sto3g_frz"):
        run_case(name)
    fci_check()
