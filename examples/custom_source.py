"""Register a third-party Hamiltonian frontend and batch-compile through it.

``repro.sources`` resolves URI-style case specs (``hubbard:2x3``,
``fcidump:h2.fcid``, ...) through a pluggable registry.  This example adds a
new prefix — a 1D transverse-hopping "ring" toy model — and shows that the
rest of the stack needs no changes: the spec flows through ``compile_suite``
(including worker processes), fingerprints, and the artifact cache exactly
like a built-in case.

Run:  python examples/custom_source.py
(artifacts land in a temporary directory; nothing persists)
"""

import tempfile

from repro.fermion import FermionOperator
from repro.service import compile_suite
from repro.sources import (
    HamiltonianSource,
    build_case,
    parse_params,
    register_source,
    resolve,
    source_catalog,
)


class RingSource(HamiltonianSource):
    """``ring:<n>[,t=<f>]`` — n spinless modes on a periodic chain."""

    family = "ring"

    def __init__(self, spec: str):
        body = spec.split(":", 1)[1]
        size, _, tail = body.partition(",")
        if not size.isdigit() or int(size) < 2:
            raise ValueError(f"ring size must be an integer >= 2, got {size!r}")
        self._n = int(size)
        params = parse_params(tail, allowed={"t"}) if tail else {}
        self._t = float(params.get("t", 1.0))
        canonical = f"ring:{self._n}"
        if self._t != 1.0:
            canonical += f",t={self._t}"
        super().__init__(canonical)

    @property
    def n_modes(self) -> int:
        return self._n

    def _build(self) -> FermionOperator:
        h = FermionOperator()
        for i in range(self._n):
            h += FermionOperator.hopping(i, (i + 1) % self._n, -self._t)
        return h


def main() -> None:
    register_source(
        "ring",
        RingSource,
        description="periodic spinless hopping chain (example frontend)",
        grammar="ring:<n>[,t=<f>]",
        examples=["ring:6", "ring:8,t=0.5"],
    )
    print("registered prefixes now include:",
          [s["prefix"] for s in source_catalog()])

    src = resolve("ring:6,t=0.5")
    print(f"describe(): {src.describe()}")
    assert build_case("ring:6,t=0.5").n_modes <= 6
    # Streamed fingerprinting comes for free from the base class and is
    # bit-identical to hashing the built operator.
    from repro.service import fingerprint_operator
    assert src.fingerprint_stream() == fingerprint_operator(src.build())

    with tempfile.TemporaryDirectory(prefix="repro-custom-src-") as cache_dir:
        report = compile_suite(["ring:6", "ring:8,t=0.5", "hubbard:1x3"],
                               ["hatt", "jw"], cache_dir=cache_dir)
        print(report.table())
        warm = compile_suite(["ring:6", "ring:8,t=0.5", "hubbard:1x3"],
                             ["hatt", "jw"], cache_dir=cache_dir)
        assert all(t.cache_hit for t in warm.tasks)
        print(f"\nwarm pass: {warm.n_cache_hits}/{warm.n_tasks} cache hits")


if __name__ == "__main__":
    main()
