"""Quickstart: compile a Hamiltonian-adaptive fermion-to-qubit mapping.

Reproduces the paper's two worked examples:

* §III-B motivating example — an unbalanced adaptive tree halves the Pauli
  weight of HF = c1·M0M5 + c2·M1M3 compared with the balanced ternary tree;
* Eq. (3) — HF = a†0 a0 + 2 a†1 a†2 a1 a2, where HATT's first step picks
  the (O0, O1, O6) parent exactly as in the paper's Fig. 7.

Run:  python examples/quickstart.py
"""

from repro import FermionOperator, MajoranaOperator, hatt_mapping
from repro.mappings import balanced_ternary_tree, jordan_wigner


def motivation_example() -> None:
    print("=" * 64)
    print("Paper §III-B: HF = c1*M0M5 + c2*M1M3 on 3 modes")
    print("=" * 64)
    hf = MajoranaOperator.from_term([0, 5], 1.0) + MajoranaOperator.from_term(
        [1, 3], 2.0
    )
    btt = balanced_ternary_tree(3)
    hatt = hatt_mapping(hf, n_modes=3)
    print(f"  balanced ternary tree Pauli weight: {btt.map(hf).pauli_weight()}")
    print(f"  HATT Pauli weight:                  {hatt.map(hf).pauli_weight()}")
    print("  (paper: 6 vs 3 — adaptivity exploits operator cancellation)\n")


def equation3_example() -> None:
    print("=" * 64)
    print("Paper Eq. (3): HF = n0 + 2*n1*n2 on 3 modes")
    print("=" * 64)
    hf = FermionOperator.number(0) + 2.0 * FermionOperator.from_term(
        [(1, True), (2, True), (1, False), (2, False)]
    )
    mapping = hatt_mapping(hf)
    print("  construction trace (qubit, children-uids, weight-on-qubit):")
    for step in mapping.construction.trace:
        print(f"    {step}")
    print("\n  Majorana strings (leaf i -> M_i):")
    for i, s in enumerate(mapping.strings):
        print(f"    M_{i} -> {s}")
    print(f"  discarded (2N+1)-th string: {mapping.discarded}")
    print(f"  vacuum state preserved: {mapping.preserves_vacuum()}")
    hq = mapping.map(hf)
    jw = jordan_wigner(3).map(hf)
    print(f"\n  mapped Hamiltonian weight: HATT={hq.pauli_weight()}, "
          f"JW={jw.pauli_weight()}")


if __name__ == "__main__":
    motivation_example()
    equation3_example()
