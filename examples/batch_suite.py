"""Batch-compile a suite of Hamiltonians through the compilation service.

Demonstrates the full service-layer flow:

* fingerprinting — the same physics always hits the same cache key, however
  the operator was built;
* get-or-compile — cold miss, then warm hits from the memory LRU and from a
  fresh service reading the disk store;
* ``compile_suite`` — cases × mappings fanned over worker processes with
  fingerprint-level dedup, then a warm second pass that is pure cache reads.

Run:  python examples/batch_suite.py
(artifacts land in a temporary directory; nothing persists)
"""

import tempfile
import time

from repro.models import load_case
from repro.service import (
    MappingService,
    MappingSpec,
    compile_suite,
    fingerprint_request,
)

CASES = ["LiH_sto3g", "NH_sto3g", "hubbard:2x3", "neutrino:3x2F"]


def fingerprints_key_the_physics() -> None:
    print("=" * 64)
    print("Fingerprints: content-addressed, order-invariant, config-aware")
    print("=" * 64)
    h = load_case("hubbard:2x2")
    fp_hatt = fingerprint_request(h, MappingSpec(kind="hatt"))
    fp_jw = fingerprint_request(h, MappingSpec(kind="jw"))
    print(f"  hubbard:2x2 x hatt -> {fp_hatt[:16]}…")
    print(f"  hubbard:2x2 x jw   -> {fp_jw[:16]}…  (config forks the key)")
    # Static mappings depend only on the mode count, so any other 8-mode
    # problem reuses the identical JW artifact.
    other = load_case("hubbard:1x4")
    assert fingerprint_request(other, MappingSpec(kind="jw")) == fp_jw
    print("  hubbard:1x4 x jw   -> same key (static kinds share artifacts)\n")


def get_or_compile_tiers(cache_dir: str) -> None:
    print("=" * 64)
    print("MappingService: compile once, hit forever")
    print("=" * 64)
    h = load_case("LiH_sto3g")
    spec = MappingSpec(kind="hatt")
    service = MappingService(cache_dir=cache_dir)
    for label in ("cold", "warm"):
        start = time.perf_counter()
        result = service.get_or_compile(h, spec)
        print(f"  {label}: source={result.source:<8} "
              f"{(time.perf_counter() - start) * 1e3:8.2f} ms")
    # A different service instance (another process, in real deployments)
    # reads the same artifact from disk — strings bit-identical.
    fresh = MappingService(cache_dir=cache_dir)
    start = time.perf_counter()
    again = fresh.get_or_compile(h, spec)
    print(f"  new service: source={again.source:<8} "
          f"{(time.perf_counter() - start) * 1e3:8.2f} ms")
    print(f"  stats: {service.stats()}\n")


def batch_fanout(cache_dir: str) -> None:
    print("=" * 64)
    print(f"compile_suite: {len(CASES)} cases x (hatt, jw), 2 workers")
    print("=" * 64)
    report = compile_suite(CASES, ["hatt", "jw"], jobs=2, cache_dir=cache_dir)
    print(report.table())
    warm = compile_suite(CASES, ["hatt", "jw"], jobs=1, cache_dir=cache_dir)
    assert all(t.cache_hit for t in warm.tasks)
    print(f"\n  warm pass: {warm.n_cache_hits}/{warm.n_tasks} cache hits "
          f"in {warm.wall_seconds:.3f}s")


if __name__ == "__main__":
    fingerprints_key_the_physics()
    with tempfile.TemporaryDirectory(prefix="repro-batch-suite-") as cache_dir:
        get_or_compile_tiers(cache_dir)
        batch_fanout(cache_dir)
