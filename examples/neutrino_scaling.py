"""Collective neutrino oscillations (paper Table III, small cases).

Builds the momentum-lattice flavor-evolution Hamiltonian and compares
mappings as the system grows; also demonstrates the O(N^3) scalability of
the cached HATT construction against the uncached variant (paper Fig. 12's
mechanism).

Run:  python examples/neutrino_scaling.py
"""

import time

from repro.analysis import compare_mappings, format_table
from repro.fermion import MajoranaOperator
from repro.hatt import hatt_mapping
from repro.models import collective_neutrino


def weight_table() -> None:
    rows = []
    for n_p, n_f in ((2, 2), (3, 2), (2, 3)):
        h = collective_neutrino(n_p, n_f)
        n = h.n_modes
        reports = compare_mappings(h, n, compile_circuit=False)
        rows.append(
            [f"{n_p}x{n_f}F", n]
            + [reports[k].pauli_weight for k in ("JW", "BK", "BTT", "HATT")]
        )
    print(format_table(
        "Collective neutrino oscillation Pauli weights",
        ["case", "modes", "JW", "BK", "BTT", "HATT"],
        rows,
    ))


def cache_scaling() -> None:
    print("\nHATT cached (Alg. 3) vs uncached (Alg. 2) on HF = sum_i M_i:")
    for n in (10, 20, 30):
        hm = MajoranaOperator.zero()
        for i in range(2 * n):
            hm = hm + MajoranaOperator.single(i)
        t0 = time.perf_counter()
        hatt_mapping(hm, n_modes=n, cached=True)
        t_cached = time.perf_counter() - t0
        t0 = time.perf_counter()
        hatt_mapping(hm, n_modes=n, cached=False)
        t_uncached = time.perf_counter() - t0
        print(f"  N={n:3d}: cached {t_cached:7.3f}s   uncached {t_uncached:7.3f}s")


if __name__ == "__main__":
    weight_table()
    cache_scaling()
