"""Paper Fig. 12: compilation-time scalability on HF = Σ_i M_i.

Fermihedral's SAT search hits an exponential wall while both HATT variants
scale polynomially, with the Alg.-3 caching giving a consistent speedup
(the paper measures 59.73% at the top end).  We time all three and fit the
log-log slopes.
"""

import time

import numpy as np
import pytest

from conftest import full_run
from repro.analysis import format_table, write_result
from repro.fermion import MajoranaOperator
from repro.fermihedral import fermihedral_mapping
from repro.hatt import hatt_mapping

HATT_SIZES = [4, 8, 12, 16, 20] + ([28, 36, 48] if full_run() else [])
FH_SIZES = [1, 2] + ([3] if full_run() else [])
FH_TIME_LIMIT = 120.0 if full_run() else 20.0


def majorana_sum(n: int) -> MajoranaOperator:
    h = MajoranaOperator.zero()
    for i in range(2 * n):
        h = h + MajoranaOperator.single(i)
    return h


@pytest.fixture(scope="module")
def fig12():
    rows = []
    times = {"HATT": [], "HATT (unopt)": []}
    for n in HATT_SIZES:
        h = majorana_sum(n)
        t0 = time.perf_counter()
        hatt_mapping(h, n_modes=n, vacuum=True, cached=True)
        t_opt = time.perf_counter() - t0
        t0 = time.perf_counter()
        hatt_mapping(h, n_modes=n, vacuum=False)
        t_unopt = time.perf_counter() - t0
        times["HATT"].append((n, t_opt))
        times["HATT (unopt)"].append((n, t_unopt))
        rows.append([n, f"{t_opt:.4f}", f"{t_unopt:.4f}", "--"])
    for n in FH_SIZES:
        h = majorana_sum(n)
        result = fermihedral_mapping(h, n_modes=n, time_limit=FH_TIME_LIMIT)
        label = f"{result.solve_time:.2f}{'' if result.optimal else ' (timeout)'}"
        rows.append([n, "-", "-", label])

    # Log-log slope estimates (paper: O(N^3) vs O(N^4)).
    slopes = {}
    for name, points in times.items():
        ns = np.log([p[0] for p in points])
        ts = np.log([max(p[1], 1e-6) for p in points])
        slopes[name] = float(np.polyfit(ns, ts, 1)[0])
    footer = (
        f"fitted log-log slopes: HATT ~ N^{slopes['HATT']:.2f}, "
        f"HATT(unopt) ~ N^{slopes['HATT (unopt)']:.2f} "
        "(paper: N^3 vs N^4; FH exponential)"
    )
    content = format_table(
        "Fig. 12 - compilation time on HF = sum_i M_i (seconds)",
        ["modes", "HATT", "HATT (unopt)", "Fermihedral"],
        rows,
    ) + "\n" + footer
    write_result("fig12_scaling", content)
    return times, slopes


def test_fig12_unopt_slower_at_scale(fig12):
    times, _ = fig12
    # At the largest common size the unopt variant must not be faster.
    n, t_opt = times["HATT"][-1]
    _, t_unopt = times["HATT (unopt)"][-1]
    assert t_unopt >= t_opt * 0.9, (n, t_opt, t_unopt)


def test_fig12_polynomial_slopes(fig12):
    """Both variants scale polynomially; unopt has the steeper slope."""
    _, slopes = fig12
    assert slopes["HATT"] < 5.0
    assert slopes["HATT (unopt)"] <= slopes["HATT"] + 3.0


@pytest.mark.parametrize("n", [8, 16])
def test_bench_hatt_scaling(benchmark, n, fig12):
    h = majorana_sum(n)
    benchmark.pedantic(
        lambda: hatt_mapping(h, n_modes=n), rounds=3, iterations=1
    )


def test_bench_fermihedral_n2(benchmark):
    h = majorana_sum(2)
    benchmark.pedantic(
        lambda: fermihedral_mapping(h, n_modes=2, time_limit=30),
        rounds=1,
        iterations=1,
    )
