"""Paper Fig. 12: compilation-time scalability on HF = Σ_i M_i.

Fermihedral's SAT search hits an exponential wall while both HATT variants
scale polynomially, with the Alg.-3 caching giving a consistent speedup
(the paper measures 59.73% at the top end).  We time construction under both
engine backends (packed-bitmask ``vector`` kernels vs the ``scalar``
reference scan), fit the log-log slopes, and assert the vectorized backend's
speedup floor at the largest size.

Set ``REPRO_BENCH_SMOKE=1`` (as the CI smoke step does) for a toy-size run
that still enforces the ≥5x vector-over-scalar floor at its largest size.
Timings plus fitted slopes are also written to the committed repo-root
``BENCH_fig12.json`` (uploaded as a CI artifact).
"""

import os
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import full_run
from repro.analysis import format_table, write_bench_json, write_result
from repro.fermion import MajoranaOperator
from repro.fermihedral import fermihedral_mapping
from repro.hatt import HattConstruction

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") not in ("0", "", "false")

if SMOKE:
    # Top size 48 keeps the smoke run in seconds while leaving the vector
    # backend a comfortable margin over the 5x floor on slow CI runners.
    HATT_SIZES = [8, 16, 24, 48]
    FH_SIZES = [1]
elif full_run():
    HATT_SIZES = [4, 8, 12, 16, 20, 28, 36, 48, 64]
    FH_SIZES = [1, 2, 3]
else:
    # Top size 48 in every mode: the speedup floor is asserted at the top
    # size, and N=48 leaves it a comfortable margin (N=36 measures only
    # ~5-6x — too close to the floor for a load-sensitive hard assert).
    HATT_SIZES = [4, 8, 12, 16, 20, 28, 36, 48]
    FH_SIZES = [1, 2]
FH_TIME_LIMIT = 120.0 if full_run() else 20.0

#: Acceptance floor: vector construction must beat scalar by this factor at
#: the largest benchmarked size (CI enforces it in smoke mode).
MIN_SPEEDUP = 5.0

JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_fig12.json"


def majorana_sum(n: int) -> MajoranaOperator:
    h = MajoranaOperator.zero()
    for i in range(2 * n):
        h = h + MajoranaOperator.single(i)
    return h


def _time_construction(h, n, vacuum, backend, repeats=3):
    """Best-of-N wall time of HattConstruction.run() alone."""
    best = float("inf")
    for _ in range(repeats):
        c = HattConstruction(h, n, vacuum=vacuum, backend=backend)
        start = time.perf_counter()
        c.run()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def fig12():
    rows = []
    times = {
        "HATT": [],
        "HATT scalar": [],
        "HATT (unopt)": [],
        "HATT (unopt) scalar": [],
    }
    for n in HATT_SIZES:
        h = majorana_sum(n)
        repeats = 3 if (SMOKE or n <= 48) else 1
        t_vec = _time_construction(h, n, True, "vector", repeats)
        t_sca = _time_construction(h, n, True, "scalar", repeats)
        t_vec_u = _time_construction(h, n, False, "vector", repeats)
        t_sca_u = _time_construction(h, n, False, "scalar", repeats)
        times["HATT"].append((n, t_vec))
        times["HATT scalar"].append((n, t_sca))
        times["HATT (unopt)"].append((n, t_vec_u))
        times["HATT (unopt) scalar"].append((n, t_sca_u))
        rows.append([
            n,
            f"{t_vec:.4f}",
            f"{t_sca:.4f}",
            f"{t_sca / t_vec:.1f}x",
            f"{t_vec_u:.4f}",
            f"{t_sca_u / t_vec_u:.1f}x",
            "--",
        ])
    for n in FH_SIZES:
        h = majorana_sum(n)
        result = fermihedral_mapping(h, n_modes=n, time_limit=FH_TIME_LIMIT)
        label = f"{result.solve_time:.2f}{'' if result.optimal else ' (timeout)'}"
        rows.append([n, "-", "-", "-", "-", "-", label])

    # Log-log slope estimates (paper: O(N^3) vs O(N^4)).
    slopes = {}
    for name, points in times.items():
        ns = np.log([p[0] for p in points])
        ts = np.log([max(p[1], 1e-6) for p in points])
        slopes[name] = float(np.polyfit(ns, ts, 1)[0])
    n_top = HATT_SIZES[-1]
    speedups = {
        "vacuum": times["HATT scalar"][-1][1] / times["HATT"][-1][1],
        "free": times["HATT (unopt) scalar"][-1][1] / times["HATT (unopt)"][-1][1],
    }
    footer = (
        f"fitted log-log slopes: HATT ~ N^{slopes['HATT']:.2f} "
        f"(scalar ~ N^{slopes['HATT scalar']:.2f}), "
        f"HATT(unopt) ~ N^{slopes['HATT (unopt)']:.2f} "
        "(paper: N^3 vs N^4; FH exponential)\n"
        f"vector-over-scalar construction speedup at N={n_top}: "
        f"{speedups['vacuum']:.1f}x (vacuum), {speedups['free']:.1f}x (free); "
        f"floor {MIN_SPEEDUP:.0f}x"
    )
    content = format_table(
        "Fig. 12 - construction time on HF = sum_i M_i (seconds)",
        ["modes", "HATT", "HATT scalar", "speedup", "HATT unopt",
         "unopt speedup", "Fermihedral"],
        rows,
    ) + "\n" + footer
    write_result("fig12_scaling", content)
    payload = {
        "workload": "HF = sum_i M_i",
        "smoke": SMOKE,
        "full": full_run(),
        "sizes": HATT_SIZES,
        "timings_s": {name: points for name, points in times.items()},
        "slopes": slopes,
        "speedup_at_top": {"n": n_top, **{k: round(v, 2) for k, v in speedups.items()}},
        "min_speedup_floor": MIN_SPEEDUP,
    }
    write_bench_json("fig12_scaling", payload, JSON_PATH, refresh_committed=not SMOKE)
    return times, slopes, speedups


def test_fig12_backends_identical_trace():
    """Cheap cross-check riding along in CI smoke: same trace, same tree."""
    n = HATT_SIZES[0]
    h = majorana_sum(n)
    for vacuum in (True, False):
        vec = HattConstruction(h, n, vacuum=vacuum, backend="vector")
        t_vec = vec.run()
        sca = HattConstruction(h, n, vacuum=vacuum, backend="scalar")
        t_sca = sca.run()
        assert vec.trace == sca.trace
        assert t_vec.strings_by_leaf_index() == t_sca.strings_by_leaf_index()


def test_fig12_vector_speedup_floor(fig12):
    """The vectorized backend clears the acceptance floor at the top size."""
    _, _, speedups = fig12
    assert speedups["vacuum"] >= MIN_SPEEDUP, speedups
    # The free scan is the asymptotically heavier kernel; hold it to the
    # same floor so a regression in either path fails loudly.
    assert speedups["free"] >= MIN_SPEEDUP, speedups


def test_fig12_json_written(fig12):
    assert JSON_PATH.exists()


def test_fig12_unopt_slower_at_scale(fig12):
    times, _, _ = fig12
    # At the largest common size the unopt variant must not be faster.
    n, t_opt = times["HATT"][-1]
    _, t_unopt = times["HATT (unopt)"][-1]
    assert t_unopt >= t_opt * 0.9, (n, t_opt, t_unopt)


def test_fig12_polynomial_slopes(fig12):
    """Both variants scale polynomially; unopt has the steeper slope."""
    _, slopes, _ = fig12
    assert slopes["HATT"] < 5.0
    assert slopes["HATT (unopt)"] <= slopes["HATT"] + 3.0


@pytest.mark.parametrize("n", [8, 16])
@pytest.mark.parametrize("backend", ["vector", "scalar"])
def test_bench_hatt_scaling(benchmark, n, backend, fig12):
    h = majorana_sum(n)
    benchmark.pedantic(
        lambda: HattConstruction(h, n, backend=backend).run(),
        rounds=3,
        iterations=1,
    )


def test_bench_fermihedral_n2(benchmark):
    h = majorana_sum(2)
    benchmark.pedantic(
        lambda: fermihedral_mapping(h, n_modes=2, time_limit=30),
        rounds=1,
        iterations=1,
    )
