"""Ablation study (ours): design choices DESIGN.md calls out.

* Alg.-3 caching on/off — identical output, different speed;
* construction backend (packed-bitmask vector kernels vs scalar scan) —
  identical output, different speed;
* vacuum pairing on/off — Pauli-weight cost of the constraint (Table VI's
  mechanism) plus its state-preparation benefit;
* term-ordering strategy for the synthesis back-end.
"""

import time

import pytest

from repro.analysis import format_table, write_result
from repro.circuits import to_cx_u3, trotter_circuit
from repro.hatt import hatt_mapping
from repro.models import hubbard_case
from repro.models.electronic import electronic_case
from repro.paulis import QubitOperator


@pytest.fixture(scope="module")
def ablation():
    rows = []
    for name, h in [
        ("2x3 Hubbard", hubbard_case("2x3")),
        ("LiH frz", electronic_case("LiH_sto3g_frz").hamiltonian),
    ]:
        n = h.n_modes
        t0 = time.perf_counter()
        cached = hatt_mapping(h, n_modes=n, cached=True)
        t_cached = time.perf_counter() - t0
        t0 = time.perf_counter()
        uncached = hatt_mapping(h, n_modes=n, cached=False)
        t_uncached = time.perf_counter() - t0
        t0 = time.perf_counter()
        scalar = hatt_mapping(h, n_modes=n, cached=True, backend="scalar")
        t_scalar = time.perf_counter() - t0
        assert cached.strings == uncached.strings
        assert cached.strings == scalar.strings
        assert cached.construction.trace == scalar.construction.trace
        w_vac = cached.map(h).pauli_weight()
        w_free = hatt_mapping(h, n_modes=n, vacuum=False).map(h).pauli_weight()
        rows.append(
            [name, n, f"{t_cached:.4f}", f"{t_uncached:.4f}", f"{t_scalar:.4f}",
             w_vac, w_free, cached.preserves_vacuum()]
        )
    content = format_table(
        "Ablation - caching, backend & vacuum pairing",
        ["case", "modes", "t cached", "t uncached", "t scalar", "weight (vac)",
         "weight (free)", "vacuum ok"],
        rows,
    )
    write_result("ablation_hatt", content)
    return rows


def test_ablation_cache_identical_output(ablation):
    # Asserted inside the fixture; presence of rows means it held.
    assert len(ablation) == 2


def test_ablation_term_ordering():
    """Lexicographic ordering beats insertion order for ladder sharing."""
    h = hubbard_case("2x2")
    from repro.mappings import jordan_wigner

    hq = jordan_wigner(8).map(h)
    lex = to_cx_u3(trotter_circuit(hq, order="lexicographic"))
    given = to_cx_u3(trotter_circuit(hq, order="given"))
    assert lex.cx_count <= given.cx_count


def test_bench_cached_vs_uncached(benchmark, ablation):
    h = hubbard_case("3x3")

    def run():
        return hatt_mapping(h, cached=True)

    benchmark.pedantic(run, rounds=3, iterations=1)
