"""Served-API availability and tail latency under injected faults.

Drives the real ``repro.serve`` stack through the deterministic
fault-injection harness (:mod:`repro.serve.faults`) and measures what a
client population actually experiences when the backend misbehaves:

* **baseline** — the fault-free control: N concurrent clients issuing
  warm/cold traffic (p50/p99, availability, RPS);
* **faulted** — the same workload under the ISSUE's 10% fault mix
  (``worker_crash:0.1`` + ``slow_compile:0.1``): worker crashes are
  supervised and retried with backoff, so availability — the fraction of
  requests answered with a terminal ``done`` record — must stay >= 99%;
* **burst** — an overload spike against a small queue (1 worker,
  ``max_pending=2``) with every compile slowed: excess cold submissions
  must be shed with ``503`` + ``Retry-After`` instead of queuing unbounded;
* **drain** — graceful shutdown after the burst: in-flight jobs settle,
  nothing is left wedged.

Set ``REPRO_BENCH_SMOKE=1`` (the CI smoke step) for a reduced run that
still enforces the availability floor.  Results go to
``benchmarks/results/`` and, for canonical non-smoke runs, the committed
repo-root ``BENCH_service_chaos.json``.

Latencies are measured client-side around one ``POST /v1/jobs?wait=1``
round trip (HTTP framing included); availability counts a request as
served only when the settled record is ``done`` — errors, timeouts, and
sheds all count against it.
"""

import os
import threading
import time
from pathlib import Path

import pytest

from repro.analysis import format_table, write_result, write_result_json
from repro.sources import build_case
from repro.obs.metrics import BENCH_LATENCY_BUCKETS, latency_summary
from repro.serve import (
    BackgroundServer,
    CompileRequest,
    JobQueue,
    ServiceClient,
    ServiceError,
    faults,
)
from repro.service import MappingService

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") not in ("0", "", "false")

#: Concurrent clients x requests per client (the ISSUE scenario is N=16).
N_CLIENTS = 8 if SMOKE else 16
REQUESTS = 6 if SMOKE else 12

#: The ISSUE's fault mix: 10% worker crashes, 10% slow compiles (+50 ms).
FAULT_SPEC = "worker_crash:0.1,slow_compile:0.1:0.05"

CASES = (
    ["hubbard:1x2", "hubbard:2x2"]
    if SMOKE
    else ["hubbard:1x2", "hubbard:2x2", "hubbard:2x3", "hubbard:1x4"]
)

#: Distinct cold cases for the overload burst (no coalescing between them).
BURST_CASES = [
    "hubbard:1x2", "hubbard:1x3", "hubbard:1x4", "hubbard:1x5",
    "hubbard:2x2", "hubbard:2x3", "hubbard:1x6", "hubbard:2x4",
]

JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_service_chaos.json"


def _percentiles(samples):
    # Shared histogram implementation (same buckets the serving metrics use).
    summary = latency_summary(samples, buckets=BENCH_LATENCY_BUCKETS)
    summary.pop("min_ms", None)  # keep the historical payload shape
    return summary


def _run_population(bg):
    """N_CLIENTS concurrent clients x REQUESTS ?wait=1 round trips.

    Returns (latencies, records, transport_errors) — every request is
    accounted for in exactly one of the three.
    """
    latencies, records, errors = [], [], []
    lock = threading.Lock()

    def worker(idx):
        local_lat, local_rec = [], []
        try:
            with ServiceClient(bg.host, bg.port) as client:
                for i in range(REQUESTS):
                    case = CASES[(idx + i) % len(CASES)]
                    start = time.perf_counter()
                    record = client.submit(
                        CompileRequest(case=case), wait=True, timeout=600
                    )
                    local_lat.append(time.perf_counter() - start)
                    local_rec.append(record)
        except Exception as exc:  # noqa: BLE001 - counted against availability
            with lock:
                errors.append(exc)
        with lock:
            latencies.extend(local_lat)
            records.extend(local_rec)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(N_CLIENTS)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    return latencies, records, errors, wall


def _availability(records, errors):
    total = len(records) + len(errors)
    served = sum(1 for r in records if r.status == "done")
    return served / total if total else 0.0


@pytest.fixture(scope="module")
def chaos_bench(tmp_path_factory):
    base = tmp_path_factory.mktemp("serve-chaos")
    for case in CASES + BURST_CASES:
        build_case(case)  # construct outside any timer

    saved_env = os.environ.get(faults.FAULTS_ENV)
    os.environ.pop(faults.FAULTS_ENV, None)
    faults.reset()
    try:
        service = MappingService(cache_dir=base / "cache")
        with JobQueue(service=service, workers=4) as queue, \
                BackgroundServer(queue) as bg:
            # Pre-warm every case once so both phases measure the same
            # warm-dominated mix (crashes strike cache hits and compiles
            # alike — the fault points sit on the job path, not the cache).
            with ServiceClient(bg.host, bg.port) as client:
                for case in CASES:
                    record = client.submit(
                        CompileRequest(case=case), wait=True, timeout=600
                    )
                    assert record.status == "done", record.error

            # -- baseline (no faults) ---------------------------------
            lat, records, errors, wall = _run_population(bg)
            baseline = {
                **_percentiles(lat),
                "availability": round(_availability(records, errors), 6),
                "rps": round(len(lat) / wall, 1),
            }

            # -- faulted (10% crash + 10% slow) -----------------------
            os.environ[faults.FAULTS_ENV] = FAULT_SPEC
            faults.reset()
            before = queue.stats()
            lat, records, errors, wall = _run_population(bg)
            after = queue.stats()
            os.environ.pop(faults.FAULTS_ENV, None)
            faults.reset()
            faulted = {
                **_percentiles(lat),
                "availability": round(_availability(records, errors), 6),
                "rps": round(len(lat) / wall, 1),
                "retried": after["retried"] - before["retried"],
                "worker_crashes": after["worker_crashes"] - before["worker_crashes"],
                "max_attempts_seen": max((r.attempts for r in records), default=0),
                "injected": after["faults"]["fired"],
                "transport_errors": len(errors),
            }

        # -- burst overload + drain -----------------------------------
        # A deliberately tiny queue: 1 worker, 2 live jobs max, every
        # compile slowed by 300 ms so the burst lands while it is plugged.
        os.environ[faults.FAULTS_ENV] = "slow_compile:1:0.3"
        faults.reset()
        burst_service = MappingService(cache_dir=base / "burst-cache")
        accepted, shed = [], []
        with JobQueue(service=burst_service, workers=1, max_pending=2) as bq, \
                BackgroundServer(bq) as bbg, \
                ServiceClient(bbg.host, bbg.port) as client:
            for case in BURST_CASES:
                try:
                    accepted.append(client.submit(CompileRequest(case=case)))
                except ServiceError as exc:
                    if exc.status != 503:
                        raise
                    shed.append(exc)
            drain_summary = bbg.drain(timeout=120)
        os.environ.pop(faults.FAULTS_ENV, None)
        faults.reset()
        burst = {
            "submitted": len(BURST_CASES),
            "accepted": len(accepted),
            "shed_503": len(shed),
            "retry_after_present": all(
                e.retry_after is not None and e.retry_after >= 1.0 for e in shed
            ),
            "drained": {r.id: bq.get(r.id).status for r in accepted},
        }
    finally:
        if saved_env is not None:
            os.environ[faults.FAULTS_ENV] = saved_env
        else:
            os.environ.pop(faults.FAULTS_ENV, None)
        faults.reset()

    rows = [
        ["baseline", baseline["p50_ms"], baseline["p99_ms"],
         f"{baseline['availability']:.4f}", baseline["rps"]],
        [f"faulted ({FAULT_SPEC})", faulted["p50_ms"], faulted["p99_ms"],
         f"{faulted['availability']:.4f}", faulted["rps"]],
        [f"burst x{burst['submitted']}", "-", "-",
         f"{burst['shed_503']} shed w/ Retry-After", "-"],
        ["drain", "-", "-",
         f"settled={drain_summary['settled']} forced={drain_summary['forced']}",
         "-"],
    ]
    content = format_table(
        "served-API chaos (POST /v1/jobs?wait=1 under injected faults)",
        ["phase", "p50 ms", "p99 ms", "availability / note", "RPS"],
        rows,
    )
    write_result("service_chaos", content)
    payload = {
        "smoke": SMOKE,
        "cpu_count": os.cpu_count(),
        "clients": N_CLIENTS,
        "requests_per_client": REQUESTS,
        "cases": CASES,
        "fault_spec": FAULT_SPEC,
        "executor": "thread",
        "workers": 4,
        "baseline": baseline,
        "faulted": faulted,
        "burst": burst,
        "drain": drain_summary,
    }
    write_result_json("service_chaos", payload)
    if not SMOKE:
        # Canonical runs refresh the committed repo-root artifact.
        write_result_json("service_chaos", payload, path=JSON_PATH)
    return payload


def test_availability_under_faults(chaos_bench):
    """Acceptance: >= 99% of requests served despite the 10% fault mix."""
    assert chaos_bench["faulted"]["availability"] >= 0.99, chaos_bench["faulted"]
    assert chaos_bench["baseline"]["availability"] == 1.0


def test_faults_actually_fired_and_were_retried(chaos_bench):
    """The run is only meaningful if crashes really struck and were healed."""
    faulted = chaos_bench["faulted"]
    assert faulted["injected"].get("worker_crash", 0) >= 1
    assert faulted["worker_crashes"] >= 1
    assert faulted["retried"] >= 1
    assert faulted["max_attempts_seen"] > 1


def test_burst_sheds_with_retry_after(chaos_bench):
    burst = chaos_bench["burst"]
    assert burst["shed_503"] >= 1
    assert burst["accepted"] + burst["shed_503"] == burst["submitted"]
    assert burst["retry_after_present"]


def test_drain_settles_accepted_jobs(chaos_bench):
    burst = chaos_bench["burst"]
    assert all(s in ("done", "error", "cancelled")
               for s in burst["drained"].values())


def test_json_written(chaos_bench):
    if not SMOKE:
        assert JSON_PATH.exists()
