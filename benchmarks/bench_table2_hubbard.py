"""Paper Table II: Fermi-Hubbard lattices (2×2 … 4×5, modes 8–40).

Our JW/BK/HATT Pauli weights reproduce the paper's numbers exactly on the
geometries checked in the tests (see test_models_hubbard.py); here we sweep
the full list and regenerate the table with circuit metrics, with
Fermihedral on the smallest lattice.
"""

import pytest

from conftest import full_run
from repro.analysis import (
    TABLE2_PAULI_WEIGHT,
    compare_mappings,
    format_table,
    write_result,
)
from repro.fermihedral import fermihedral_mapping
from repro.hatt import hatt_mapping
from repro.models import hubbard_case

GEOMETRIES = ["2x2", "2x3", "2x4", "3x3", "2x5", "3x4"]
if full_run():
    GEOMETRIES += ["2x7", "3x5", "4x4", "3x6", "4x5"]

COMPILE_LIMIT_MODES = 26


@pytest.fixture(scope="module")
def table2():
    rows = []
    for geometry in GEOMETRIES:
        h = hubbard_case(geometry)
        n = h.n_modes
        reports = compare_mappings(h, n, compile_circuit=n <= COMPILE_LIMIT_MODES)
        paper = TABLE2_PAULI_WEIGHT.get(geometry)
        rows.append(
            [
                geometry,
                n,
                reports["JW"].pauli_weight,
                reports["BK"].pauli_weight,
                reports["BTT"].pauli_weight,
                reports["HATT"].pauli_weight,
                "/".join("--" if v is None else str(v) for v in paper) if paper else "-",
                reports["HATT"].cx_count or "-",
                reports["JW"].cx_count or "-",
                reports["HATT"].depth or "-",
                reports["JW"].depth or "-",
            ]
        )
    content = format_table(
        "Table II - Fermi-Hubbard (paper column = JW/BK/BTT/FH/HATT)",
        ["geometry", "modes", "JW", "BK", "BTT", "HATT", "paper",
         "HATT cx", "JW cx", "HATT depth", "JW depth"],
        rows,
    )
    write_result("table2_hubbard", content)
    return rows


def test_table2_exact_jw_bk_match(table2):
    """JW and BK weights equal the paper's on every geometry."""
    for row in table2:
        geometry, _, jw, bk = row[:4]
        paper = TABLE2_PAULI_WEIGHT[geometry]
        assert jw == paper[0], f"{geometry}: JW {jw} != paper {paper[0]}"
        assert bk == paper[1], f"{geometry}: BK {bk} != paper {paper[1]}"


def test_table2_hatt_close_to_paper(table2):
    """HATT weight within 5% of the paper's (greedy tie-breaks may differ)."""
    for row in table2:
        geometry, _, _, _, _, hatt = row[:6]
        paper_hatt = TABLE2_PAULI_WEIGHT[geometry][4]
        assert abs(hatt - paper_hatt) <= max(4, 0.05 * paper_hatt), geometry


def test_bench_fermihedral_2x1(benchmark, table2):
    """SAT search on the smallest nontrivial lattice (one rung, 4 modes is
    already hard; we use the 2-mode single site)."""
    from repro.models.hubbard import fermi_hubbard

    h = fermi_hubbard(1, 1)

    def run():
        return fermihedral_mapping(h, time_limit=20).weight

    assert benchmark.pedantic(run, rounds=1, iterations=1) is not None


@pytest.mark.parametrize("geometry", ["2x2", "3x3"])
def test_bench_hatt_hubbard(benchmark, geometry, table2):
    h = hubbard_case(geometry)
    benchmark.pedantic(
        lambda: hatt_mapping(h, n_modes=h.n_modes), rounds=3, iterations=1
    )
