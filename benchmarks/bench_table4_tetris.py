"""Paper Table IV: architecture-aware compilation (Tetris stand-in).

JW vs HATT circuits routed onto the Manhattan / Sycamore / Montreal coupling
graphs with the SABRE-lite router.  The paper's claim is relative: HATT's
lower logical gate count survives routing.  Heavier-element 6-31G bases are
unavailable offline, so the sto3g subset + H2 631g is used (see DESIGN.md).
"""

import pytest

from conftest import full_run
from repro.analysis import format_table, write_result
from repro.circuits import architecture, route_circuit, to_cx_u3, trotter_circuit
from repro.hatt import hatt_mapping
from repro.mappings import jordan_wigner
from repro.models.electronic import electronic_case

CASES = ["H2_sto3g", "H2_631g", "LiH_sto3g_frz", "H2O_sto3g"]
if full_run():
    CASES += ["NH_sto3g_frz", "LiH_sto3g"]

ARCHITECTURES = ["manhattan", "sycamore", "montreal"]


def _compiled(case, mapping):
    hq = mapping.map(case.hamiltonian)
    return to_cx_u3(trotter_circuit(hq))


@pytest.fixture(scope="module")
def table4():
    rows = []
    for name in CASES:
        case = electronic_case(name)
        jw_circ = _compiled(case, jordan_wigner(case.n_modes))
        hatt_circ = _compiled(
            case, hatt_mapping(case.hamiltonian, n_modes=case.n_modes)
        )
        for arch_name in ARCHITECTURES:
            graph = architecture(arch_name)
            jw_routed = route_circuit(jw_circ, graph)
            hatt_routed = route_circuit(hatt_circ, graph)
            jw_final = to_cx_u3(jw_routed.circuit)
            hatt_final = to_cx_u3(hatt_routed.circuit)
            rows.append(
                [
                    arch_name,
                    name,
                    jw_final.cx_count,
                    hatt_final.cx_count,
                    jw_final.u3_count,
                    hatt_final.u3_count,
                    jw_final.depth(),
                    hatt_final.depth(),
                ]
            )
    content = format_table(
        "Table IV - routed onto architectures (Tetris stand-in)",
        ["architecture", "case", "JW cx", "HATT cx", "JW u3", "HATT u3",
         "JW depth", "HATT depth"],
        rows,
    )
    write_result("table4_tetris", content)
    return rows


def test_table4_hatt_wins_on_average(table4):
    """Aggregate routed CNOTs: HATT within 10% of JW and winning on the
    larger cases.  (The paper itself concedes JW is slightly better on the
    smallest molecules — Table I's LiH frz row — and our router is weaker
    than Tetris on HATT's less regular ladders; see EXPERIMENTS.md.)"""
    jw_total = sum(r[2] for r in table4)
    hatt_total = sum(r[3] for r in table4)
    assert hatt_total <= jw_total * 1.10


@pytest.mark.parametrize("arch_name", ARCHITECTURES)
def test_bench_routing(benchmark, arch_name, table4):
    case = electronic_case("H2_sto3g")
    circ = _compiled(case, jordan_wigner(case.n_modes))
    graph = architecture(arch_name)
    benchmark.pedantic(lambda: route_circuit(circ, graph), rounds=3, iterations=1)
