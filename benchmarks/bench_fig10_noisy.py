"""Paper Fig. 10: noisy-simulation bias/variance heatmaps (H2, LiH-frz).

Depolarizing error grid (1q: 1e-5..1e-4, 2q: 1e-4..1e-3), 1000 trajectories
per cell in the paper; the default here uses a reduced grid/shot count and
asserts the paper's qualitative finding — HATT's bias/variance is at most
that of the worst constructive baseline everywhere, tracking its smaller
circuits.
"""

import numpy as np
import pytest

from conftest import full_run
from repro.analysis import format_table, noisy_energy_experiment, write_result
from repro.hatt import hatt_mapping
from repro.mappings import balanced_ternary_tree, bravyi_kitaev, jordan_wigner
from repro.models.electronic import electronic_case
from repro.sim import NoiseModel

SHOTS = 1000 if full_run() else 150
GRID = (
    [(1e-5, 1e-4), (3e-5, 3e-4), (1e-4, 1e-3)]
    if not full_run()
    else [(p1, p2) for p1 in np.geomspace(1e-5, 1e-4, 4)
          for p2 in np.geomspace(1e-4, 1e-3, 4)]
)
CASES = ["H2_sto3g"] + (["LiH_sto3g_frz"] if full_run() else [])


def _mappings(case):
    return {
        "JW": jordan_wigner(case.n_modes),
        "BK": bravyi_kitaev(case.n_modes),
        "BTT": balanced_ternary_tree(case.n_modes),
        "HATT": hatt_mapping(case.hamiltonian, n_modes=case.n_modes),
    }


@pytest.fixture(scope="module")
def fig10():
    rows = []
    for case_name in CASES:
        case = electronic_case(case_name)
        for p1, p2 in GRID:
            for name, mapping in _mappings(case).items():
                e = noisy_energy_experiment(
                    case, mapping, NoiseModel(p1=p1, p2=p2), shots=SHOTS
                )
                rows.append(
                    [
                        case_name,
                        f"{p1:.0e}",
                        f"{p2:.0e}",
                        name,
                        f"{e.bias:.4f}",
                        f"{e.variance:.5f}",
                        e.cx_count,
                    ]
                )
    content = format_table(
        "Fig. 10 - noisy simulation bias/variance",
        ["case", "p1", "p2", "mapping", "bias", "variance", "CNOTs"],
        rows,
    )
    write_result("fig10_noisy", content)
    return rows


def test_fig10_hatt_not_worse_than_worst_baseline(fig10):
    """In every grid cell HATT's bias stays below the worst baseline's
    (the paper's heatmaps show HATT at/near the best)."""
    cells = {}
    for case, p1, p2, name, bias, var, _ in fig10:
        cells.setdefault((case, p1, p2), {})[name] = (float(bias), float(var))
    for key, by_mapping in cells.items():
        worst_baseline = max(by_mapping[m][0] for m in ("JW", "BK", "BTT"))
        assert by_mapping["HATT"][0] <= worst_baseline + 0.02, key


def test_bench_noisy_trajectories(benchmark, fig10):
    case = electronic_case("H2_sto3g")
    mapping = jordan_wigner(case.n_modes)

    def run():
        return noisy_energy_experiment(
            case, mapping, NoiseModel(p1=1e-4, p2=1e-3), shots=25
        )

    benchmark.pedantic(run, rounds=2, iterations=1)
