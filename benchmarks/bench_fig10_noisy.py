"""Paper Fig. 10: noisy-simulation bias/variance heatmaps (H2, LiH-frz).

Depolarizing error grid (1q: 1e-5..1e-4, 2q: 1e-4..1e-3), 1000 trajectories
per cell in the paper; the default here uses a reduced grid/shot count and
asserts the paper's qualitative finding — HATT's bias/variance is at most
that of the worst constructive baseline everywhere, tracking its smaller
circuits.

The heatmap cells run on the batched trajectory engine
(``backend="batched"``); ``test_backend_speedup_and_agreement`` times it
against the per-trajectory scalar reference at 1000 trajectories and checks
both engines report the same bias/variance within statistical error.

Set ``REPRO_BENCH_SMOKE=1`` (as the CI smoke step does) for a toy-size run:
one case, a short grid, reduced shots, and a loose speed floor, finishing in
seconds.
"""

import os
import time

import numpy as np
import pytest

from conftest import full_run
from repro.analysis import format_table, noisy_energy_experiment, write_result
from repro.hatt import hatt_mapping
from repro.mappings import balanced_ternary_tree, bravyi_kitaev, jordan_wigner
from repro.models.electronic import electronic_case
from repro.sim import NoiseModel

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") not in ("0", "", "false")

if SMOKE:
    SHOTS = 60
elif full_run():
    SHOTS = 1000
else:
    SHOTS = 150
GRID = (
    [(1e-5, 1e-4), (3e-5, 3e-4), (1e-4, 1e-3)]
    if not full_run()
    else [(p1, p2) for p1 in np.geomspace(1e-5, 1e-4, 4)
          for p2 in np.geomspace(1e-4, 1e-3, 4)]
)
if SMOKE:
    GRID = GRID[-1:]
CASES = ["H2_sto3g"] + (["LiH_sto3g_frz"] if full_run() else [])

#: Speedup floor for the batched engine over the scalar loop.  At 1000
#: trajectories on H2 the measured ratio is ~30x; the floor guards the
#: acceptance criterion (3x) with slack for loaded CI machines.  The smoke
#: run uses far fewer trajectories, where the floor only catches gross
#: regressions.
SPEEDUP_SHOTS = SHOTS if SMOKE else 1000
MIN_SPEEDUP = 0.5 if SMOKE else 3.0


def _mappings(case):
    return {
        "JW": jordan_wigner(case.n_modes),
        "BK": bravyi_kitaev(case.n_modes),
        "BTT": balanced_ternary_tree(case.n_modes),
        "HATT": hatt_mapping(case.hamiltonian, n_modes=case.n_modes),
    }


@pytest.fixture(scope="module")
def fig10():
    rows = []
    for case_name in CASES:
        case = electronic_case(case_name)
        for p1, p2 in GRID:
            for name, mapping in _mappings(case).items():
                e = noisy_energy_experiment(
                    case, mapping, NoiseModel(p1=p1, p2=p2), shots=SHOTS
                )
                rows.append(
                    [
                        case_name,
                        f"{p1:.0e}",
                        f"{p2:.0e}",
                        name,
                        f"{e.bias:.4f}",
                        f"{e.variance:.5f}",
                        e.cx_count,
                    ]
                )
    content = format_table(
        "Fig. 10 - noisy simulation bias/variance",
        ["case", "p1", "p2", "mapping", "bias", "variance", "CNOTs"],
        rows,
    )
    write_result("fig10_noisy", content)
    return rows


def test_fig10_hatt_not_worse_than_worst_baseline(fig10):
    """In every grid cell HATT's bias stays below the worst baseline's
    (the paper's heatmaps show HATT at/near the best)."""
    cells = {}
    for case, p1, p2, name, bias, var, _ in fig10:
        cells.setdefault((case, p1, p2), {})[name] = (float(bias), float(var))
    for key, by_mapping in cells.items():
        worst_baseline = max(by_mapping[m][0] for m in ("JW", "BK", "BTT"))
        assert by_mapping["HATT"][0] <= worst_baseline + 0.02, key


def test_backend_speedup_and_agreement():
    """The batched engine beats the per-trajectory loop by >= MIN_SPEEDUP at
    SPEEDUP_SHOTS trajectories, and both report the same bias/variance
    within statistical error."""
    case = electronic_case("H2_sto3g")
    mapping = jordan_wigner(case.n_modes)
    noise = NoiseModel(p1=1e-4, p2=1e-3)

    def run(backend):
        start = time.perf_counter()
        e = noisy_energy_experiment(
            case, mapping, noise, shots=SPEEDUP_SHOTS, seed=5, backend=backend
        )
        return e, time.perf_counter() - start

    batched, t_batched = run("batched")
    scalar, t_scalar = run("scalar")
    speedup = t_scalar / t_batched

    content = format_table(
        f"Fig. 10 backends - H2, {SPEEDUP_SHOTS} trajectories",
        ["backend", "time [s]", "mean E", "bias", "variance"],
        [
            ["scalar", f"{t_scalar:.3f}", f"{scalar.mean:.5f}",
             f"{scalar.bias:.5f}", f"{scalar.variance:.6f}"],
            ["batched", f"{t_batched:.3f}", f"{batched.mean:.5f}",
             f"{batched.bias:.5f}", f"{batched.variance:.6f}"],
            ["speedup", f"{speedup:.1f}x", "", "", ""],
        ],
    )
    write_result("fig10_backend_speedup", content)

    # Both engines sample the same trajectory distribution: means agree
    # within a 5-sigma two-sample window, variances within a broad ratio.
    stderr = np.sqrt((batched.variance + scalar.variance) / SPEEDUP_SHOTS)
    assert abs(batched.mean - scalar.mean) <= 5 * stderr + 1e-12
    assert batched.noiseless == pytest.approx(scalar.noiseless, abs=1e-9)
    # The variance ratio is only statistically meaningful once enough error
    # events occurred; at smoke-size trajectory counts either stream may see
    # almost none, so the check is gated to the full-size run.
    if not SMOKE and batched.variance > 0 and scalar.variance > 0:
        ratio = batched.variance / scalar.variance
        assert 0.2 < ratio < 5.0
    assert speedup >= MIN_SPEEDUP, f"batched speedup {speedup:.2f}x below floor"


@pytest.mark.parametrize("backend", ["batched", "scalar"])
def test_bench_noisy_trajectories(benchmark, fig10, backend):
    case = electronic_case("H2_sto3g")
    mapping = jordan_wigner(case.n_modes)

    def run():
        return noisy_energy_experiment(
            case, mapping, NoiseModel(p1=1e-4, p2=1e-3), shots=25, backend=backend
        )

    benchmark.pedantic(run, rounds=2, iterations=1)
