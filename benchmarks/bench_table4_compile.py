"""Paper Table IV: architecture-aware compilation via the hardware pipeline.

JW / BK / BTT / HATT / HATT-arch single-Trotter-step circuits synthesized
with the mutual-support ladder pass, peephole-optimized, and routed onto the
four coupling-graph stand-ins (Manhattan, Montreal, Sycamore, IonQ Forte)
with the SABRE-lite router.  ``hatt-arch`` grows the tree against the same
coupling graph it is routed onto (distance-biased candidate selection) and
carries the pipeline's portfolio guard, so its routed CNOTs and depth are
bounded above by plain HATT's per architecture — asserted below.  Supersedes the old ``bench_table4_tetris`` harness:
it sweeps every mapping kind, records SWAP counts, cross-checks the two
router engines, and enforces the vectorized router's speedup floor.

Paper-claim checks, honestly scoped:

* On the collective-neutrino cases (§V-B2, all-to-all interactions — the
  paper's flagship for HATT) routed HATT beats JW and BK on **every**
  architecture; this is asserted per-architecture, in smoke mode too.
* On the electronic-structure subset our router is weaker than Tetris on
  HATT's less regular ladders (heavy-hex rows suit JW's linear chains), so
  only an aggregate bound is asserted there (see EXPERIMENTS.md note in
  the old harness).

Router speedup: each SWAP decision of the ``vector`` engine is one batched
integer kernel whose cost is independent of the lookahead horizon, while
the ``scalar`` reference scans every window position per candidate.  The
floor is asserted at the deep-horizon configuration (lookahead=1024) on
the largest case, where that structural difference is the measurement —
both engines emit bit-identical circuits at every horizon.

Set ``REPRO_BENCH_SMOKE=1`` (the CI smoke step) for a toy-size run that
still exercises every assertion.  Results are written to the committed
repo-root ``BENCH_table4.json`` on canonical runs.
"""

import os
import time
from pathlib import Path

import pytest

from conftest import full_run
from repro.analysis import write_bench_json, write_result
from repro.circuits import route_circuit, to_cx_u3, trotter_circuit
from repro.compile import ARCHITECTURES, CompilationPipeline, CompileOptions
from repro.sources import build_case
from repro.service import MappingSpec, compile_mapping

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") not in ("0", "", "false")

NEUTRINO_CASES = ["neutrino:2x2F"]
if SMOKE:
    CASES = ["H2_sto3g"] + NEUTRINO_CASES
    SPEEDUP_CASE = "H2O_sto3g"
    SPEEDUP_REPEATS = 1
elif full_run():
    NEUTRINO_CASES += ["neutrino:3x2F", "neutrino:4x2F"]
    CASES = ["H2_sto3g", "H2_631g", "LiH_sto3g_frz", "hubbard:2x3",
             "H2O_sto3g"] + NEUTRINO_CASES
    SPEEDUP_CASE = "H2O_sto3g"
    SPEEDUP_REPEATS = 3
else:
    NEUTRINO_CASES += ["neutrino:3x2F"]
    CASES = ["H2_sto3g", "LiH_sto3g_frz", "hubbard:2x3", "H2O_sto3g"] + NEUTRINO_CASES
    SPEEDUP_CASE = "H2O_sto3g"
    SPEEDUP_REPEATS = 3

KINDS = ("jw", "bk", "btt", "hatt", "hatt-arch")

#: Acceptance floor: the vector router must beat the scalar reference by
#: this factor on the largest case at the deep-horizon configuration.
MIN_SPEEDUP = 3.0

#: Deep-horizon routing configuration for the speedup measurement (the
#: vector engine's decision cost is flat in the horizon; the scalar
#: reference's is linear).
DEEP_LOOKAHEAD = 1024

#: Electronic aggregate bound: routed HATT within this factor of routed JW
#: summed over every (electronic case, architecture) pair.
ELECTRONIC_AGGREGATE = 1.15

JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_table4.json"


@pytest.fixture(scope="module")
def table4():
    pipeline = CompilationPipeline()
    reports = {}
    for case in CASES:
        reports[case] = pipeline.sweep(build_case(case), kinds=KINDS, case=case)
    content = "\n\n".join(reports[case].table() for case in CASES)
    write_result("table4_compile", content)
    return reports


@pytest.fixture(scope="module")
def speedup():
    """Deep-horizon routing time, vector vs scalar, on the largest case."""
    h = build_case(SPEEDUP_CASE)
    mapping = compile_mapping(h, MappingSpec(kind="jw", n_modes=h.n_modes))
    circuit = to_cx_u3(trotter_circuit(mapping.map(h), order="mutual"))
    from repro.circuits import architecture

    graph = architecture("manhattan")
    times = {}
    routed = {}
    for backend in ("vector", "scalar"):
        best = float("inf")
        for _ in range(SPEEDUP_REPEATS):
            start = time.perf_counter()
            routed[backend] = route_circuit(
                circuit, graph, lookahead=DEEP_LOOKAHEAD, backend=backend
            )
            best = min(best, time.perf_counter() - start)
        times[backend] = best
    return circuit, routed, times


def test_table4_emits_all_metrics(table4):
    for case, report in table4.items():
        for arch in ARCHITECTURES:
            for kind in KINDS:
                m = report.metrics[arch][kind]
                assert m.routed_cx > 0 and m.routed_depth > 0, (case, arch, kind)
                assert m.routed_swaps >= 0
                assert m.n_physical >= m.n_qubits


def test_table4_no_swaps_on_all_to_all(table4):
    for report in table4.values():
        for m in report.metrics["ionq_forte"].values():
            assert m.routed_swaps == 0


def test_table4_hatt_wins_on_neutrino(table4):
    """§V-B2 flagship: routed HATT ≤ JW and BK on every architecture."""
    for case in NEUTRINO_CASES:
        for arch, per_kind in table4[case].metrics.items():
            hatt = per_kind["hatt"].routed_cx
            assert hatt <= per_kind["jw"].routed_cx, (case, arch)
            assert hatt <= per_kind["bk"].routed_cx, (case, arch)


def test_table4_hatt_arch_never_worse_than_hatt(table4):
    """The hatt-arch portfolio guarantee: on every (case, architecture) the
    architecture-adaptive row routes with no more CNOTs *and* no more depth
    than plain HATT (the guard falls back to the plain tree otherwise)."""
    for case, report in table4.items():
        for arch, per_kind in report.metrics.items():
            adaptive, plain = per_kind["hatt-arch"], per_kind["hatt"]
            assert adaptive.routed_cx <= plain.routed_cx, (case, arch)
            assert adaptive.routed_depth <= plain.routed_depth, (case, arch)


def test_table4_electronic_aggregate(table4):
    """Electronic subset: HATT's aggregate routed CNOTs stay within the
    honesty bound of JW's (our SABRE-lite router favors JW's linear
    ladders on heavy-hex; Tetris would close this gap)."""
    electronic = [c for c in CASES if c not in NEUTRINO_CASES]
    jw_total = hatt_total = 0
    for case in electronic:
        for per_kind in table4[case].metrics.values():
            jw_total += per_kind["jw"].routed_cx
            hatt_total += per_kind["hatt"].routed_cx
    assert hatt_total <= jw_total * ELECTRONIC_AGGREGATE, (hatt_total, jw_total)


def test_router_backends_bit_identical(table4):
    """Both engines produce identical gate sequences at several horizons."""
    from repro.circuits import architecture

    case = CASES[0]
    h = build_case(case)
    mapping = compile_mapping(h, MappingSpec(kind="hatt", n_modes=h.n_modes))
    circuit = to_cx_u3(trotter_circuit(mapping.map(h), order="mutual"))
    for arch in ARCHITECTURES:
        graph = architecture(arch)
        for lookahead in (4, 64, 256, DEEP_LOOKAHEAD):
            vec = route_circuit(circuit, graph, lookahead=lookahead, backend="vector")
            sca = route_circuit(circuit, graph, lookahead=lookahead, backend="scalar")
            assert vec.circuit.gates == sca.circuit.gates, (arch, lookahead)
            assert vec.final_layout == sca.final_layout, (arch, lookahead)


@pytest.fixture(scope="module")
def bench_json(table4, speedup):
    """Write the benchmark payload (runs regardless of assertion outcomes)."""
    circuit, routed, times = speedup
    ratio = times["scalar"] / times["vector"]
    payload = {
        "smoke": SMOKE,
        "full": full_run(),
        "cases": CASES,
        "kinds": list(KINDS),
        "architectures": list(ARCHITECTURES),
        "options": {
            "term_order": CompileOptions().term_order,
            "lookahead": CompileOptions().lookahead,
        },
        "metrics": {
            case: {
                arch: {
                    kind: {
                        "pauli_weight": m.pauli_weight,
                        "logical_cx": m.logical_cx,
                        "routed_cx": m.routed_cx,
                        "routed_swaps": m.routed_swaps,
                        "routed_depth": m.routed_depth,
                    }
                    for kind, m in per_arch.items()
                }
                for arch, per_arch in table4[case].metrics.items()
            }
            for case in CASES
        },
        "router_speedup": {
            "case": SPEEDUP_CASE,
            "architecture": "manhattan",
            "lookahead": DEEP_LOOKAHEAD,
            "n_gates": len(circuit),
            "vector_s": round(times["vector"], 4),
            "scalar_s": round(times["scalar"], 4),
            "speedup": round(ratio, 2),
            "min_floor": MIN_SPEEDUP,
        },
    }
    path = write_bench_json(
        "table4_compile", payload, JSON_PATH, refresh_committed=not SMOKE
    )
    return path, payload


def test_routing_speedup_floor(speedup, bench_json):
    circuit, routed, times = speedup
    assert routed["vector"].circuit.gates == routed["scalar"].circuit.gates
    assert times["scalar"] / times["vector"] >= MIN_SPEEDUP, times


def test_table4_json_written(bench_json):
    import json

    path, payload = bench_json
    data = json.loads(path.read_text())
    assert data["router_speedup"]["case"] == SPEEDUP_CASE
    assert data["metrics"] == payload["metrics"]
    if not SMOKE:
        # Canonical runs also refresh the committed repo-root artifact.
        assert JSON_PATH.exists()


@pytest.mark.parametrize("arch", ARCHITECTURES)
def test_bench_routing(benchmark, arch, table4):
    from repro.circuits import architecture

    h = build_case("H2_sto3g")
    mapping = compile_mapping(h, MappingSpec(kind="jw", n_modes=h.n_modes))
    circ = to_cx_u3(trotter_circuit(mapping.map(h), order="mutual"))
    graph = architecture(arch)
    benchmark.pedantic(lambda: route_circuit(circ, graph), rounds=3, iterations=1)
