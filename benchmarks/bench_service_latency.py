"""Served-API latency: p50/p99 and RPS under concurrent warm/cold mixes.

Drives a real ``repro.serve`` stack — asyncio HTTP server, coalescing job
queue, LRU-capped caches — with stdlib HTTP clients and measures:

* **cold** — first-touch compiles, one per case (server-side compile
  dominates the round trip);
* **warm** — repeated identical requests served from the memory LRU / disk
  store, hammered by ``WARM_THREADS`` concurrent clients (reported as
  p50/p99 latency and aggregate requests-per-second);
* **coalesce** — ``COALESCE_N`` identical cold submissions fired back-to-back
  while both workers are pinned on slow compile jobs, so every submission
  arrives while the shared job is still queued; the queue must collapse them
  into **exactly one** executed compile (the enforced coalescing floor);
* **mixed** — concurrent clients issuing warm traffic while a cold compile
  lands, the realistic serving profile.

Set ``REPRO_BENCH_SMOKE=1`` (the CI smoke step) for a reduced run that still
enforces the coalescing floor and the warm-faster-than-cold ordering.
Results go to ``benchmarks/results/`` and, for canonical non-smoke runs, the
committed repo-root ``BENCH_service_latency.json``.

Methodology: every case Hamiltonian here is synthetic (Hubbard/neutrino
lattices, no SCF solve), so cold timings measure the service, not integral
generation.  Latencies are measured client-side around one ``POST
/v1/jobs?wait=1`` round trip, so they include HTTP framing + envelope
(de)serialization — the number a real client sees.
"""

import os
import threading
import time
from pathlib import Path

import pytest

from conftest import full_run
from repro.analysis import format_table, write_result, write_result_json
from repro.sources import build_case
from repro.obs.metrics import BENCH_LATENCY_BUCKETS, latency_summary
from repro.obs.trace import StageTimings
from repro.serve import BackgroundServer, CompileRequest, JobQueue, ServiceClient
from repro.service import MappingService

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") not in ("0", "", "false")

#: Identical cold submissions that must collapse into one compile.
COALESCE_N = 8 if SMOKE else 16

#: Concurrent warm clients × requests per client.
WARM_THREADS = 2 if SMOKE else 4
WARM_REQUESTS = 10 if SMOKE else 25

if SMOKE:
    COLD_CASES = ["hubbard:1x2", "hubbard:2x2"]
    COALESCE_CASE = "hubbard:2x3"
elif full_run():
    COLD_CASES = ["hubbard:2x2", "hubbard:2x3", "hubbard:3x3",
                  "neutrino:4x2F", "neutrino:5x2F"]
    COALESCE_CASE = "hubbard:3x4"
else:
    COLD_CASES = ["hubbard:2x2", "hubbard:2x3", "hubbard:3x3", "neutrino:4x2F"]
    COALESCE_CASE = "hubbard:3x4"

JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_service_latency.json"


def _percentiles(samples):
    # Same fine-grained geometric buckets the serving metrics use — bench
    # percentiles and /v1/metrics histograms come from one implementation.
    return latency_summary(samples, buckets=BENCH_LATENCY_BUCKETS)


def _timed_submit(client, request):
    start = time.perf_counter()
    record = client.submit(request, wait=True, timeout=600)
    return time.perf_counter() - start, record


@pytest.fixture(scope="module")
def latency_bench(tmp_path_factory):
    base = tmp_path_factory.mktemp("serve-bench")
    for case in COLD_CASES + [COALESCE_CASE]:
        build_case(case)  # construct outside any timer

    service = MappingService(cache_dir=base / "cache")
    with JobQueue(service=service, workers=2) as queue, \
            BackgroundServer(queue) as bg:
        client = ServiceClient(bg.host, bg.port)

        # -- cold ------------------------------------------------------
        cold_lat, cold_records = [], []
        for case in COLD_CASES:
            dt, record = _timed_submit(client, CompileRequest(case=case))
            assert record.status == "done", record.error
            assert record.source == "compiled"
            cold_lat.append(dt)
            cold_records.append(record)

        # -- stage breakdown of one cold compile ----------------------
        # A fresh fingerprint (non-default kind) so the compile is cold;
        # the per-stage spans ride back in the job result's trace block.
        stage_dt, stage_record = _timed_submit(
            client, CompileRequest(case=COLD_CASES[0], kind="bk"))
        assert stage_record.source == "compiled", stage_record.source
        stage_timings = StageTimings()
        stage_timings.merge_spans(
            (stage_record.result.get("trace") or {}).get("spans", []))
        cold_stage_breakdown = {
            "case": COLD_CASES[0],
            "kind": "bk",
            "wall_seconds": round(stage_dt, 6),
            **stage_timings.to_dict(),
        }

        # -- warm (serial, uncontended) -------------------------------
        # One client, one request in flight: the pure cache-hit round trip,
        # comparable 1:1 against the cold numbers above.
        warm_serial_lat = []
        for i in range(3 * len(COLD_CASES)):
            case = COLD_CASES[i % len(COLD_CASES)]
            dt, record = _timed_submit(client, CompileRequest(case=case))
            assert record.source in ("memory", "disk"), record.source
            warm_serial_lat.append(dt)

        # -- warm (concurrent clients) --------------------------------
        warm_lat, warm_sources, errors = [], [], []
        lock = threading.Lock()

        def warm_worker(thread_idx):
            try:
                with ServiceClient(bg.host, bg.port) as c:
                    local_lat, local_src = [], []
                    for i in range(WARM_REQUESTS):
                        case = COLD_CASES[(thread_idx + i) % len(COLD_CASES)]
                        dt, record = _timed_submit(c, CompileRequest(case=case))
                        local_lat.append(dt)
                        local_src.append(record.source)
                    with lock:
                        warm_lat.extend(local_lat)
                        warm_sources.extend(local_src)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        warm_start = time.perf_counter()
        threads = [threading.Thread(target=warm_worker, args=(i,))
                   for i in range(WARM_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        warm_wall = time.perf_counter() - warm_start
        assert not errors, errors
        warm_rps = len(warm_lat) / warm_wall

        # -- coalesce --------------------------------------------------
        # Two slow compile-job "plugs" occupy both workers first, so the
        # COALESCE_N submissions below all land while their shared map job
        # is still queued: the fan-out window is bounded by a full
        # synthesis+routing compile (hundreds of ms), not by a small map
        # compile that could finish mid-fan-out and split the jobs.
        executed_before = queue.stats()["executed"]
        plugs = [
            client.submit(CompileRequest(case=COALESCE_CASE, job="compile",
                                         kind=kind, arch="manhattan"))
            for kind in ("jw", "bk")
        ]
        request = CompileRequest(case=COALESCE_CASE)
        fan_start = time.perf_counter()
        first = client.submit(request)  # no wait: returns while queued
        followers = [client.submit(request) for _ in range(COALESCE_N - 1)]
        submit_wall = time.perf_counter() - fan_start
        status_after_fanout = queue.get(first.id).status
        for plug in plugs:
            assert queue.wait(plug.id, timeout=600).status == "done"
        done = queue.wait(first.id, timeout=600)
        coalesce_wall = time.perf_counter() - fan_start
        assert done.status == "done", done.error
        coalesce = {
            "n": COALESCE_N,
            "job_ids": len({r.id for r in [first] + followers}),
            "subscribers": queue.get(first.id).subscribers,
            "executed": queue.stats()["executed"] - executed_before - len(plugs),
            "status_after_fanout": status_after_fanout,
            "submit_wall_s": round(submit_wall, 6),
            "wall_s": round(coalesce_wall, 6),
        }

        # -- mixed warm/cold ------------------------------------------
        mixed_lat, mixed_cold_lat = [], []

        def mixed_warm_worker(thread_idx):
            with ServiceClient(bg.host, bg.port) as c:
                local = []
                for i in range(WARM_REQUESTS):
                    case = COLD_CASES[(thread_idx + i) % len(COLD_CASES)]
                    dt, _ = _timed_submit(c, CompileRequest(case=case))
                    local.append(dt)
                with lock:
                    mixed_lat.extend(local)

        def mixed_cold_worker():
            with ServiceClient(bg.host, bg.port) as c:
                dt, record = _timed_submit(
                    c, CompileRequest(case=COALESCE_CASE, kind="btt"))
                assert record.source == "compiled"
                mixed_cold_lat.append(dt)

        mixed_start = time.perf_counter()
        threads = [threading.Thread(target=mixed_warm_worker, args=(i,))
                   for i in range(WARM_THREADS)]
        threads.append(threading.Thread(target=mixed_cold_worker))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        mixed_wall = time.perf_counter() - mixed_start

        stats = client.stats()
        client.close()

    warm_stats = _percentiles(warm_lat)
    warm_serial_stats = _percentiles(warm_serial_lat)
    mixed_stats = _percentiles(mixed_lat)
    cold_stats = _percentiles(cold_lat)
    rows = [
        [f"cold x{len(cold_lat)}", cold_stats["p50_ms"], cold_stats["p99_ms"], "-"],
        [f"warm x{len(warm_serial_lat)} (serial)", warm_serial_stats["p50_ms"],
         warm_serial_stats["p99_ms"], "-"],
        [f"warm x{len(warm_lat)} ({WARM_THREADS} clients)",
         warm_stats["p50_ms"], warm_stats["p99_ms"], f"{warm_rps:.0f}"],
        [f"mixed x{len(mixed_lat)}+1 cold", mixed_stats["p50_ms"],
         mixed_stats["p99_ms"], f"{len(mixed_lat) / mixed_wall:.0f}"],
        [f"coalesce x{COALESCE_N}", "-", "-",
         f"{coalesce['executed']} compile(s)"],
    ]
    content = format_table(
        "served-API latency (POST /v1/jobs?wait=1 round trips)",
        ["phase", "p50 ms", "p99 ms", "RPS / note"],
        rows,
    )
    write_result("service_latency", content)
    payload = {
        "smoke": SMOKE,
        "full": full_run(),
        "cpu_count": os.cpu_count(),
        "cold_cases": COLD_CASES,
        "coalesce_case": COALESCE_CASE,
        "executor": "thread",
        "workers": 2,
        "cold": cold_stats,
        "cold_stage_breakdown": cold_stage_breakdown,
        "warm_serial": warm_serial_stats,
        "warm": {**warm_stats, "rps": round(warm_rps, 1),
                 "threads": WARM_THREADS},
        "mixed": {**mixed_stats,
                  "rps": round(len(mixed_lat) / mixed_wall, 1),
                  "cold_ms": round(mixed_cold_lat[0] * 1e3, 3)},
        "coalesce": coalesce,
        "queue_stats": {k: stats[k] for k in
                        ("submitted", "coalesced", "executed", "errors")},
        "service_stats": {k: stats["service"][k] for k in
                          ("compiles", "hits_memory", "hits_disk", "hit_rate")},
    }
    write_result_json("service_latency", payload)
    if not SMOKE:
        # Canonical runs refresh the committed repo-root artifact.
        write_result_json("service_latency", payload, path=JSON_PATH)
    return payload, warm_sources


def test_coalescing_floor(latency_bench):
    """Acceptance: N identical cold submissions execute exactly one compile."""
    payload, _ = latency_bench
    assert payload["coalesce"]["job_ids"] == 1, payload["coalesce"]
    assert payload["coalesce"]["executed"] == 1, payload["coalesce"]
    assert payload["coalesce"]["subscribers"] == COALESCE_N


def test_warm_requests_served_from_cache(latency_bench):
    _, warm_sources = latency_bench
    assert warm_sources and all(s in ("memory", "disk") for s in warm_sources)


def test_warm_latency_beats_cold(latency_bench):
    """An uncontended warm round trip undercuts the median cold compile."""
    payload, _ = latency_bench
    assert payload["warm_serial"]["p50_ms"] < payload["cold"]["p50_ms"]


def test_no_job_errors(latency_bench):
    payload, _ = latency_bench
    assert payload["queue_stats"]["errors"] == 0


def test_json_written(latency_bench):
    if not SMOKE:
        assert JSON_PATH.exists()
