"""Paper Table III: collective neutrino oscillations.

The paper's exact Hamiltonian generator settings (flavor content of the
doubled modes, coupling cutoffs) are not published, so absolute weights
differ from Table III; the reproduced *shape* — HATT lowest on every case,
JW's lead shrinking with size — is asserted below and recorded in
EXPERIMENTS.md.
"""

import pytest

from conftest import full_run
from repro.analysis import (
    TABLE3_PAULI_WEIGHT,
    compare_mappings,
    format_table,
    write_result,
)
from repro.hatt import hatt_mapping
from repro.models import neutrino_case

CASES = ["3x2F", "4x2F", "3x3F"]
if full_run():
    CASES += ["5x2F", "4x3F", "6x2F", "7x2F", "5x3F", "6x3F", "7x3F"]

COMPILE_LIMIT_MODES = 18


@pytest.fixture(scope="module")
def table3():
    rows = []
    for label in CASES:
        h = neutrino_case(label)
        n = h.n_modes
        reports = compare_mappings(h, n, compile_circuit=n <= COMPILE_LIMIT_MODES)
        paper = TABLE3_PAULI_WEIGHT.get(label)
        rows.append(
            [
                label,
                n,
                reports["JW"].pauli_weight,
                reports["BK"].pauli_weight,
                reports["BTT"].pauli_weight,
                reports["HATT"].pauli_weight,
                "/".join("--" if v is None else str(v) for v in paper) if paper else "-",
                reports["HATT"].cx_count or "-",
                reports["JW"].cx_count or "-",
            ]
        )
    content = format_table(
        "Table III - collective neutrino oscillation (paper column = "
        "JW/BK/BTT/HATT)",
        ["case", "modes", "JW", "BK", "BTT", "HATT", "paper",
         "HATT cx", "JW cx"],
        rows,
    )
    write_result("table3_neutrino", content)
    return rows


def test_table3_hatt_always_best_or_tied(table3):
    for row in table3:
        label, _, jw, bk, btt, hatt = row[:6]
        assert hatt <= min(jw, bk, btt), label


@pytest.mark.parametrize("label", CASES[:2])
def test_bench_hatt_neutrino(benchmark, label, table3):
    h = neutrino_case(label)
    benchmark.pedantic(
        lambda: hatt_mapping(h, n_modes=h.n_modes), rounds=3, iterations=1
    )
