"""Scalar vs vectorized PauliTable backends on the bulk mapping hot path.

Times ``map_majorana_operator`` under both backends on the cached
electronic-structure Hamiltonians (NH and BeH2), checks the results agree
exactly, and asserts the vectorized backend delivers the expected speedup.
Results go to benchmarks/results/pauli_table.txt.

Set ``REPRO_BENCH_SMOKE=1`` (as the CI smoke step does) to run a toy-size
variant: correctness plus a loose speed floor on H2 only, finishing in
seconds on a cold cache.
"""

import os
import time

import pytest

from conftest import full_run
from repro.analysis import format_table, write_result
from repro.fermion import MajoranaOperator
from repro.mappings import balanced_ternary_tree, jordan_wigner
from repro.mappings.apply import map_majorana_operator
from repro.models.electronic import electronic_case

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") not in ("0", "", "false")

if SMOKE:
    CASES = ["H2_sto3g"]
elif full_run():
    CASES = ["NH_sto3g", "BeH2_sto3g", "H2O_sto3g", "CH4_sto3g"]
else:
    CASES = ["NH_sto3g", "BeH2_sto3g"]

#: Acceptance floor for the vectorized backend.  The paper-size cases must
#: clear 5x; the toy smoke case only guards against gross regressions (at 15
#: terms the two backends are expected to tie).
MIN_SPEEDUP = 5.0 if not SMOKE else 0.2
REPEATS = 15


def _best(fn, repeats=REPEATS):
    """Best-of-N wall time — robust against scheduler noise."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def speedup_rows():
    rows = []
    for name in CASES:
        case = electronic_case(name)
        majorana = MajoranaOperator.from_fermion_operator(case.hamiltonian)
        mapping = jordan_wigner(case.n_modes)
        scalar = map_majorana_operator(
            majorana, mapping.strings, mapping.n_qubits, backend="scalar"
        )
        table = map_majorana_operator(
            majorana, mapping.packed_table, mapping.n_qubits, backend="table"
        )
        assert table == scalar, f"backend mismatch on {name}"
        t_scalar = _best(
            lambda: map_majorana_operator(
                majorana, mapping.strings, mapping.n_qubits, backend="scalar"
            )
        )
        t_table = _best(
            lambda: map_majorana_operator(
                majorana, mapping.packed_table, mapping.n_qubits, backend="table"
            )
        )
        rows.append(
            [
                name,
                case.n_modes,
                len(majorana),
                f"{t_scalar * 1e3:.3f}",
                f"{t_table * 1e3:.3f}",
                f"{t_scalar / t_table:.1f}x",
            ]
        )
    content = format_table(
        "PauliTable backend - map_majorana_operator (JW mapping, best of "
        f"{REPEATS})",
        ["case", "modes", "terms", "scalar ms", "table ms", "speedup"],
        rows,
    )
    write_result("pauli_table", content)
    print()
    print(content)
    return rows


def test_backends_agree_on_btt(speedup_rows):
    """Cross-check a second mapping family end to end."""
    case = electronic_case(CASES[0])
    majorana = MajoranaOperator.from_fermion_operator(case.hamiltonian)
    mapping = balanced_ternary_tree(case.n_modes)
    assert map_majorana_operator(
        majorana, mapping.packed_table, mapping.n_qubits
    ) == map_majorana_operator(majorana, mapping.strings, mapping.n_qubits, backend="scalar")


def test_table_backend_speedup(speedup_rows):
    """The vectorized backend clears the acceptance floor on every case."""
    for name, _, _, _, _, speedup in speedup_rows:
        assert float(speedup.rstrip("x")) >= MIN_SPEEDUP, (
            f"{name}: table backend only {speedup} over scalar "
            f"(floor {MIN_SPEEDUP}x)"
        )


def test_bench_table_backend(benchmark, speedup_rows):
    """pytest-benchmark timing of the vectorized path itself."""
    case = electronic_case(CASES[0])
    majorana = MajoranaOperator.from_fermion_operator(case.hamiltonian)
    mapping = jordan_wigner(case.n_modes)
    majorana.packed_terms()  # warm the plan, as in the sweep workload
    benchmark(
        lambda: map_majorana_operator(
            majorana, mapping.packed_table, mapping.n_qubits, backend="table"
        )
    )


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q", "-p", "no:cacheprovider"]))
