"""Paper Fig. 11: H2 on IonQ Forte 1 (simulated).

The hardware is replaced by an all-to-all backend with the paper's published
fidelities (DESIGN.md substitution table).  The paper's finding: FH best
mean, HATT second-best mean and lowest variance, all adaptive methods above
JW/BK/BTT.

Trajectories run on the batched engine (``repro.sim.BatchedStatevector``);
the scalar per-trajectory loop stays available through the benchmark's
``backend`` parametrization for cross-checking.
"""

import pytest

from conftest import full_run
from repro.analysis import format_table, noisy_energy_experiment, write_result
from repro.fermihedral import fermihedral_mapping
from repro.hatt import hatt_mapping
from repro.mappings import balanced_ternary_tree, bravyi_kitaev, jordan_wigner
from repro.models.electronic import electronic_case
from repro.sim import ionq_forte_noise_model

SHOTS = 1000 if full_run() else 250


@pytest.fixture(scope="module")
def fig11():
    case = electronic_case("H2_sto3g")
    mappings = {
        "JW": jordan_wigner(4),
        "BK": bravyi_kitaev(4),
        "BTT": balanced_ternary_tree(4),
        "HATT": hatt_mapping(case.hamiltonian, n_modes=4),
    }
    fh = fermihedral_mapping(case.hamiltonian, n_modes=4, time_limit=90)
    fh_note = None
    if fh.mapping is not None and fh.mapping.preserves_vacuum():
        mappings["FH"] = fh.mapping
    else:
        # SAT search timed out or found a non-vacuum-preserving optimum the
        # Pauli-gate state prep cannot use; record the attempt (paper: FH is
        # the one method that stops scaling).
        fh_note = ["FH", "--", "--", "--", "--", fh.label]
    noise = ionq_forte_noise_model()
    rows = []
    results = {}
    for name, mapping in mappings.items():
        e = noisy_energy_experiment(case, mapping, noise, shots=SHOTS, seed=11)
        results[name] = e
        rows.append(
            [name, f"{e.mean:.4f}", f"{e.noiseless:.4f}", f"{e.bias:.4f}",
             f"{e.variance:.5f}", e.cx_count]
        )
    if fh_note is not None:
        rows.append(fh_note)
    content = format_table(
        "Fig. 11 - H2 on simulated IonQ Forte 1 (1q 99.98%, 2q 98.99%)",
        ["mapping", "mean E", "noiseless E", "bias", "variance", "CNOTs"],
        rows,
    )
    write_result("fig11_ionq", content)
    return results


def test_fig11_hatt_low_variance(fig11):
    """HATT's variance is at most the median baseline's (paper: lowest)."""
    baselines = sorted(
        fig11[name].variance for name in ("JW", "BK", "BTT") if name in fig11
    )
    assert fig11["HATT"].variance <= baselines[-1]


def test_fig11_hatt_bias_competitive(fig11):
    worst = max(fig11[name].bias for name in ("JW", "BK", "BTT"))
    assert fig11["HATT"].bias <= worst + 0.02


@pytest.mark.parametrize("backend", ["batched", "scalar"])
def test_bench_ionq_experiment(benchmark, fig11, backend):
    case = electronic_case("H2_sto3g")
    mapping = hatt_mapping(case.hamiltonian, n_modes=4)
    noise = ionq_forte_noise_model()

    def run():
        return noisy_energy_experiment(case, mapping, noise, shots=25, backend=backend)

    benchmark.pedantic(run, rounds=2, iterations=1)
