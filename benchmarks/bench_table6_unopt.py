"""Paper Table VI: HATT (unopt, Alg. 1) vs HATT (Alg. 2+3) Pauli weight.

The paper reports ~0.43% average difference — vacuum-state preservation is
nearly free.  We regenerate the comparison on molecules, Hubbard lattices
and neutrino cases up to 24 modes.
"""

import pytest

from conftest import full_run
from repro.analysis import TABLE6_UNOPT, format_table, write_result
from repro.hatt import hatt_mapping
from repro.models import hubbard_case, neutrino_case
from repro.models.electronic import electronic_case


def _cases():
    cases = [
        ("H2_sto3g", electronic_case("H2_sto3g").hamiltonian),
        ("LiH_sto3g_frz", electronic_case("LiH_sto3g_frz").hamiltonian),
        ("2x2", hubbard_case("2x2")),
        ("2x3", hubbard_case("2x3")),
        ("2x4", hubbard_case("2x4")),
        ("3x2F", neutrino_case("3x2F")),
    ]
    if full_run():
        cases += [
            ("LiH_sto3g", electronic_case("LiH_sto3g").hamiltonian),
            ("H2O_sto3g", electronic_case("H2O_sto3g").hamiltonian),
            ("3x3", hubbard_case("3x3")),
            ("2x5", hubbard_case("2x5")),
            ("3x4", hubbard_case("3x4")),
            ("4x2F", neutrino_case("4x2F")),
            ("3x3F", neutrino_case("3x3F")),
        ]
    return cases


@pytest.fixture(scope="module")
def table6():
    rows = []
    for name, h in _cases():
        n = h.n_modes
        w_unopt = hatt_mapping(h, n_modes=n, vacuum=False).map(h).pauli_weight()
        w_opt = hatt_mapping(h, n_modes=n, vacuum=True).map(h).pauli_weight()
        paper = TABLE6_UNOPT.get(name)
        rows.append(
            [
                name,
                n,
                w_unopt,
                w_opt,
                f"{100.0 * (w_opt - w_unopt) / max(w_unopt, 1):+.2f}%",
                f"{paper[0]}/{paper[1]}" if paper else "-",
            ]
        )
    content = format_table(
        "Table VI - HATT(unopt) vs HATT Pauli weight (paper column = "
        "unopt/opt)",
        ["case", "modes", "HATT(unopt)", "HATT", "delta", "paper"],
        rows,
    )
    write_result("table6_unopt", content)
    return rows


def test_table6_small_gap(table6):
    """Vacuum preservation costs only a few percent (paper: ~0.43% avg)."""
    gaps = []
    for row in table6:
        _, _, unopt, opt = row[:4]
        gaps.append(abs(opt - unopt) / max(unopt, 1))
    assert sum(gaps) / len(gaps) < 0.06


def test_bench_unopt_vs_opt(benchmark, table6):
    h = hubbard_case("2x3")

    def both():
        hatt_mapping(h, vacuum=False)
        hatt_mapping(h, vacuum=True)

    benchmark.pedantic(both, rounds=3, iterations=1)
