"""Compilation-service throughput: cold-vs-warm latency and suite fan-out.

Two claims are enforced:

* **warm floor** — a warm cache hit (disk artifact or memory LRU) returns an
  LiH-scale mapping ≥ ``WARM_FLOOR``× faster than the cold compile that
  produced it, strings bit-identical;
* **parallel floor** — ``compile_suite`` with ``PARALLEL_JOBS`` workers
  finishes a balanced multi-case suite ≥ ``PARALLEL_FLOOR``× faster than one
  worker.  This assert needs real cores: on machines with fewer than
  ``PARALLEL_JOBS`` CPUs the measurement is still recorded in the JSON
  payload (with ``cpu_count`` for context) but the floor test skips.

Set ``REPRO_BENCH_SMOKE=1`` (the CI smoke step) for a reduced suite that
still enforces the warm floor and the all-hits warm pass.  Results go to
``benchmarks/results/`` and, for canonical non-smoke runs, the committed
repo-root ``BENCH_service.json``.

Methodology note: every case Hamiltonian is built once before any timer
starts (molecular cases run a Hartree–Fock solve on first touch) — the
benchmark measures the mapping service, not integral generation.
"""

import os
import shutil
import time
from pathlib import Path

import pytest

from conftest import full_run
from repro.analysis import format_table, write_result, write_result_json
from repro.models.electronic import case_integrals
from repro.service import MappingService, MappingSpec, compile_suite
from repro.sources import build_case, save_npz, write_fcidump

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") not in ("0", "", "false")

#: Acceptance floors (ISSUE 4): warm hit ≥ 20x cold; 4 workers ≥ 2x serial.
WARM_FLOOR = 20.0
PARALLEL_FLOOR = 2.0
PARALLEL_JOBS = 4

#: LiH-scale cold/warm case (~1.5k terms, ~0.1 s compile).
COLD_CASE = "LiH_sto3g"

if SMOKE:
    # Builds are cheap (no multi-second SCF cases); serial compile ~1 s so the
    # parallel measurement stays meaningful on 4-core CI runners.
    SUITE_CASES = [
        "LiH_sto3g", "NH_sto3g", "BeH2_sto3g", "H2O_sto3g",
        "neutrino:4x2F", "neutrino:5x2F", "H2_631g", "hubbard:3x3",
    ]
elif full_run():
    SUITE_CASES = [
        "LiH_sto3g", "NH_sto3g", "BeH2_sto3g", "H2O_sto3g",
        "O2_sto3g_frz", "H2O_sto3g_frz", "BeH2_sto3g_frz", "NH_sto3g_frz",
        "neutrino:4x2F", "neutrino:5x2F", "H2_631g", "hubbard:3x3",
        "O2_sto3g", "CH4_sto3g_frz",
    ]
else:
    SUITE_CASES = [
        "LiH_sto3g", "NH_sto3g", "BeH2_sto3g", "H2O_sto3g",
        "O2_sto3g_frz", "H2O_sto3g_frz", "BeH2_sto3g_frz", "NH_sto3g_frz",
        "neutrino:4x2F", "neutrino:5x2F", "H2_631g", "hubbard:3x3",
    ]

JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_service.json"


def _fresh_dir(base: Path, name: str) -> str:
    path = base / name
    shutil.rmtree(path, ignore_errors=True)
    return str(path)


@pytest.fixture(scope="module")
def service_bench(tmp_path_factory):
    base = tmp_path_factory.mktemp("service-bench")
    spec = MappingSpec(kind="hatt")

    # Pre-build every Hamiltonian (see methodology note above).
    h_cold = build_case(COLD_CASE)
    for case in SUITE_CASES:
        build_case(case)

    # -- cold vs warm -------------------------------------------------
    cold_dir = _fresh_dir(base, "cold-warm")
    svc = MappingService(cache_dir=cold_dir)
    start = time.perf_counter()
    cold_result = svc.get_or_compile(h_cold, spec)
    cold_s = time.perf_counter() - start
    assert cold_result.source == "compiled"

    warm_disk_s = float("inf")
    for _ in range(5):
        fresh = MappingService(cache_dir=cold_dir)
        start = time.perf_counter()
        disk_result = fresh.get_or_compile(h_cold, spec)
        warm_disk_s = min(warm_disk_s, time.perf_counter() - start)
        assert disk_result.source == "disk"
        assert disk_result.mapping.strings == cold_result.mapping.strings

    warm_mem_s = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        mem_result = svc.get_or_compile(h_cold, spec)
        warm_mem_s = min(warm_mem_s, time.perf_counter() - start)
        assert mem_result.source == "memory"

    # -- suite fan-out ------------------------------------------------
    suite = {}
    for jobs in (1, PARALLEL_JOBS):
        cache_dir = _fresh_dir(base, f"suite-{jobs}")
        start = time.perf_counter()
        report = compile_suite(
            SUITE_CASES, ["hatt"], jobs=jobs, cache_dir=cache_dir,
            evaluate=False,
        )
        wall = time.perf_counter() - start
        assert report.n_errors == 0, report.to_dict()
        assert report.n_cache_hits == 0
        suite[jobs] = {"wall_s": wall, "report": report, "cache_dir": cache_dir}

    # Warm pass over the parallel run's store: must be pure cache reads.
    start = time.perf_counter()
    warm_report = compile_suite(
        SUITE_CASES, ["hatt"], jobs=1,
        cache_dir=suite[PARALLEL_JOBS]["cache_dir"], evaluate=False,
    )
    warm_suite_s = time.perf_counter() - start

    # -- file-backed frontends ---------------------------------------
    # The same physics served through files on disk must land on the
    # warmed store's artifacts: dump one electronic case to FCIDUMP and
    # two generated cases to .npz archives, then compile the file specs
    # against the already-populated cache — every task must be a hit.
    file_dir = base / "file-backed"
    file_dir.mkdir(exist_ok=True)
    h_ints, eri, core, nelec = case_integrals("LiH_sto3g")
    write_fcidump(file_dir / "lih.fcid", h_ints, eri, core, nelec)
    save_npz(file_dir / "hubbard.npz", build_case("hubbard:3x3"))
    save_npz(file_dir / "neutrino.npz", build_case("neutrino:4x2F"))
    file_specs = [
        f"fcidump:{file_dir / 'lih.fcid'}",
        f"npz:{file_dir / 'hubbard.npz'}",
        f"npz:{file_dir / 'neutrino.npz'}",
    ]
    start = time.perf_counter()
    file_report = compile_suite(
        file_specs, ["hatt"], jobs=1,
        cache_dir=suite[PARALLEL_JOBS]["cache_dir"], evaluate=False,
    )
    file_backed_s = time.perf_counter() - start
    assert file_report.n_errors == 0, file_report.to_dict()

    speedups = {
        "warm_disk": cold_s / warm_disk_s,
        "warm_memory": cold_s / warm_mem_s,
        "parallel": suite[1]["wall_s"] / suite[PARALLEL_JOBS]["wall_s"],
        "warm_suite": suite[1]["wall_s"] / warm_suite_s,
    }
    rows = [
        [f"cold compile ({COLD_CASE})", f"{cold_s:.4f}", "-"],
        ["warm hit (disk, fresh service)", f"{warm_disk_s:.4f}",
         f"{speedups['warm_disk']:.1f}x"],
        ["warm hit (memory LRU)", f"{warm_mem_s:.4f}",
         f"{speedups['warm_memory']:.1f}x"],
        [f"suite x{len(SUITE_CASES)}, 1 worker", f"{suite[1]['wall_s']:.3f}", "-"],
        [f"suite x{len(SUITE_CASES)}, {PARALLEL_JOBS} workers",
         f"{suite[PARALLEL_JOBS]['wall_s']:.3f}", f"{speedups['parallel']:.2f}x"],
        ["suite warm (all cache hits)", f"{warm_suite_s:.3f}",
         f"{speedups['warm_suite']:.1f}x"],
        [f"file-backed specs x{len(file_specs)} (fcidump+npz, warm store)",
         f"{file_backed_s:.3f}",
         f"{file_report.n_cache_hits}/{file_report.n_tasks} hits"],
    ]
    footer = (
        f"floors: warm >= {WARM_FLOOR:.0f}x, parallel >= {PARALLEL_FLOOR:.0f}x "
        f"(enforced with >= {PARALLEL_JOBS} CPUs; this host: {os.cpu_count()})"
    )
    content = format_table(
        "compilation service throughput",
        ["path", "seconds", "speedup"],
        rows,
    ) + "\n" + footer
    write_result("service_throughput", content)
    payload = {
        "smoke": SMOKE,
        "full": full_run(),
        "cpu_count": os.cpu_count(),
        "cold_case": COLD_CASE,
        "suite_cases": SUITE_CASES,
        "parallel_jobs": PARALLEL_JOBS,
        "timings_s": {
            "cold": round(cold_s, 6),
            "warm_disk": round(warm_disk_s, 6),
            "warm_memory": round(warm_mem_s, 6),
            "suite_1_worker": round(suite[1]["wall_s"], 6),
            f"suite_{PARALLEL_JOBS}_workers":
                round(suite[PARALLEL_JOBS]["wall_s"], 6),
            "suite_warm": round(warm_suite_s, 6),
            "file_backed_warm": round(file_backed_s, 6),
        },
        "file_backed": {
            "specs": [s.split(":", 1)[0] + ":<tmp>" for s in file_specs],
            "n_tasks": file_report.n_tasks,
            "n_cache_hits": file_report.n_cache_hits,
        },
        "speedups": {k: round(v, 2) for k, v in speedups.items()},
        "floors": {"warm": WARM_FLOOR, "parallel": PARALLEL_FLOOR},
        "parallel_floor_enforced": (os.cpu_count() or 1) >= PARALLEL_JOBS,
    }
    write_result_json("service_throughput", payload)
    if not SMOKE:
        # Canonical runs refresh the committed repo-root artifact; smoke runs
        # keep only the results_dir copy.
        write_result_json("service_throughput", payload, path=JSON_PATH)
    return speedups, warm_report, suite, file_report


def test_warm_hit_speedup_floor(service_bench):
    """Acceptance: warm cache hits beat the cold compile by >= 20x."""
    speedups, _, _, _ = service_bench
    assert speedups["warm_disk"] >= WARM_FLOOR, speedups
    assert speedups["warm_memory"] >= WARM_FLOOR, speedups


def test_parallel_suite_speedup_floor(service_bench):
    """Acceptance: 4 workers >= 2x over 1 worker on the suite (needs cores)."""
    speedups, _, _, _ = service_bench
    if (os.cpu_count() or 1) < PARALLEL_JOBS:
        pytest.skip(
            f"parallel floor needs >= {PARALLEL_JOBS} CPUs "
            f"(host has {os.cpu_count()}); measured {speedups['parallel']:.2f}x"
        )
    assert speedups["parallel"] >= PARALLEL_FLOOR, speedups


def test_warm_suite_is_all_cache_hits(service_bench):
    """Second pass over a compiled suite is served entirely from the store."""
    _, warm_report, _, _ = service_bench
    assert warm_report.n_tasks == len(SUITE_CASES)
    assert all(t.cache_hit for t in warm_report.tasks), warm_report.to_dict()


def test_parallel_and_serial_fingerprints_agree(service_bench):
    _, _, suite, _ = service_bench
    key = lambda r: sorted(  # noqa: E731
        (t.case, t.fingerprint) for t in r["report"].tasks
    )
    assert key(suite[1]) == key(suite[PARALLEL_JOBS])


def test_file_backed_specs_hit_warm_store(service_bench):
    """FCIDUMP/.npz frontends of already-compiled physics are pure hits."""
    _, _, suite, file_report = service_bench
    assert file_report.n_tasks == 3
    assert all(t.cache_hit for t in file_report.tasks), file_report.to_dict()
    suite_fps = {t.fingerprint for t in suite[PARALLEL_JOBS]["report"].tasks}
    assert {t.fingerprint for t in file_report.tasks} <= suite_fps


def test_json_written(service_bench):
    if not SMOKE:
        assert JSON_PATH.exists()
