"""Paper Table V: Rustiq-style synthesis (simultaneous diagonalization).

JW vs HATT through the commuting-group diagonalization synthesizer.  The
paper's point: HATT's advantage persists under smarter synthesis back-ends
developed for JW.
"""

import pytest

from conftest import full_run
from repro.analysis import evaluate_mapping, format_table, write_result
from repro.hatt import hatt_mapping
from repro.mappings import jordan_wigner
from repro.models.electronic import electronic_case

CASES = ["H2_sto3g", "H2_631g", "LiH_sto3g_frz"]
if full_run():
    CASES += ["NH_sto3g_frz", "LiH_sto3g", "H2O_sto3g_frz"]


@pytest.fixture(scope="module")
def table5():
    rows = []
    for name in CASES:
        case = electronic_case(name)
        jw = evaluate_mapping(
            case.hamiltonian, jordan_wigner(case.n_modes), synthesis="grouped"
        )
        hatt = evaluate_mapping(
            case.hamiltonian,
            hatt_mapping(case.hamiltonian, n_modes=case.n_modes),
            synthesis="grouped",
        )
        rows.append(
            [
                name,
                jw.cx_count,
                hatt.cx_count,
                jw.u3_count,
                hatt.u3_count,
                jw.depth,
                hatt.depth,
            ]
        )
    content = format_table(
        "Table V - simultaneous-diagonalization synthesis (Rustiq stand-in)",
        ["case", "JW cx", "HATT cx", "JW u3", "HATT u3", "JW depth",
         "HATT depth"],
        rows,
    )
    write_result("table5_rustiq", content)
    return rows


def test_table5_hatt_wins_on_average(table5):
    jw_total = sum(r[1] for r in table5)
    hatt_total = sum(r[2] for r in table5)
    assert hatt_total <= jw_total * 1.05


def test_bench_grouped_synthesis(benchmark, table5):
    case = electronic_case("H2_sto3g")
    mapping = jordan_wigner(case.n_modes)

    def run():
        return evaluate_mapping(case.hamiltonian, mapping, synthesis="grouped")

    benchmark.pedantic(run, rounds=3, iterations=1)
