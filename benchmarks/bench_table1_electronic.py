"""Paper Table I: electronic-structure models.

Reproduces Pauli weight / CNOT count / circuit depth for JW, BK, BTT,
Fermihedral (smallest case only — exactly where the paper's FH also stops
scaling) and HATT.  Prints a paper-vs-measured table and writes it to
benchmarks/results/table1.txt; the pytest-benchmark timings cover the HATT
compilation itself.
"""

import pytest

from conftest import full_run
from repro.analysis import (
    TABLE1_PAULI_WEIGHT,
    compare_mappings,
    format_table,
    write_result,
)
from repro.fermihedral import fermihedral_mapping
from repro.hatt import hatt_mapping
from repro.models.electronic import electronic_case

CASES = ["H2_sto3g", "LiH_sto3g_frz", "LiH_sto3g", "H2O_sto3g"]
if full_run():
    CASES += ["CH4_sto3g", "O2_sto3g", "NaF_sto3g", "CO2_sto3g"]

# Circuit compilation is the slow half; skip it for the very large cases.
COMPILE_LIMIT_MODES = 20


@pytest.fixture(scope="module")
def table1():
    rows = []
    for name in CASES:
        case = electronic_case(name)
        compile_circuit = case.n_modes <= COMPILE_LIMIT_MODES
        reports = compare_mappings(
            case.hamiltonian, case.n_modes, compile_circuit=compile_circuit
        )
        fh_label = "--"
        if case.n_modes <= 4:
            fh = fermihedral_mapping(
                case.hamiltonian, n_modes=case.n_modes, time_limit=60
            )
            fh_label = fh.label
        paper = TABLE1_PAULI_WEIGHT.get(name)
        rows.append(
            [
                name,
                case.n_modes,
                reports["JW"].pauli_weight,
                reports["BK"].pauli_weight,
                reports["BTT"].pauli_weight,
                fh_label,
                reports["HATT"].pauli_weight,
                "/".join("--" if v is None else str(v) for v in paper) if paper else "-",
                reports["HATT"].cx_count or "-",
                reports["JW"].cx_count or "-",
                reports["HATT"].depth or "-",
                reports["JW"].depth or "-",
            ]
        )
    content = format_table(
        "Table I - electronic structure (Pauli weight; paper column = "
        "JW/BK/BTT/FH/HATT)",
        ["case", "modes", "JW", "BK", "BTT", "FH", "HATT", "paper",
         "HATT cx", "JW cx", "HATT depth", "JW depth"],
        rows,
    )
    write_result("table1_electronic", content)
    return rows


def test_table1_shape(table1):
    """HATT beats or ties every constructive baseline on each molecule."""
    for row in table1:
        name, _, jw, bk, btt, _, hatt = row[:7]
        assert hatt <= min(jw, bk, btt) * 1.02, name


@pytest.mark.parametrize("name", CASES[:3])
@pytest.mark.parametrize("backend", ["vector", "scalar"])
def test_bench_hatt_construction(benchmark, name, backend, table1):
    case = electronic_case(name)
    benchmark.pedantic(
        lambda: hatt_mapping(
            case.hamiltonian, n_modes=case.n_modes, backend=backend
        ),
        rounds=3,
        iterations=1,
    )


def test_table1_backends_agree_end_to_end(table1):
    """Construction backends yield the same mapping on a real molecule."""
    case = electronic_case(CASES[0])
    vec = hatt_mapping(case.hamiltonian, n_modes=case.n_modes, backend="vector")
    sca = hatt_mapping(case.hamiltonian, n_modes=case.n_modes, backend="scalar")
    assert vec.strings == sca.strings
    assert vec.construction.trace == sca.construction.trace


def test_bench_full_pipeline_h2(benchmark, table1):
    case = electronic_case("H2_sto3g")

    def pipeline():
        m = hatt_mapping(case.hamiltonian, n_modes=case.n_modes)
        return m.map(case.hamiltonian).pauli_weight()

    assert benchmark(pipeline) == 32  # paper Table I
