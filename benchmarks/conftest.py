"""Shared benchmark configuration.

Set ``REPRO_FULL=1`` to run the paper's complete case lists (the largest
chemistry/neutrino instances take minutes to hours); the default subset
finishes on a laptop in a few minutes while covering every table and figure.
"""

import os
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

FULL = os.environ.get("REPRO_FULL", "0") not in ("0", "", "false")


def full_run() -> bool:
    return FULL
