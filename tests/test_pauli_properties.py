"""Property-based tests (hypothesis) for the Pauli algebra substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paulis import PauliString, commutes, mul_xzk

N_QUBITS = 5
MASKS = st.integers(min_value=0, max_value=(1 << N_QUBITS) - 1)
PHASES = st.integers(min_value=0, max_value=3)


@st.composite
def pauli_strings(draw, n=N_QUBITS):
    return PauliString(n, draw(MASKS), draw(MASKS), draw(PHASES))


@given(pauli_strings(), pauli_strings(), pauli_strings())
@settings(max_examples=150)
def test_multiplication_associative(a, b, c):
    assert (a * b) * c == a * (b * c)


@given(pauli_strings())
def test_self_inverse_up_to_phase(p):
    sq = p * p
    assert sq.x == 0 and sq.z == 0
    # P^2 = i^{2k} I: phase doubles.
    assert sq.phase == (2 * p.phase) % 4


@given(pauli_strings(), pauli_strings())
@settings(max_examples=150)
def test_product_weight_no_larger_than_union(a, b):
    prod = a * b
    union = (a.x | a.z | b.x | b.z).bit_count()
    assert prod.weight <= union


@given(pauli_strings(), pauli_strings())
@settings(max_examples=100)
def test_commute_or_anticommute(a, b):
    """Two Pauli strings either commute or anticommute; verify against matrices."""
    am, bm = a.to_matrix(), b.to_matrix()
    comm_zero = np.allclose(am @ bm - bm @ am, 0)
    anti_zero = np.allclose(am @ bm + bm @ am, 0)
    assert comm_zero != anti_zero or (comm_zero and a.is_identity or b.is_identity) or (
        comm_zero and anti_zero
    )
    assert a.commutes_with(b) == comm_zero


@given(pauli_strings(), pauli_strings())
@settings(max_examples=100)
def test_mul_xzk_matches_object_multiply(a, b):
    x, z, k = mul_xzk(a.x, a.z, a.phase, b.x, b.z, b.phase)
    prod = a * b
    assert (x, z, k) == (prod.x, prod.z, prod.phase)


@given(MASKS, MASKS, MASKS, MASKS)
@settings(max_examples=100)
def test_commutes_symmetric(x1, z1, x2, z2):
    assert commutes(x1, z1, x2, z2) == commutes(x2, z2, x1, z1)


@given(pauli_strings())
def test_label_roundtrip(p):
    assert PauliString.from_label(p.label(), phase=p.phase) == p


@given(pauli_strings())
def test_compact_roundtrip(p):
    assert PauliString.from_compact(p.compact(), n=p.n, phase=p.phase) == p


@given(pauli_strings(), pauli_strings())
@settings(max_examples=60)
def test_adjoint_of_product(a, b):
    assert (a * b).adjoint() == b.adjoint() * a.adjoint()
