"""Tests for the HATT construction (paper Algorithms 1-3)."""

import pytest

from repro.fermion import FermionOperator, MajoranaOperator
from repro.hatt import HattConstruction, hatt_mapping
from repro.mappings import balanced_ternary_tree, jordan_wigner


def paper_eq3_hamiltonian() -> FermionOperator:
    """HF = a†0 a0 + 2 a†1 a†2 a1 a2 (paper Eq. 3)."""
    return FermionOperator.number(0) + 2.0 * FermionOperator.from_term(
        [(1, True), (2, True), (1, False), (2, False)]
    )


def paper_motivation_hamiltonian() -> MajoranaOperator:
    """HF = c1·M0 M5 + c2·M1 M3 (paper §III-B motivating example)."""
    return MajoranaOperator.from_term([0, 5], 1.0) + MajoranaOperator.from_term(
        [1, 3], 2.0
    )


class TestPaperExamples:
    @pytest.mark.parametrize("backend", ["vector", "scalar"])
    def test_eq3_first_step_matches_paper(self, backend):
        """The paper's first step picks O0, O1, O6 with qubit-0 weight 1."""
        hm = MajoranaOperator.from_fermion_operator(paper_eq3_hamiltonian())
        c = HattConstruction(hm, 3, vacuum=True, backend=backend)
        c.run()
        qubit, children, w = c.trace[0]
        assert qubit == 0
        assert sorted(children) == [0, 1, 6]
        assert w == 1

    @pytest.mark.parametrize("backend", ["vector", "scalar"])
    def test_eq3_second_step_weight(self, backend):
        hm = MajoranaOperator.from_fermion_operator(paper_eq3_hamiltonian())
        c = HattConstruction(hm, 3, vacuum=True, backend=backend)
        c.run()
        assert c.trace[1][2] == 2  # paper: total Pauli weight 2 on qubit 1

    def test_eq3_total_weight_equals_step_sum(self):
        mapping = hatt_mapping(paper_eq3_hamiltonian())
        hq = mapping.map(paper_eq3_hamiltonian())
        assert hq.pauli_weight() == sum(mapping.construction.step_weights)

    def test_motivation_example_beats_balanced_tree(self):
        """§III-B: adaptive tree reaches weight 3 where the balanced tree has 6."""
        hm = paper_motivation_hamiltonian()
        hatt = hatt_mapping(hm, n_modes=3, vacuum=False)
        hatt_w = hatt.map(hm).pauli_weight()
        btt_w = balanced_ternary_tree(3).map(hm).pauli_weight()
        assert hatt_w <= 3
        assert btt_w >= 6
        # The vacuum-preserving variant must still do no worse than balanced.
        hatt_vac = hatt_mapping(hm, n_modes=3, vacuum=True)
        assert hatt_vac.map(hm).pauli_weight() <= btt_w


class TestValidity:
    @pytest.mark.parametrize("vacuum", [True, False])
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_valid_mapping_quadratic_hamiltonian(self, vacuum, n):
        hf = FermionOperator()
        for j in range(n):
            hf = hf + FermionOperator.number(j, 1.0 + j)
        for j in range(n - 1):
            hf = hf + FermionOperator.hopping(j, j + 1, 0.5)
        mapping = hatt_mapping(hf, n_modes=n, vacuum=vacuum)
        assert mapping.n_modes == n
        assert mapping.is_valid()
        if vacuum:
            assert mapping.preserves_vacuum()

    def test_vacuum_default_preserves_vacuum(self):
        mapping = hatt_mapping(paper_eq3_hamiltonian())
        assert mapping.preserves_vacuum()

    def test_empty_hamiltonian_still_builds(self):
        mapping = hatt_mapping(MajoranaOperator.zero(), n_modes=4)
        assert mapping.is_valid()
        assert mapping.preserves_vacuum()

    def test_single_majorana_sum(self):
        """The Fig. 12 workload HF = Σ M_i."""
        n = 6
        hm = MajoranaOperator.zero()
        for i in range(2 * n):
            hm = hm + MajoranaOperator.single(i)
        mapping = hatt_mapping(hm, n_modes=n)
        assert mapping.is_valid()
        assert mapping.preserves_vacuum()

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError):
            hatt_mapping(MajoranaOperator.single(9), n_modes=2)

    def test_zero_modes_rejected(self):
        with pytest.raises(ValueError):
            HattConstruction(MajoranaOperator.zero(), 0)

    def test_run_twice_rejected(self):
        c = HattConstruction(MajoranaOperator.zero(), 2)
        c.run()
        with pytest.raises(RuntimeError):
            c.run()


class TestCacheEquivalence:
    """Algorithm 3's O(1) maps must reproduce Algorithm 2's traversals exactly."""

    @pytest.mark.parametrize("backend", ["vector", "scalar"])
    @pytest.mark.parametrize("n", [2, 3, 5, 7])
    def test_identical_trees(self, n, backend):
        hf = FermionOperator()
        for j in range(n):
            hf = hf + FermionOperator.number(j)
        for j in range(n - 1):
            hf = hf + FermionOperator.hopping(j, j + 1, 0.3 * (j + 1))
        cached = hatt_mapping(hf, n_modes=n, cached=True, backend=backend)
        uncached = hatt_mapping(hf, n_modes=n, cached=False, backend=backend)
        assert cached.strings == uncached.strings
        assert cached.construction.trace == uncached.construction.trace


class TestQuality:
    def test_beats_or_ties_baselines_on_hubbard_like(self):
        """HATT should not lose to JW/BTT on a small coupled Hamiltonian."""
        hf = FermionOperator()
        for j in range(4):
            hf = hf + FermionOperator.number(j, 2.0)
        hf = hf + FermionOperator.hopping(0, 1) + FermionOperator.hopping(2, 3)
        hf = hf + FermionOperator.number(0) * FermionOperator.number(2) * 4.0
        hf = hf + FermionOperator.number(1) * FermionOperator.number(3) * 4.0
        hatt_w = hatt_mapping(hf).map(hf).pauli_weight()
        jw_w = jordan_wigner(4).map(hf).pauli_weight()
        btt_w = balanced_ternary_tree(4).map(hf).pauli_weight()
        assert hatt_w <= min(jw_w, btt_w)

    def test_unopt_close_to_opt(self):
        """Table VI shape: vacuum pairing costs ≲ a few % in Pauli weight."""
        hf = paper_eq3_hamiltonian()
        w_opt = hatt_mapping(hf, vacuum=True).map(hf).pauli_weight()
        w_unopt = hatt_mapping(hf, vacuum=False).map(hf).pauli_weight()
        assert abs(w_opt - w_unopt) <= max(2, int(0.2 * w_unopt))

    def test_mapped_weight_never_exceeds_step_sum(self):
        hf = FermionOperator()
        for j in range(5):
            hf = hf + FermionOperator.number(j)
            hf = hf + FermionOperator.hopping(j, (j + 2) % 5, 0.7)
        mapping = hatt_mapping(hf)
        assert mapping.map(hf).pauli_weight() <= sum(mapping.construction.step_weights)


class TestDeterminism:
    def test_same_input_same_output(self):
        hf = paper_eq3_hamiltonian()
        a = hatt_mapping(hf)
        b = hatt_mapping(hf)
        assert a.strings == b.strings

    def test_trace_lengths(self):
        mapping = hatt_mapping(paper_eq3_hamiltonian())
        assert len(mapping.construction.trace) == 3
        assert len(mapping.construction.step_weights) == 3
