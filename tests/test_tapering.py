"""Tests for Z2-symmetry finding and qubit tapering."""

import numpy as np
import pytest

from repro.mappings import jordan_wigner
from repro.mappings.tapering import (
    find_z2_symmetries,
    sector_of_state,
    taper,
)
from repro.paulis import PauliString, QubitOperator


def op_from(labels):
    return QubitOperator.from_label_dict(labels)


class TestSymmetryFinding:
    def test_single_z_hamiltonian(self):
        h = op_from({"IZ": 1.0})
        syms = find_z2_symmetries(h)
        # Everything commuting with Z0: large group; all returned commute
        # with the Hamiltonian and each other.
        for tau in syms:
            for s, _ in h.terms():
                assert tau.commutes_with(s)
        for i, a in enumerate(syms):
            for b in syms[i + 1 :]:
                assert a.commutes_with(b)

    def test_parity_symmetry_of_ising(self):
        h = op_from({"ZZI": 1.0, "IZZ": 1.0, "XII": 0.0})
        h.simplify()
        syms = find_z2_symmetries(h)
        labels = {s.label() for s in syms}
        # Global spin-flip XXX commutes with all ZZ terms.
        assert any(set(lbl) <= {"X", "I"} and "X" in lbl for lbl in labels) or any(
            set(lbl) <= {"Z", "I"} for lbl in labels
        )

    def test_no_nontrivial_symmetry(self):
        # Single-qubit H spanning X and Z has only the identity commutant
        # within the Pauli group (up to its own terms).
        h = op_from({"X": 1.0, "Z": 1.0, "Y": 1.0})
        assert find_z2_symmetries(h) == []

    def test_h2_has_symmetries(self):
        from repro.models.electronic import electronic_case

        case = electronic_case("H2_sto3g")
        hq = jordan_wigner(4).map(case.hamiltonian)
        syms = find_z2_symmetries(hq)
        assert len(syms) >= 2
        for tau in syms:
            for s, _ in hq.terms():
                assert tau.commutes_with(s)


class TestSectorOfState:
    def test_z_type(self):
        tau = PauliString.from_label("ZIZ")
        assert sector_of_state([tau], 0b000) == (1,)
        assert sector_of_state([tau], 0b001) == (-1,)
        assert sector_of_state([tau], 0b101) == (1,)

    def test_non_diagonal_rejected(self):
        with pytest.raises(ValueError):
            sector_of_state([PauliString.from_label("XI")], 0)


class TestTapering:
    def test_trivial_no_symmetries(self):
        h = op_from({"X": 1.0, "Z": 1.0, "Y": 1.0})
        result = taper(h)
        assert result.operator.n == 1
        assert result.pivots == []

    def test_single_symmetry_reduces_one_qubit(self):
        h = op_from({"ZZ": 1.0, "XX": 0.5})
        syms = [PauliString.from_label("ZZ")]
        result = taper(h, symmetries=syms, sector=(1,))
        assert result.operator.n == 1

    def test_spectrum_is_sector_restriction(self):
        """Union of tapered spectra over all sectors == original spectrum."""
        h = op_from({"ZZ": 0.7, "XX": 0.4, "II": 0.1})
        syms = find_z2_symmetries(h)
        assert syms
        full = np.linalg.eigvalsh(h.to_matrix())
        collected = []
        import itertools

        for sector in itertools.product((1, -1), repeat=len(syms)):
            sub = taper(h, symmetries=syms, sector=sector)
            collected.extend(np.linalg.eigvalsh(sub.operator.to_matrix()))
        np.testing.assert_allclose(sorted(collected)[: len(full)][0], full[0],
                                   atol=1e-9)
        # Every original eigenvalue appears in some sector.
        for ev in full:
            assert min(abs(ev - c) for c in collected) < 1e-8

    def test_h2_tapering_preserves_ground_energy(self):
        """The famous result: 4-qubit H2 tapers with its Z2 symmetries and
        some sector reproduces the FCI ground energy."""
        import itertools

        from repro.models.electronic import electronic_case

        case = electronic_case("H2_sto3g")
        hq = jordan_wigner(4).map(case.hamiltonian)
        e0 = hq.ground_energy()
        syms = find_z2_symmetries(hq)
        assert len(syms) >= 2
        best = np.inf
        for sector in itertools.product((1, -1), repeat=len(syms)):
            sub = taper(hq, symmetries=syms, sector=sector)
            assert sub.operator.n == 4 - len(syms)
            best = min(best, sub.operator.ground_energy())
        assert best == pytest.approx(e0, abs=1e-8)

    def test_correct_sector_from_hf_state(self):
        """Selecting the sector of the HF determinant keeps the HF energy
        representable in the tapered space."""
        from repro.models.electronic import electronic_case

        case = electronic_case("H2_sto3g")
        hq = jordan_wigner(4).map(case.hamiltonian)
        syms = [s for s in find_z2_symmetries(hq) if s.x == 0]
        bits = 0b0101  # HF occupation modes 0, 2
        sector = sector_of_state(syms, bits)
        sub = taper(hq, symmetries=syms, sector=sector)
        evs = np.linalg.eigvalsh(sub.operator.to_matrix())
        assert evs[0] == pytest.approx(hq.ground_energy(), abs=1e-8)

    def test_sector_length_validation(self):
        h = op_from({"ZZ": 1.0})
        with pytest.raises(ValueError):
            taper(h, symmetries=[PauliString.from_label("ZZ")], sector=(1, 1))
