"""Tests for the exact density-matrix simulator and the MC-noise cross-check."""

import numpy as np
import pytest

from repro.circuits import Circuit, Gate, trotter_circuit
from repro.paulis import QubitOperator
from repro.sim import NoiseModel, Statevector, noisy_expectations
from repro.sim.density import DensityMatrix


def op_from(labels):
    return QubitOperator.from_label_dict(labels)


class TestBasics:
    def test_initial_state(self):
        dm = DensityMatrix(2)
        assert dm.trace() == pytest.approx(1.0)
        assert dm.purity() == pytest.approx(1.0)
        assert dm.rho[0, 0] == pytest.approx(1.0)

    def test_from_statevector(self):
        sv = Statevector(2)
        sv.apply(Gate("h", (0,)))
        dm = DensityMatrix.from_statevector(sv.amplitudes)
        assert dm.purity() == pytest.approx(1.0)
        assert dm.expectation(op_from({"IX": 1.0})) == pytest.approx(1.0)

    def test_unitary_gate_matches_statevector(self):
        circuit = Circuit(2)
        circuit.add("h", 0).add("cx", 0, 1).add("t", 1).add("rz", 0, params=(0.4,))
        sv = Statevector(2).apply_circuit(circuit)
        dm = DensityMatrix(2)
        for gate in circuit.gates:
            dm.apply_gate(gate)
        np.testing.assert_allclose(
            dm.rho, np.outer(sv.amplitudes, sv.amplitudes.conj()), atol=1e-12
        )


class TestChannels:
    def test_full_depolarizing_single_qubit(self):
        """p=1 uniform Pauli channel sends Bloch vector to -r/3."""
        dm = DensityMatrix(1)
        dm.apply_gate(Gate("h", (0,)))  # +X eigenstate
        dm.apply_depolarizing((0,), 1.0)
        x = dm.expectation(op_from({"X": 1.0}))
        assert x == pytest.approx(-1.0 / 3.0)

    def test_trace_preserved(self):
        dm = DensityMatrix(2)
        dm.apply_gate(Gate("h", (0,)))
        dm.apply_depolarizing((0, 1), 0.37)
        assert dm.trace() == pytest.approx(1.0)

    def test_purity_decreases(self):
        dm = DensityMatrix(2)
        dm.apply_gate(Gate("h", (0,)))
        before = dm.purity()
        dm.apply_depolarizing((0,), 0.2)
        assert dm.purity() < before

    def test_zero_probability_noop(self):
        dm = DensityMatrix(1)
        rho = dm.rho.copy()
        dm.apply_depolarizing((0,), 0.0)
        np.testing.assert_allclose(dm.rho, rho)


class TestMonteCarloAgreement:
    def test_trajectories_unbiased(self):
        """The MC sampler's mean energy converges to the exact channel value."""
        h = op_from({"ZI": 1.0, "IZ": 1.0, "XX": 0.4})
        circuit = trotter_circuit(h, time=0.6)
        noise = NoiseModel(p1=0.02, p2=0.08)
        dm = DensityMatrix(2)
        dm.apply_noisy_circuit(circuit, noise)
        exact = dm.expectation(h)
        mc = noisy_expectations(circuit, h, noise, shots=4000, seed=3)
        assert mc.mean == pytest.approx(exact, abs=0.05)

    def test_noiseless_agreement_exact(self):
        h = op_from({"ZZ": 0.5, "XI": 0.3})
        circuit = trotter_circuit(h, time=0.5)
        dm = DensityMatrix(2)
        dm.apply_noisy_circuit(circuit, NoiseModel())
        mc = noisy_expectations(circuit, h, NoiseModel(), shots=3)
        assert dm.expectation(h) == pytest.approx(mc.mean, abs=1e-9)


class TestSuzukiOrder2:
    def test_second_order_more_accurate(self):
        from repro.analysis.trotter_error import empirical_trotter_error
        from scipy.linalg import expm

        h = op_from({"XI": 0.8, "ZZ": 0.6, "IY": -0.5})
        exact = expm(-1j * h.to_matrix())

        def error(suzuki_order):
            u = trotter_circuit(h, time=1.0, steps=2,
                                suzuki_order=suzuki_order).to_matrix()
            phase = np.trace(exact.conj().T @ u)
            u = u * (phase.conjugate() / abs(phase))
            return np.linalg.norm(u - exact, ord=2)

        assert error(2) < error(1)

    def test_second_order_scaling(self):
        """Error ~ 1/steps² for the Strang splitting."""
        from scipy.linalg import expm

        h = op_from({"XX": 0.9, "ZI": 0.7})
        exact = expm(-1j * h.to_matrix())

        def err(steps):
            u = trotter_circuit(h, time=1.0, steps=steps, suzuki_order=2).to_matrix()
            phase = np.trace(exact.conj().T @ u)
            u = u * (phase.conjugate() / abs(phase))
            return np.linalg.norm(u - exact, ord=2)

        assert err(4) < err(1) / 8  # quadratic would give /16; allow slack

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            trotter_circuit(op_from({"Z": 1.0}), suzuki_order=3)
