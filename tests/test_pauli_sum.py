"""Unit tests for QubitOperator (weighted Pauli sums)."""

import numpy as np
import pytest

from repro.paulis import PauliString, QubitOperator


def op_from(labels):
    return QubitOperator.from_label_dict(labels)


class TestBuilding:
    def test_combines_duplicates(self):
        h = QubitOperator(2)
        h.add_string(PauliString.from_label("XZ"), 1.0)
        h.add_string(PauliString.from_label("XZ"), 2.0)
        assert len(h) == 1
        assert h.coefficient(PauliString.from_label("XZ")) == pytest.approx(3.0)

    def test_phase_folding(self):
        h = QubitOperator(1)
        h.add_string(PauliString.from_label("X", phase=1), 1.0)  # i·X
        assert h.coefficient(PauliString.from_label("X")) == pytest.approx(1j)

    def test_exact_cancellation_removes_term(self):
        h = QubitOperator(1)
        h.add_string(PauliString.from_label("Z"), 1.0)
        h.add_string(PauliString.from_label("Z"), -1.0)
        assert len(h) == 0

    def test_simplify_tolerance(self):
        h = op_from({"XZ": 1e-14, "ZZ": 1.0})
        h.simplify()
        assert len(h) == 1

    def test_from_terms_infers_n(self):
        h = QubitOperator.from_terms([(PauliString.from_label("XYZ"), 1.0)])
        assert h.n == 3

    def test_from_terms_empty_requires_n(self):
        with pytest.raises(ValueError):
            QubitOperator.from_terms([])
        assert len(QubitOperator.from_terms([], n=3)) == 0


class TestMetrics:
    def test_pauli_weight(self):
        h = op_from({"XYIZ": 0.5, "IIII": 3.0, "ZIII": 1.0})
        assert h.pauli_weight() == 4  # 3 + 0 + 1

    def test_pauli_weight_skips_negligible(self):
        h = op_from({"XYIZ": 1e-13, "ZIII": 1.0})
        assert h.pauli_weight() == 1

    def test_max_weight(self):
        h = op_from({"XYIZ": 0.5, "ZIII": 1.0})
        assert h.max_weight() == 3

    def test_hermiticity(self):
        assert op_from({"XX": 1.0, "ZI": -2.0}).is_hermitian()
        assert not op_from({"XX": 1j}).is_hermitian()


class TestArithmetic:
    def test_add_sub(self):
        a = op_from({"XX": 1.0})
        b = op_from({"XX": 2.0, "ZZ": 1.0})
        s = a + b
        assert s.coefficient(PauliString.from_label("XX")) == pytest.approx(3.0)
        d = b - a
        assert d.coefficient(PauliString.from_label("XX")) == pytest.approx(1.0)

    def test_scalar_mul(self):
        a = op_from({"XX": 1.0}) * 2.5
        assert a.coefficient(PauliString.from_label("XX")) == pytest.approx(2.5)
        b = 2.5 * op_from({"XX": 1.0})
        assert b == a

    def test_operator_product_dense(self):
        a = op_from({"XI": 1.0, "ZZ": 0.5})
        b = op_from({"YI": 2.0, "IZ": -1.0})
        np.testing.assert_allclose(
            (a * b).to_matrix(), a.to_matrix() @ b.to_matrix(), atol=1e-12
        )

    def test_mismatched_n(self):
        with pytest.raises(ValueError):
            op_from({"XX": 1.0}) + op_from({"X": 1.0})


class TestDense:
    def test_ground_energy_single_z(self):
        h = op_from({"Z": 1.0})
        assert h.ground_energy() == pytest.approx(-1.0)

    def test_expectation_basis_state(self):
        h = op_from({"ZI": 1.0, "IZ": 2.0, "XX": 5.0, "II": 0.25})
        # |10>: Z on qubit 1 -> -1, Z on qubit 0 -> +1, XX off-diagonal.
        assert h.expectation_basis_state(0b10) == pytest.approx(-1.0 + 2.0 + 0.25)

    def test_expectation_matches_dense(self):
        h = op_from({"ZZ": 0.3, "ZI": -1.2, "II": 0.7, "YY": 0.9})
        for bits in range(4):
            vec = np.zeros(4)
            vec[bits] = 1.0
            dense = vec @ h.to_matrix() @ vec
            assert h.expectation_basis_state(bits) == pytest.approx(dense)
