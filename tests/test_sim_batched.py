"""Property and cross-backend tests for the dense simulation engines.

Covers the scalar :class:`Statevector` and the vectorized
:class:`BatchedStatevector` against an *independent* dense-unitary model
built directly from ``gate.matrix()`` entries (kron products for 1q gates,
explicit bit-indexed embedding for arbitrary 2q placements), the masked
Pauli-error kernel against per-trajectory ``apply_pauli``, the packed-table
expectation kernel against the per-string reference, and the batched noisy
trajectory engine against the scalar loop — including bit-identity of the
``backend="scalar"`` path with golden values recorded from the original
implementation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, Gate, trotter_circuit
from repro.paulis import PauliString, QubitOperator
from repro.sim import (
    BatchedStatevector,
    NoiseModel,
    Statevector,
    noisy_expectations,
    sample_bitstrings_batched,
)

# ----------------------------------------------------------------------
# Independent dense-unitary model (kron products from gate.matrix())
# ----------------------------------------------------------------------


def embed_1q(mat: np.ndarray, q: int, n: int) -> np.ndarray:
    """``I ⊗ … ⊗ mat ⊗ … ⊗ I`` with ``mat`` at qubit ``q`` (qubit 0 = LSB)."""
    return np.kron(np.eye(1 << (n - q - 1)), np.kron(mat, np.eye(1 << q)))


def embed_2q(mat: np.ndarray, q0: int, q1: int, n: int) -> np.ndarray:
    """Embed a two-qubit matrix indexed ``(q0, q1)``, q0 most significant of
    the pair, at an arbitrary (possibly non-adjacent, possibly reversed)
    qubit placement — built entry-by-entry from basis-state bit arithmetic,
    sharing no code with the simulators."""
    m4 = mat.reshape(2, 2, 2, 2)  # [q0', q1', q0, q1]
    dim = 1 << n
    out = np.zeros((dim, dim), dtype=complex)
    clear = ~((1 << q0) | (1 << q1))
    for col in range(dim):
        b0, b1 = (col >> q0) & 1, (col >> q1) & 1
        base = col & clear
        for o0 in (0, 1):
            for o1 in (0, 1):
                amp = m4[o0, o1, b0, b1]
                if amp != 0:
                    out[base | (o0 << q0) | (o1 << q1), col] += amp
    return out


def embed_gate(gate: Gate, n: int) -> np.ndarray:
    if len(gate.qubits) == 1:
        return embed_1q(gate.matrix(), gate.qubits[0], n)
    return embed_2q(gate.matrix(), gate.qubits[0], gate.qubits[1], n)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

_ANGLES = st.floats(min_value=-3.2, max_value=3.2, allow_nan=False)
_PARAM_COUNT = {"rx": 1, "ry": 1, "rz": 1, "u3": 3}


@st.composite
def random_circuits(draw, max_qubits=6, max_gates=10):
    """Random circuits mixing 1q gates with adjacent and non-adjacent 2q
    placements (both qubit orders)."""
    n = draw(st.integers(min_value=1, max_value=max_qubits))
    gates = []
    for _ in range(draw(st.integers(min_value=1, max_value=max_gates))):
        if n >= 2 and draw(st.booleans()):
            name = draw(st.sampled_from(["cx", "cz", "swap"]))
            qubits = tuple(
                draw(
                    st.lists(
                        st.integers(0, n - 1), min_size=2, max_size=2, unique=True
                    )
                )
            )
            gates.append(Gate(name, qubits))
        else:
            name = draw(
                st.sampled_from(
                    ["x", "y", "z", "h", "s", "sdg", "t", "rx", "ry", "rz", "u3"]
                )
            )
            params = tuple(
                draw(_ANGLES) for _ in range(_PARAM_COUNT.get(name, 0))
            )
            gates.append(Gate(name, (draw(st.integers(0, n - 1)),), params))
    return Circuit(n, gates)


@st.composite
def random_states(draw, n):
    """A normalized random statevector with hypothesis-drawn entries."""
    dim = 1 << n
    res = draw(
        st.lists(
            st.floats(-1, 1, allow_nan=False), min_size=2 * dim, max_size=2 * dim
        )
    )
    amps = np.array(res[:dim]) + 1j * np.array(res[dim:])
    norm = np.linalg.norm(amps)
    if norm < 1e-6:
        amps = np.zeros(dim, dtype=complex)
        amps[0] = 1.0
        norm = 1.0
    return amps / norm


@st.composite
def random_operators(draw, n):
    """Random Hermitian-coefficient operators on ``n`` qubits."""
    n_terms = draw(st.integers(min_value=1, max_value=6))
    labels = {}
    for _ in range(n_terms):
        label = "".join(
            draw(st.sampled_from("IXYZ")) for _ in range(n)
        )
        labels[label] = draw(st.floats(-2, 2, allow_nan=False))
    return QubitOperator.from_label_dict(labels)


# ----------------------------------------------------------------------
# Gate-by-gate unitary equivalence
# ----------------------------------------------------------------------


class TestGateApplication:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_both_engines_match_dense_unitary(self, data):
        circuit = data.draw(random_circuits())
        n = circuit.n_qubits
        init = data.draw(random_states(n))
        expected = init.copy()
        scalar = Statevector(n, init.copy())
        batch = BatchedStatevector(n, np.stack([init, init.conj()]))
        for gate in circuit.gates:
            expected = embed_gate(gate, n) @ expected
            scalar.apply(gate)
            batch.apply(gate)
        np.testing.assert_allclose(scalar.amplitudes, expected, atol=1e-10)
        np.testing.assert_allclose(batch.amplitudes[0], expected, atol=1e-10)

    @pytest.mark.parametrize("name", ["cx", "cz", "swap"])
    @pytest.mark.parametrize(
        "q0,q1", [(0, 1), (1, 0), (0, 2), (2, 0), (1, 3), (3, 0), (3, 1)]
    )
    def test_two_qubit_placements(self, name, q0, q1):
        """Adjacent, non-adjacent and reversed 2q placements on 4 qubits."""
        n = 4
        rng = np.random.default_rng(hash((name, q0, q1)) % 2**32)
        init = rng.normal(size=(3, 1 << n)) + 1j * rng.normal(size=(3, 1 << n))
        init /= np.linalg.norm(init, axis=1, keepdims=True)
        gate = Gate(name, (q0, q1))
        u = embed_2q(gate.matrix(), q0, q1, n)
        batch = BatchedStatevector(n, init.copy())
        batch.apply(gate)
        for t in range(3):
            scalar = Statevector(n, init[t].copy())
            scalar.apply(gate)
            np.testing.assert_allclose(scalar.amplitudes, u @ init[t], atol=1e-12)
            np.testing.assert_allclose(batch.amplitudes[t], u @ init[t], atol=1e-12)

    def test_batch_rows_are_independent(self):
        batch = BatchedStatevector.zeros_state(2, 3)
        batch.apply_masked_paulis(
            np.array([1]), np.array([1], dtype=np.uint64), np.array([0], dtype=np.uint64)
        )
        assert batch.amplitudes[0, 0] == 1.0
        assert batch.amplitudes[1, 1] == 1.0
        assert batch.amplitudes[2, 0] == 1.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            BatchedStatevector(2, np.zeros(4, dtype=complex))
        with pytest.raises(ValueError):
            BatchedStatevector(2, np.zeros((3, 5), dtype=complex))

    def test_helpers(self):
        init = Statevector(2, np.array([0.6, 0.8j, 0.0, 0.0]))
        batch = BatchedStatevector.from_statevector(init, 3)
        assert batch.n_traj == 3
        assert "n_traj=3" in repr(batch)
        np.testing.assert_allclose(batch.norms(), 1.0)
        clone = batch.copy()
        clone.apply(Gate("x", (0,)))
        # Copies share no storage with the original.
        np.testing.assert_allclose(batch.row(0).amplitudes, init.amplitudes)
        assert not np.allclose(clone.amplitudes[0], batch.amplitudes[0])
        with pytest.raises(ValueError):
            BatchedStatevector.zeros_state(2, 1).expectations(
                QubitOperator.from_label_dict({"ZZ": 1.0}).to_table()[0]
            )


# ----------------------------------------------------------------------
# Masked Pauli errors vs per-trajectory gates
# ----------------------------------------------------------------------


class TestMaskedPaulis:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_matches_apply_pauli(self, data):
        n = data.draw(st.integers(1, 5))
        n_traj = data.draw(st.integers(1, 4))
        init = np.stack([data.draw(random_states(n)) for _ in range(n_traj)])
        rows = data.draw(
            st.lists(st.integers(0, n_traj - 1), max_size=n_traj, unique=True)
        )
        masks = [
            (data.draw(st.integers(0, (1 << n) - 1)), data.draw(st.integers(0, (1 << n) - 1)))
            for _ in rows
        ]
        batch = BatchedStatevector(n, init.copy())
        batch.apply_masked_paulis(
            np.array(rows, dtype=np.intp),
            np.array([x for x, _ in masks], dtype=np.uint64),
            np.array([z for _, z in masks], dtype=np.uint64),
        )
        expected = init.copy()
        for t, (x, z) in zip(rows, masks):
            sv = Statevector(n, init[t].copy())
            sv.apply_pauli(PauliString(n, x, z))
            expected[t] = sv.amplitudes
        np.testing.assert_allclose(batch.amplitudes, expected, atol=1e-12)


# ----------------------------------------------------------------------
# Bulk expectation kernel
# ----------------------------------------------------------------------


class TestBulkExpectations:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_table_kernel_matches_strings(self, data):
        n = data.draw(st.integers(1, 5))
        op = data.draw(random_operators(n))
        n_traj = data.draw(st.integers(1, 3))
        amps = np.stack([data.draw(random_states(n)) for _ in range(n_traj)])
        batch_vals = BatchedStatevector(n, amps.copy()).expectations(op)
        for t in range(n_traj):
            sv = Statevector(n, amps[t].copy())
            ref = sv.expectation(op, backend="strings")
            assert sv.expectation(op) == pytest.approx(ref, abs=1e-10)
            assert batch_vals[t] == pytest.approx(ref, abs=1e-10)

    def test_kernel_matches_dense_matrix(self):
        op = QubitOperator.from_label_dict(
            {"XYZ": 0.3, "ZZI": -0.7, "III": 0.2, "IYX": 1.1}
        )
        rng = np.random.default_rng(3)
        amps = rng.normal(size=8) + 1j * rng.normal(size=8)
        amps /= np.linalg.norm(amps)
        dense = np.vdot(amps, op.to_matrix() @ amps).real
        assert Statevector(3, amps).expectation(op) == pytest.approx(dense, abs=1e-10)

    def test_rejects_qubit_mismatch(self):
        op = QubitOperator.from_label_dict({"Z": 1.0})
        with pytest.raises(ValueError):
            Statevector(2).expectation(op)
        with pytest.raises(ValueError):
            BatchedStatevector.zeros_state(2, 1).expectations(op)

    def test_rejects_unknown_backend(self):
        op = QubitOperator.from_label_dict({"ZZ": 1.0})
        with pytest.raises(ValueError):
            Statevector(2).expectation(op, backend="sparse")


# ----------------------------------------------------------------------
# Batched sampling
# ----------------------------------------------------------------------


class TestBatchedSampling:
    def test_frequencies_match_probabilities(self):
        rng = np.random.default_rng(7)
        amps = rng.normal(size=(2, 8)) + 1j * rng.normal(size=(2, 8))
        amps /= np.linalg.norm(amps, axis=1, keepdims=True)
        batch = BatchedStatevector(3, amps)
        shots = 40_000
        outcomes = sample_bitstrings_batched(batch, shots, np.random.default_rng(0))
        probs = batch.probabilities()
        for t in range(2):
            freq = np.bincount(outcomes[t], minlength=8) / shots
            np.testing.assert_allclose(freq, probs[t], atol=0.02)

    def test_deterministic_basis_state(self):
        batch = BatchedStatevector.zeros_state(3, 4)
        outcomes = sample_bitstrings_batched(batch, 50, np.random.default_rng(1))
        assert outcomes.shape == (4, 50)
        assert np.all(outcomes == 0)

    def test_readout_error_flips(self):
        batch = BatchedStatevector.zeros_state(2, 3)
        outcomes = sample_bitstrings_batched(
            batch, 2000, np.random.default_rng(2), readout_error=0.25
        )
        # Each bit flips independently with p=0.25.
        frac_flipped = np.mean(outcomes != 0)
        assert 0.3 < frac_flipped < 0.55  # 1 - 0.75^2 = 0.4375


# ----------------------------------------------------------------------
# Cross-backend trajectory equivalence
# ----------------------------------------------------------------------


class TestCrossBackend:
    def setup_method(self):
        self.h = QubitOperator.from_label_dict({"ZI": 1.0, "IZ": 1.0, "XX": 0.3})
        self.circuit = trotter_circuit(self.h, time=0.4)

    def test_scalar_backend_bit_identical_to_original(self):
        """Golden values recorded from the pre-batching implementation
        (PR 1 HEAD).  Bit-identity (exact ==) was verified at recording time
        in the pinned environment; the asserts use a last-ulp-scale relative
        tolerance only so that a numpy/BLAS build with a different reduction
        order cannot break CI, while any implementation change still fails."""
        res = noisy_expectations(
            self.circuit,
            self.h,
            NoiseModel(p1=5e-3, p2=5e-2),
            shots=40,
            seed=123,
            backend="scalar",
        )
        assert res.noiseless == pytest.approx(1.9938311777711542, rel=1e-12)
        assert float(res.energies.sum()) == pytest.approx(67.99488095648762, rel=1e-12)
        assert float(res.energies[5]) == pytest.approx(0.05115522806709565, rel=1e-12)

    def test_backends_agree_statistically(self):
        nm = NoiseModel(p1=5e-3, p2=5e-2)
        shots = 3000
        batched = noisy_expectations(self.circuit, self.h, nm, shots=shots, seed=1)
        scalar = noisy_expectations(
            self.circuit, self.h, nm, shots=shots, seed=1, backend="scalar"
        )
        assert batched.noiseless == pytest.approx(scalar.noiseless, abs=1e-10)
        stderr = np.sqrt(
            batched.variance / shots + scalar.variance / shots
        )
        assert abs(batched.mean - scalar.mean) < 5 * stderr + 1e-12

    def test_chunking_is_invariant(self):
        nm = NoiseModel(p1=1e-2, p2=5e-2)
        base = noisy_expectations(self.circuit, self.h, nm, shots=97, seed=3)
        for chunk in (1, 7, 32, 97, 1000):
            again = noisy_expectations(
                self.circuit, self.h, nm, shots=97, seed=3, chunk=chunk
            )
            np.testing.assert_array_equal(base.energies, again.energies)

    def test_zero_noise_is_exact(self):
        res = noisy_expectations(self.circuit, self.h, NoiseModel(), shots=10)
        assert res.bias == pytest.approx(0.0, abs=1e-12)
        assert res.variance == pytest.approx(0.0, abs=1e-12)

    def test_deterministic_given_seed(self):
        nm = NoiseModel(p1=1e-3, p2=1e-2)
        a = noisy_expectations(self.circuit, self.h, nm, shots=50, seed=7)
        b = noisy_expectations(self.circuit, self.h, nm, shots=50, seed=7)
        np.testing.assert_array_equal(a.energies, b.energies)

    def test_rejects_bad_arguments(self):
        nm = NoiseModel(p1=1e-3)
        with pytest.raises(ValueError):
            noisy_expectations(self.circuit, self.h, nm, shots=5, backend="aer")
        with pytest.raises(ValueError):
            noisy_expectations(self.circuit, self.h, nm, shots=5, chunk=0)


class TestCrossBackendH2:
    def test_fig10_cell_backends_agree(self):
        """Batched vs legacy engine on an H2 Fig.-10 cell, same seed: mean
        energies agree within statistical tolerance, and the scalar path
        reproduces the pre-batching golden numbers exactly."""
        from repro.analysis import noisy_energy_experiment
        from repro.mappings import jordan_wigner
        from repro.models.electronic import electronic_case

        case = electronic_case("H2_sto3g")
        mapping = jordan_wigner(4)
        nm = NoiseModel(p1=1e-4, p2=1e-3)
        scalar = noisy_energy_experiment(
            case, mapping, nm, shots=60, seed=5, backend="scalar"
        )
        # Golden values recorded from the pre-batching implementation (exact
        # == verified at recording time; see the tolerance note above).
        assert scalar.mean == pytest.approx(-1.0823764129957036, rel=1e-12)
        assert scalar.noiseless == pytest.approx(-1.1167734260601114, rel=1e-12)
        assert scalar.bias == pytest.approx(0.03439701306440779, rel=1e-9)
        assert scalar.variance == pytest.approx(0.0411045429293576, rel=1e-9)

        shots = 600
        batched = noisy_energy_experiment(case, mapping, nm, shots=shots, seed=5)
        scalar_big = noisy_energy_experiment(
            case, mapping, nm, shots=shots, seed=5, backend="scalar"
        )
        assert batched.noiseless == pytest.approx(scalar_big.noiseless, abs=1e-9)
        stderr = np.sqrt((batched.variance + scalar_big.variance) / shots)
        assert abs(batched.mean - scalar_big.mean) < 5 * stderr + 1e-12
