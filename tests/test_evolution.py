"""Tests for Pauli-evolution synthesis and the peephole optimizer."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.circuits import (
    Circuit,
    Gate,
    cancel_adjacent,
    evolution_term_circuit,
    fuse_single_qubit,
    optimize,
    to_cx_u3,
    trotter_circuit,
    zyz_angles,
)
from repro.circuits.gates import gate_matrix
from repro.paulis import PauliString, QubitOperator


def phase_free_allclose(a: np.ndarray, b: np.ndarray, atol=1e-9) -> bool:
    """Equality up to global phase."""
    idx = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    if abs(b[idx]) < 1e-12:
        return np.allclose(a, b, atol=atol)
    phase = a[idx] / b[idx]
    return abs(abs(phase) - 1.0) < 1e-9 and np.allclose(a, phase * b, atol=atol)


class TestTermCircuit:
    @pytest.mark.parametrize("label", ["Z", "X", "Y", "ZZ", "XY", "XYZ", "ZIY", "XIIX"])
    def test_matches_matrix_exponential(self, label):
        p = PauliString.from_label(label)
        angle = 0.731
        circuit = evolution_term_circuit(p, angle)
        expected = expm(-0.5j * angle * p.to_matrix())
        assert phase_free_allclose(circuit.to_matrix(), expected)

    def test_identity_term_no_gates(self):
        circuit = evolution_term_circuit(PauliString.identity(3), 0.5)
        assert len(circuit) == 0

    def test_paper_fig2_structure(self):
        """exp(itc·XYIZ): H on q3, basis change on q2, CNOT ladder to q0, Rz."""
        p = PauliString.from_label("XYIZ")
        circuit = evolution_term_circuit(p, 0.4)
        names = [g.name for g in circuit.gates]
        assert names.count("cx") == 4  # ladder down + back over support {0,2,3}
        assert names.count("rz") == 1
        assert names.count("h") == 4  # X basis on q3 (2) + Y basis h-part on q2 (2)
        rz_gate = next(g for g in circuit.gates if g.name == "rz")
        assert rz_gate.qubits == (0,)  # target = lowest support qubit (paper: q0)

    def test_cx_count_is_twice_weight_minus_two(self):
        for label in ["ZZ", "XYZ", "YXZZ"]:
            p = PauliString.from_label(label)
            c = evolution_term_circuit(p, 0.1)
            assert c.count("cx") == 2 * (p.weight - 1)


class TestTrotter:
    def test_single_step_commuting_exact(self):
        h = QubitOperator.from_label_dict({"ZI": 0.7, "IZ": -0.3, "ZZ": 0.25})
        circuit = trotter_circuit(h, time=0.9)
        expected = expm(-1j * 0.9 * h.to_matrix())
        assert phase_free_allclose(circuit.to_matrix(), expected)

    def test_trotter_error_shrinks_with_steps(self):
        h = QubitOperator.from_label_dict({"XI": 0.8, "ZZ": 0.6, "IY": -0.5})
        exact = expm(-1j * h.to_matrix())
        errs = []
        for steps in (1, 4, 16):
            u = trotter_circuit(h, time=1.0, steps=steps).to_matrix()
            # Remove global phase before comparing.
            idx = np.unravel_index(np.argmax(np.abs(exact)), exact.shape)
            u = u * (exact[idx] / u[idx] / abs(exact[idx] / u[idx]))
            errs.append(np.linalg.norm(u - exact))
        assert errs[0] > errs[1] > errs[2]

    def test_rejects_non_hermitian(self):
        h = QubitOperator.from_label_dict({"XY": 1j})
        with pytest.raises(ValueError):
            trotter_circuit(h)

    def test_rejects_bad_steps(self):
        h = QubitOperator.from_label_dict({"Z": 1.0})
        with pytest.raises(ValueError):
            trotter_circuit(h, steps=0)

    def test_gate_count_tracks_pauli_weight(self):
        """The paper's core claim at circuit level: lower weight => fewer CNOTs."""
        light = QubitOperator.from_label_dict({"ZIII": 1.0, "IZII": 1.0})
        heavy = QubitOperator.from_label_dict({"ZZZZ": 1.0, "XXXX": 1.0})
        c_light = to_cx_u3(trotter_circuit(light))
        c_heavy = to_cx_u3(trotter_circuit(heavy))
        assert c_light.cx_count < c_heavy.cx_count


class TestTrotterUnitary:
    """The compiled circuit must equal the ordered product of the exact
    per-term propagators ``expm(-i·θ·P)`` — the factorization the circuit
    claims to implement — including after peephole optimization."""

    @staticmethod
    def _expm_product(h: QubitOperator, time: float, steps: int = 1, suzuki_order: int = 1):
        from repro.circuits.evolution import order_terms_lexicographic

        terms = order_terms_lexicographic(h)
        dt = time / steps
        if suzuki_order == 2:
            half = [(s, c * 0.5) for s, c in terms]
            terms = half + half[::-1]
        step = np.eye(1 << h.n, dtype=complex)
        for string, coeff in terms:  # first factor applied first => leftmost last
            step = expm(-1j * coeff * dt * string.to_matrix()) @ step
        total = np.eye(1 << h.n, dtype=complex)
        for _ in range(steps):
            total = step @ total
        return total

    @pytest.mark.parametrize(
        "labels",
        [
            {"XY": 0.3, "ZZ": -0.7, "IX": 0.45, "YI": 0.2},
            {"XYZ": 0.4, "ZIY": -0.55, "IZZ": 0.3, "III": 0.9},
            {"ZI": 1.0, "IZ": 1.0, "XX": 0.3},
        ],
    )
    def test_matches_expm_product(self, labels):
        h = QubitOperator.from_label_dict(labels)
        t = 0.37
        expected = self._expm_product(h, t)
        circuit = trotter_circuit(h, time=t)
        assert phase_free_allclose(circuit.to_matrix(), expected)

    @pytest.mark.parametrize("labels", [{"XY": 0.3, "ZZ": -0.7, "IX": 0.45}])
    def test_peephole_path_matches_expm_product(self, labels):
        """The cancel/fuse/to_cx_u3 pipeline preserves the exact product."""
        h = QubitOperator.from_label_dict(labels)
        t = 0.51
        expected = self._expm_product(h, t)
        for pass_fn in (cancel_adjacent, fuse_single_qubit, optimize, to_cx_u3):
            out = pass_fn(trotter_circuit(h, time=t))
            assert phase_free_allclose(out.to_matrix(), expected), pass_fn.__name__

    def test_multi_step_and_suzuki2(self):
        h = QubitOperator.from_label_dict({"XI": 0.8, "ZZ": 0.6, "IY": -0.5})
        for steps, suzuki in ((3, 1), (1, 2), (2, 2)):
            expected = self._expm_product(h, 1.0, steps=steps, suzuki_order=suzuki)
            circuit = trotter_circuit(h, time=1.0, steps=steps, suzuki_order=suzuki)
            assert phase_free_allclose(circuit.to_matrix(), expected), (steps, suzuki)
            opt = to_cx_u3(circuit)
            assert phase_free_allclose(opt.to_matrix(), expected), (steps, suzuki)


class TestOptimizer:
    def test_cancel_hh(self):
        c = Circuit(1)
        c.add("h", 0).add("h", 0)
        assert len(cancel_adjacent(c)) == 0

    def test_cancel_cxcx(self):
        c = Circuit(2)
        c.add("cx", 0, 1).add("cx", 0, 1)
        assert len(cancel_adjacent(c)) == 0

    def test_no_cancel_reversed_cx(self):
        c = Circuit(2)
        c.add("cx", 0, 1).add("cx", 1, 0)
        assert len(cancel_adjacent(c)) == 2

    def test_no_cancel_across_blocker(self):
        c = Circuit(2)
        c.add("h", 0).add("cx", 0, 1).add("h", 0)
        assert len(cancel_adjacent(c)) == 3

    def test_rz_merge(self):
        c = Circuit(1)
        c.add("rz", 0, params=(0.3,)).add("rz", 0, params=(0.5,))
        out = cancel_adjacent(c)
        assert len(out) == 1
        assert out.gates[0].params[0] == pytest.approx(0.8)

    def test_rz_annihilation(self):
        c = Circuit(1)
        c.add("rz", 0, params=(0.3,)).add("rz", 0, params=(-0.3,))
        assert len(cancel_adjacent(c)) == 0

    def test_cascaded_cancellation(self):
        # h s sdg h collapses completely (needs iteration).
        c = Circuit(1)
        c.add("h", 0).add("s", 0).add("sdg", 0).add("h", 0)
        assert len(cancel_adjacent(c)) == 0

    def test_ladder_sharing_between_terms(self):
        """Adjacent terms sharing top ladder edges cancel CNOT pairs."""
        h = QubitOperator.from_label_dict({"ZZI": 0.5, "ZZZ": 0.5, "IZZ": 0.25})
        raw = trotter_circuit(h)
        opt = cancel_adjacent(raw)
        assert opt.cx_count < raw.cx_count

    def test_optimize_preserves_unitary(self):
        h = QubitOperator.from_label_dict({"XY": 0.3, "ZZ": -0.8, "YI": 0.2})
        raw = trotter_circuit(h, time=0.7)
        for pass_fn in (cancel_adjacent, fuse_single_qubit, optimize, to_cx_u3):
            out = pass_fn(raw)
            assert phase_free_allclose(out.to_matrix(), raw.to_matrix())

    def test_to_cx_u3_basis(self):
        h = QubitOperator.from_label_dict({"XY": 0.3, "ZZ": -0.8})
        out = to_cx_u3(trotter_circuit(h))
        assert set(g.name for g in out.gates) <= {"cx", "u3"}

    def test_fusion_drops_identity_runs(self):
        c = Circuit(1)
        c.add("s", 0).add("sdg", 0)
        assert len(fuse_single_qubit(c)) == 0


class TestZYZ:
    def test_random_unitaries(self):
        rng = np.random.default_rng(11)
        for _ in range(40):
            mat = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
            q, _ = np.linalg.qr(mat)
            theta, phi, lam = zyz_angles(q)
            rebuilt = gate_matrix("u3", (theta, phi, lam))
            assert phase_free_allclose(rebuilt, q)

    def test_special_cases(self):
        for name in ["x", "y", "z", "h", "s", "i"]:
            u = gate_matrix(name)
            rebuilt = gate_matrix("u3", zyz_angles(u))
            assert phase_free_allclose(rebuilt, u)


class TestMutualSupportOrdering:
    def test_chain_parameter_same_unitary(self):
        """Any parity-chain order yields the same term unitary."""
        p = PauliString.from_label("XYZZ")
        ref = evolution_term_circuit(p, 0.37).to_matrix()
        for chain in ([0, 1, 2, 3], [2, 0, 3, 1], [3, 1, 0, 2]):
            alt = evolution_term_circuit(p, 0.37, chain=chain).to_matrix()
            assert phase_free_allclose(alt, ref)

    def test_chain_must_cover_support(self):
        p = PauliString.from_label("XYZ")
        with pytest.raises(ValueError):
            evolution_term_circuit(p, 0.1, chain=[0, 1])
        with pytest.raises(ValueError):
            evolution_term_circuit(p, 0.1, chain=[0, 1, 1])

    def test_mutual_support_chain_aligns_shared_interior(self):
        """JW hopping partners share their Z-interior but never their label
        prefix; the mutual chain starts with that interior."""
        from repro.circuits import mutual_support_chain

        a = PauliString.from_label("XZZX")
        b = PauliString.from_label("YZZY")
        assert mutual_support_chain(None, None, a) == [3, 2, 1, 0]
        # With the one-term lookahead the shared Z-interior is rooted at the
        # chain head, where the next junction can cancel it ...
        chain_a = mutual_support_chain(None, None, a, next_string=b)
        assert chain_a == [2, 1, 3, 0]
        # ... and the follower's chain starts with that mutual prefix.
        chain_b = mutual_support_chain(chain_a, a, b)
        assert chain_b[:2] == [2, 1]

    def test_mutual_order_same_trotter_unitary(self):
        """Reordering ladders (not terms) leaves the Trotter unitary fixed."""
        h = QubitOperator.from_terms(
            [
                (PauliString.from_label("XZZX"), 0.3),
                (PauliString.from_label("YZZY"), 0.3),
                (PauliString.from_label("ZZII"), -0.7),
                (PauliString.from_label("IZIZ"), 0.2),
            ]
        )
        lex = trotter_circuit(h, order="lexicographic").to_matrix()
        mutual = trotter_circuit(h, order="mutual").to_matrix()
        assert phase_free_allclose(mutual, lex)

    def test_mutual_order_cuts_cx_on_hopping_pairs(self):
        h = QubitOperator.from_terms(
            [
                (PauliString.from_label("XZZX"), 0.3),
                (PauliString.from_label("YZZY"), 0.3),
            ]
        )
        lex = to_cx_u3(trotter_circuit(h, order="lexicographic")).cx_count
        mutual = to_cx_u3(trotter_circuit(h, order="mutual")).cx_count
        assert mutual < lex

    def test_mutual_never_worse_on_benchmarks(self):
        from repro.mappings import bravyi_kitaev, jordan_wigner
        from repro.models import load_case

        strict_win = False
        for case in ("H2_sto3g", "hubbard:1x2", "hubbard:2x2"):
            ham = load_case(case)
            for mapping in (jordan_wigner(ham.n_modes), bravyi_kitaev(ham.n_modes)):
                hq = mapping.map(ham)
                lex = to_cx_u3(trotter_circuit(hq)).cx_count
                mutual = to_cx_u3(trotter_circuit(hq, order="mutual")).cx_count
                assert mutual <= lex, (case, mapping.name)
                strict_win |= mutual < lex
        assert strict_win  # the pass must measurably cut CNOTs somewhere

    def test_unknown_order_rejected(self):
        h = QubitOperator.from_terms([(PauliString.from_label("ZZ"), 1.0)])
        with pytest.raises(ValueError):
            trotter_circuit(h, order="random")

    def test_suzuki2_mutual_matches_lex_unitary(self):
        h = QubitOperator.from_terms(
            [
                (PauliString.from_label("XZX"), 0.4),
                (PauliString.from_label("YZY"), 0.4),
                (PauliString.from_label("ZZI"), -0.2),
            ]
        )
        lex = trotter_circuit(h, suzuki_order=2, order="lexicographic").to_matrix()
        mutual = trotter_circuit(h, suzuki_order=2, order="mutual").to_matrix()
        assert phase_free_allclose(mutual, lex)


class TestSwapOrientation:
    def test_swap_next_to_cx_cancels(self):
        """A SWAP adjacent to a CX on the same edge costs 2 CX, not 4."""
        for first, second in ((("cx", (0, 1)), ("swap", (0, 1))),
                              (("cx", (1, 0)), ("swap", (0, 1))),
                              (("swap", (0, 1)), ("cx", (0, 1))),
                              (("swap", (0, 1)), ("cx", (1, 0)))):
            c = Circuit(2)
            c.add(first[0], *first[1])
            c.add(second[0], *second[1])
            out = to_cx_u3(c)
            assert out.cx_count == 2, (first, second, out.gates)

    def test_lone_swap_still_three_cx(self):
        c = Circuit(2)
        c.add("swap", 0, 1)
        assert to_cx_u3(c).cx_count == 3

    def test_orientation_preserves_unitary(self):
        c = Circuit(3)
        c.add("cx", 0, 1).add("swap", 1, 0).add("h", 2).add("swap", 1, 2)
        c.add("cx", 2, 1)
        assert phase_free_allclose(to_cx_u3(c).to_matrix(), c.to_matrix())
