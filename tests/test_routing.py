"""Tests for architectures and the SWAP-insertion router."""

import networkx as nx
import numpy as np
import pytest

from repro.circuits import (
    Circuit,
    architecture,
    heavy_hex,
    initial_layout,
    ionq_forte,
    manhattan,
    montreal,
    route_circuit,
    sycamore,
)


class TestArchitectures:
    def test_qubit_counts(self):
        assert manhattan().number_of_nodes() == 65
        assert montreal().number_of_nodes() == 27
        assert sycamore().number_of_nodes() == 54
        assert ionq_forte().number_of_nodes() == 36

    def test_heavy_hex_sparse(self):
        for g in (manhattan(), montreal()):
            assert max(dict(g.degree).values()) <= 3
            assert nx.is_connected(g)

    def test_sycamore_grid_degree(self):
        g = sycamore()
        assert max(dict(g.degree).values()) <= 4
        assert nx.is_connected(g)

    def test_ionq_all_to_all(self):
        g = ionq_forte()
        assert g.number_of_edges() == 36 * 35 // 2

    def test_lookup(self):
        assert architecture("Montreal").number_of_nodes() == 27
        with pytest.raises(ValueError):
            architecture("osprey")

    def test_heavy_hex_generic(self):
        g = heavy_hex(2, 5, 4)
        assert g.number_of_nodes() == 10 + 2
        assert nx.is_connected(g)


def ghz_circuit(n):
    c = Circuit(n)
    c.add("h", 0)
    for i in range(n - 1):
        c.add("cx", i, i + 1)
    return c


def long_range_circuit(n):
    """Deliberately non-local CX pattern to force swaps."""
    c = Circuit(n)
    for i in range(n // 2):
        c.add("cx", i, n - 1 - i)
    return c


class TestLayout:
    def test_layout_is_injective(self):
        c = long_range_circuit(8)
        layout = initial_layout(c, montreal())
        assert len(set(layout.values())) == c.n_qubits

    def test_hot_pair_adjacent(self):
        g = montreal()
        c = Circuit(4)
        for _ in range(5):
            c.add("cx", 0, 1)
        layout = initial_layout(c, g)
        assert g.has_edge(layout[0], layout[1])


class TestRouting:
    @pytest.mark.parametrize("arch", ["montreal", "sycamore"])
    def test_all_cx_respect_coupling(self, arch):
        g = architecture(arch)
        routed = route_circuit(long_range_circuit(10), g)
        for gate in routed.circuit.gates:
            if gate.is_two_qubit:
                assert g.has_edge(*gate.qubits), f"{gate} violates coupling"

    def test_no_swaps_on_all_to_all(self):
        routed = route_circuit(long_range_circuit(12), ionq_forte())
        assert routed.swap_count == 0

    def test_too_many_qubits_rejected(self):
        with pytest.raises(ValueError):
            route_circuit(ghz_circuit(30), montreal())

    def test_disconnected_graph_rejected(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        with pytest.raises(ValueError):
            route_circuit(ghz_circuit(2), g)

    def test_semantics_preserved_modulo_layout(self):
        """Routed circuit equals the original up to the qubit permutations
        recorded in the layouts (checked on statevectors)."""
        from repro.sim import Statevector

        line = nx.path_graph(4)
        circuit = Circuit(3)
        circuit.add("h", 0).add("cx", 0, 2).add("cx", 2, 1).add("x", 1)
        routed = route_circuit(circuit, line)

        reference = Statevector(3).apply_circuit(circuit)
        hw = Statevector(routed.circuit.n_qubits).apply_circuit(routed.circuit)

        # Read amplitudes back through the final layout.
        n_l = circuit.n_qubits
        for bits in range(1 << n_l):
            phys_bits = 0
            for logical in range(n_l):
                if (bits >> logical) & 1:
                    phys_bits |= 1 << routed.final_layout[logical]
            assert abs(hw.amplitudes[phys_bits]) == pytest.approx(
                abs(reference.amplitudes[bits]), abs=1e-9
            )

    def test_swap_count_grows_with_distance(self):
        line = nx.path_graph(10)
        near = Circuit(10)
        near.add("cx", 0, 1)
        far = Circuit(10)
        far.add("cx", 0, 9)
        # Force the trivial-ish layout by using all qubits equally first.
        r_near = route_circuit(near, line)
        r_far = route_circuit(far, line)
        assert r_far.circuit.cx_count >= r_near.circuit.cx_count
