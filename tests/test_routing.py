"""Tests for architectures and the SWAP-insertion router."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    Circuit,
    architecture,
    heavy_hex,
    initial_layout,
    ionq_forte,
    manhattan,
    montreal,
    route_circuit,
    sycamore,
)


class TestArchitectures:
    def test_qubit_counts(self):
        assert manhattan().number_of_nodes() == 65
        assert montreal().number_of_nodes() == 27
        assert sycamore().number_of_nodes() == 54
        assert ionq_forte().number_of_nodes() == 36

    def test_heavy_hex_sparse(self):
        for g in (manhattan(), montreal()):
            assert max(dict(g.degree).values()) <= 3
            assert nx.is_connected(g)

    def test_sycamore_grid_degree(self):
        g = sycamore()
        assert max(dict(g.degree).values()) <= 4
        assert nx.is_connected(g)

    def test_ionq_all_to_all(self):
        g = ionq_forte()
        assert g.number_of_edges() == 36 * 35 // 2

    def test_lookup(self):
        assert architecture("Montreal").number_of_nodes() == 27
        with pytest.raises(ValueError):
            architecture("osprey")

    def test_heavy_hex_generic(self):
        g = heavy_hex(2, 5, 4)
        assert g.number_of_nodes() == 10 + 2
        assert nx.is_connected(g)


def ghz_circuit(n):
    c = Circuit(n)
    c.add("h", 0)
    for i in range(n - 1):
        c.add("cx", i, i + 1)
    return c


def long_range_circuit(n):
    """Deliberately non-local CX pattern to force swaps."""
    c = Circuit(n)
    for i in range(n // 2):
        c.add("cx", i, n - 1 - i)
    return c


class TestLayout:
    def test_layout_is_injective(self):
        c = long_range_circuit(8)
        layout = initial_layout(c, montreal())
        assert len(set(layout.values())) == c.n_qubits

    def test_hot_pair_adjacent(self):
        g = montreal()
        c = Circuit(4)
        for _ in range(5):
            c.add("cx", 0, 1)
        layout = initial_layout(c, g)
        assert g.has_edge(layout[0], layout[1])


class TestRouting:
    @pytest.mark.parametrize("arch", ["montreal", "sycamore"])
    def test_all_cx_respect_coupling(self, arch):
        g = architecture(arch)
        routed = route_circuit(long_range_circuit(10), g)
        for gate in routed.circuit.gates:
            if gate.is_two_qubit:
                assert g.has_edge(*gate.qubits), f"{gate} violates coupling"

    def test_no_swaps_on_all_to_all(self):
        routed = route_circuit(long_range_circuit(12), ionq_forte())
        assert routed.swap_count == 0

    def test_too_many_qubits_rejected(self):
        with pytest.raises(ValueError):
            route_circuit(ghz_circuit(30), montreal())

    def test_disconnected_graph_rejected(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        with pytest.raises(ValueError):
            route_circuit(ghz_circuit(2), g)

    def test_semantics_preserved_modulo_layout(self):
        """Routed circuit equals the original up to the qubit permutations
        recorded in the layouts (checked on statevectors)."""
        from repro.sim import Statevector

        line = nx.path_graph(4)
        circuit = Circuit(3)
        circuit.add("h", 0).add("cx", 0, 2).add("cx", 2, 1).add("x", 1)
        routed = route_circuit(circuit, line)

        reference = Statevector(3).apply_circuit(circuit)
        hw = Statevector(routed.circuit.n_qubits).apply_circuit(routed.circuit)

        # Read amplitudes back through the final layout.
        n_l = circuit.n_qubits
        for bits in range(1 << n_l):
            phys_bits = 0
            for logical in range(n_l):
                if (bits >> logical) & 1:
                    phys_bits |= 1 << routed.final_layout[logical]
            assert abs(hw.amplitudes[phys_bits]) == pytest.approx(
                abs(reference.amplitudes[bits]), abs=1e-9
            )

    def test_swap_count_grows_with_distance(self):
        line = nx.path_graph(10)
        near = Circuit(10)
        near.add("cx", 0, 1)
        far = Circuit(10)
        far.add("cx", 0, 9)
        # Force the trivial-ish layout by using all qubits equally first.
        r_near = route_circuit(near, line)
        r_far = route_circuit(far, line)
        assert r_far.circuit.cx_count >= r_near.circuit.cx_count


class TestDistanceMatrix:
    def test_cached_on_graph(self):
        from repro.circuits import distance_matrix

        g = montreal()
        d1 = distance_matrix(g)
        d2 = distance_matrix(g)
        assert d1 is d2  # second call is the cached object

    def test_matches_networkx(self):
        from repro.circuits import distance_matrix

        g = sycamore()
        d = distance_matrix(g)
        lengths = dict(nx.all_pairs_shortest_path_length(g))
        for u in g.nodes:
            for v in g.nodes:
                assert d[u, v] == lengths[u][v]

    def test_disconnected_rejected(self):
        from repro.circuits import distance_matrix

        g = nx.Graph()
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        with pytest.raises(ValueError):
            distance_matrix(g)

    def test_non_contiguous_nodes_rejected(self):
        from repro.circuits import distance_matrix

        g = nx.Graph()
        g.add_edge(10, 11)
        with pytest.raises(ValueError):
            distance_matrix(g)

    def test_cache_invalidated_on_mutation(self):
        """Mutating a graph after the first call must recompute distances."""
        from repro.circuits import distance_matrix

        g = nx.path_graph(4)
        d1 = distance_matrix(g)
        assert d1[0, 3] == 3
        g.add_edge(0, 3)  # shortcut changes every long-range distance
        d2 = distance_matrix(g)
        assert d2 is not d1
        assert d2[0, 3] == 1
        # Stable again once the edge set stops changing.
        assert distance_matrix(g) is d2

    def test_cache_invalidated_on_node_growth(self):
        from repro.circuits import distance_matrix

        g = nx.path_graph(3)
        d1 = distance_matrix(g)
        g.add_edge(2, 3)
        d2 = distance_matrix(g)
        assert d2.shape == (4, 4)
        assert d1.shape == (3, 3)


class TestDeterminism:
    def test_route_twice_identical(self):
        """Regression: SWAP ties used to be broken by dict iteration order."""
        from repro.circuits import ROUTER_BACKENDS

        circ = long_range_circuit(10)
        for arch in ("montreal", "sycamore"):
            for backend in ROUTER_BACKENDS:
                g1, g2 = architecture(arch), architecture(arch)
                r1 = route_circuit(circ, g1, backend=backend)
                r2 = route_circuit(circ, g2, backend=backend)
                assert r1.circuit.gates == r2.circuit.gates, (arch, backend)
                assert r1.initial_layout == r2.initial_layout
                assert r1.final_layout == r2.final_layout

    def test_layout_deterministic(self):
        circ = long_range_circuit(8)
        layouts = {tuple(sorted(initial_layout(circ, montreal()).items()))
                   for _ in range(3)}
        assert len(layouts) == 1


class TestBackendEquivalence:
    @pytest.mark.parametrize("arch", ["manhattan", "montreal", "sycamore", "ionq_forte"])
    @pytest.mark.parametrize("lookahead", [0, 1, 4, 17, 256])
    def test_vector_matches_scalar(self, arch, lookahead):
        g = architecture(arch)
        circ = long_range_circuit(12)
        vec = route_circuit(circ, g, lookahead=lookahead, backend="vector")
        sca = route_circuit(circ, g, lookahead=lookahead, backend="scalar")
        assert vec.circuit.gates == sca.circuit.gates
        assert vec.initial_layout == sca.initial_layout
        assert vec.final_layout == sca.final_layout

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            route_circuit(ghz_circuit(3), montreal(), backend="cuda")

    def test_negative_lookahead_rejected(self):
        """Regression: a negative horizon used to corrupt the vector
        engine's window bookkeeping and break cross-engine bit-identity."""
        for backend in ("vector", "scalar"):
            with pytest.raises(ValueError):
                route_circuit(ghz_circuit(3), montreal(), lookahead=-1,
                              backend=backend)


def _random_circuit(draw_ints, n, n_gates):
    """Deterministic pseudo-random circuit from a list of ints."""
    c = Circuit(n)
    it = iter(draw_ints)
    one_q = ["h", "s", "t", "x", "rz"]
    for _ in range(n_gates):
        kind = next(it) % 3
        if kind < 2 and n >= 2:
            a = next(it) % n
            b = next(it) % (n - 1)
            if b >= a:
                b += 1
            c.add("cx", a, b)
        else:
            name = one_q[next(it) % len(one_q)]
            q = next(it) % n
            params = (0.1 + (next(it) % 7) * 0.3,) if name == "rz" else ()
            c.add(name, q, params=params)
    return c


class TestRoutedSemantics:
    """Routed circuits are permutation-equivalent to their logical circuits."""

    @settings(max_examples=8, deadline=None)
    @given(
        st.integers(0, 3),
        st.lists(st.integers(0, 10**6), min_size=40, max_size=40),
        st.integers(3, 5),
    )
    def test_unitary_preserved_modulo_layout(self, arch_idx, ints, n):
        from repro.sim import Statevector

        arch = ["manhattan", "montreal", "sycamore", "ionq_forte"][arch_idx]
        g = architecture(arch)
        circuit = _random_circuit(ints, n, 12)
        routed = route_circuit(circuit, g)

        # Compact the routed circuit onto the physical qubits it touches
        # (plus every logical's initial slot), so dense simulation stays
        # tractable on the 27..65-qubit architectures.
        touched = sorted(
            {q for gate in routed.circuit.gates for q in gate.qubits}
            | set(routed.initial_layout.values())
        )
        idx = {p: i for i, p in enumerate(touched)}
        compact = Circuit(len(touched))
        for gate in routed.circuit.gates:
            compact.add(gate.name, *[idx[q] for q in gate.qubits], params=gate.params)

        # Check the action on every logical basis state: prepare the input
        # at the initial layout, run, read back through the final layout.
        for bits in range(1 << n):
            hw = Statevector(compact.n_qubits)
            prep = Circuit(compact.n_qubits)
            for logical in range(n):
                if (bits >> logical) & 1:
                    prep.add("x", idx[routed.initial_layout[logical]])
            hw.apply_circuit(prep).apply_circuit(compact)
            reference = Statevector(n)
            lprep = Circuit(n)
            for logical in range(n):
                if (bits >> logical) & 1:
                    lprep.add("x", logical)
            reference.apply_circuit(lprep).apply_circuit(circuit)

            # Amplitudes must agree (up to global phase) after relabeling
            # physical indices through the final layout.
            ratio = None
            for lbits in range(1 << n):
                phys_bits = 0
                for logical in range(n):
                    if (lbits >> logical) & 1:
                        phys_bits |= 1 << idx[routed.final_layout[logical]]
                amp_hw = hw.amplitudes[phys_bits]
                amp_ref = reference.amplitudes[lbits]
                assert abs(abs(amp_hw) - abs(amp_ref)) < 1e-9
                if abs(amp_ref) > 1e-9:
                    r = amp_hw / amp_ref
                    if ratio is None:
                        ratio = r
                    assert abs(r - ratio) < 1e-8  # single global phase

    @settings(max_examples=6, deadline=None)
    @given(
        st.integers(0, 3),
        st.lists(st.integers(0, 10**6), min_size=60, max_size=60),
    )
    def test_all_two_qubit_gates_on_edges(self, arch_idx, ints):
        arch = ["manhattan", "montreal", "sycamore", "ionq_forte"][arch_idx]
        g = architecture(arch)
        circuit = _random_circuit(ints, 6, 18)
        routed = route_circuit(circuit, g)
        for gate in routed.circuit.gates:
            if gate.is_two_qubit:
                assert g.has_edge(*gate.qubits), (arch, gate)
