"""Property-based tests for circuit passes: optimization and routing never
change semantics (up to global phase / output permutation)."""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    Circuit,
    Gate,
    cancel_adjacent,
    fuse_single_qubit,
    optimize,
    route_circuit,
    to_cx_u3,
)
from repro.sim import Statevector

N_QUBITS = 3

_GATE_POOL = ["h", "s", "sdg", "x", "y", "z", "t", "rz", "cx", "cz"]


@st.composite
def random_circuits(draw, n=N_QUBITS, max_gates=14):
    length = draw(st.integers(min_value=0, max_value=max_gates))
    circuit = Circuit(n)
    for _ in range(length):
        name = draw(st.sampled_from(_GATE_POOL))
        if name in ("cx", "cz"):
            q0 = draw(st.integers(0, n - 1))
            q1 = draw(st.integers(0, n - 2))
            if q1 >= q0:
                q1 += 1
            circuit.add(name, q0, q1)
        elif name == "rz":
            q = draw(st.integers(0, n - 1))
            angle = draw(st.floats(-3.0, 3.0, allow_nan=False))
            circuit.add(name, q, params=(angle,))
        else:
            circuit.add(name, draw(st.integers(0, n - 1)))
    return circuit


def phase_free_equal(a: np.ndarray, b: np.ndarray, atol=1e-8) -> bool:
    phase = np.trace(a.conj().T @ b)
    if abs(phase) < 1e-12:
        return np.allclose(a, b, atol=atol)
    b = b * (phase.conjugate() / abs(phase))
    return np.allclose(a, b, atol=atol)


@given(random_circuits())
@settings(max_examples=60, deadline=None)
def test_optimization_passes_preserve_unitary(circuit):
    reference = circuit.to_matrix()
    for pass_fn in (cancel_adjacent, fuse_single_qubit, optimize, to_cx_u3):
        out = pass_fn(circuit)
        assert phase_free_equal(out.to_matrix(), reference), pass_fn.__name__


@given(random_circuits())
@settings(max_examples=60, deadline=None)
def test_optimization_never_increases_counts(circuit):
    out = optimize(circuit)
    assert out.cx_count <= circuit.cx_count
    assert len(out) <= len(circuit) + circuit.n_qubits  # u3 fusion may split runs


@given(random_circuits())
@settings(max_examples=30, deadline=None)
def test_routing_preserves_statevector_up_to_layout(circuit):
    line = nx.path_graph(4)
    routed = route_circuit(circuit, line)
    for gate in routed.circuit.gates:
        if gate.is_two_qubit:
            assert line.has_edge(*gate.qubits)
    reference = Statevector(N_QUBITS).apply_circuit(circuit)
    hw = Statevector(4).apply_circuit(routed.circuit)
    for bits in range(1 << N_QUBITS):
        phys = 0
        for logical in range(N_QUBITS):
            if (bits >> logical) & 1:
                phys |= 1 << routed.final_layout[logical]
        assert abs(abs(hw.amplitudes[phys]) - abs(reference.amplitudes[bits])) < 1e-8


@given(random_circuits())
@settings(max_examples=40, deadline=None)
def test_inverse_composes_to_identity(circuit):
    u = circuit.compose(circuit.inverse()).to_matrix()
    assert phase_free_equal(u, np.eye(1 << N_QUBITS))
