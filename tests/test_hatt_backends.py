"""Cross-backend equivalence for the HATT construction engine.

The packed-bitmask ``vector`` backend must be bit-identical to the
``scalar`` reference: same selection trace (children uids and step weights)
and same tree, across random Majorana Hamiltonians, both ``vacuum`` modes
and both ``cached`` settings — including when the memory budget forces the
candidate kernels to chunk.  Golden-value tests pin the H2/LiH construction
traces so a silent behavior change in either backend fails loudly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fermion import MajoranaOperator
from repro.hatt import BACKENDS, HattConstruction, hatt_mapping
from repro.paulis.table import pack_incidence


@st.composite
def majorana_hamiltonians(draw):
    """Random Hermitian-support Hamiltonians on 1..6 modes."""
    n = draw(st.integers(min_value=1, max_value=6))
    n_terms = draw(st.integers(min_value=0, max_value=10))
    op = MajoranaOperator.zero()
    for _ in range(n_terms):
        size = draw(st.sampled_from([s for s in (1, 2, 4) if s <= 2 * n]))
        indices = draw(
            st.lists(
                st.integers(min_value=0, max_value=2 * n - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        coeff = 1j if (size * (size - 1) // 2) % 2 else 1.0
        op = op + MajoranaOperator.from_term(sorted(indices), coeff)
    return n, op


def _run_both(op, n, **kwargs):
    scalar = HattConstruction(op, n, backend="scalar", **kwargs)
    tree_s = scalar.run()
    vector = HattConstruction(op, n, backend="vector", **kwargs)
    tree_v = vector.run()
    return scalar, tree_s, vector, tree_v


class TestBitIdenticalTraces:
    @given(majorana_hamiltonians())
    @settings(max_examples=40, deadline=None)
    def test_vacuum_cached(self, data):
        n, op = data
        s, ts, v, tv = _run_both(op, n, vacuum=True, cached=True)
        assert v.trace == s.trace
        assert v.step_weights == s.step_weights
        assert tv.strings_by_leaf_index() == ts.strings_by_leaf_index()

    @given(majorana_hamiltonians())
    @settings(max_examples=25, deadline=None)
    def test_vacuum_uncached(self, data):
        n, op = data
        s, ts, v, tv = _run_both(op, n, vacuum=True, cached=False)
        assert v.trace == s.trace
        assert tv.strings_by_leaf_index() == ts.strings_by_leaf_index()

    @given(majorana_hamiltonians())
    @settings(max_examples=25, deadline=None)
    def test_free_selection(self, data):
        n, op = data
        s, ts, v, tv = _run_both(op, n, vacuum=False)
        assert v.trace == s.trace
        assert tv.strings_by_leaf_index() == ts.strings_by_leaf_index()

    @given(majorana_hamiltonians())
    @settings(max_examples=15, deadline=None)
    def test_tiny_memory_budget_forces_chunking(self, data):
        """A budget far below one candidate grid must not change results."""
        n, op = data
        for vacuum in (True, False):
            scalar = HattConstruction(op, n, vacuum=vacuum, backend="scalar")
            scalar.run()
            vector = HattConstruction(
                op, n, vacuum=vacuum, backend="vector", memory_budget=512
            )
            vector.run()
            assert vector.trace == scalar.trace

    def test_multiword_masks(self):
        """> 64 terms spills into multiple uint64 words per node."""
        rng = np.random.default_rng(11)
        n = 6
        op = MajoranaOperator.zero()
        for _ in range(150):
            size = int(rng.choice([2, 4]))
            idx = sorted(rng.choice(2 * n, size=size, replace=False).tolist())
            coeff = 1j if (size * (size - 1) // 2) % 2 else 1.0
            op = op + MajoranaOperator.from_term(idx, coeff)
        assert len(op.support_terms()) > 64
        for vacuum in (True, False):
            s, ts, v, tv = _run_both(op, n, vacuum=vacuum)
            assert v.trace == s.trace
            assert tv.strings_by_leaf_index() == ts.strings_by_leaf_index()


class TestGoldenTraces:
    """Pinned construction traces for the paper molecules (both backends)."""

    H2_TRACE = [
        (0, (0, 1, 8), 8),
        (1, (2, 3, 9), 8),
        (2, (4, 5, 10), 8),
        (3, (6, 7, 11), 8),
    ]
    LIH_FRZ_TRACE = [
        (0, (2, 3, 12), 26),
        (1, (8, 9, 13), 26),
        (2, (0, 1, 14), 30),
        (3, (4, 5, 15), 38),
        (4, (6, 7, 16), 38),
        (5, (10, 11, 17), 30),
    ]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_h2_trace(self, backend):
        from repro.models.electronic import electronic_case

        case = electronic_case("H2_sto3g")
        mapping = hatt_mapping(case.hamiltonian, n_modes=case.n_modes, backend=backend)
        assert mapping.construction.trace == self.H2_TRACE
        # Paper Table I: HATT reaches total Pauli weight 32 on H2/STO-3G.
        assert mapping.map(case.hamiltonian).pauli_weight() == 32

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_lih_frozen_trace(self, backend):
        from repro.models.electronic import electronic_case

        case = electronic_case("LiH_sto3g_frz")
        mapping = hatt_mapping(case.hamiltonian, n_modes=case.n_modes, backend=backend)
        assert mapping.construction.trace == self.LIH_FRZ_TRACE


class TestBackendApi:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            HattConstruction(MajoranaOperator.zero(), 2, backend="gpu")

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError):
            HattConstruction(MajoranaOperator.zero(), 2, memory_budget=0)

    def test_default_backend_is_vector(self):
        c = HattConstruction(MajoranaOperator.zero(), 2)
        assert c.backend == "vector"

    def test_children_uids_round_trip(self):
        from repro.mappings import tree_from_uid_arrays

        op = MajoranaOperator.from_term([0, 3], 1.0) + MajoranaOperator.from_term(
            [1, 2], 1.0
        )
        c = HattConstruction(op, 2)
        tree = c.run()
        rebuilt = tree_from_uid_arrays(c.children_uids, 2)
        rebuilt.validate()
        assert rebuilt.strings_by_leaf_index() == tree.strings_by_leaf_index()

    def test_empty_hamiltonian_both_backends(self):
        for backend in BACKENDS:
            mapping = hatt_mapping(
                MajoranaOperator.zero(), n_modes=3, backend=backend
            )
            assert mapping.is_valid()
            assert mapping.preserves_vacuum()
            assert mapping.construction.step_weights == [0, 0, 0]


class TestPackIncidence:
    """The shared packing helper must agree with the Python-int masks."""

    @given(
        st.integers(min_value=1, max_value=9),
        st.lists(
            st.lists(st.integers(min_value=0, max_value=8), max_size=6),
            max_size=130,
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_int_reference(self, n_rows, sets):
        sets = [[i for i in s if i < n_rows] for s in sets]
        packed = pack_incidence(sets, n_rows)
        assert packed.shape == (n_rows, max(1, -(-len(sets) // 64)))
        ref = [0] * n_rows
        for j, members in enumerate(sets):
            for i in set(members):
                ref[i] |= 1 << j
        for i in range(n_rows):
            got = 0
            for w in range(packed.shape[1] - 1, -1, -1):
                got = (got << 64) | int(packed[i, w])
            assert got == ref[i]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            pack_incidence([[3]], 3)
