"""Unit tests for PauliString: construction, labels, algebra, matrices."""

import numpy as np
import pytest

from repro.paulis import PauliString, pauli_strings_anticommute_pairwise


class TestConstruction:
    def test_identity(self):
        p = PauliString.identity(4)
        assert p.is_identity
        assert p.weight == 0
        assert p.label() == "IIII"

    def test_from_label_roundtrip(self):
        for label in ["XYIZ", "IIII", "ZZZZ", "XIXI", "Y"]:
            assert PauliString.from_label(label).label() == label

    def test_from_label_matches_paper_example(self):
        # Paper §II-B1: XYIZ = X3 Y2 Z0.
        p = PauliString.from_label("XYIZ")
        assert p.op_at(3) == "X"
        assert p.op_at(2) == "Y"
        assert p.op_at(1) == "I"
        assert p.op_at(0) == "Z"
        assert p.compact() == "X3Y2Z0"

    def test_from_compact(self):
        p = PauliString.from_compact("X3Y2Z0", n=4)
        assert p.label() == "XYIZ"
        assert PauliString.from_compact("I", n=3).is_identity
        assert PauliString.from_compact("", n=3).is_identity

    def test_from_compact_rejects_garbage(self):
        with pytest.raises(ValueError):
            PauliString.from_compact("X3Q2", n=4)
        with pytest.raises(ValueError):
            PauliString.from_compact("X9", n=4)
        with pytest.raises(ValueError):
            PauliString.from_compact("X1Y1", n=4)

    def test_from_ops(self):
        p = PauliString.from_ops({0: "Z", 2: "Y"}, n=3)
        assert p.label() == "YIZ"

    def test_from_ops_out_of_range(self):
        with pytest.raises(ValueError):
            PauliString.from_ops({5: "X"}, n=3)

    def test_single(self):
        p = PauliString.single(5, 2, "Y")
        assert p.weight == 1
        assert p.support == (2,)
        assert p.op_at(2) == "Y"

    def test_invalid_label_letter(self):
        with pytest.raises(ValueError):
            PauliString.from_label("XQZ")

    def test_mask_out_of_range(self):
        with pytest.raises(ValueError):
            PauliString(2, x=0b100)

    def test_immutability(self):
        p = PauliString.from_label("XY")
        with pytest.raises(AttributeError):
            p.x = 3


class TestInspection:
    def test_weight_and_support(self):
        p = PauliString.from_label("XYIZ")
        assert p.weight == 3
        assert p.support == (0, 2, 3)

    def test_ops_iteration(self):
        p = PauliString.from_label("XYIZ")
        assert list(p.ops()) == [(0, "Z"), (2, "Y"), (3, "X")]

    def test_hermitian_flag(self):
        assert PauliString.from_label("XY").is_hermitian
        assert PauliString.from_label("XY", phase=2).is_hermitian
        assert not PauliString.from_label("XY", phase=1).is_hermitian

    def test_hash_and_eq(self):
        a = PauliString.from_label("XZ")
        b = PauliString.from_label("XZ")
        c = PauliString.from_label("XZ", phase=2)
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestAlgebra:
    def test_single_qubit_table(self):
        # Full 1-qubit multiplication table with phases.
        table = {
            ("X", "Y"): ("Z", 1),  # XY = iZ
            ("Y", "X"): ("Z", 3),  # YX = -iZ
            ("Y", "Z"): ("X", 1),
            ("Z", "Y"): ("X", 3),
            ("Z", "X"): ("Y", 1),
            ("X", "Z"): ("Y", 3),
            ("X", "X"): ("I", 0),
            ("Y", "Y"): ("I", 0),
            ("Z", "Z"): ("I", 0),
        }
        for (a, b), (expect_op, expect_phase) in table.items():
            prod = PauliString.from_label(a) * PauliString.from_label(b)
            assert prod.label() == expect_op, f"{a}*{b}"
            assert prod.phase == expect_phase, f"{a}*{b}"

    def test_product_against_dense(self):
        rng = np.random.default_rng(7)
        letters = "IXYZ"
        for _ in range(50):
            la = "".join(rng.choice(list(letters)) for _ in range(4))
            lb = "".join(rng.choice(list(letters)) for _ in range(4))
            pa, pb = PauliString.from_label(la), PauliString.from_label(lb)
            np.testing.assert_allclose(
                (pa * pb).to_matrix(), pa.to_matrix() @ pb.to_matrix(), atol=1e-12
            )

    def test_commutation_against_dense(self):
        rng = np.random.default_rng(11)
        letters = "IXYZ"
        for _ in range(50):
            la = "".join(rng.choice(list(letters)) for _ in range(3))
            lb = "".join(rng.choice(list(letters)) for _ in range(3))
            pa, pb = PauliString.from_label(la), PauliString.from_label(lb)
            comm = pa.to_matrix() @ pb.to_matrix() - pb.to_matrix() @ pa.to_matrix()
            assert pa.commutes_with(pb) == np.allclose(comm, 0)

    def test_mismatched_sizes_raise(self):
        with pytest.raises(ValueError):
            PauliString.from_label("XX") * PauliString.from_label("X")
        with pytest.raises(ValueError):
            PauliString.from_label("XX").commutes_with(PauliString.from_label("X"))

    def test_adjoint(self):
        p = PauliString.from_label("XY", phase=1)
        np.testing.assert_allclose(p.adjoint().to_matrix(), p.to_matrix().conj().T)

    def test_tensor(self):
        a = PauliString.from_label("X")
        b = PauliString.from_label("ZY")
        t = a.tensor(b)
        assert t.label() == "XZY"
        np.testing.assert_allclose(t.to_matrix(), np.kron(a.to_matrix(), b.to_matrix()))

    def test_anticommuting_set_helper(self):
        trio = [PauliString.from_label(s) for s in "XYZ"]
        assert pauli_strings_anticommute_pairwise(trio)
        assert not pauli_strings_anticommute_pairwise(
            [PauliString.from_label("XI"), PauliString.from_label("IX")]
        )


class TestBasisStateAction:
    @pytest.mark.parametrize("label", ["X", "Y", "Z", "I"])
    @pytest.mark.parametrize("bit", [0, 1])
    def test_single_qubit(self, label, bit):
        p = PauliString.from_label(label)
        new_bits, amp = p.apply_to_basis_state(bit)
        vec = np.zeros(2, dtype=complex)
        vec[bit] = 1.0
        expected = p.to_matrix() @ vec
        got = np.zeros(2, dtype=complex)
        got[new_bits] = amp
        np.testing.assert_allclose(got, expected, atol=1e-12)

    def test_multi_qubit_random(self):
        rng = np.random.default_rng(3)
        for _ in range(30):
            label = "".join(rng.choice(list("IXYZ")) for _ in range(4))
            phase = int(rng.integers(0, 4))
            p = PauliString.from_label(label, phase=phase)
            bits = int(rng.integers(0, 16))
            new_bits, amp = p.apply_to_basis_state(bits)
            vec = np.zeros(16, dtype=complex)
            vec[bits] = 1.0
            expected = p.to_matrix() @ vec
            got = np.zeros(16, dtype=complex)
            got[new_bits] = amp
            np.testing.assert_allclose(got, expected, atol=1e-12)
