"""End-to-end integration tests across the whole stack.

Each test exercises a full user workflow: model → mapping → qubit
Hamiltonian → (circuit | tapering | measurement | serialization), with
physics invariants as the oracle.
"""

import numpy as np
import pytest

from repro import hatt_mapping, jordan_wigner
from repro.analysis import (
    empirical_trotter_error,
    evaluate_mapping,
    trotter_error_bound,
)
from repro.circuits import to_cx_u3, trotter_circuit
from repro.mappings import find_z2_symmetries, load_mapping, save_mapping, taper
from repro.models import fermi_hubbard, hubbard_case
from repro.models.electronic import electronic_case
from repro.sim import (
    NoiseModel,
    Statevector,
    estimate_energy,
    noisy_expectations,
    occupation_statevector,
)


class TestHubbardWorkflow:
    def test_map_compile_simulate(self):
        """Map a 1x2 Hubbard model, compile a Trotter circuit, simulate it,
        and verify energy conservation for the exactly-commuting part."""
        h = fermi_hubbard(1, 2, t=1.0, u=4.0)
        mapping = hatt_mapping(h)
        hq = mapping.map(h)
        assert hq.is_hermitian()

        # Start from the half-filled determinant and evolve.
        state = occupation_statevector(mapping, [0, 3])  # up on site0, down on site1
        e_start = state.expectation(hq)
        circuit = to_cx_u3(trotter_circuit(hq, time=0.05, steps=4))
        state.apply_circuit(circuit)
        e_end = state.expectation(hq)
        # Trotter error at dt=0.0125 is tiny; energy nearly conserved.
        assert e_end == pytest.approx(e_start, abs=1e-2)

    def test_ground_energy_invariant_under_tapering(self):
        h = hubbard_case("2x2")
        mapping = jordan_wigner(8)
        hq = mapping.map(h)
        syms = [s for s in find_z2_symmetries(hq) if s.x == 0][:2]
        if not syms:
            pytest.skip("no diagonal symmetries found")
        e0 = hq.ground_energy()
        import itertools

        best = min(
            taper(hq, symmetries=syms, sector=sector).operator.ground_energy()
            for sector in itertools.product((1, -1), repeat=len(syms))
        )
        assert best == pytest.approx(e0, abs=1e-8)


class TestMoleculeWorkflow:
    def test_h2_full_stack(self):
        """Molecule → SCF → HATT → save/load → circuit → sampled energy."""
        case = electronic_case("H2_sto3g")
        mapping = hatt_mapping(case.hamiltonian, n_modes=case.n_modes)
        hq = mapping.map(case.hamiltonian)
        assert hq.pauli_weight() == 32  # paper Table I

        # Serialization round-trip mid-pipeline.
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "h2_hatt.json"
            save_mapping(mapping, path)
            mapping = load_mapping(path)

        state = occupation_statevector(mapping, case.hf_occupation)
        est = estimate_energy(state, mapping.map(case.hamiltonian), shots=30000,
                              seed=7)
        assert est.value == pytest.approx(case.scf_energy, abs=0.03)

    def test_trotter_budgeting(self):
        """The error bound guides step selection: bound < target ⇒ actual < target."""
        case = electronic_case("H2_sto3g")
        hq = jordan_wigner(4).map(case.hamiltonian)
        target = 1e-2
        steps = 1
        while trotter_error_bound(hq, 0.2, steps) > target and steps < 64:
            steps *= 2
        actual = empirical_trotter_error(hq, 0.2, steps)
        assert actual < target

    def test_report_consistency(self):
        """evaluate_mapping's numbers agree with direct computation."""
        case = electronic_case("H2_sto3g")
        mapping = jordan_wigner(4)
        report = evaluate_mapping(case.hamiltonian, mapping)
        hq = mapping.map(case.hamiltonian)
        assert report.pauli_weight == hq.pauli_weight()
        circuit = to_cx_u3(trotter_circuit(hq))
        assert report.cx_count == circuit.cx_count
        assert report.depth == circuit.depth()


class TestNoiseWorkflow:
    def test_mapping_ranking_under_noise(self):
        """A heavier mapping (BTT on H2) can't beat the lighter ones by more
        than statistical noise at high error rates."""
        case = electronic_case("H2_sto3g")
        noise = NoiseModel(p1=5e-4, p2=5e-3)
        results = {}
        for factory in (jordan_wigner,):
            mapping = factory(4)
            hq = mapping.map(case.hamiltonian)
            circuit = to_cx_u3(trotter_circuit(hq, time=0.1))
            res = noisy_expectations(circuit, hq, noise, shots=200, seed=4)
            results[mapping.name] = res
        assert results["JW"].variance > 0

    def test_noiseless_circuit_matches_statevector(self):
        h = hubbard_case("1x2")
        mapping = jordan_wigner(4)
        hq = mapping.map(h)
        circuit = trotter_circuit(hq, time=0.3)
        res = noisy_expectations(circuit, hq, NoiseModel(), shots=2)
        direct = Statevector(4).apply_circuit(circuit).expectation(hq)
        assert res.mean == pytest.approx(direct, abs=1e-10)


class TestCrossMappingInvariants:
    @pytest.mark.parametrize("geometry", ["1x2", "2x2"])
    def test_spectra_agree_all_mappings(self, geometry):
        h = hubbard_case(geometry)
        n = h.n_modes
        if n > 8:
            pytest.skip("dense check too large")
        from repro.mappings import balanced_ternary_tree, bravyi_kitaev

        ref = np.linalg.eigvalsh(jordan_wigner(n).map(h).to_matrix())
        for factory in (bravyi_kitaev, balanced_ternary_tree):
            ev = np.linalg.eigvalsh(factory(n).map(h).to_matrix())
            np.testing.assert_allclose(ev, ref, atol=1e-8)
        hatt = hatt_mapping(h, n_modes=n)
        ev = np.linalg.eigvalsh(hatt.map(h).to_matrix())
        np.testing.assert_allclose(ev, ref, atol=1e-8)

    def test_vacuum_energy_identical(self):
        """⟨vac|H|vac⟩ is mapping-independent for vacuum-preserving maps."""
        h = hubbard_case("2x2")
        from repro.mappings import balanced_ternary_tree, bravyi_kitaev

        values = []
        for mapping in (
            jordan_wigner(8),
            bravyi_kitaev(8),
            balanced_ternary_tree(8),
            hatt_mapping(h, n_modes=8),
        ):
            hq = mapping.map(h)
            values.append(hq.expectation_basis_state(0).real)
        assert max(values) - min(values) < 1e-9
