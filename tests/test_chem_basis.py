"""Tests for basis-set construction."""

import numpy as np
import pytest

from repro.chem import atom_basis, build_basis, molecule, overlap_matrix, slater_zetas
from repro.chem.basis import _EXPANSIONS, primitive_norm


class TestExpansions:
    def test_1s_matches_published_sto3g(self):
        """Our fit must reproduce the published universal 1s expansion."""
        alphas, d = _EXPANSIONS["1s"]
        np.testing.assert_allclose(alphas, [2.227660584, 0.405771156, 0.109818], atol=2e-4)
        np.testing.assert_allclose(d, [0.154328967, 0.535328142, 0.444634542], atol=1e-3)

    def test_2sp_matches_published_sto3g(self):
        alphas, ds = _EXPANSIONS["2s"]
        _, dp = _EXPANSIONS["2p"]
        np.testing.assert_allclose(alphas, [0.994203, 0.231031, 0.0751386], atol=2e-4)
        np.testing.assert_allclose(ds, [-0.09996723, 0.39951283, 0.70011547], atol=1e-3)
        np.testing.assert_allclose(dp, [0.15591627, 0.60768372, 0.39195739], atol=1e-3)

    def test_hydrogen_exponents_scale_to_published(self):
        """H STO-3G: zeta=1.24 scaling of the universal 1s expansion."""
        fns = atom_basis("H", (0, 0, 0))
        np.testing.assert_allclose(
            fns[0].alphas, [3.42525091, 0.62391373, 0.16885540], atol=5e-4
        )


class TestZetas:
    def test_hydrogen_special_case(self):
        assert slater_zetas(1)["1s"] == pytest.approx(1.24)

    def test_slater_rules_carbon(self):
        z = slater_zetas(6)
        assert z["1s"] == pytest.approx(5.70)
        assert z["2sp"] == pytest.approx((6 - 1.7 - 1.05) / 2)

    def test_slater_rules_sodium_has_3sp(self):
        z = slater_zetas(11)
        assert z["3sp"] == pytest.approx((11 - 2.0 - 6.8) / 3)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            slater_zetas(20)


class TestBasisBuild:
    def test_function_counts(self):
        assert len(atom_basis("H", (0, 0, 0))) == 1
        assert len(atom_basis("C", (0, 0, 0))) == 5  # 1s 2s 2px 2py 2pz
        assert len(atom_basis("Na", (0, 0, 0))) == 9  # + 3s 3p

    def test_naf_has_14_orbitals(self):
        mol = molecule("NaF")
        assert len(build_basis(mol.atoms)) == 14  # paper: 28 modes

    def test_631g_hydrogen(self):
        fns = atom_basis("H", (0, 0, 0), "6-31g")
        assert len(fns) == 2
        assert len(fns[0].alphas) == 3
        assert len(fns[1].alphas) == 1

    def test_631g_heavy_rejected(self):
        with pytest.raises(ValueError):
            atom_basis("C", (0, 0, 0), "6-31g")

    def test_unknown_element_and_basis(self):
        with pytest.raises(ValueError):
            atom_basis("Xx", (0, 0, 0))
        with pytest.raises(ValueError):
            atom_basis("H", (0, 0, 0), "cc-pvdz")

    def test_contracted_functions_normalized(self):
        mol = molecule("H2O")
        basis = build_basis(mol.atoms)
        s = overlap_matrix(basis)
        np.testing.assert_allclose(np.diag(s), 1.0, atol=1e-10)

    def test_primitive_norm_s(self):
        # For an s Gaussian: N = (2a/pi)^(3/4).
        a = 0.7
        assert primitive_norm(a, (0, 0, 0)) == pytest.approx((2 * a / np.pi) ** 0.75)

    def test_primitive_norm_p(self):
        a = 1.3
        expected = (2 * a / np.pi) ** 0.75 * 2.0 * np.sqrt(a)
        assert primitive_norm(a, (1, 0, 0)) == pytest.approx(expected)


class TestMolecules:
    def test_electron_counts(self):
        assert molecule("H2").n_electrons == 2
        assert molecule("H2O").n_electrons == 10
        assert molecule("NaF").n_electrons == 20
        assert molecule("CO2").n_electrons == 22

    def test_unknown_molecule(self):
        with pytest.raises(ValueError):
            molecule("C60")

    def test_geometry_in_bohr(self):
        h2 = molecule("H2")
        d = np.linalg.norm(
            np.array(h2.atoms[0][1]) - np.array(h2.atoms[1][1])
        )
        assert d == pytest.approx(0.735 * 1.8897259886)
