"""Property-based tests: PauliTable (vectorized) vs the scalar reference.

Random operators are drawn up to 130 qubits so the packed representation
exercises multi-word (``> 64`` qubit) masks, word boundaries included.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fermion import MajoranaOperator
from repro.mappings import balanced_ternary_tree, jordan_wigner
from repro.mappings.apply import map_majorana_operator
from repro.paulis import PauliString, PauliTable, QubitOperator

QUBIT_COUNTS = (1, 5, 63, 64, 65, 130)
PHASES = st.integers(min_value=0, max_value=3)


@st.composite
def pauli_batches(draw, min_size=1, max_size=12):
    """A qubit count plus a batch of random PauliStrings on it."""
    n = draw(st.sampled_from(QUBIT_COUNTS))
    masks = st.integers(min_value=0, max_value=(1 << n) - 1)
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    strings = [
        PauliString(n, draw(masks), draw(masks), draw(PHASES)) for _ in range(size)
    ]
    return n, strings


@given(pauli_batches())
@settings(max_examples=60, deadline=None)
def test_string_roundtrip_lossless(batch):
    n, strings = batch
    table = PauliTable.from_strings(strings, n=n)
    assert table.to_strings() == strings


@given(pauli_batches())
@settings(max_examples=60, deadline=None)
def test_mul_rows_matches_scalar(batch):
    n, strings = batch
    table = PauliTable.from_strings(strings, n=n)
    other = PauliTable.from_strings(strings[::-1], n=n)
    products = table.mul_rows(other).to_strings()
    for got, a, b in zip(products, strings, strings[::-1]):
        assert got == a * b


@given(pauli_batches())
@settings(max_examples=60, deadline=None)
def test_commutation_matches_scalar(batch):
    n, strings = batch
    table = PauliTable.from_strings(strings, n=n)
    matrix = table.commutation_matrix(chunk=3)
    for i, a in enumerate(strings):
        for j, b in enumerate(strings):
            assert matrix[i, j] == a.commutes_with(b)
    aligned = table.commutes_with(PauliTable.from_strings(strings[::-1], n=n))
    for got, a, b in zip(aligned, strings, strings[::-1]):
        assert got == a.commutes_with(b)


@given(pauli_batches())
@settings(max_examples=60, deadline=None)
def test_weights_match_scalar(batch):
    n, strings = batch
    table = PauliTable.from_strings(strings, n=n)
    assert [int(w) for w in table.weights()] == [s.weight for s in strings]


@given(pauli_batches(), st.data())
@settings(max_examples=60, deadline=None)
def test_simplify_matches_scalar_combination(batch, data):
    n, strings = batch
    # Duplicate rows on purpose so simplify has real combining to do.
    picks = data.draw(
        st.lists(st.integers(0, len(strings) - 1), min_size=1, max_size=30)
    )
    coeffs = [
        complex(data.draw(st.integers(-3, 3)), data.draw(st.integers(-3, 3)))
        for _ in picks
    ]
    table = PauliTable.from_strings([strings[i] for i in picks], n=n)
    reference = QubitOperator(n)
    for i, c in zip(picks, coeffs):
        reference.add_string(strings[i], c)
    reference.simplify()
    assert table.to_qubit_operator(np.asarray(coeffs)) == reference


@given(pauli_batches())
@settings(max_examples=40, deadline=None)
def test_qubit_operator_roundtrip(batch):
    n, strings = batch
    op = QubitOperator(n)
    for i, s in enumerate(strings):
        op.add_string(s, 1.0 + 0.25 * i)
    table, coeffs = op.to_table()
    assert QubitOperator.from_table(table, coeffs) == op


@st.composite
def majorana_operators(draw, n_modes):
    """A random Majorana operator on 2·n_modes Majoranas."""
    n_majoranas = 2 * n_modes
    monomials = draw(
        st.lists(
            st.lists(
                st.integers(0, n_majoranas - 1), min_size=0, max_size=5, unique=True
            ),
            min_size=1,
            max_size=20,
        )
    )
    op = MajoranaOperator()
    for mono in monomials:
        op.add_term(tuple(sorted(mono)), draw(st.integers(-3, 3)) + 0.5)
    return op


@pytest.mark.parametrize("n_modes", [3, 33, 65])
@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_map_majorana_backends_agree(n_modes, data):
    """Scalar and table mapping backends agree on JW and BTT mappings."""
    op = data.draw(majorana_operators(n_modes))
    for mapping in (jordan_wigner(n_modes), balanced_ternary_tree(n_modes)):
        scalar = map_majorana_operator(
            op, mapping.strings, mapping.n_qubits, backend="scalar"
        )
        table = map_majorana_operator(
            op, mapping.packed_table, mapping.n_qubits, backend="table"
        )
        assert table == scalar


def test_map_majorana_validates_qubit_count():
    op = MajoranaOperator({(0, 1): 1.0})
    strings = jordan_wigner(2).strings
    with pytest.raises(ValueError, match="acts on 2 qubits"):
        map_majorana_operator(op, strings, n_qubits=5)


def test_map_majorana_validates_coverage():
    # Operator touches M4 => 3 modes => needs 6 strings, only 5 supplied.
    op = MajoranaOperator({(4,): 1.0})
    strings = jordan_wigner(3).strings[:5]
    with pytest.raises(ValueError, match="2 per mode"):
        map_majorana_operator(op, strings, n_qubits=3)
    with pytest.raises(ValueError, match="2 per mode"):
        map_majorana_operator(op, strings, n_qubits=3, backend="scalar")


def test_map_majorana_rejects_unknown_backend():
    op = MajoranaOperator({(0,): 1.0})
    with pytest.raises(ValueError, match="unknown backend"):
        map_majorana_operator(op, jordan_wigner(1).strings, 1, backend="nope")


def test_map_majorana_rejects_empty_strings():
    with pytest.raises(ValueError, match="no Majorana strings"):
        map_majorana_operator(MajoranaOperator(), [], 1)


def test_packed_terms_cache_invalidation():
    op = MajoranaOperator({(0, 1): 1.0})
    idx, coeffs = op.packed_terms()
    assert op.packed_terms()[0] is idx  # cached
    op.add_term((2, 3), 2.0)
    idx2, coeffs2 = op.packed_terms()
    assert idx2.shape[0] == 2 and len(coeffs2) == 2
    jw = jordan_wigner(2)
    assert map_majorana_operator(op, jw.strings, 2) == map_majorana_operator(
        op, jw.strings, 2, backend="scalar"
    )


def test_table_rejects_out_of_range_bits():
    with pytest.raises(ValueError, match="outside the qubit range"):
        PauliTable.from_masks(3, [0b1000], [0])


def test_padded_row_products_rejects_bad_index():
    table = jordan_wigner(2).packed_table
    with pytest.raises(IndexError):
        table.padded_row_products(np.array([[99]], dtype=np.intp))


def test_from_terms_table_path_matches_scalar_path():
    """QubitOperator.from_terms gives identical results on both sides of the
    bulk-path threshold."""
    n = 6
    rng = np.random.default_rng(7)
    strings = [
        PauliString(n, int(rng.integers(0, 1 << n)), int(rng.integers(0, 1 << n)))
        for _ in range(40)
    ]
    terms = [(strings[i % len(strings)], 0.5 * i - 3) for i in range(130)]
    bulk = QubitOperator.from_terms(terms)  # above threshold: table path
    scalar = QubitOperator(n)
    for s, c in terms:
        scalar.add_string(s, c)
    assert bulk == scalar
