"""Coverage for the remaining benchmark-case registry paths."""

import pytest

from repro.mappings import jordan_wigner
from repro.models.electronic import ELECTRONIC_CASES, electronic_case


class TestH2631G:
    def test_mode_count(self):
        case = electronic_case("H2_631g")
        assert case.n_modes == 8  # 2 H atoms × 2 contracted s functions × 2 spins

    def test_energy_below_sto3g(self):
        sto = electronic_case("H2_sto3g")
        big = electronic_case("H2_631g")
        assert big.scf_energy < sto.scf_energy

    def test_valid_hermitian_hamiltonian(self):
        case = electronic_case("H2_631g")
        hq = jordan_wigner(8).map(case.hamiltonian)
        assert hq.is_hermitian()
        assert hq.pauli_weight() > 0


class TestFrozenCoreVariants:
    @pytest.mark.parametrize(
        "name,expected_modes",
        [
            ("NH_sto3g", 12),
            ("NH_sto3g_frz", 10),
            ("BeH2_sto3g", 14),
            ("BeH2_sto3g_frz", 12),
        ],
    )
    def test_mode_counts(self, name, expected_modes):
        case = electronic_case(name)
        assert case.n_modes == expected_modes

    def test_frozen_energy_shift_in_core(self):
        """Freezing moves energy into the scalar core term."""
        full = electronic_case("BeH2_sto3g")
        frz = electronic_case("BeH2_sto3g_frz")
        assert abs(frz.core_energy) > abs(full.core_energy)
        assert frz.n_electrons == full.n_electrons - 2

    def test_registry_complete(self):
        for name in ELECTRONIC_CASES:
            mol, basis, freeze, active = ELECTRONIC_CASES[name]
            assert basis in ("sto-3g", "6-31g")
            assert freeze >= 0


class TestHeavyHexProperties:
    def test_connector_degree_is_two(self):
        from repro.circuits import heavy_hex

        g = heavy_hex(4, 9, 4)
        n_row = 4 * 9
        for node in g.nodes:
            if node >= n_row:  # connector qubits
                assert g.degree[node] == 2

    def test_row_qubit_degree_bounded(self):
        from repro.circuits import heavy_hex

        g = heavy_hex(4, 9, 4)
        n_row = 4 * 9
        for node in range(n_row):
            assert g.degree[node] <= 4  # path (2) + up/down connectors
