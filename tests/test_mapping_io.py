"""Tests for mapping serialization and the CLI."""

import json

import pytest

from repro.cli import main
from repro.hatt import hatt_mapping
from repro.mappings import bravyi_kitaev, jordan_wigner
from repro.mappings.io import (
    load_mapping,
    mapping_from_dict,
    mapping_to_dict,
    save_mapping,
)
from repro.models import hubbard_case


class TestSerialization:
    def test_roundtrip_jw(self, tmp_path):
        mapping = jordan_wigner(5)
        path = tmp_path / "jw.json"
        save_mapping(mapping, path)
        loaded = load_mapping(path)
        assert loaded.strings == mapping.strings
        assert loaded.name == mapping.name
        assert loaded.n_modes == 5

    def test_roundtrip_hatt_with_discarded(self, tmp_path):
        h = hubbard_case("2x2")
        mapping = hatt_mapping(h)
        path = tmp_path / "hatt.json"
        save_mapping(mapping, path)
        loaded = load_mapping(path)
        assert loaded.strings == mapping.strings
        assert loaded.discarded == mapping.discarded.with_phase(0)
        assert loaded.preserves_vacuum()

    def test_loaded_mapping_reproduces_weight(self, tmp_path):
        h = hubbard_case("2x2")
        mapping = hatt_mapping(h)
        expected = mapping.map(h).pauli_weight()
        path = tmp_path / "m.json"
        save_mapping(mapping, path)
        assert load_mapping(path).map(h).pauli_weight() == expected

    def test_schema_validation(self):
        data = mapping_to_dict(bravyi_kitaev(3))
        data["schema"] = 99
        with pytest.raises(ValueError):
            mapping_from_dict(data)

    def test_json_is_human_readable(self, tmp_path):
        path = tmp_path / "m.json"
        save_mapping(jordan_wigner(2), path)
        data = json.loads(path.read_text())
        assert data["majorana_strings"][0] == "X0"


class TestCLI:
    def test_compare_hubbard(self, capsys):
        assert main(["compare", "hubbard:2x2", "--no-circuit"]) == 0
        out = capsys.readouterr().out
        assert "HATT" in out and "JW" in out
        assert "76" in out  # paper's 2x2 HATT weight

    def test_map_with_output(self, tmp_path, capsys):
        out_file = tmp_path / "mapping.json"
        code = main(
            ["map", "hubbard:2x2", "--mapping", "hatt", "--output", str(out_file)]
        )
        assert code == 0
        assert out_file.exists()
        loaded = load_mapping(out_file)
        assert loaded.n_modes == 8

    def test_map_show_strings(self, capsys):
        assert main(["map", "hubbard:1x2", "--mapping", "jw",
                     "--show-strings"]) == 0
        out = capsys.readouterr().out
        assert "M_0" in out

    def test_cases_listing(self, capsys):
        assert main(["cases"]) == 0
        out = capsys.readouterr().out
        assert "H2_sto3g" in out and "hubbard:" in out

    def test_neutrino_spec(self, capsys):
        assert main(["compare", "neutrino:2x2F", "--no-circuit"]) == 0
        assert "HATT" in capsys.readouterr().out
