"""Tests for mapping serialization and the CLI."""

import json

import pytest

from repro.cli import main
from repro.hatt import hatt_mapping
from repro.mappings import bravyi_kitaev, jordan_wigner
from repro.mappings.io import (
    load_mapping,
    mapping_from_dict,
    mapping_to_dict,
    save_mapping,
)
from repro.models import hubbard_case


class TestSerialization:
    def test_roundtrip_jw(self, tmp_path):
        mapping = jordan_wigner(5)
        path = tmp_path / "jw.json"
        save_mapping(mapping, path)
        loaded = load_mapping(path)
        assert loaded.strings == mapping.strings
        assert loaded.name == mapping.name
        assert loaded.n_modes == 5

    def test_roundtrip_hatt_with_discarded(self, tmp_path):
        h = hubbard_case("2x2")
        mapping = hatt_mapping(h)
        path = tmp_path / "hatt.json"
        save_mapping(mapping, path)
        loaded = load_mapping(path)
        assert loaded.strings == mapping.strings
        assert loaded.discarded == mapping.discarded.with_phase(0)
        assert loaded.preserves_vacuum()

    def test_loaded_mapping_reproduces_weight(self, tmp_path):
        h = hubbard_case("2x2")
        mapping = hatt_mapping(h)
        expected = mapping.map(h).pauli_weight()
        path = tmp_path / "m.json"
        save_mapping(mapping, path)
        assert load_mapping(path).map(h).pauli_weight() == expected

    def test_schema_validation(self):
        data = mapping_to_dict(bravyi_kitaev(3))
        data["schema"] = 99
        with pytest.raises(ValueError):
            mapping_from_dict(data)

    def test_json_is_human_readable(self, tmp_path):
        path = tmp_path / "m.json"
        save_mapping(jordan_wigner(2), path)
        data = json.loads(path.read_text())
        assert data["majorana_strings"][0] == "X0"


class TestSchemaV2:
    def test_v1_documents_still_load(self):
        """Regression: pre-v2 artifacts (no tree/provenance keys) load as-is."""
        mapping = hatt_mapping(hubbard_case("2x2"))
        v1 = {
            "schema": 1,
            "name": mapping.name,
            "n_modes": mapping.n_modes,
            "n_qubits": mapping.n_qubits,
            "majorana_strings": [s.compact() for s in mapping.strings],
            "phases": [s.phase for s in mapping.strings],
            "discarded": mapping.discarded.compact(),
        }
        loaded = mapping_from_dict(v1)
        assert loaded.strings == mapping.strings
        assert getattr(loaded, "tree", None) is None
        assert getattr(loaded, "provenance", None) is None

    def test_writer_emits_schema_2(self):
        assert mapping_to_dict(jordan_wigner(3))["schema"] == 2

    def test_hatt_tree_roundtrips(self, tmp_path):
        mapping = hatt_mapping(hubbard_case("2x2"))
        path = tmp_path / "m.json"
        save_mapping(mapping, path)
        data = json.loads(path.read_text())
        assert data["schema"] == 2
        assert len(data["tree"]["children_uids"]) == mapping.n_modes
        loaded = load_mapping(path)
        assert loaded.tree is not None
        derived = loaded.tree.strings_by_leaf_index()
        assert derived[:-1] == list(mapping.strings)
        assert derived[-1] == mapping.discarded.with_phase(0)
        # A second save round-trips the reconstructed tree unchanged.
        path2 = tmp_path / "m2.json"
        save_mapping(loaded, path2)
        assert json.loads(path2.read_text())["tree"] == data["tree"]

    def test_provenance_roundtrips(self, tmp_path):
        prov = {"compile_seconds": 1.5, "repro_version": "1.0.0"}
        path = tmp_path / "m.json"
        save_mapping(jordan_wigner(3), path, provenance=prov)
        loaded = load_mapping(path)
        assert loaded.provenance == prov
        # Carried through a re-save without an explicit provenance argument.
        path2 = tmp_path / "m2.json"
        save_mapping(loaded, path2)
        assert load_mapping(path2).provenance == prov

    def test_non_tree_mapping_has_null_tree(self):
        data = mapping_to_dict(bravyi_kitaev(3))
        assert data["tree"] is None

    def test_inconsistent_tree_rejected(self, tmp_path):
        mapping = hatt_mapping(hubbard_case("2x2"))
        data = mapping_to_dict(mapping)
        # Swap two internal-node triples: topology no longer regenerates the
        # stored strings.
        uids = data["tree"]["children_uids"]
        uids[0], uids[-1] = uids[-1], uids[0]
        with pytest.raises(ValueError):
            mapping_from_dict(data)

    def test_vacuum_paired_tree_not_embedded(self):
        """A tree whose Majorana order comes from vacuum pairing (not leaf
        order) is dropped at save time rather than failing at load time."""
        from repro.mappings import balanced_ternary_tree
        from repro.mappings.tree import balanced_tree

        mapping = balanced_ternary_tree(4)
        mapping.tree = balanced_tree(4)
        assert mapping_to_dict(mapping)["tree"] is None


class TestCLI:
    def test_compare_hubbard(self, capsys):
        assert main(["compare", "hubbard:2x2", "--no-circuit"]) == 0
        out = capsys.readouterr().out
        assert "HATT" in out and "JW" in out
        assert "76" in out  # paper's 2x2 HATT weight

    def test_map_with_output(self, tmp_path, capsys):
        out_file = tmp_path / "mapping.json"
        code = main(
            ["map", "hubbard:2x2", "--mapping", "hatt", "--output", str(out_file)]
        )
        assert code == 0
        assert out_file.exists()
        loaded = load_mapping(out_file)
        assert loaded.n_modes == 8

    def test_map_show_strings(self, capsys):
        assert main(["map", "hubbard:1x2", "--mapping", "jw",
                     "--show-strings"]) == 0
        out = capsys.readouterr().out
        assert "M_0" in out

    def test_cases_listing(self, capsys):
        assert main(["cases"]) == 0
        out = capsys.readouterr().out
        assert "H2_sto3g" in out and "hubbard:" in out

    def test_neutrino_spec(self, capsys):
        assert main(["compare", "neutrino:2x2F", "--no-circuit"]) == 0
        assert "HATT" in capsys.readouterr().out
