"""Tests for the evaluation pipeline and noisy-experiment harness."""

import pytest

from repro.analysis import (
    EnergyExperiment,
    MappingReport,
    compare_mappings,
    evaluate_mapping,
    format_table,
    noisy_energy_experiment,
    standard_mappings,
)
from repro.hatt import hatt_mapping
from repro.mappings import jordan_wigner
from repro.models import fermi_hubbard
from repro.models.electronic import electronic_case
from repro.sim import NoiseModel


class TestEvaluate:
    def test_weight_only(self):
        h = fermi_hubbard(1, 2)
        report = evaluate_mapping(h, jordan_wigner(4), compile_circuit=False)
        assert report.pauli_weight == 20
        assert report.cx_count is None

    def test_with_circuit(self):
        h = fermi_hubbard(1, 2)
        report = evaluate_mapping(h, jordan_wigner(4))
        assert report.cx_count > 0
        assert report.depth > 0
        assert report.u3_count > 0

    def test_grouped_synthesis(self):
        h = fermi_hubbard(1, 2)
        naive = evaluate_mapping(h, jordan_wigner(4), synthesis="naive")
        grouped = evaluate_mapping(h, jordan_wigner(4), synthesis="grouped")
        assert grouped.pauli_weight == naive.pauli_weight
        assert grouped.cx_count > 0

    def test_unknown_synthesis(self):
        with pytest.raises(ValueError):
            evaluate_mapping(fermi_hubbard(1, 2), jordan_wigner(4), synthesis="magic")

    def test_standard_mappings(self):
        maps = standard_mappings(4)
        assert set(maps) == {"JW", "BK", "BTT"}
        maps = standard_mappings(4, include_parity=True)
        assert "Parity" in maps

    def test_compare_includes_hatt(self):
        h = fermi_hubbard(1, 2)
        reports = compare_mappings(h, 4, compile_circuit=False, include_unopt=True)
        assert set(reports) == {"JW", "BK", "BTT", "HATT", "HATT-unopt"}
        assert reports["HATT"].pauli_weight <= reports["JW"].pauli_weight


class TestTables:
    def test_format_table(self):
        out = format_table("T", ["a", "bb"], [[1, 2], [333, 4]])
        lines = out.split("\n")
        assert lines[0] == "T"
        assert "333" in out
        # All data lines aligned to the same width.
        assert len(lines[2]) == len(lines[3])

    def test_report_row(self):
        r = MappingReport("JW", 4, 20, 12)
        assert r.row() == ["JW", 20, "-", "-"]


class TestNoisyExperiment:
    def test_h2_bias_ordering(self):
        """More noise -> more bias; HATT cx-count ≤ JW cx-count on H2."""
        case = electronic_case("H2_sto3g")
        jw = jordan_wigner(4)
        quiet = noisy_energy_experiment(
            case, jw, NoiseModel(p1=1e-5, p2=1e-4), shots=60, seed=3
        )
        loud = noisy_energy_experiment(
            case, jw, NoiseModel(p1=1e-2, p2=1e-1), shots=60, seed=3
        )
        assert isinstance(quiet, EnergyExperiment)
        assert loud.bias >= quiet.bias
        hatt = hatt_mapping(case.hamiltonian, n_modes=4)
        e = noisy_energy_experiment(case, hatt, NoiseModel(), shots=1)
        assert e.cx_count <= loud.cx_count

    def test_noiseless_close_to_scf(self):
        """Small Trotter time: noiseless energy ≈ SCF energy (energy is
        conserved up to Trotter error)."""
        case = electronic_case("H2_sto3g")
        exp = noisy_energy_experiment(
            case, jordan_wigner(4), NoiseModel(), shots=1, trotter_time=0.05
        )
        assert exp.noiseless == pytest.approx(case.scf_energy, abs=0.02)
