"""Tests for the async compilation-service API (repro.serve).

Covers the three tentpole guarantees:

* **schema** — every wire type round-trips through plain JSON with strict
  validation;
* **coalescing** — N concurrent identical cold requests execute exactly one
  compile (asserted deterministically with a gated executor, and end-to-end
  over HTTP with threaded and asyncio clients);
* **serving** — the HTTP surface (submit/poll/wait, artifacts, stats, error
  statuses) speaks the versioned envelope, and server-side LRU caps bound
  disk usage.
"""

import asyncio
import http.client
import json
import logging
import threading
import time
import urllib.request

import pytest

import repro.serve.queue as queue_mod
from repro.serve import (
    AsyncServiceClient,
    BackgroundServer,
    CompileRequest,
    JobQueue,
    JobRecord,
    JobStatus,
    ServiceClient,
    ServiceError,
    check_envelope,
    envelope,
)
from repro.service import MappingService


# ----------------------------------------------------------------------
# Schema round-trips and validation
# ----------------------------------------------------------------------
class TestCompileRequestSchema:
    @pytest.mark.parametrize("request_", [
        CompileRequest(case="hubbard:2x2"),
        CompileRequest(case="H2_sto3g", kind="bk", hatt_backend="scalar"),
        CompileRequest(case="hubbard:2x2", job="compile", arch="montreal",
                       term_order="lexicographic", lookahead=7,
                       router_backend="scalar"),
    ])
    def test_roundtrip(self, request_):
        assert CompileRequest.from_dict(request_.to_dict()) == request_
        assert CompileRequest.from_dict(
            json.loads(json.dumps(request_.to_dict()))) == request_

    @pytest.mark.parametrize("kwargs,match", [
        ({"case": ""}, "non-empty case"),
        ({"case": "x", "job": "evaluate"}, "unknown job"),
        ({"case": "x", "kind": "qiskit"}, "unknown mapping kind"),
        ({"case": "x", "hatt_backend": "gpu"}, "unknown hatt backend"),
        ({"case": "x", "router_backend": "gpu"}, "unknown router backend"),
        ({"case": "x", "term_order": "random"}, "unknown term order"),
        ({"case": "x", "lookahead": 0}, "positive int"),
        ({"case": "x", "lookahead": 1.5}, "positive int"),
        ({"case": "x", "job": "compile"}, "need arch"),
        ({"case": "x", "job": "compile", "arch": "osprey"}, "need arch"),
        ({"case": "x", "arch": "montreal"}, "map jobs take no arch"),
    ])
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            CompileRequest(**kwargs)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown request fields"):
            CompileRequest.from_dict({"case": "x", "backend": "vector"})

    def test_missing_case_rejected(self):
        with pytest.raises(ValueError, match="non-empty case"):
            CompileRequest.from_dict({"kind": "jw"})

    def test_coalesce_key_excludes_engine_hints(self):
        a = CompileRequest(case="hubbard:2x2", hatt_backend="vector")
        b = CompileRequest(case="hubbard:2x2", hatt_backend="scalar")
        assert a.coalesce_key() == b.coalesce_key()

    def test_coalesce_key_separates_work(self):
        base = CompileRequest(case="hubbard:2x2")
        for other in (
            CompileRequest(case="hubbard:1x2"),
            CompileRequest(case="hubbard:2x2", kind="jw"),
            CompileRequest(case="hubbard:2x2", job="compile", arch="montreal"),
        ):
            assert base.coalesce_key() != other.coalesce_key()

    def test_bridges_into_compile_stack(self):
        r = CompileRequest(case="x", job="compile", arch="sycamore",
                           kind="btt", lookahead=9, router_backend="scalar")
        assert r.spec().kind == "btt"
        opts = r.options()
        assert opts.lookahead == 9 and opts.router_backend == "scalar"

    def test_replace(self):
        r = CompileRequest(case="hubbard:2x2").replace(kind="jw")
        assert r.kind == "jw" and r.case == "hubbard:2x2"


class TestJobRecordSchema:
    def _record(self):
        return JobRecord(
            id="j00000001",
            request=CompileRequest(case="hubbard:2x2"),
            status=JobStatus.DONE,
            created_at=1.0,
            started_at=2.0,
            finished_at=5.0,
            fingerprint="ab" * 32,
            source="compiled",
            subscribers=3,
            result={"pauli_weight": 76},
        )

    def test_roundtrip(self):
        record = self._record()
        back = JobRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert back == record
        assert back.done and back.wall_seconds == 4.0

    def test_bad_status_rejected(self):
        doc = self._record().to_dict()
        doc["status"] = "exploded"
        with pytest.raises(ValueError, match="unknown job status"):
            JobRecord.from_dict(doc)

    def test_unknown_field_rejected(self):
        doc = self._record().to_dict()
        doc["priority"] = 9
        with pytest.raises(ValueError, match="unknown job-record fields"):
            JobRecord.from_dict(doc)

    def test_pending_record_has_no_wall_time(self):
        record = JobRecord(id="j1", request=CompileRequest(case="x"))
        assert not record.done and record.wall_seconds is None


class TestEnvelope:
    def test_shape_and_roundtrip(self):
        doc = envelope("stats", {"n": 1}, coalesced=True)
        assert doc == {"schema": "repro/v1", "command": "stats",
                       "result": {"n": 1}, "coalesced": True}
        assert check_envelope(json.loads(json.dumps(doc)), "stats") is not None

    @pytest.mark.parametrize("doc,match", [
        ([], "JSON object"),
        ({"command": "x", "result": 1}, "unsupported schema"),
        ({"schema": "repro/v0", "command": "x", "result": 1}, "unsupported schema"),
        ({"schema": "repro/v1", "command": "x"}, "needs 'command' and 'result'"),
    ])
    def test_rejections(self, doc, match):
        with pytest.raises(ValueError, match=match):
            check_envelope(doc)

    def test_command_mismatch(self):
        with pytest.raises(ValueError, match="expected command"):
            check_envelope(envelope("stats", 1), "jobs.get")


# ----------------------------------------------------------------------
# Job queue: lifecycle, coalescing, retention
# ----------------------------------------------------------------------
@pytest.fixture
def queue(tmp_path):
    service = MappingService(cache_dir=tmp_path / "cache")
    with JobQueue(service=service, workers=2) as q:
        yield q


class TestJobQueue:
    def test_map_job_lifecycle(self, queue):
        record, coalesced = queue.submit(CompileRequest(case="hubbard:2x2"))
        assert not coalesced and record.id == "j00000001"
        done = queue.wait(record.id, timeout=120)
        assert done.status == JobStatus.DONE and done.error is None
        assert done.result["pauli_weight"] == 76
        assert done.source == "compiled" and len(done.fingerprint) == 64
        assert done.wall_seconds is not None
        assert queue.stats()["executed"] == 1

    def test_compile_job_routes_circuit(self, queue):
        record, _ = queue.submit(CompileRequest(
            case="hubbard:1x2", job="compile", kind="jw", arch="montreal"))
        done = queue.wait(record.id, timeout=120)
        assert done.status == JobStatus.DONE
        assert done.result["metrics"]["routed_cx"] > 0
        assert queue.service.store.circuit_fingerprints() == [done.fingerprint]

    def test_bad_case_is_a_job_error(self, queue):
        record, _ = queue.submit(CompileRequest(case="no_such_case"))
        done = queue.wait(record.id, timeout=60)
        assert done.status == JobStatus.ERROR
        assert "ValueError" in done.error and done.result is None
        assert queue.stats()["errors"] == 1

    def test_unknown_job_raises(self, queue):
        assert queue.get("j99999999") is None
        with pytest.raises(KeyError):
            queue.wait("j99999999")

    def test_gated_coalescing_is_exactly_one_execution(self, queue, monkeypatch):
        gate = threading.Event()
        executions = []

        def fake_run(request, service):
            executions.append(request.case)
            assert gate.wait(30)
            return {"fingerprint": "ab" * 32, "source": "compiled"}

        monkeypatch.setattr(queue_mod, "_run_request", fake_run)
        request = CompileRequest(case="hubbard:2x2")
        first, coalesced = queue.submit(request)
        assert not coalesced
        followers = [queue.submit(request.replace(hatt_backend="scalar"))
                     for _ in range(7)]
        assert all(c for _, c in followers)
        assert {r.id for r, _ in followers} == {first.id}
        assert first.subscribers == 8
        gate.set()
        done = queue.wait(first.id, timeout=30)
        assert done.status == JobStatus.DONE
        assert executions == ["hubbard:2x2"]
        stats = queue.stats()
        assert stats["submitted"] == 8
        assert stats["coalesced"] == 7 and stats["executed"] == 1

    def test_key_released_after_completion(self, queue, monkeypatch):
        monkeypatch.setattr(
            queue_mod, "_run_request",
            lambda request, service: {"fingerprint": "cd" * 32, "source": "x"},
        )
        request = CompileRequest(case="hubbard:1x2")
        first, _ = queue.submit(request)
        queue.wait(first.id, timeout=30)
        second, coalesced = queue.submit(request)
        assert not coalesced and second.id != first.id
        queue.wait(second.id, timeout=30)

    def test_distinct_requests_do_not_coalesce(self, queue, monkeypatch):
        gate = threading.Event()
        monkeypatch.setattr(
            queue_mod, "_run_request",
            lambda request, service: (gate.wait(30) and None)
            or {"fingerprint": "ef" * 32, "source": "x"},
        )
        a, _ = queue.submit(CompileRequest(case="hubbard:2x2"))
        b, coalesced = queue.submit(CompileRequest(case="hubbard:2x2", kind="jw"))
        assert not coalesced and a.id != b.id
        gate.set()
        queue.wait(a.id, timeout=30)
        queue.wait(b.id, timeout=30)

    def test_completed_job_retention_is_bounded(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            queue_mod, "_run_request",
            lambda request, service: {"fingerprint": "01" * 32, "source": "x"},
        )
        service = MappingService(cache_dir=tmp_path / "cache")
        with JobQueue(service=service, workers=1, max_jobs=2) as q:
            for i in range(6):
                record, _ = q.submit(CompileRequest(case=f"hubbard:{i + 1}x2"))
                q.wait(record.id, timeout=30)
            assert sum(q.stats()["jobs"].values()) <= 2

    def test_process_executor_shares_disk_store(self, tmp_path):
        service = MappingService(cache_dir=tmp_path / "cache")
        with JobQueue(service=service, workers=1, executor="process") as q:
            record, _ = q.submit(CompileRequest(case="hubbard:1x2", kind="jw"))
            done = q.wait(record.id, timeout=300)
            assert done.status == JobStatus.DONE, done.error
            # The worker process wrote into the shared store.
            assert service.store.contains(done.fingerprint)
            again, _ = q.submit(CompileRequest(case="hubbard:1x2", kind="jw"))
            warm = q.wait(again.id, timeout=300)
            assert warm.status == JobStatus.DONE and warm.source == "disk"

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            JobQueue(executor="gpu")


# ----------------------------------------------------------------------
# HTTP end-to-end
# ----------------------------------------------------------------------
@pytest.fixture
def served(tmp_path):
    service = MappingService(cache_dir=tmp_path / "cache")
    with JobQueue(service=service, workers=2) as q, BackgroundServer(q) as bg:
        yield q, bg


class TestHttpServer:
    def test_healthz_and_stats(self, served):
        _q, bg = served
        with ServiceClient(bg.host, bg.port) as client:
            assert client.healthy()
            stats = client.stats()
            assert stats["executor"] == "thread"
            assert stats["server"]["port"] == bg.port
            assert stats["service"]["memory_entries"] == 0

    def test_submit_wait_poll_and_artifact(self, served):
        _q, bg = served
        with ServiceClient(bg.host, bg.port) as client:
            record = client.submit(
                CompileRequest(case="hubbard:2x2"), wait=True, timeout=120)
            assert record.status == JobStatus.DONE
            assert record.result["pauli_weight"] == 76
            polled = client.job(record.id)
            assert polled.id == record.id and polled.status == JobStatus.DONE
            artifact = client.artifact(record.fingerprint)
            assert artifact["namespace"] == "mappings"
            assert artifact["artifact"]["schema"] == 2

    def test_eight_concurrent_cold_requests_compile_once(self, served, monkeypatch):
        """The acceptance e2e: N=8 identical cold submissions → 1 compile.

        The (real) compile is gated until every client's submission has
        registered, so the exactly-one-compile assertion doesn't depend on
        compile wall time racing the HTTP round trips.
        """
        queue, bg = served
        all_submitted = threading.Event()
        real_run = queue_mod._run_request
        monkeypatch.setattr(
            queue_mod, "_run_request",
            lambda request, service: (all_submitted.wait(60) and None)
            or real_run(request, service),
        )
        request = CompileRequest(case="hubbard:2x2")
        records, errors = [], []

        def client_thread():
            try:
                with ServiceClient(bg.host, bg.port) as client:
                    records.append(client.submit(request, wait=True, timeout=300))
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=client_thread) for _ in range(8)]
        for t in threads:
            t.start()
        deadline = time.monotonic() + 30
        while queue.stats()["submitted"] < 8 and time.monotonic() < deadline:
            time.sleep(0.01)
        all_submitted.set()
        for t in threads:
            t.join()
        assert not errors
        assert len(records) == 8
        assert {r.id for r in records} == {records[0].id}  # one shared job
        assert all(r.status == JobStatus.DONE for r in records)
        stats = queue.stats()
        assert stats["executed"] == 1
        assert stats["coalesced"] == 7
        assert stats["service"]["compiles"] == 1
        # A later identical request is a fresh job served from warm cache.
        with ServiceClient(bg.host, bg.port) as client:
            warm = client.submit(request, wait=True, timeout=60)
        assert warm.id != records[0].id
        assert warm.source in ("memory", "disk")

    def test_asyncio_clients_coalesce(self, served, monkeypatch):
        queue, bg = served
        all_submitted = threading.Event()
        real_run = queue_mod._run_request
        monkeypatch.setattr(
            queue_mod, "_run_request",
            lambda request, service: (all_submitted.wait(60) and None)
            or real_run(request, service),
        )

        def release_when_all_in():
            deadline = time.monotonic() + 30
            while queue.stats()["submitted"] < 8 and time.monotonic() < deadline:
                time.sleep(0.01)
            all_submitted.set()

        threading.Thread(target=release_when_all_in, daemon=True).start()
        request = CompileRequest(case="hubbard:2x2", kind="btt")

        async def main():
            client = AsyncServiceClient(bg.host, bg.port)
            return await asyncio.gather(
                *(client.submit(request, wait=True, timeout=300)
                  for _ in range(8))
            )

        records = asyncio.run(main())
        assert {r.id for r in records} == {records[0].id}
        assert all(r.status == JobStatus.DONE for r in records)
        assert queue.stats()["executed"] == 1

        async def poll():
            client = AsyncServiceClient(bg.host, bg.port)
            record = await client.job(records[0].id)
            stats = await client.stats()
            return record, stats

        polled, stats = asyncio.run(poll())
        assert polled.status == JobStatus.DONE
        assert stats["service"]["compiles"] == 1

    def test_compile_job_artifact_served_from_circuits_namespace(self, served):
        _q, bg = served
        with ServiceClient(bg.host, bg.port) as client:
            record = client.submit(
                CompileRequest(case="hubbard:1x2", job="compile", kind="jw",
                               arch="ionq_forte"),
                wait=True, timeout=300)
            assert record.status == JobStatus.DONE
            artifact = client.artifact(record.fingerprint)
            assert artifact["namespace"] == "circuits"
            assert artifact["artifact"]["routed_cx"] > 0

    def test_malformed_fingerprint_is_400(self, served):
        _q, bg = served
        with ServiceClient(bg.host, bg.port) as client:
            with pytest.raises(ServiceError) as err:
                client.artifact("zz" * 16)
            assert err.value.status == 400

    def test_wait_timeout_degrades_to_poll(self, served, monkeypatch):
        queue, bg = served
        gate = threading.Event()
        monkeypatch.setattr(
            queue_mod, "_run_request",
            lambda request, service: (gate.wait(30) and None)
            or {"fingerprint": "aa" * 32, "source": "compiled"},
        )
        with ServiceClient(bg.host, bg.port) as client:
            record = client.submit(
                CompileRequest(case="hubbard:2x2"), wait=True, timeout=0.2)
            assert not record.done  # 202: still in flight after the timeout
            gate.set()
            queue.wait(record.id, timeout=30)
            assert client.job(record.id).status == JobStatus.DONE

    @pytest.mark.parametrize("body,match", [
        ({"case": "x", "bogus": 1}, "unknown request fields"),
        ({"kind": "jw"}, "non-empty case"),
    ])
    def test_invalid_request_is_400(self, served, body, match):
        _q, bg = served
        with ServiceClient(bg.host, bg.port) as client:
            with pytest.raises(ServiceError, match=match) as err:
                client.submit(body)
            assert err.value.status == 400

    def test_malformed_json_body_is_400(self, served):
        _q, bg = served
        req = urllib.request.Request(
            f"http://{bg.host}:{bg.port}/v1/jobs", data=b"{ torn", method="POST")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req)
        assert err.value.code == 400

    def test_unknown_job_and_artifact_are_404(self, served):
        _q, bg = served
        with ServiceClient(bg.host, bg.port) as client:
            with pytest.raises(ServiceError) as err:
                client.job("j99999999")
            assert err.value.status == 404
            with pytest.raises(ServiceError) as err:
                client.artifact("ab" * 32)
            assert err.value.status == 404

    def test_wrong_method_is_405_and_unknown_route_404(self, served):
        _q, bg = served
        base = f"http://{bg.host}:{bg.port}"
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"{base}/v1/jobs")  # GET on POST route
        assert err.value.code == 405
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"{base}/v2/everything")
        assert err.value.code == 404
        doc = json.loads(err.value.read())
        assert doc["schema"] == "repro/v1" and "error" in doc

    def test_server_side_lru_cap_bounds_disk(self, tmp_path):
        cap = 2000
        service = MappingService(
            cache_dir=tmp_path / "cache", max_bytes={"mappings": cap})
        with JobQueue(service=service, workers=1) as q, BackgroundServer(q) as bg:
            with ServiceClient(bg.host, bg.port) as client:
                for case in ("hubbard:1x2", "hubbard:2x2", "hubbard:1x3"):
                    record = client.submit(
                        CompileRequest(case=case), wait=True, timeout=120)
                    assert record.status == JobStatus.DONE
                stats = client.stats()
        usage = stats["service"]["store"]["namespaces"]["mappings"]
        assert 0 < usage["bytes"] <= cap
        assert usage["evictions"] >= 1


class TestRunServer:
    def test_serves_until_cancelled(self, tmp_path):
        """The blocking ``repro serve`` entry point, stopped from outside."""
        from repro.serve.server import run_server

        holder = {}
        ready_event = threading.Event()

        def ready(server):
            holder["server"] = server
            holder["loop"] = asyncio.get_running_loop()
            ready_event.set()

        service = MappingService(cache_dir=tmp_path / "cache")
        with JobQueue(service=service, workers=1) as q:
            thread = threading.Thread(
                target=run_server,
                kwargs={"queue": q, "host": "127.0.0.1", "port": 0,
                        "ready": ready},
                daemon=True,
            )
            thread.start()
            assert ready_event.wait(10)
            with ServiceClient("127.0.0.1", holder["server"].port) as client:
                assert client.healthy()
            loop = holder["loop"]
            loop.call_soon_threadsafe(
                lambda: [task.cancel() for task in asyncio.all_tasks(loop)])
            thread.join(timeout=10)
            assert not thread.is_alive()


class TestBackgroundServer:
    def test_restartable_and_isolated(self, tmp_path):
        service = MappingService(cache_dir=tmp_path / "cache")
        with JobQueue(service=service, workers=1) as q:
            with BackgroundServer(q) as bg1:
                port1 = bg1.port
                with ServiceClient(bg1.host, port1) as c:
                    assert c.healthy()
            # The queue survives its server; a new server reattaches.
            with BackgroundServer(q) as bg2:
                with ServiceClient(bg2.host, bg2.port) as c:
                    assert c.healthy()


class TestArchRequestSchema:
    """hatt-arch requests across the wire surface."""

    def test_map_job_accepts_arch_for_hatt_arch(self):
        r = CompileRequest(case="hubbard:1x2", kind="hatt-arch", arch="montreal")
        assert CompileRequest.from_dict(r.to_dict()) == r
        spec = r.spec()
        assert spec.kind == "hatt-arch" and spec.arch == "montreal"

    def test_arch_weight_round_trips_and_reaches_spec(self):
        r = CompileRequest(case="hubbard:1x2", kind="hatt-arch",
                           arch="sycamore", arch_weight=0.5)
        assert CompileRequest.from_dict(json.loads(json.dumps(r.to_dict()))) == r
        assert r.spec().arch_weight == 0.5

    @pytest.mark.parametrize("kwargs,match", [
        ({"case": "x", "kind": "hatt-arch"}, "need arch"),
        ({"case": "x", "kind": "hatt-arch", "arch": "osprey"}, "need arch"),
        ({"case": "x", "arch": "montreal"}, "map jobs take no arch"),
        ({"case": "x", "arch_weight": 0.5}, "only applies to kind='hatt-arch'"),
        ({"case": "x", "kind": "hatt-arch", "arch": "montreal",
          "arch_weight": -1.0}, "finite number"),
        ({"case": "x", "kind": "hatt-arch", "arch": "montreal",
          "arch_weight": float("nan")}, "finite number"),
    ])
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            CompileRequest(**kwargs)

    def test_arch_weight_forks_coalesce_key(self):
        a = CompileRequest(case="hubbard:1x2", kind="hatt-arch", arch="montreal")
        b = a.replace(arch_weight=1.0)
        c = a.replace(arch="sycamore")
        assert len({a.coalesce_key(), b.coalesce_key(), c.coalesce_key()}) == 3

    def test_map_job_executes_end_to_end(self, tmp_path):
        service = MappingService(cache_dir=tmp_path / "cache")
        with JobQueue(service=service, workers=1) as q:
            rec, _ = q.submit(CompileRequest(
                case="hubbard:1x2", kind="hatt-arch", arch="montreal"))
            done = q.wait(rec.id, timeout=120)
            assert done.status == JobStatus.DONE, done.error
            assert done.result["kind"] == "hatt-arch"
            # Distinct architecture → distinct mappings/v1 entry.
            rec2, _ = q.submit(CompileRequest(
                case="hubbard:1x2", kind="hatt-arch", arch="sycamore"))
            done2 = q.wait(rec2.id, timeout=120)
            assert done2.status == JobStatus.DONE, done2.error
            assert done2.fingerprint != done.fingerprint


class TestJobRetentionPinning:
    """A completed record a waiter still holds must survive trimming."""

    @staticmethod
    def _fast_queue(tmp_path, monkeypatch, max_jobs=1):
        monkeypatch.setattr(
            queue_mod, "_run_request",
            lambda request, service: {"fingerprint": "01" * 32, "source": "x"},
        )
        service = MappingService(cache_dir=tmp_path / "cache")
        return JobQueue(service=service, workers=1, max_jobs=max_jobs)

    def test_pinned_record_survives_submission_burst(self, tmp_path, monkeypatch):
        with self._fast_queue(tmp_path, monkeypatch) as q:
            a, _ = q.submit(CompileRequest(case="hubbard:1x2"))
            q.wait(a.id, timeout=30)
            q.pin(a.id)
            try:
                for i in range(4):
                    r, _ = q.submit(CompileRequest(case=f"hubbard:{i + 2}x2"))
                    q.wait(r.id, timeout=30)
                assert q.get(a.id) is not None  # would 404 without the pin
            finally:
                q.unpin(a.id)
            # Unpinned, the next trim may reclaim it.
            r, _ = q.submit(CompileRequest(case="hubbard:9x2"))
            q.wait(r.id, timeout=30)
            assert q.get(a.id) is None

    def test_pins_are_counted(self, tmp_path, monkeypatch):
        with self._fast_queue(tmp_path, monkeypatch) as q:
            a, _ = q.submit(CompileRequest(case="hubbard:1x2"))
            q.wait(a.id, timeout=30)
            q.pin(a.id)
            q.pin(a.id)
            q.unpin(a.id)  # one waiter left → still protected
            for i in range(3):
                r, _ = q.submit(CompileRequest(case=f"hubbard:{i + 2}x2"))
                q.wait(r.id, timeout=30)
            assert q.get(a.id) is not None
            q.unpin(a.id)

    def test_wait_pins_against_concurrent_trim(self, tmp_path, monkeypatch):
        """The end-to-end regression: wait() returns the settled record even
        when a submission burst trims the table while it waits."""
        gate = threading.Event()

        def run(request, service):
            if request.case == "slow:1x1":
                gate.wait(30)
            return {"fingerprint": "01" * 32, "source": "x"}

        monkeypatch.setattr(queue_mod, "_run_request", run)
        service = MappingService(cache_dir=tmp_path / "cache")
        with JobQueue(service=service, workers=2, max_jobs=1) as q:
            slow, _ = q.submit(CompileRequest(case="slow:1x1"))
            out = {}
            waiter = threading.Thread(
                target=lambda: out.update(rec=q.wait(slow.id, timeout=60)))
            waiter.start()
            for i in range(4):
                r, _ = q.submit(CompileRequest(case=f"hubbard:{i + 1}x2"))
                q.wait(r.id, timeout=30)
            gate.set()
            waiter.join(60)
            assert out["rec"] is not None
            assert out["rec"].status == JobStatus.DONE


class TestQueryParamValidation:
    """Malformed ?wait=/?timeout= are client errors, not 500s."""

    def _post(self, bg, query):
        body = json.dumps({"case": "hubbard:1x2", "kind": "jw"}).encode()
        req = urllib.request.Request(
            f"http://{bg.host}:{bg.port}/v1/jobs{query}", data=body,
            method="POST", headers={"Content-Type": "application/json"})
        return urllib.request.urlopen(req, timeout=120)

    @pytest.mark.parametrize("query", [
        "?wait=1&timeout=abc",
        "?wait=1&timeout=-5",
        "?wait=1&timeout=0",
        "?wait=1&timeout=nan",
        "?wait=1&timeout=inf",
        "?wait=maybe",
        "?wait=2",
    ])
    def test_bad_params_are_400_envelopes(self, served, query):
        _q, bg = served
        with pytest.raises(urllib.error.HTTPError) as err:
            self._post(bg, query)
        assert err.value.code == 400
        doc = json.loads(err.value.read())
        assert doc["schema"] == "repro/v1" and "error" in doc

    def test_bad_params_never_enqueue_work(self, served):
        q, bg = served
        before = q.stats()["submitted"]
        with pytest.raises(urllib.error.HTTPError):
            self._post(bg, "?wait=1&timeout=abc")
        assert q.stats()["submitted"] == before

    @pytest.mark.parametrize("query", ["", "?wait=0", "?wait=false", "?wait=no"])
    def test_valid_falsy_waits_accepted(self, served, query):
        _q, bg = served
        with self._post(bg, query) as resp:
            assert resp.status in (200, 202)

    def test_valid_truthy_wait_accepted(self, served):
        _q, bg = served
        with self._post(bg, "?wait=yes&timeout=120") as resp:
            doc = json.loads(resp.read())
            assert doc["result"]["status"] == JobStatus.DONE

    def test_bad_content_length_is_400_not_dropped(self, served):
        """A _BadRequest from header/body parsing must answer, not vanish."""
        import socket

        _q, bg = served
        with socket.create_connection((bg.host, bg.port), timeout=30) as sock:
            sock.sendall(b"POST /v1/jobs HTTP/1.1\r\n"
                         b"Host: x\r\nContent-Length: nope\r\n\r\n")
            data = sock.recv(65536)
        assert data.startswith(b"HTTP/1.1 400")


# ----------------------------------------------------------------------
# Observability: /v1/metrics, trace blocks, enriched stats, shed logging
# ----------------------------------------------------------------------
@pytest.fixture
def observed(tmp_path):
    """A served stack with its own registry (no global-registry bleed)."""
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    service = MappingService(cache_dir=tmp_path / "cache", registry=registry)
    with JobQueue(service=service, workers=2, registry=registry) as q, \
            BackgroundServer(q) as bg:
        yield q, bg, registry


class TestObservability:
    def test_envelope_trace_block_round_trip(self, observed):
        _q, bg, _reg = observed
        with ServiceClient(bg.host, bg.port) as client:
            record = client.submit(
                CompileRequest(case="hubbard:2x2"), wait=True, timeout=120)
            trace = client.last_trace
            assert trace is not None
            assert trace["trace_id"] == record.trace_id
            assert trace["duration_ms"] >= 0
            # The worker-side spans carry the same trace id end to end.
            assert record.result["trace"]["trace_id"] == record.trace_id
            stages = {s["stage"] for s in record.result["trace"]["spans"]}
            assert "tree_construction" in stages
            # And the envelope survives a plain poll too.
            polled = client.job(record.id)
            assert polled.trace_id == record.trace_id

    def test_coalesced_submission_inherits_trace_id(self, observed, monkeypatch):
        queue, bg, _reg = observed
        gate = threading.Event()

        def slow_run(request, service):
            assert gate.wait(30)
            return {"fingerprint": "ab" * 32, "source": "compiled"}

        monkeypatch.setattr(queue_mod, "_run_request", slow_run)
        with ServiceClient(bg.host, bg.port) as client:
            first = client.submit(CompileRequest(case="hubbard:2x3"))
            first_trace = dict(client.last_trace)
            twin = client.submit(CompileRequest(case="hubbard:2x3"))
            assert twin.id == first.id
            assert client.last_trace["trace_id"] == first_trace["trace_id"]
            gate.set()
            queue.wait(first.id, timeout=30)

    def test_metrics_endpoint_serves_valid_prometheus(self, observed):
        from test_obs import parse_prometheus

        _q, bg, _reg = observed
        with ServiceClient(bg.host, bg.port) as client:
            cold = client.submit(
                CompileRequest(case="hubbard:2x2"), wait=True, timeout=120)
            assert cold.source == "compiled"
            warm = client.submit(
                CompileRequest(case="hubbard:2x2"), wait=True, timeout=120)
            assert warm.source in ("memory", "disk")
            families = parse_prometheus(client.metrics())
        assert families["repro_jobs_total"]["type"] == "counter"
        assert families["repro_jobs_total"]["samples"][
            'repro_jobs_total{state="done"}'] == 2
        hits = families["repro_cache_hits_total"]["samples"]
        assert sum(hits.values()) >= 1
        compile_hist = families["repro_compile_seconds"]["samples"]
        assert compile_hist["repro_compile_seconds_count"] == 1
        assert compile_hist["repro_compile_seconds_sum"] > 0
        stage_hist = families["repro_stage_seconds"]["samples"]
        assert any("tree_construction" in k for k in stage_hist)
        assert families["repro_queue_depth"]["samples"]["repro_queue_depth"] == 0
        http = families["repro_http_requests_total"]["samples"]
        assert any('route="/v1/jobs"' in k and 'status="200"' in k
                   for k in http)

    def test_metrics_endpoint_rejects_post(self, observed):
        _q, bg, _reg = observed
        conn = http.client.HTTPConnection(bg.host, bg.port, timeout=30)
        try:
            conn.request("POST", "/v1/metrics")
            resp = conn.getresponse()
            assert resp.status == 405
            resp.read()
        finally:
            conn.close()

    def test_stats_carry_depth_hint_and_metrics(self, observed):
        _q, bg, _reg = observed
        with ServiceClient(bg.host, bg.port) as client:
            client.submit(
                CompileRequest(case="hubbard:1x2"), wait=True, timeout=120)
            stats = client.stats()
        assert stats["queue_depth"] == 0
        assert stats["retry_after_hint"] == 1.0
        snap = stats["metrics"]
        assert snap["repro_jobs_submitted_total"]["values"][""] == 1
        assert snap["repro_jobs_total"]["values"]["state=done"] == 1

    def test_shed_503_logs_warning_with_trace_id(self, observed, monkeypatch):
        queue, bg, _reg = observed
        queue.drain(timeout=0.5)
        captured = []

        class Capture(logging.Handler):
            def emit(self, record):
                captured.append(record)

        server_logger = logging.getLogger("repro.serve.server")
        handler = Capture(level=logging.WARNING)
        server_logger.addHandler(handler)
        try:
            with ServiceClient(bg.host, bg.port) as client:
                with pytest.raises(ServiceError) as err:
                    client.submit(CompileRequest(case="hubbard:1x2"))
            assert err.value.status == 503
        finally:
            server_logger.removeHandler(handler)
        sheds = [r for r in captured if "shed submission" in r.getMessage()]
        assert sheds, [r.getMessage() for r in captured]
        assert sheds[0].trace_id
        assert sheds[0].reason == "ServiceDraining"
