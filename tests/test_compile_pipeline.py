"""Tests for the hardware compilation pipeline (repro.compile)."""

import pytest

from repro.compile import (
    ARCHITECTURES,
    CIRCUIT_SCHEMA,
    CompilationPipeline,
    CompileOptions,
    RoutedMetrics,
    circuit_fingerprint,
)
from repro.models import load_case
from repro.service import MappingService


@pytest.fixture(scope="module")
def h2():
    return load_case("H2_sto3g")


class TestCompileOptions:
    def test_defaults(self):
        opts = CompileOptions()
        assert opts.term_order == "mutual"
        assert opts.router_backend == "vector"

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            CompileOptions(term_order="alphabetical")

    def test_rejects_bad_backend(self):
        with pytest.raises(ValueError):
            CompileOptions(router_backend="gpu")

    def test_router_backend_not_cache_material(self):
        vec = CompileOptions(router_backend="vector")
        sca = CompileOptions(router_backend="scalar")
        assert circuit_fingerprint("ef" * 32, "ab" * 32, "montreal", vec) == (
            circuit_fingerprint("ef" * 32, "ab" * 32, "montreal", sca)
        )

    def test_options_fork_fingerprint(self):
        base = CompileOptions()
        fp = circuit_fingerprint("ef" * 32, "ab" * 32, "montreal", base)
        assert fp != circuit_fingerprint("ef" * 32, "cd" * 32, "montreal", base)
        assert fp != circuit_fingerprint("00" * 32, "ab" * 32, "montreal", base)
        assert fp != circuit_fingerprint("ef" * 32, "ab" * 32, "sycamore", base)
        assert fp != circuit_fingerprint(
            "ef" * 32, "ab" * 32, "montreal", CompileOptions(lookahead=8)
        )
        assert fp != circuit_fingerprint(
            "ef" * 32, "ab" * 32, "montreal", CompileOptions(term_order="lexicographic")
        )
        assert fp != circuit_fingerprint(
            "ef" * 32, "ab" * 32, "montreal", CompileOptions(trotter_steps=2)
        )


class TestCompileOne:
    def test_metrics_shape(self, h2):
        pipeline = CompilationPipeline()
        m = pipeline.compile_one(h2, "hatt", "montreal")
        assert m.kind == "hatt" and m.architecture == "montreal"
        assert m.n_qubits == 4 and m.n_physical == 27
        assert m.routed_cx >= m.logical_cx  # routing can only add CX
        assert m.routed_depth > 0 and m.pauli_weight > 0
        assert m.source == "computed"
        assert len(m.fingerprint) == 64

    def test_all_to_all_needs_no_swaps(self, h2):
        m = CompilationPipeline().compile_one(h2, "jw", "ionq_forte")
        assert m.routed_swaps == 0
        assert m.routed_cx == m.logical_cx

    def test_router_backends_agree(self, h2):
        vec = CompilationPipeline(options=CompileOptions(router_backend="vector"))
        sca = CompilationPipeline(options=CompileOptions(router_backend="scalar"))
        mv = vec.compile_one(h2, "jw", "sycamore")
        ms = sca.compile_one(h2, "jw", "sycamore")
        assert mv.to_dict() == ms.to_dict()

    def test_graph_shared_across_pipeline(self, h2):
        pipeline = CompilationPipeline()
        assert pipeline.graph("montreal") is pipeline.graph("montreal")


class TestSweep:
    def test_sweep_covers_grid(self, h2):
        report = CompilationPipeline().sweep(
            h2, kinds=("jw", "hatt"), architectures=("montreal", "ionq_forte"),
            case="H2_sto3g",
        )
        assert set(report.metrics) == {"montreal", "ionq_forte"}
        assert set(report.metrics["montreal"]) == {"jw", "hatt"}
        assert len(report.rows()) == 4

    def test_table_and_dict(self, h2):
        report = CompilationPipeline().sweep(
            h2, kinds=("jw",), architectures=("montreal",), case="H2_sto3g"
        )
        text = report.table()
        assert "H2_sto3g" in text and "montreal" in text
        payload = report.to_dict()
        assert payload["case"] == "H2_sto3g"
        assert payload["metrics"]["montreal"]["jw"]["routed_cx"] > 0

    def test_default_architectures(self, h2):
        report = CompilationPipeline().sweep(h2, kinds=("jw",))
        assert tuple(report.metrics) == ARCHITECTURES


class TestCircuitCache:
    def test_cold_then_warm(self, h2, tmp_path):
        service = MappingService(cache_dir=str(tmp_path))
        pipeline = CompilationPipeline(service=service)
        cold = pipeline.compile_one(h2, "hatt", "montreal")
        assert pipeline.stats == {"routed": 1, "circuit_hits": 0}
        warm = pipeline.compile_one(h2, "hatt", "montreal")
        assert pipeline.stats == {"routed": 1, "circuit_hits": 1}
        assert warm.source == "cache"
        assert warm.artifact() == cold.artifact()

    def test_warm_across_pipelines(self, h2, tmp_path):
        service = MappingService(cache_dir=str(tmp_path))
        cold = CompilationPipeline(service=service).compile_one(h2, "jw", "sycamore")
        fresh = CompilationPipeline(service=service)
        warm = fresh.compile_one(h2, "jw", "sycamore")
        assert fresh.stats["routed"] == 0
        assert warm.artifact() == cold.artifact()

    def test_scalar_backend_hits_vector_artifact(self, h2, tmp_path):
        service = MappingService(cache_dir=str(tmp_path))
        CompilationPipeline(
            service=service, options=CompileOptions(router_backend="vector")
        ).compile_one(h2, "jw", "montreal")
        sca = CompilationPipeline(
            service=service, options=CompileOptions(router_backend="scalar")
        )
        m = sca.compile_one(h2, "jw", "montreal")
        assert m.source == "cache" and sca.stats["routed"] == 0

    def test_option_change_misses(self, h2, tmp_path):
        service = MappingService(cache_dir=str(tmp_path))
        CompilationPipeline(service=service).compile_one(h2, "jw", "montreal")
        other = CompilationPipeline(
            service=service, options=CompileOptions(lookahead=8)
        )
        other.compile_one(h2, "jw", "montreal")
        assert other.stats["routed"] == 1

    def test_schema_drift_recomputes(self, h2, tmp_path):
        service = MappingService(cache_dir=str(tmp_path))
        pipeline = CompilationPipeline(service=service)
        m = pipeline.compile_one(h2, "jw", "montreal")
        doc = service.store.get_circuit_report(m.fingerprint)
        doc["circuit_schema"] = CIRCUIT_SCHEMA + 1
        service.store.put_circuit_report(m.fingerprint, doc)
        again = pipeline.compile_one(h2, "jw", "montreal")
        assert again.source == "computed"

    def test_corrupt_artifact_recomputes(self, h2, tmp_path):
        service = MappingService(cache_dir=str(tmp_path))
        pipeline = CompilationPipeline(service=service)
        m = pipeline.compile_one(h2, "jw", "montreal")
        service.store.circuit_path(m.fingerprint).write_text("{ nope")
        again = pipeline.compile_one(h2, "jw", "montreal")
        assert again.source == "computed"
        assert again.artifact() == m.artifact()

    def test_static_kinds_do_not_collide_across_hamiltonians(self, h2, tmp_path):
        """Regression: jw/bk/btt mapping fingerprints are keyed on
        (kind, n_modes) only, but routed circuits depend on the Hamiltonian —
        two same-width cases must not share a circuit artifact."""
        service = MappingService(cache_dir=str(tmp_path))
        pipeline = CompilationPipeline(service=service)
        m_h2 = pipeline.compile_one(h2, "jw", "montreal")
        other = load_case("hubbard:1x2")  # also 4 modes
        m_hub = pipeline.compile_one(other, "jw", "montreal")
        assert m_hub.source == "computed"
        assert m_hub.fingerprint != m_h2.fingerprint
        assert m_hub.routed_cx != m_h2.routed_cx

    def test_no_service_keeps_nothing(self, h2):
        pipeline = CompilationPipeline()
        pipeline.compile_one(h2, "jw", "montreal")
        pipeline.compile_one(h2, "jw", "montreal")
        assert pipeline.stats == {"routed": 2, "circuit_hits": 0}


class TestRoutedMetricsRoundtrip:
    def test_artifact_roundtrip(self, h2):
        m = CompilationPipeline().compile_one(h2, "bk", "manhattan")
        restored = RoutedMetrics.from_artifact(m.artifact())
        assert restored == m  # source is excluded from equality
        assert restored.source == "cache"

    def test_bad_schema_rejected(self):
        with pytest.raises(ValueError):
            RoutedMetrics.from_artifact({"circuit_schema": 999})


class TestWithOptions:
    def test_clone_shares_graphs_and_service(self, h2, tmp_path):
        service = MappingService(cache_dir=str(tmp_path))
        base = CompilationPipeline(service=service)
        base.graph("montreal")
        clone = base.with_options(lookahead=8)
        assert clone.options.lookahead == 8
        assert clone.service is service
        assert clone.graph("montreal") is base.graph("montreal")
