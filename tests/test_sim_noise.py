"""Tests for noise models, noisy trajectories, and state preparation."""

import numpy as np
import pytest

from repro.circuits import Circuit, trotter_circuit
from repro.hatt import hatt_mapping
from repro.mappings import balanced_ternary_tree, bravyi_kitaev, jordan_wigner
from repro.models.electronic import electronic_case
from repro.paulis import QubitOperator
from repro.sim import (
    NoiseModel,
    Statevector,
    ionq_forte_noise_model,
    noisy_expectations,
    occupation_state_circuit,
    occupation_statevector,
)


class TestNoiseModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(p1=-0.1).validate()
        with pytest.raises(ValueError):
            NoiseModel(p2=1.5).validate()
        NoiseModel(p1=0.01, p2=0.05, readout=0.02).validate()

    def test_ionq_forte_rates(self):
        nm = ionq_forte_noise_model()
        assert nm.p1 == pytest.approx(0.0002)
        assert nm.p2 == pytest.approx(0.0101)
        assert nm.readout == pytest.approx(0.0098)


class TestNoisyExpectations:
    def setup_method(self):
        self.h = QubitOperator.from_label_dict({"ZI": 1.0, "IZ": 1.0, "XX": 0.3})
        self.circuit = trotter_circuit(self.h, time=0.4)

    def test_zero_noise_zero_bias(self):
        res = noisy_expectations(self.circuit, self.h, NoiseModel(), shots=20)
        assert res.bias == pytest.approx(0.0, abs=1e-12)
        assert res.variance == pytest.approx(0.0, abs=1e-12)

    def test_noise_increases_bias_and_variance(self):
        low = noisy_expectations(
            self.circuit, self.h, NoiseModel(p1=1e-4, p2=1e-3), shots=300, seed=1
        )
        high = noisy_expectations(
            self.circuit, self.h, NoiseModel(p1=1e-2, p2=1e-1), shots=300, seed=1
        )
        assert high.bias > low.bias
        assert high.variance > low.variance

    def test_energy_conserved_noiselessly(self):
        """e^{-iHt} preserves ⟨H⟩ exactly when the Trotterization is exact
        (commuting terms) — the experiment's theoretical reference."""
        h = QubitOperator.from_label_dict({"ZI": 1.0, "IZ": 1.0, "ZZ": 0.3})
        circuit = trotter_circuit(h, time=0.4)
        e0 = Statevector(2).expectation(h)
        res = noisy_expectations(circuit, h, NoiseModel(), shots=5)
        assert res.noiseless == pytest.approx(e0, abs=1e-9)

    def test_deterministic_given_seed(self):
        nm = NoiseModel(p1=1e-3, p2=1e-2)
        a = noisy_expectations(self.circuit, self.h, nm, shots=50, seed=7)
        b = noisy_expectations(self.circuit, self.h, nm, shots=50, seed=7)
        np.testing.assert_allclose(a.energies, b.energies)


class TestStatePrep:
    @pytest.mark.parametrize(
        "factory", [jordan_wigner, bravyi_kitaev, balanced_ternary_tree]
    )
    def test_occupation_numbers(self, factory):
        mapping = factory(4)
        occupied = [1, 3]
        state = occupation_statevector(mapping, occupied)
        for mode in range(4):
            n_op = mapping.mode_number_operator(mode)
            expected = 1.0 if mode in occupied else 0.0
            assert state.expectation(n_op) == pytest.approx(expected, abs=1e-9)

    def test_jw_prep_is_x_gates(self):
        mapping = jordan_wigner(3)
        circuit = occupation_state_circuit(mapping, [0, 2])
        assert all(g.name in ("x", "z") for g in circuit.gates)

    def test_mode_out_of_range(self):
        with pytest.raises(ValueError):
            occupation_state_circuit(jordan_wigner(2), [5])

    def test_hf_energy_matches_scf_for_all_mappings(self):
        """⟨HF|H_Q|HF⟩ == E_SCF through the full prep+map pipeline."""
        case = electronic_case("H2_sto3g")
        occ = [0, 2]  # blocked ordering: 1 alpha + 1 beta electron
        for factory in (jordan_wigner, bravyi_kitaev, balanced_ternary_tree):
            mapping = factory(4)
            hq = mapping.map(case.hamiltonian)
            state = occupation_statevector(mapping, occ)
            assert state.expectation(hq) == pytest.approx(
                case.scf_energy, abs=1e-8
            ), mapping.name
        hatt = hatt_mapping(case.hamiltonian, n_modes=4)
        hq = hatt.map(case.hamiltonian)
        state = occupation_statevector(hatt, occ)
        assert state.expectation(hq) == pytest.approx(case.scf_energy, abs=1e-8)

    def test_fewer_gates_for_vacuum_preserving_low_weight(self):
        """State-prep cost equals the summed weight of even Majorana strings."""
        mapping = jordan_wigner(5)
        circuit = occupation_state_circuit(mapping, [0, 1, 2])
        expected = sum(mapping.majorana(2 * j).weight for j in range(3))
        assert len(circuit) == expected
