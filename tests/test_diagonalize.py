"""Tests for Clifford conjugation and simultaneous diagonalization."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.circuits import (
    Circuit,
    Gate,
    conjugate_pauli,
    conjugate_through_circuit,
    diagonalizing_circuit,
    group_commuting,
    grouped_evolution_circuit,
    to_cx_u3,
)
from repro.paulis import PauliString, QubitOperator


def phase_free_allclose(a, b, atol=1e-9):
    idx = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    phase = a[idx] / b[idx]
    return abs(abs(phase) - 1.0) < 1e-8 and np.allclose(a, phase * b, atol=atol)


class TestConjugation:
    @pytest.mark.parametrize(
        "gate",
        [
            Gate("h", (0,)), Gate("h", (1,)),
            Gate("s", (0,)), Gate("sdg", (1,)),
            Gate("x", (0,)), Gate("y", (1,)), Gate("z", (0,)),
            Gate("cx", (0, 1)), Gate("cx", (1, 0)),
            Gate("cz", (0, 1)), Gate("swap", (0, 1)),
        ],
    )
    def test_exhaustive_two_qubit(self, gate):
        """G P G† verified against dense matrices for all 2-qubit Paulis."""
        from repro.circuits.gates import gate_matrix

        g_full = Circuit(2, [gate]).to_matrix()
        for label in ("II IX IY IZ XI XX XY XZ YI YY YX YZ ZI ZX ZY ZZ").split():
            for phase in range(4):
                p = PauliString.from_label(label, phase=phase)
                result = conjugate_pauli(p, gate)
                expected = g_full @ p.to_matrix() @ g_full.conj().T
                np.testing.assert_allclose(
                    result.to_matrix(), expected, atol=1e-12,
                    err_msg=f"{gate} on {p!r}",
                )

    def test_rejects_non_clifford(self):
        with pytest.raises(ValueError):
            conjugate_pauli(PauliString.from_label("X"), Gate("t", (0,)))

    def test_through_circuit(self):
        c = Circuit(2)
        c.add("h", 0).add("cx", 0, 1)
        p = conjugate_through_circuit(PauliString.from_label("IZ"), c)
        # H: Z0 -> X0 ; CX(0,1): X0 -> X0 X1.
        assert p == PauliString.from_label("XX")


class TestGrouping:
    def test_all_commuting_single_group(self):
        terms = [
            (PauliString.from_label(s), 1.0) for s in ["ZZ", "ZI", "IZ", "II"]
        ]
        assert len(group_commuting(terms)) == 1

    def test_anticommuting_split(self):
        terms = [(PauliString.from_label(s), 1.0) for s in ["XI", "ZI"]]
        assert len(group_commuting(terms)) == 2

    def test_partition_preserves_terms(self):
        labels = ["XX", "YY", "ZZ", "XI", "IZ", "ZY"]
        terms = [(PauliString.from_label(s), 0.5) for s in labels]
        groups = group_commuting(terms)
        flat = [s.label() for g in groups for s, _ in g]
        assert sorted(flat) == sorted(labels)
        for g in groups:
            for i, (a, _) in enumerate(g):
                for b, _ in g[i + 1 :]:
                    assert a.commutes_with(b)


def random_commuting_set(n, size, rng) -> list[PauliString]:
    """Random Z-strings conjugated by a random Clifford => commuting set with
    generic X/Y/Z structure."""
    clifford = Circuit(n)
    for _ in range(4 * n):
        r = rng.random()
        if r < 0.4:
            clifford.add("h", int(rng.integers(n)))
        elif r < 0.7:
            clifford.add("s", int(rng.integers(n)))
        elif n > 1:
            a, b = rng.permutation(n)[:2]
            clifford.add("cx", int(a), int(b))
    out = []
    for _ in range(size):
        z = int(rng.integers(1, 1 << n))
        p = PauliString(n, 0, z)
        out.append(conjugate_through_circuit(p, clifford))
    return out


class TestDiagonalization:
    def test_rejects_non_commuting(self):
        with pytest.raises(ValueError):
            diagonalizing_circuit(
                [PauliString.from_label("XI"), PauliString.from_label("ZI")], 2
            )

    @pytest.mark.parametrize("seed", range(8))
    def test_random_commuting_sets(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 5))
        strings = random_commuting_set(n, int(rng.integers(1, n + 3)), rng)
        circuit = diagonalizing_circuit(strings, n)
        for p in strings:
            d = conjugate_through_circuit(p, circuit)
            assert d.x == 0, f"string {p!r} not diagonalized"
            assert d.phase in (0, 2)

    def test_already_diagonal_is_cheap(self):
        strings = [PauliString.from_label("ZZ"), PauliString.from_label("IZ")]
        circuit = diagonalizing_circuit(strings, 2)
        assert len(circuit) == 0


class TestGroupedEvolution:
    def test_matches_exact_for_commuting_hamiltonian(self):
        h = QubitOperator.from_label_dict({"XX": 0.4, "YY": -0.3, "ZZ": 0.7})
        circuit = grouped_evolution_circuit(h, time=0.8)
        expected = expm(-0.8j * h.to_matrix())
        assert phase_free_allclose(circuit.to_matrix(), expected)

    def test_matches_per_group_product(self):
        """Each group's sub-circuit is the exact exponential of its sum."""
        h = QubitOperator.from_label_dict(
            {"XI": 0.3, "ZI": 0.2, "IZ": -0.4, "ZZ": 0.6}
        )
        terms = [(s, c.real) for s, c in h.terms()]
        terms.sort(key=lambda t: t[0].label())
        groups = group_commuting(terms)
        product = np.eye(4, dtype=complex)
        for group in groups:
            hg = QubitOperator.from_terms([(s, c) for s, c in group], n=2)
            product = expm(-1j * hg.to_matrix()) @ product
        circuit = grouped_evolution_circuit(h, time=1.0)
        assert phase_free_allclose(circuit.to_matrix(), product)

    def test_grouped_cheaper_than_naive_on_xx_chain(self):
        """The Rustiq-style synthesis wins on dense commuting structure."""
        from repro.circuits import trotter_circuit

        labels = {}
        for i in range(4):
            for j in range(i + 1, 4):
                ops = ["I"] * 4
                ops[i] = ops[j] = "Z"
                labels["".join(ops)] = 0.3
        h = QubitOperator.from_label_dict(labels)
        naive = to_cx_u3(trotter_circuit(h))
        grouped = to_cx_u3(grouped_evolution_circuit(h))
        assert grouped.cx_count <= naive.cx_count

    def test_rejects_non_hermitian(self):
        with pytest.raises(ValueError):
            grouped_evolution_circuit(QubitOperator.from_label_dict({"XY": 1j}))
