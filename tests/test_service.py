"""Tests for the compilation service layer (repro.service)."""

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fermion import FermionOperator, MajoranaOperator
from repro.models import load_case
from repro.service import (
    ArtifactStore,
    MappingService,
    MappingSpec,
    compile_mapping,
    compile_suite,
    default_cache_dir,
    expand_tasks,
    fingerprint_operator,
    fingerprint_request,
    iter_compile_suite,
)

SRC = str(Path(__file__).resolve().parents[1] / "src")


# ----------------------------------------------------------------------
# Hypothesis strategies: random Hermitian-ish fermionic operators
# ----------------------------------------------------------------------
actions = st.tuples(st.integers(0, 5), st.booleans())
monomials = st.lists(actions, min_size=0, max_size=4).map(tuple)
coeffs = st.complex_numbers(
    min_magnitude=1e-6, max_magnitude=10, allow_nan=False, allow_infinity=False
)
term_lists = st.lists(st.tuples(monomials, coeffs), min_size=1, max_size=8)


def build_operator(terms):
    op = FermionOperator()
    for actions_, coeff in terms:
        op.add_term(actions_, coeff)
    return op


class TestFingerprint:
    @settings(max_examples=60, deadline=None)
    @given(term_lists, st.randoms(use_true_random=False))
    def test_term_order_invariant(self, terms, rng):
        """The satellite hardening property: physically identical operators
        built in different term orders hash identically."""
        shuffled = list(terms)
        rng.shuffle(shuffled)
        spec = MappingSpec(kind="hatt")
        a, b = build_operator(terms), build_operator(shuffled)
        if a.n_modes == 0:
            return  # pure scalars carry no modes to map
        assert fingerprint_request(a, spec) == fingerprint_request(b, spec)

    @settings(max_examples=40, deadline=None)
    @given(term_lists)
    def test_zero_terms_dropped(self, terms):
        """Adding and subtracting a term leaves the fingerprint unchanged."""
        op = build_operator(terms)
        if op.n_modes == 0:
            return
        op2 = build_operator(terms)
        op2.add_term(((7, True), (7, False)), 2.5)
        op2.add_term(((7, True), (7, False)), -2.5)
        spec = MappingSpec(kind="hatt", n_modes=max(op.n_modes, 8))
        assert fingerprint_request(op, spec) == fingerprint_request(op2, spec)

    def test_sub_tolerance_jitter_collides(self):
        a = FermionOperator({((0, True), (0, False)): 1.0})
        b = FermionOperator({((0, True), (0, False)): 1.0 + 1e-14})
        spec = MappingSpec(kind="hatt")
        assert fingerprint_request(a, spec) == fingerprint_request(b, spec)

    def test_negative_zero_collides_with_zero(self):
        a = FermionOperator({((0, True), (0, False)): 1.0 + 0.0j})
        b = FermionOperator({((0, True), (0, False)): 1.0 - 0.0j})
        assert fingerprint_operator(a) == fingerprint_operator(b)

    def test_distinct_coefficients_fork(self):
        a = FermionOperator({((0, True), (0, False)): 1.0})
        b = FermionOperator({((0, True), (0, False)): 1.5})
        assert fingerprint_operator(a) != fingerprint_operator(b)

    def test_kind_and_modes_fork(self):
        h = load_case("hubbard:1x2")
        fps = {
            fingerprint_request(h, MappingSpec(kind=k)) for k in ("hatt", "jw", "bk")
        }
        assert len(fps) == 3
        assert fingerprint_request(h, MappingSpec(kind="jw", n_modes=4)) != \
            fingerprint_request(h, MappingSpec(kind="jw", n_modes=6))

    def test_vacuum_flag_forks(self):
        h = load_case("hubbard:1x2")
        assert fingerprint_request(h, MappingSpec(kind="hatt")) != \
            fingerprint_request(h, MappingSpec(kind="hatt-unopt"))

    def test_backend_and_cached_do_not_fork(self):
        h = load_case("hubbard:1x2")
        base = fingerprint_request(h, MappingSpec(kind="hatt"))
        for backend in ("vector", "scalar"):
            for cached in (True, False):
                spec = MappingSpec(kind="hatt", hatt_backend=backend, cached=cached)
                assert fingerprint_request(h, spec) == base

    def test_static_kinds_ignore_hamiltonian(self):
        a, b = load_case("hubbard:1x2"), load_case("H2_sto3g")
        assert a.n_modes == b.n_modes == 4
        spec = MappingSpec(kind="jw")
        assert fingerprint_request(a, spec) == fingerprint_request(b, spec)
        assert fingerprint_request(a, MappingSpec(kind="hatt")) != \
            fingerprint_request(b, MappingSpec(kind="hatt"))

    def test_majorana_form_supported(self):
        h = MajoranaOperator.from_fermion_operator(load_case("hubbard:1x2"))
        fp = fingerprint_request(h, MappingSpec(kind="hatt"))
        assert len(fp) == 64 and fp == fingerprint_request(h, MappingSpec(kind="hatt"))

    def test_stable_across_processes(self):
        """SHA-256 over canonical JSON — immune to interpreter hash salting."""
        code = (
            "from repro.models import load_case\n"
            "from repro.service import MappingSpec, fingerprint_request\n"
            "print(fingerprint_request(load_case('hubbard:2x2'), "
            "MappingSpec(kind='hatt')))\n"
        )
        env = dict(os.environ, PYTHONPATH=SRC, PYTHONHASHSEED="12345")
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            env=env, check=True,
        ).stdout.strip()
        expected = fingerprint_request(
            load_case("hubbard:2x2"), MappingSpec(kind="hatt")
        )
        assert out == expected

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            MappingSpec(kind="nope")

    def test_memo_invalidated_on_mutation(self):
        """The per-operator canonical-form memo must never serve stale keys."""
        h = load_case("hubbard:1x2")
        spec = MappingSpec(kind="hatt")
        fp1 = fingerprint_request(h, spec)
        assert fingerprint_request(h, spec) == fp1  # memoized path
        h.add_term(((0, True), (0, False)), 0.25)
        fp2 = fingerprint_request(h, spec)
        assert fp2 != fp1
        h.add_term(((0, True), (0, False)), -0.25)
        assert fingerprint_request(h, spec) == fp1

    def test_memo_respects_tolerance(self):
        h = load_case("hubbard:1x2")
        a = fingerprint_operator(h, tol=1e-12)
        b = fingerprint_operator(h, tol=1e-6)
        assert a != b  # tol is part of the payload, memo keyed on it
        assert fingerprint_operator(h, tol=1e-12) == a

    def test_majorana_memo_invalidated_on_mutation(self):
        m = MajoranaOperator.from_fermion_operator(load_case("hubbard:1x2"))
        fp1 = fingerprint_operator(m)
        m.add_term((0, 1), 0.5)
        assert fingerprint_operator(m) != fp1


class TestArtifactStore:
    def test_roundtrip_bit_identical(self, tmp_path):
        h = load_case("hubbard:2x2")
        mapping = compile_mapping(h, MappingSpec(kind="hatt").resolve(h))
        store = ArtifactStore(tmp_path)
        fp = fingerprint_request(h, MappingSpec(kind="hatt"))
        store.put_mapping(fp, mapping, provenance={"compile_seconds": 0.1})
        loaded = store.get_mapping(fp)
        assert loaded.strings == mapping.strings
        assert loaded.provenance["compile_seconds"] == 0.1
        assert loaded.tree is not None
        assert store.contains(fp)
        assert store.fingerprints() == [fp]

    def test_miss_returns_none(self, tmp_path):
        assert ArtifactStore(tmp_path).get_mapping("ab" * 32) is None

    def test_corrupt_mapping_is_a_miss_and_quarantined(self, tmp_path):
        h = load_case("hubbard:1x2")
        mapping = compile_mapping(h, MappingSpec(kind="jw").resolve(h))
        store = ArtifactStore(tmp_path)
        fp = "cd" * 32
        path = store.put_mapping(fp, mapping)
        path.write_text("{ not json")
        assert store.get_mapping(fp) is None
        assert not path.exists()  # quarantined
        assert store.stats()["corrupt_dropped"] == 1
        # A put repairs the entry.
        store.put_mapping(fp, mapping)
        assert store.get_mapping(fp) is not None

    def test_unreadable_file_is_a_miss_but_not_quarantined(self, tmp_path):
        """Transient I/O errors must not delete a valid, expensive artifact."""
        h = load_case("hubbard:1x2")
        mapping = compile_mapping(h, MappingSpec(kind="jw").resolve(h))
        store = ArtifactStore(tmp_path)
        fp = "ab" * 32
        path = store.put_mapping(fp, mapping)
        path.chmod(0)
        try:
            if path.read_text() is not None:  # running as root: chmod no-op
                pytest.skip("permissions not enforced for this user")
        except PermissionError:
            assert store.get_mapping(fp) is None
            assert path.exists()  # still on disk, NOT quarantined
            assert store.stats()["corrupt_dropped"] == 0
        finally:
            path.chmod(0o644)

    def test_semantically_corrupt_document_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        fp = "ef" * 32
        path = store.mapping_path(fp)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"schema": 2, "name": "x"}))  # missing keys
        assert store.get_mapping(fp) is None
        assert store.stats()["corrupt_dropped"] == 1

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        h = load_case("hubbard:1x2")
        mapping = compile_mapping(h, MappingSpec(kind="jw").resolve(h))
        store = ArtifactStore(tmp_path)
        fp = "12" * 32
        for _ in range(3):
            store.put_mapping(fp, mapping)
        leftovers = [p for p in tmp_path.rglob("*.tmp")]
        assert leftovers == []

    def test_reports(self, tmp_path):
        store = ArtifactStore(tmp_path)
        fp = "34" * 32
        store.put_report(fp, {"pauli_weight": 76})
        assert store.get_report(fp) == {"pauli_weight": 76}

    def test_remove_and_clear(self, tmp_path):
        h = load_case("hubbard:1x2")
        mapping = compile_mapping(h, MappingSpec(kind="jw").resolve(h))
        store = ArtifactStore(tmp_path)
        for fp in ("ab" * 32, "cd" * 32):
            store.put_mapping(fp, mapping)
        assert store.remove("ab" * 32)
        assert store.fingerprints() == ["cd" * 32]
        assert store.clear() == 1
        assert store.fingerprints() == []

    def test_malformed_fingerprint_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ValueError):
            store.mapping_path("../../etc/passwd")

    def test_env_default_cache_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert default_cache_dir() == tmp_path / "envcache"
        assert ArtifactStore().root == tmp_path / "envcache"


class TestStoreFailurePaths:
    """Injected I/O failures: the store must fail loudly but leave no
    partial artifacts, and torn reads must stay misses — never crashes."""

    def test_enospc_write_error_leaves_no_partials(self, tmp_path, monkeypatch):
        from repro.serve import faults

        h = load_case("hubbard:1x2")
        mapping = compile_mapping(h, MappingSpec(kind="jw").resolve(h))
        store = ArtifactStore(tmp_path / "store")
        fp = "ab" * 32
        monkeypatch.setenv(faults.FAULTS_ENV, "store_write:1:0:1")
        faults.reset()
        try:
            with pytest.raises(OSError) as err:
                store.put_mapping(fp, mapping)
            assert err.value.errno == 28  # ENOSPC
        finally:
            monkeypatch.delenv(faults.FAULTS_ENV)
            faults.reset()
        # The atomic write protocol (tmp file + os.replace) must leave
        # neither a destination file nor a stray temp file behind.
        assert list((tmp_path / "store").rglob("*.tmp")) == []
        assert not store.mapping_path(fp).exists()
        assert store.get_mapping(fp) is None
        assert not store.contains(fp)
        # The fault budget is spent (max_fires=1): a retry succeeds.
        store.put_mapping(fp, mapping)
        assert store.get_mapping(fp) is not None

    def test_torn_read_under_concurrent_eviction_is_a_miss(self, tmp_path):
        """A corrupted artifact read while the LRU evictor churns the same
        namespace must return None (and quarantine), never raise."""
        h = load_case("hubbard:1x2")
        mapping = compile_mapping(h, MappingSpec(kind="jw").resolve(h))
        store = ArtifactStore(tmp_path, max_bytes={"mappings": 4000})
        fp_bad = "0d" * 32
        stop = threading.Event()
        churn_errors = []

        def churn():
            try:
                i = 0
                while not stop.is_set() and i < 200:
                    store.put_mapping(f"{i:064x}", mapping)
                    i += 1
            except Exception as exc:  # noqa: BLE001 - asserted below
                churn_errors.append(exc)

        thread = threading.Thread(target=churn)
        thread.start()
        try:
            for _ in range(50):
                path = store.mapping_path(fp_bad)
                try:
                    path.parent.mkdir(parents=True, exist_ok=True)
                    path.write_text("{ torn")
                except FileNotFoundError:
                    continue  # evictor removed the entry dir mid-plant
                assert store.get_mapping(fp_bad) is None
        finally:
            stop.set()
            thread.join(timeout=120)
        assert not churn_errors, churn_errors
        assert store.stats()["corrupt_dropped"] >= 1


class TestMappingService:
    def test_cold_miss_then_memory_then_disk(self, tmp_path):
        h = load_case("hubbard:2x2")
        spec = MappingSpec(kind="hatt")
        svc = MappingService(cache_dir=tmp_path)
        r1 = svc.get_or_compile(h, spec)
        r2 = svc.get_or_compile(h, spec)
        assert (r1.source, r2.source) == ("compiled", "memory")
        assert not r1.cache_hit and r2.cache_hit
        fresh = MappingService(cache_dir=tmp_path)
        r3 = fresh.get_or_compile(h, spec)
        assert r3.source == "disk"
        stats = svc.stats()
        assert stats["compiles"] == 1 and stats["hits_memory"] == 1

    def test_warm_mapping_bit_identical_to_fresh_compile(self, tmp_path):
        """Acceptance: warm hits return Majorana strings bit-identical to a
        fresh compile."""
        h = load_case("LiH_sto3g")
        spec = MappingSpec(kind="hatt")
        MappingService(cache_dir=tmp_path).get_or_compile(h, spec)
        warm = MappingService(cache_dir=tmp_path).get_or_compile(h, spec)
        fresh = compile_mapping(h, spec.resolve(h))
        assert warm.source == "disk"
        assert warm.mapping.strings == fresh.strings
        assert [s.phase for s in warm.mapping.strings] == \
            [s.phase for s in fresh.strings]

    def test_provenance_written(self, tmp_path):
        h = load_case("hubbard:1x2")
        svc = MappingService(cache_dir=tmp_path)
        r = svc.get_or_compile(h, MappingSpec(kind="hatt"))
        prov = svc.store.provenance(r.fingerprint)
        assert prov["kind"] == "hatt"
        assert prov["repro_version"]
        assert prov["compile_seconds"] >= 0

    def test_lru_eviction_falls_back_to_disk(self, tmp_path):
        svc = MappingService(cache_dir=tmp_path, memory_capacity=1)
        h1, h2 = load_case("hubbard:1x2"), load_case("hubbard:2x2")
        spec = MappingSpec(kind="hatt")
        svc.get_or_compile(h1, spec)
        svc.get_or_compile(h2, spec)  # evicts h1 from memory
        assert svc.get_or_compile(h1, spec).source == "disk"
        assert svc.get_or_compile(h1, spec).source == "memory"

    def test_memory_only_service(self, tmp_path):
        svc = MappingService(use_disk=False)
        h = load_case("hubbard:1x2")
        spec = MappingSpec(kind="hatt")
        assert svc.get_or_compile(h, spec).source == "compiled"
        assert svc.get_or_compile(h, spec).source == "memory"
        assert svc.store is None

    def test_single_flight_compiles_once(self, tmp_path):
        """A thundering herd of identical requests costs one compile."""
        h = load_case("hubbard:2x3")
        spec = MappingSpec(kind="hatt")
        svc = MappingService(cache_dir=tmp_path)
        barrier = threading.Barrier(6)
        results = []

        def worker():
            barrier.wait()
            results.append(svc.get_or_compile(h, spec))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = svc.stats()
        assert stats["compiles"] == 1
        assert len({r.fingerprint for r in results}) == 1
        assert sum(r.source == "compiled" for r in results) == 1
        ref = results[0].mapping.strings
        assert all(r.mapping.strings == ref for r in results)

    def test_corrupt_disk_entry_recompiles(self, tmp_path):
        h = load_case("hubbard:1x2")
        spec = MappingSpec(kind="hatt")
        svc = MappingService(cache_dir=tmp_path)
        r = svc.get_or_compile(h, spec)
        svc.store.mapping_path(r.fingerprint).write_text("garbage")
        fresh = MappingService(cache_dir=tmp_path)
        r2 = fresh.get_or_compile(h, spec)
        assert r2.source == "compiled"
        assert r2.mapping.strings == r.mapping.strings


class TestBatch:
    CASES = ["hubbard:1x2", "hubbard:2x2", "H2_sto3g"]

    def test_expand_tasks_dedups_and_validates(self):
        tasks = expand_tasks(["a", "a", "b"], ["hatt", "jw"])
        assert len(tasks) == 4
        with pytest.raises(ValueError):
            expand_tasks(["a"], ["nope"])

    def test_serial_suite_correct_and_deduped(self, tmp_path):
        report = compile_suite(self.CASES, ["hatt", "jw"], cache_dir=tmp_path)
        assert report.n_tasks == 6 and report.n_errors == 0
        # hubbard:1x2 and H2_sto3g are both 4-mode, so their JW compiles
        # share a fingerprint: 5 unique compiles for 6 tasks.
        assert report.n_unique == 5
        weights = {(t.case, t.kind): t.pauli_weight for t in report.tasks}
        h = load_case("hubbard:2x2")
        expected = compile_mapping(h, MappingSpec(kind="hatt").resolve(h))
        assert weights[("hubbard:2x2", "hatt")] == expected.map(h).pauli_weight()

    def test_second_pass_all_cache_hits(self, tmp_path):
        compile_suite(self.CASES, ["hatt"], cache_dir=tmp_path)
        report = compile_suite(self.CASES, ["hatt"], cache_dir=tmp_path)
        assert all(t.cache_hit for t in report.tasks), report.to_dict()
        assert report.n_cache_hits == report.n_tasks

    def test_parallel_matches_serial(self, tmp_path):
        serial = compile_suite(self.CASES, ["hatt", "jw"], use_cache=False)
        parallel = compile_suite(
            self.CASES, ["hatt", "jw"], jobs=2, use_cache=False
        )
        assert parallel.n_errors == 0
        key = lambda r: [(t.case, t.kind, t.fingerprint, t.pauli_weight)  # noqa: E731
                         for t in r.tasks]
        assert key(parallel) == key(serial)

    def test_parallel_workers_share_disk_cache(self, tmp_path):
        compile_suite(self.CASES, ["hatt"], jobs=2, cache_dir=tmp_path)
        report = compile_suite(self.CASES, ["hatt"], jobs=2, cache_dir=tmp_path)
        assert all(t.cache_hit for t in report.tasks), report.to_dict()

    def test_bad_case_is_per_task_error(self, tmp_path):
        report = compile_suite(
            ["hubbard:1x2", "no_such_case"], ["hatt"], cache_dir=tmp_path
        )
        by_case = {t.case: t for t in report.tasks}
        assert by_case["hubbard:1x2"].ok
        assert not by_case["no_such_case"].ok
        assert "no_such_case" in report.table() or by_case["no_such_case"].error

    def test_streaming_iterator_yields_all_tasks(self, tmp_path):
        seen = list(iter_compile_suite(self.CASES, ["hatt"], cache_dir=tmp_path))
        assert {(t.case, t.kind) for t in seen} == {(c, "hatt") for c in self.CASES}

    def test_no_eval_skips_weights(self, tmp_path):
        report = compile_suite(
            ["hubbard:1x2"], ["hatt"], cache_dir=tmp_path, evaluate=False
        )
        assert report.tasks[0].pauli_weight is None

    def test_report_serializes(self, tmp_path):
        report = compile_suite(["hubbard:1x2"], ["hatt"], cache_dir=tmp_path)
        blob = json.dumps(report.to_dict())
        assert "fingerprint" in blob
        assert "hubbard:1x2" in report.table()


class TestPipelineIntegration:
    def test_compare_mappings_with_service_matches_direct(self, tmp_path):
        from repro.analysis import compare_mappings

        h = load_case("hubbard:2x2")
        svc = MappingService(cache_dir=tmp_path)
        direct = compare_mappings(h, 8, compile_circuit=False)
        via_service = compare_mappings(h, 8, compile_circuit=False, service=svc)
        assert {k: r.to_dict() for k, r in direct.items()} == \
            {k: r.to_dict() for k, r in via_service.items()}
        # Second run is served entirely from cache.
        compare_mappings(h, 8, compile_circuit=False, service=svc)
        stats = svc.stats()
        assert stats["compiles"] == 4 and stats["hits_memory"] == 4


class TestCircuitNamespace:
    def test_roundtrip_and_inventory(self, tmp_path):
        store = ArtifactStore(tmp_path)
        fp = "ab" * 32
        store.put_circuit_report(fp, {"circuit_schema": 1, "routed_cx": 7})
        assert store.get_circuit_report(fp) == {"circuit_schema": 1, "routed_cx": 7}
        assert store.circuit_fingerprints() == [fp]
        assert store.fingerprints() == []  # disjoint from the mapping namespace

    def test_corrupt_circuit_doc_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        fp = "cd" * 32
        store.put_circuit_report(fp, {"routed_cx": 1})
        store.circuit_path(fp).write_text("{ torn")
        assert store.get_circuit_report(fp) is None
        assert not store.circuit_path(fp).exists()  # quarantined
        assert store.stats()["corrupt_dropped"] == 1

    def test_stats_and_clear_cover_circuits(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put_circuit_report("ef" * 32, {"routed_cx": 2})
        stats = store.stats()
        assert stats["n_circuits"] == 1 and stats["total_bytes"] > 0
        assert store.clear() == 1
        assert store.circuit_fingerprints() == []

    def test_remove_circuit(self, tmp_path):
        store = ArtifactStore(tmp_path)
        fp = "0a" * 32
        assert not store.remove_circuit(fp)
        store.put_circuit_report(fp, {"x": 1})
        assert store.remove_circuit(fp)
        assert store.get_circuit_report(fp) is None


class TestLruCaps:
    """Disk-cache LRU caps: eviction order, strict bounds, per-namespace."""

    @staticmethod
    def _put(store, fp, mtime, pad=100):
        store.put_circuit_report(fp, {"pad": "x" * pad})
        os.utime(store.circuit_path(fp), (mtime, mtime))

    def test_uncapped_store_never_evicts(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for i in range(5):
            self._put(store, f"{i:02d}" * 32, mtime=1000 + i)
        assert len(store.circuit_fingerprints()) == 5
        assert store.namespace_stats()["circuits"]["evictions"] == 0

    def test_cap_evicts_least_recently_used_first(self, tmp_path):
        store = ArtifactStore(tmp_path, max_bytes=10_000)
        size = None
        for i in range(3):
            self._put(store, f"{i:02d}" * 32, mtime=1000 + i)
            size = store.circuit_path(f"{i:02d}" * 32).stat().st_size
        # Shrink the cap to two entries and trigger enforcement with a put.
        store._caps["circuits"] = int(2.5 * size)
        self._put(store, "aa" * 32, mtime=2000)
        left = store.circuit_fingerprints()
        assert "00" * 32 not in left and "01" * 32 not in left
        assert "02" * 32 in left and "aa" * 32 in left
        assert store.namespace_stats()["circuits"]["evictions"] == 2

    def test_read_hit_refreshes_recency(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for i in range(3):
            self._put(store, f"{i:02d}" * 32, mtime=1000 + i)
        assert store.get_circuit_report("00" * 32) is not None  # touch
        order = [e["fingerprint"] for e in store.entries("circuits")]
        assert order == ["01" * 32, "02" * 32, "00" * 32]

    def test_hot_entry_survives_cap_pressure(self, tmp_path):
        store = ArtifactStore(tmp_path, max_bytes=10_000)
        self._put(store, "00" * 32, mtime=1000)
        self._put(store, "01" * 32, mtime=1001)
        size = store.circuit_path("01" * 32).stat().st_size
        assert store.get_circuit_report("00" * 32) is not None  # now the hottest
        store._caps["circuits"] = int(2.5 * size)
        self._put(store, "02" * 32, mtime=99999)
        left = store.circuit_fingerprints()
        assert "00" * 32 in left and "01" * 32 not in left

    def test_strict_cap_never_exceeded_even_by_newest(self, tmp_path):
        store = ArtifactStore(tmp_path, max_bytes=10)
        store.put_circuit_report("ab" * 32, {"pad": "x" * 100})
        assert store.circuit_fingerprints() == []
        assert store.namespace_stats()["circuits"]["bytes"] == 0
        assert store.namespace_stats()["circuits"]["evictions"] == 1

    def test_caps_are_per_namespace(self, tmp_path):
        store = ArtifactStore(tmp_path, max_bytes={"circuits": 10})
        h = load_case("hubbard:1x2")
        spec = MappingSpec(kind="jw", n_modes=4)
        fp = fingerprint_request(h, spec)
        store.put_mapping(fp, compile_mapping(h, spec))
        store.put_circuit_report("cd" * 32, {"pad": "x" * 100})
        assert store.fingerprints() == [fp]  # mappings namespace unbounded
        assert store.circuit_fingerprints() == []

    def test_interleaved_reads_and_writes_stay_bounded(self, tmp_path):
        cap = 1200
        store = ArtifactStore(tmp_path, max_bytes=cap)
        for i in range(12):
            self._put(store, f"{i:02x}" * 32, mtime=1000 + i)
            if i % 3 == 0:
                store.get_circuit_report(f"{i:02x}" * 32)
            assert store.namespace_stats()["circuits"]["bytes"] <= cap

    def test_bad_cap_namespace_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown cache namespaces"):
            ArtifactStore(tmp_path, max_bytes={"bogus": 10})

    def test_service_forwards_max_bytes(self, tmp_path):
        svc = MappingService(cache_dir=tmp_path, max_bytes=10)
        h = load_case("hubbard:1x2")
        svc.get_or_compile(h, MappingSpec(kind="jw", n_modes=4))
        # The artifact was written, then immediately evicted by the tiny cap.
        assert svc.store.fingerprints() == []
        assert svc.stats()["store"]["namespaces"]["mappings"]["evictions"] == 1

    def test_memory_metrics_exposed(self, tmp_path):
        svc = MappingService(cache_dir=tmp_path, memory_capacity=1)
        h4, h8 = load_case("hubbard:1x2"), load_case("hubbard:2x2")
        svc.get_or_compile(h4, MappingSpec(kind="jw", n_modes=4))
        svc.get_or_compile(h8, MappingSpec(kind="jw", n_modes=8))  # evicts
        svc.get_or_compile(h4, MappingSpec(kind="jw", n_modes=4))  # disk hit
        stats = svc.stats()
        assert stats["memory_evictions"] >= 1
        assert stats["hits_disk"] == 1
        assert stats["hit_rate"] == round(1 / 3, 4)


class TestArchFingerprint:
    """hatt-arch requests must key mappings/v1 on the coupling graph too."""

    def test_distinct_archs_fork(self):
        h = load_case("hubbard:1x2")
        fps = {
            fingerprint_request(h, MappingSpec(kind="hatt-arch", arch=a))
            for a in ("montreal", "sycamore", "ionq_forte")
        }
        assert len(fps) == 3

    def test_arch_forks_from_plain_hatt(self):
        h = load_case("hubbard:1x2")
        plain = fingerprint_request(h, MappingSpec(kind="hatt"))
        arch = fingerprint_request(h, MappingSpec(kind="hatt-arch", arch="montreal"))
        assert plain != arch

    def test_weight_quantization(self):
        """Weights are fingerprinted at 1/64 resolution: the default weight
        and an explicit equal weight collide; distinct weights fork."""
        h = load_case("hubbard:1x2")
        from repro.hatt import DEFAULT_ARCH_WEIGHT

        base = MappingSpec(kind="hatt-arch", arch="montreal")
        explicit = MappingSpec(
            kind="hatt-arch", arch="montreal", arch_weight=DEFAULT_ARCH_WEIGHT
        )
        other = MappingSpec(kind="hatt-arch", arch="montreal", arch_weight=2.0)
        assert fingerprint_request(h, base) == fingerprint_request(h, explicit)
        assert fingerprint_request(h, base) != fingerprint_request(h, other)

    def test_arch_requires_known_name(self):
        with pytest.raises(ValueError):
            MappingSpec(kind="hatt-arch", arch="torus")
        with pytest.raises(ValueError):
            MappingSpec(kind="hatt-arch")  # arch is mandatory for the kind

    def test_arch_rejected_for_other_kinds(self):
        with pytest.raises(ValueError):
            MappingSpec(kind="hatt", arch="montreal")
        with pytest.raises(ValueError):
            MappingSpec(kind="jw", arch_weight=0.5)

    def test_service_roundtrip_with_provenance(self, tmp_path):
        h = load_case("hubbard:1x2")
        svc = MappingService(cache_dir=tmp_path)
        spec = MappingSpec(kind="hatt-arch", arch="sycamore", arch_weight=0.5)
        cold = svc.get_or_compile(h, spec)
        assert cold.source == "compiled"
        assert cold.provenance["arch"] == "sycamore"
        assert cold.provenance["arch_weight"] == 0.5
        warm = svc.get_or_compile(h, spec)
        assert warm.cache_hit
        assert [str(s) for s in warm.mapping.strings] == \
            [str(s) for s in cold.mapping.strings]

    def test_batch_suite_threads_arch(self, tmp_path):
        report = compile_suite(
            ["hubbard:1x2"],
            ["hatt", "hatt-arch"],
            cache_dir=tmp_path,
            arch="montreal",
            arch_weight=0.5,
        )
        assert report.n_errors == 0
        fps = {t.fingerprint for t in report.tasks}
        assert len(fps) == 2  # hatt and hatt-arch are distinct cache entries

    def test_batch_hatt_arch_without_arch_is_per_task_error(self, tmp_path):
        report = compile_suite(["hubbard:1x2"], ["hatt-arch"], cache_dir=tmp_path)
        assert report.n_errors == 1


class TestRecencyGranularity:
    """LRU recency must stay strictly ordered within one filesystem tick."""

    def test_rapid_writes_order_strictly(self, tmp_path):
        store = ArtifactStore(tmp_path)
        fps = [f"{i:02d}" * 32 for i in range(8)]
        for fp in fps:  # all writes land well inside one second
            store.put_circuit_report(fp, {"i": fp[:2]})
        order = [e["fingerprint"] for e in store.entries("circuits")]
        assert order == fps

    def test_rapid_touches_order_strictly(self, tmp_path):
        store = ArtifactStore(tmp_path)
        fps = [f"{i:02d}" * 32 for i in range(6)]
        for fp in fps:
            store.put_circuit_report(fp, {"i": fp[:2]})
        for fp in reversed(fps):  # re-touch in reverse, sub-second
            assert store.get_circuit_report(fp) is not None
        order = [e["fingerprint"] for e in store.entries("circuits")]
        assert order == list(reversed(fps))

    def test_recency_stamps_strictly_increase(self, tmp_path):
        store = ArtifactStore(tmp_path)
        seen = [store._next_recency_ns() for _ in range(1000)]
        assert seen == sorted(seen) and len(set(seen)) == len(seen)

    def test_eviction_respects_sub_second_recency(self, tmp_path):
        store = ArtifactStore(tmp_path, max_bytes=10_000)
        fps = [f"{i:02d}" * 32 for i in range(3)]
        for fp in fps:
            store.put_circuit_report(fp, {"pad": "x" * 100})
        size = store.circuit_path(fps[0]).stat().st_size
        assert store.get_circuit_report(fps[0]) is not None  # oldest → hottest
        store._caps["circuits"] = int(2.5 * size)
        store.put_circuit_report("aa" * 32, {"pad": "x" * 100})
        left = store.circuit_fingerprints()
        assert fps[0] in left and fps[1] not in left
