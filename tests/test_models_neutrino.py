"""Tests for the collective neutrino oscillation generator."""

import pytest

from repro.mappings import jordan_wigner
from repro.models.neutrino import collective_neutrino, neutrino_case


class TestStructure:
    def test_mode_counts_match_paper_table3(self):
        # Paper Table III: 3×2F=12, 4×2F=16, 3×3F=18, 7×3F=42 modes.
        assert collective_neutrino(3, 2).n_modes == 12
        assert collective_neutrino(4, 2).n_modes == 16
        assert collective_neutrino(3, 3).n_modes == 18
        assert collective_neutrino(7, 3).n_modes == 42

    def test_kinetic_terms_present(self):
        h = collective_neutrino(2, 2, mu=0.0)
        # With mu=0 only the 2·N·F number operators survive.
        assert len(h) == 8
        for term, coeff in h.terms():
            assert len(term) == 2
            assert coeff.real > 0

    def test_interaction_conserves_momentum(self):
        h = collective_neutrino(3, 1, mu=0.5)
        f = 1
        for term, _ in h.terms():
            if len(term) != 4:
                continue
            (m1, _), (m3, _), (m2, _), (m4, _) = term
            # Within one sector: momentum index = (mode % (N·F)) // F.
            p1, p2, p3, p4 = (((m % 3) // f) for m in (m1, m2, m3, m4))
            assert p1 + p2 == p3 + p4

    def test_hermitian_via_mapping(self):
        h = collective_neutrino(3, 2, mu=0.3)
        hq = jordan_wigner(12).map(h)
        assert hq.is_hermitian()

    def test_masses_validation(self):
        with pytest.raises(ValueError):
            collective_neutrino(2, 2, masses=[0.1])
        with pytest.raises(ValueError):
            collective_neutrino(0, 2)

    def test_cross_sector_terms_present(self):
        """νν̄ forward scattering couples the two sectors."""
        h = collective_neutrino(3, 2, mu=0.4)
        sector_size = 6
        mixed = same = 0
        for term, _ in h.terms():
            if len(term) != 4:
                continue
            sectors = {mode // sector_size for mode, _ in term}
            if len(sectors) == 2:
                mixed += 1
            else:
                same += 1
        assert mixed > 0 and same > 0
        # Every cross term pairs one creation/annihilation per sector.
        for term, _ in h.terms():
            if len(term) == 4:
                for sector in (0, 1):
                    created = sum(
                        1 for m, d in term if d and m // sector_size == sector
                    )
                    destroyed = sum(
                        1 for m, d in term if not d and m // sector_size == sector
                    )
                    assert created == destroyed


class TestCaseParser:
    def test_parse(self):
        assert neutrino_case("3x2F").n_modes == 12
        assert neutrino_case("5×3f").n_modes == 30

    def test_reject(self):
        with pytest.raises(ValueError):
            neutrino_case("3x2")
