"""Tests for MajoranaOperator: Clifford-algebra relations and Eq. (2)/(3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fermion import (
    FermionOperator,
    MajoranaOperator,
    normal_order_majorana_product,
)


def M(i):
    return MajoranaOperator.single(i)


class TestMonomialProduct:
    def test_disjoint_sorted(self):
        assert normal_order_majorana_product((0, 2), (1, 3)) == ((0, 1, 2, 3), -1)

    def test_square_cancels(self):
        assert normal_order_majorana_product((0, 1), (0, 1)) == ((), -1)
        # M0M1·M0M1 = -M0M0M1M1 = -1.

    def test_identity_factors(self):
        assert normal_order_majorana_product((), (1, 2)) == ((1, 2), 1)
        assert normal_order_majorana_product((1, 2), ()) == ((1, 2), 1)

    def test_single_swap_sign(self):
        assert normal_order_majorana_product((1,), (0,)) == ((0, 1), -1)
        assert normal_order_majorana_product((0,), (1,)) == ((0, 1), 1)


@given(
    st.lists(st.integers(0, 6), min_size=0, max_size=6),
    st.lists(st.integers(0, 6), min_size=0, max_size=6),
)
@settings(max_examples=100)
def test_product_associativity_random(seq1, seq2):
    """from_term(seq1+seq2) == from_term(seq1)·from_term(seq2)."""
    joint = MajoranaOperator.from_term(seq1 + seq2)
    split = MajoranaOperator.from_term(seq1) * MajoranaOperator.from_term(seq2)
    assert joint == split


class TestCliffordRelations:
    def test_square_is_one(self):
        for i in range(4):
            assert M(i) * M(i) == MajoranaOperator.identity()

    def test_anticommute(self):
        for i in range(3):
            for j in range(3):
                anti = M(i) * M(j) + M(j) * M(i)
                expected = MajoranaOperator.identity(2.0 if i == j else 0.0).simplify()
                assert anti.simplify() == expected

    def test_hermitian_check(self):
        assert M(0).is_hermitian()
        assert (1j * M(0) * M(1)).is_hermitian()  # i·M0M1 is Hermitian
        assert not (M(0) * M(1)).is_hermitian()
        assert MajoranaOperator.from_term([0, 1, 2, 3], -1.0).is_hermitian()


class TestFermionConversion:
    def test_number_operator(self):
        # a†_0 a_0 = 1/2 + (i/2)·M0 M1  (paper §III-C example).
        n0 = MajoranaOperator.from_fermion_operator(FermionOperator.number(0))
        assert n0.constant == pytest.approx(0.5)
        assert n0.coefficient((0, 1)) == pytest.approx(0.5j)
        assert len(n0) == 2

    def test_paper_equation_3(self):
        """HF = a†0 a0 + 2 a†1 a†2 a1 a2 maps to the Majorana form in Eq. (3)."""
        hf = FermionOperator.number(0) + 2.0 * FermionOperator.from_term(
            [(1, True), (2, True), (1, False), (2, False)]
        )
        hm = MajoranaOperator.from_fermion_operator(hf)
        assert hm.coefficient((0, 1)) == pytest.approx(0.5j)
        assert hm.coefficient((2, 3)) == pytest.approx(-0.5j)
        assert hm.coefficient((4, 5)) == pytest.approx(-0.5j)
        assert hm.coefficient((2, 3, 4, 5)) == pytest.approx(0.5)
        # Non-identity support exactly matches the paper's four monomials.
        assert sorted(hm.support_terms()) == [(0, 1), (2, 3), (2, 3, 4, 5), (4, 5)]

    def test_creation_annihilation_inverse_relation(self):
        # a_j + a†_j = M_2j ; a_j - a†_j = i·M_2j+1.
        for j in (0, 2):
            plus = MajoranaOperator.from_fermion_operator(
                FermionOperator.annihilation(j) + FermionOperator.creation(j)
            )
            assert plus == MajoranaOperator.single(2 * j)
            minus = MajoranaOperator.from_fermion_operator(
                FermionOperator.annihilation(j) - FermionOperator.creation(j)
            )
            assert minus == MajoranaOperator.single(2 * j + 1, 1j)

    def test_hermitian_fermion_gives_hermitian_majorana(self):
        hop = FermionOperator.hopping(0, 1, 0.7) + FermionOperator.number(1, 2.0)
        hm = MajoranaOperator.from_fermion_operator(hop)
        assert hm.is_hermitian()

    def test_car_preserved_through_majoranas(self):
        """{a_0, a†_0} = 1 computed in the Majorana representation."""
        a0 = MajoranaOperator.from_fermion_operator(FermionOperator.annihilation(0))
        a0d = MajoranaOperator.from_fermion_operator(FermionOperator.creation(0))
        anti = a0 * a0d + a0d * a0
        assert anti.simplify() == MajoranaOperator.identity()

    def test_annihilation_squared_zero(self):
        a0 = MajoranaOperator.from_fermion_operator(FermionOperator.annihilation(0))
        assert (a0 * a0).simplify() == MajoranaOperator.zero()

    def test_modes_counting(self):
        hm = MajoranaOperator.from_fermion_operator(FermionOperator.number(2))
        assert hm.n_majoranas == 6
        assert hm.n_modes == 3
