"""Chaos suite: the serve stack's fault-tolerance layer under injected faults.

Covers the fault-injection harness itself (deterministic firing, budgets,
cross-process coordination), then each tolerance mechanism in isolation —
retries, worker-crash supervision + pool rebuild, deadlines, cancellation,
load shedding, the circuit breaker, graceful drain, SIGTERM — and finally
the end-to-end acceptance scenario: 16 concurrent clients against a 10%
worker-crash + slow-compile fault mix, every one of them receiving a
terminal response.
"""

import os
import signal
import threading
import time

import pytest

import repro.serve.queue as queue_mod
from repro.serve import (
    BackgroundServer,
    BreakerOpen,
    CircuitBreaker,
    CompileRequest,
    JobQueue,
    JobStatus,
    QueueFull,
    RetryPolicy,
    ServiceClient,
    ServiceDraining,
    ServiceError,
    faults,
    run_server,
)
from repro.serve.faults import FaultInjector, WorkerCrashFault
from repro.service import MappingService

#: Tight backoff so retry tests run in milliseconds.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.02)

FAKE_FP = "ab" * 32


def _fake_result(request, service):
    return {"fingerprint": FAKE_FP, "source": "compiled"}


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    """Every test starts and ends with no faults armed and fresh counters."""
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    monkeypatch.delenv(faults.FAULTS_STATE_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


def _arm(monkeypatch, spec, state_dir=None):
    monkeypatch.setenv(faults.FAULTS_ENV, spec)
    if state_dir is not None:
        monkeypatch.setenv(faults.FAULTS_STATE_ENV, str(state_dir))
    faults.reset()


def _service(tmp_path):
    return MappingService(cache_dir=tmp_path / "cache")


# ----------------------------------------------------------------------
# The injector itself
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_deterministic_rate_is_evenly_spaced(self):
        inj = FaultInjector.from_spec("slow_compile:0.25")
        fires = [inj.should_fire("slow_compile") for _ in range(100)]
        assert sum(fires) == 25
        # Evenly spaced: every 4th trial, starting at trial index 3.
        assert fires[3] and fires[7] and not any(fires[:3])

    def test_rate_one_fires_every_trial_rate_zero_never(self):
        always = FaultInjector.from_spec("worker_crash:1")
        assert all(always.should_fire("worker_crash") for _ in range(5))
        never = FaultInjector.from_spec("worker_crash:0")
        assert not any(never.should_fire("worker_crash") for _ in range(5))

    def test_unarmed_points_never_fire(self):
        inj = FaultInjector.from_spec("")
        assert not inj.active
        assert not inj.should_fire("worker_crash")

    def test_bad_specs_rejected(self):
        for bad in ("worker_crash", "worker_crash:2.0", "nosuchpoint:1",
                    "worker_crash:1:0:1:9", "worker_crash:abc"):
            with pytest.raises(ValueError):
                FaultInjector.from_spec(bad)

    def test_max_fires_budget_in_process(self):
        inj = FaultInjector.from_spec("worker_crash:1:0:2")
        fires = [inj.should_fire("worker_crash") for _ in range(5)]
        assert fires == [True, True, False, False, False]

    def test_max_fires_budget_shared_via_state_dir(self, tmp_path):
        # Two injectors (stand-ins for two processes) share one budget
        # through O_EXCL ticket files.
        a = FaultInjector.from_spec("worker_crash:1:0:1", state_dir=str(tmp_path))
        b = FaultInjector.from_spec("worker_crash:1:0:1", state_dir=str(tmp_path))
        assert a.should_fire("worker_crash") is True
        assert b.should_fire("worker_crash") is False

    def test_env_changes_reparse_the_global_injector(self, monkeypatch):
        _arm(monkeypatch, "slow_compile:1:0.0")
        assert faults.get_injector().active
        monkeypatch.setenv(faults.FAULTS_ENV, "")
        assert not faults.get_injector().active

    def test_stats_report_trials_and_fires(self):
        inj = FaultInjector.from_spec("worker_crash:0.5")
        for _ in range(4):
            inj.should_fire("worker_crash")
        stats = inj.stats()
        assert stats["trials"]["worker_crash"] == 4
        assert stats["fired"]["worker_crash"] == 2
        assert stats["rules"]["worker_crash"]["rate"] == 0.5


# ----------------------------------------------------------------------
# Retries and supervision (thread executor)
# ----------------------------------------------------------------------
class TestRetries:
    def test_worker_crash_retries_to_success(self, tmp_path, monkeypatch):
        monkeypatch.setattr(queue_mod, "_run_request", _fake_result)
        _arm(monkeypatch, "worker_crash:1:0:1")  # exactly one crash
        with JobQueue(service=_service(tmp_path), workers=1, retry=FAST_RETRY) as q:
            record, _ = q.submit(CompileRequest(case="hubbard:1x2"))
            done = q.wait(record.id, timeout=30)
            assert done.status == JobStatus.DONE, done.error
            assert done.attempts == 2
            stats = q.stats()
            assert stats["retried"] == 1
            assert stats["worker_crashes"] == 1
            assert stats["errors"] == 0
            assert stats["faults"]["fired"]["worker_crash"] == 1

    def test_retries_exhaust_into_typed_error(self, tmp_path, monkeypatch):
        monkeypatch.setattr(queue_mod, "_run_request", _fake_result)
        _arm(monkeypatch, "worker_crash:1")  # crash every attempt
        with JobQueue(service=_service(tmp_path), workers=1, retry=FAST_RETRY,
                      breaker=False) as q:
            record, _ = q.submit(CompileRequest(case="hubbard:1x2"))
            done = q.wait(record.id, timeout=30)
            assert done.status == JobStatus.ERROR
            assert done.error_kind == "worker_crash"
            assert done.attempts == FAST_RETRY.max_attempts
            stats = q.stats()
            assert stats["retried"] == FAST_RETRY.max_attempts - 1
            assert stats["errors"] == 1

    def test_transient_store_io_is_retried(self, tmp_path, monkeypatch):
        calls = []

        def flaky(request, service):
            calls.append(1)
            if len(calls) == 1:
                raise OSError(28, "injected: no space left on device")
            return _fake_result(request, service)

        monkeypatch.setattr(queue_mod, "_run_request", flaky)
        with JobQueue(service=_service(tmp_path), workers=1, retry=FAST_RETRY) as q:
            record, _ = q.submit(CompileRequest(case="hubbard:1x2"))
            done = q.wait(record.id, timeout=30)
            assert done.status == JobStatus.DONE
            assert done.attempts == 2 and done.error_kind is None

    def test_store_write_fault_is_transient_and_retried(self, tmp_path, monkeypatch):
        """End-to-end: the store_write injection point → retryable job."""
        _arm(monkeypatch, "store_write:1:0:1")
        with JobQueue(service=_service(tmp_path), workers=1, retry=FAST_RETRY) as q:
            record, _ = q.submit(CompileRequest(case="hubbard:1x2", kind="jw"))
            done = q.wait(record.id, timeout=120)
            assert done.status == JobStatus.DONE, done.error
            assert done.attempts == 2
            # The retry really stored the artifact (no partial left behind).
            assert q.service.store.contains(done.fingerprint)

    def test_nonretryable_errors_fail_fast(self, tmp_path, monkeypatch):
        def boom(request, service):
            raise ValueError("bad request payload")

        monkeypatch.setattr(queue_mod, "_run_request", boom)
        with JobQueue(service=_service(tmp_path), workers=1, retry=FAST_RETRY) as q:
            record, _ = q.submit(CompileRequest(case="hubbard:1x2"))
            done = q.wait(record.id, timeout=30)
            assert done.status == JobStatus.ERROR
            assert done.error_kind == "exception"
            assert done.attempts == 1
            assert q.stats()["retried"] == 0

    def test_worker_crash_fault_is_a_typed_job_error(self):
        exc = WorkerCrashFault()
        assert exc.kind == "worker_crash" and exc.retryable


class TestProcessPoolSupervision:
    def test_worker_crash_rebuilds_pool_and_retries(self, tmp_path, monkeypatch):
        """A real os._exit in a pool worker → BrokenProcessPool → rebuild +
        re-dispatch; the job still lands DONE with attempts recorded."""
        _arm(monkeypatch, "worker_crash:1:0:1", state_dir=tmp_path / "faults")
        with JobQueue(service=_service(tmp_path), workers=1, executor="process",
                      retry=FAST_RETRY) as q:
            record, _ = q.submit(CompileRequest(case="hubbard:1x2", kind="jw"))
            done = q.wait(record.id, timeout=300)
            assert done.status == JobStatus.DONE, done.error
            assert done.attempts == 2
            stats = q.stats()
            assert stats["pool_rebuilds"] >= 1
            assert stats["worker_crashes"] >= 1
            assert stats["errors"] == 0


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
class TestDeadlines:
    def _gated(self, monkeypatch, gate):
        def slow(request, service):
            gate.wait(30)
            return _fake_result(request, service)

        monkeypatch.setattr(queue_mod, "_run_request", slow)

    def test_request_deadline_settles_the_record(self, tmp_path, monkeypatch):
        gate = threading.Event()
        self._gated(monkeypatch, gate)
        try:
            with JobQueue(service=_service(tmp_path), workers=1, retry=False) as q:
                record, _ = q.submit(
                    CompileRequest(case="hubbard:1x2", deadline=0.2)
                )
                start = time.monotonic()
                done = q.wait(record.id, timeout=10)
                # The waiter unblocked on the deadline, not on the worker.
                assert time.monotonic() - start < 5
                assert done.status == JobStatus.ERROR
                assert done.error_kind == "timeout"
                assert q.stats()["timeouts"] == 1
                gate.set()
                time.sleep(0.1)
                # The late completion must not overwrite the settled record.
                assert q.get(record.id).status == JobStatus.ERROR
        finally:
            gate.set()

    def test_queue_wide_job_timeout_applies(self, tmp_path, monkeypatch):
        gate = threading.Event()
        self._gated(monkeypatch, gate)
        try:
            with JobQueue(service=_service(tmp_path), workers=1, retry=False,
                          job_timeout=0.2) as q:
                record, _ = q.submit(CompileRequest(case="hubbard:1x2"))
                done = q.wait(record.id, timeout=10)
                assert done.status == JobStatus.ERROR
                assert done.error_kind == "timeout"
        finally:
            gate.set()

    def test_bad_deadlines_rejected_at_the_schema(self):
        for bad in (-1, 0, float("nan"), float("inf"), True):
            with pytest.raises(ValueError):
                CompileRequest(case="hubbard:1x2", deadline=bad)

    def test_deadline_excluded_from_coalesce_key(self):
        a = CompileRequest(case="hubbard:1x2", deadline=5.0)
        b = CompileRequest(case="hubbard:1x2")
        assert a.coalesce_key() == b.coalesce_key()
        assert CompileRequest.from_dict(a.to_dict()) == a


# ----------------------------------------------------------------------
# Cancellation
# ----------------------------------------------------------------------
class TestCancellation:
    def test_cancel_settles_record_and_releases_key(self, tmp_path, monkeypatch):
        gate = threading.Event()

        def slow(request, service):
            gate.wait(30)
            return _fake_result(request, service)

        monkeypatch.setattr(queue_mod, "_run_request", slow)
        try:
            with JobQueue(service=_service(tmp_path), workers=1) as q:
                blocker, _ = q.submit(CompileRequest(case="hubbard:1x2"))
                queued, _ = q.submit(CompileRequest(case="hubbard:2x2"))
                record, cancelled = q.cancel(queued.id)
                assert cancelled and record.status == JobStatus.CANCELLED
                assert record.error_kind == "cancelled"
                assert q.stats()["cancelled"] == 1
                # The coalesce key is released: an identical re-submission
                # starts a fresh job instead of coalescing onto the corpse.
                fresh, coalesced = q.submit(CompileRequest(case="hubbard:2x2"))
                assert not coalesced and fresh.id != queued.id
                gate.set()
        finally:
            gate.set()

    def test_cancel_peels_one_coalesced_subscriber(self, tmp_path, monkeypatch):
        gate = threading.Event()

        def slow(request, service):
            gate.wait(30)
            return _fake_result(request, service)

        monkeypatch.setattr(queue_mod, "_run_request", slow)
        try:
            with JobQueue(service=_service(tmp_path), workers=1) as q:
                first, _ = q.submit(CompileRequest(case="hubbard:1x2"))
                second, coalesced = q.submit(CompileRequest(case="hubbard:1x2"))
                assert coalesced and second.id == first.id
                record, cancelled = q.cancel(first.id)
                # One subscriber peeled off; the job keeps running.
                assert not cancelled and record.subscribers == 1
                assert not record.done
                gate.set()
                done = q.wait(first.id, timeout=10)
                assert done.status == JobStatus.DONE
        finally:
            gate.set()

    def test_cancel_unknown_and_settled_jobs(self, tmp_path, monkeypatch):
        monkeypatch.setattr(queue_mod, "_run_request", _fake_result)
        with JobQueue(service=_service(tmp_path), workers=1) as q:
            assert q.cancel("j99999999") == (None, False)
            record, _ = q.submit(CompileRequest(case="hubbard:1x2"))
            done = q.wait(record.id, timeout=10)
            assert done.status == JobStatus.DONE
            again, cancelled = q.cancel(record.id)
            assert not cancelled and again.status == JobStatus.DONE

    def test_http_delete_cancels(self, tmp_path, monkeypatch):
        gate = threading.Event()

        def slow(request, service):
            gate.wait(30)
            return _fake_result(request, service)

        monkeypatch.setattr(queue_mod, "_run_request", slow)
        try:
            with JobQueue(service=_service(tmp_path), workers=1) as q, \
                    BackgroundServer(q) as bg, \
                    ServiceClient(bg.host, bg.port) as client:
                blocker = client.submit(CompileRequest(case="hubbard:1x2"))
                queued = client.submit(CompileRequest(case="hubbard:2x2"))
                record, cancelled = client.cancel(queued.id)
                assert cancelled and record.status == JobStatus.CANCELLED
                with pytest.raises(ServiceError) as err:
                    client.cancel("j99999999")
                assert err.value.status == 404
                gate.set()
                assert client.job(blocker.id) is not None
        finally:
            gate.set()


# ----------------------------------------------------------------------
# Load shedding and the circuit breaker
# ----------------------------------------------------------------------
class TestLoadShedding:
    def _plug(self, monkeypatch, gate):
        def slow(request, service):
            gate.wait(30)
            return _fake_result(request, service)

        monkeypatch.setattr(queue_mod, "_run_request", slow)

    def test_queue_full_sheds_cold_but_accepts_coalesced(self, tmp_path, monkeypatch):
        gate = threading.Event()
        self._plug(monkeypatch, gate)
        try:
            with JobQueue(service=_service(tmp_path), workers=1,
                          max_pending=1) as q:
                first, _ = q.submit(CompileRequest(case="hubbard:1x2"))
                with pytest.raises(QueueFull) as err:
                    q.submit(CompileRequest(case="hubbard:2x2"))
                assert err.value.retry_after >= 1.0
                # Coalesced twins cost nothing and are always accepted.
                twin, coalesced = q.submit(CompileRequest(case="hubbard:1x2"))
                assert coalesced and twin.id == first.id
                assert q.stats()["shed_full"] == 1
                gate.set()
        finally:
            gate.set()

    def test_http_503_with_retry_after_header(self, tmp_path, monkeypatch):
        gate = threading.Event()
        self._plug(monkeypatch, gate)
        try:
            with JobQueue(service=_service(tmp_path), workers=1,
                          max_pending=1) as q, \
                    BackgroundServer(q) as bg, \
                    ServiceClient(bg.host, bg.port) as client:
                client.submit(CompileRequest(case="hubbard:1x2"))
                with pytest.raises(ServiceError) as err:
                    client.submit(CompileRequest(case="hubbard:2x2"))
                assert err.value.status == 503
                assert err.value.kind == "http"
                assert err.value.retry_after is not None
                assert err.value.retry_after >= 1.0
                gate.set()
        finally:
            gate.set()

    def test_draining_queue_sheds_everything(self, tmp_path, monkeypatch):
        monkeypatch.setattr(queue_mod, "_run_request", _fake_result)
        with JobQueue(service=_service(tmp_path), workers=1) as q:
            q.drain(timeout=1)
            with pytest.raises(ServiceDraining):
                q.submit(CompileRequest(case="hubbard:1x2"))
            assert q.stats()["shed_draining"] == 1
            assert q.health()["state"] == "draining"


class TestCircuitBreaker:
    def test_trips_after_threshold_and_cools_down(self):
        breaker = CircuitBreaker(window=60, min_samples=4, threshold=0.5,
                                 cooldown=0.2)
        for _ in range(4):
            breaker.record(False)
        assert breaker.is_open()
        state = breaker.state()
        assert state["open"] and state["trips"] == 1
        assert breaker.retry_after() > 0
        time.sleep(0.25)
        assert not breaker.is_open()

    def test_mixed_outcomes_below_threshold_stay_closed(self):
        breaker = CircuitBreaker(window=60, min_samples=4, threshold=0.5)
        for ok in (True, True, True, False, True, True, False, True):
            breaker.record(ok)
        assert not breaker.is_open()

    def test_open_breaker_sheds_cold_serves_warm(self, tmp_path, monkeypatch):
        service = _service(tmp_path)
        # min_samples=3: warm success + both poisoned failures must land
        # before the trip (2/3 failure rate >= 0.6).
        breaker = CircuitBreaker(window=60, min_samples=3, threshold=0.6,
                                 cooldown=60)
        real_run = queue_mod._run_request

        def flaky(request, service_):
            if request.case in ("hubbard:2x2", "hubbard:1x3"):
                raise ValueError("poisoned workload")
            return real_run(request, service_)

        monkeypatch.setattr(queue_mod, "_run_request", flaky)
        with JobQueue(service=service, workers=1, retry=False,
                      breaker=breaker) as q:
            # Warm the cache with a real (cheap) compile first.
            warm, _ = q.submit(CompileRequest(case="hubbard:1x2", kind="jw"))
            assert q.wait(warm.id, timeout=120).status == JobStatus.DONE
            # Two failures trip the breaker.
            for case in ("hubbard:2x2", "hubbard:1x3"):
                record, _ = q.submit(CompileRequest(case=case, kind="jw"))
                q.wait(record.id, timeout=30)
            assert breaker.is_open()
            assert q.health()["state"] == "degraded"
            # Cold work is shed...
            with pytest.raises(BreakerOpen):
                q.submit(CompileRequest(case="hubbard:3x3", kind="jw"))
            assert q.stats()["shed_breaker"] == 1
            # ...but the warm request still flows to a DONE record.
            served, _ = q.submit(CompileRequest(case="hubbard:1x2", kind="jw"))
            done = q.wait(served.id, timeout=30)
            assert done.status == JobStatus.DONE
            assert done.result["source"] in ("memory", "disk")

    def test_degraded_state_surfaces_over_http(self, tmp_path, monkeypatch):
        def boom(request, service):
            raise ValueError("poisoned")

        monkeypatch.setattr(queue_mod, "_run_request", boom)
        breaker = CircuitBreaker(window=60, min_samples=2, threshold=0.5,
                                 cooldown=60)
        with JobQueue(service=_service(tmp_path), workers=1, retry=False,
                      breaker=breaker) as q, \
                BackgroundServer(q) as bg, \
                ServiceClient(bg.host, bg.port) as client:
            for case in ("hubbard:1x2", "hubbard:2x2"):
                record = client.submit(CompileRequest(case=case), wait=True,
                                       timeout=30)
                assert record.status == JobStatus.ERROR
            stats = client.stats()
            assert stats["breaker"]["open"] and stats["breaker"]["trips"] == 1
            # Degraded is still alive: healthz stays 200 with state exposed.
            assert client.healthy()
            _status, doc = client._call("GET", "/v1/healthz", command="healthz")
            assert doc["result"]["state"] == "degraded"


# ----------------------------------------------------------------------
# Drain and SIGTERM
# ----------------------------------------------------------------------
class TestDrain:
    def test_drain_lets_inflight_settle_naturally(self, tmp_path, monkeypatch):
        gate = threading.Event()

        def slow(request, service):
            gate.wait(30)
            return _fake_result(request, service)

        monkeypatch.setattr(queue_mod, "_run_request", slow)
        with JobQueue(service=_service(tmp_path), workers=1) as q:
            record, _ = q.submit(CompileRequest(case="hubbard:1x2"))
            threading.Timer(0.15, gate.set).start()
            summary = q.drain(timeout=15)
            assert summary == {"settled": 1, "forced": 0}
            assert q.get(record.id).status == JobStatus.DONE

    def test_drain_force_settles_stragglers(self, tmp_path, monkeypatch):
        gate = threading.Event()

        def stuck(request, service):
            gate.wait(30)
            return _fake_result(request, service)

        monkeypatch.setattr(queue_mod, "_run_request", stuck)
        try:
            with JobQueue(service=_service(tmp_path), workers=1) as q:
                record, _ = q.submit(CompileRequest(case="hubbard:1x2"))
                summary = q.drain(timeout=0.2)
                assert summary == {"settled": 0, "forced": 1}
                done = q.get(record.id)
                assert done.status == JobStatus.CANCELLED
                assert done.error_kind == "shutdown"
        finally:
            gate.set()

    def test_shutdown_cancel_futures_settles_queued_jobs(self, tmp_path,
                                                         monkeypatch):
        """The Ctrl-C path: no ?wait=1 client may be left hanging."""
        gate = threading.Event()

        def stuck(request, service):
            gate.wait(30)
            return _fake_result(request, service)

        monkeypatch.setattr(queue_mod, "_run_request", stuck)
        try:
            q = JobQueue(service=_service(tmp_path), workers=1)
            running, _ = q.submit(CompileRequest(case="hubbard:1x2"))
            queued, _ = q.submit(CompileRequest(case="hubbard:2x2"))
            waiter_result = {}

            def waiter():
                waiter_result["record"] = q.wait(queued.id, timeout=20)

            thread = threading.Thread(target=waiter)
            thread.start()
            time.sleep(0.05)
            q.shutdown(wait=False, cancel_futures=True)
            thread.join(timeout=10)
            assert not thread.is_alive(), "?wait client left hanging on shutdown"
            assert waiter_result["record"].status == JobStatus.CANCELLED
            assert waiter_result["record"].error_kind == "shutdown"
            assert q.get(running.id).done and q.get(queued.id).done
        finally:
            gate.set()

    def test_background_server_drain(self, tmp_path, monkeypatch):
        monkeypatch.setattr(queue_mod, "_run_request", _fake_result)
        with JobQueue(service=_service(tmp_path), workers=1) as q:
            bg = BackgroundServer(q).start()
            with ServiceClient(bg.host, bg.port) as client:
                record = client.submit(CompileRequest(case="hubbard:1x2"),
                                       wait=True, timeout=30)
                assert record.done
            summary = bg.drain(timeout=5)
            assert summary["forced"] == 0
            assert q.health()["state"] == "draining"


class TestSigtermDrain:
    def test_sigterm_drains_and_returns(self, tmp_path, monkeypatch):
        """run_server on the main thread: SIGTERM → drain → clean return,
        with the in-flight job settled (not wedged)."""
        gate = threading.Event()

        def slow(request, service):
            gate.wait(30)
            return _fake_result(request, service)

        monkeypatch.setattr(queue_mod, "_run_request", slow)
        holder = {}
        ready_event = threading.Event()

        def ready(server):
            holder["server"] = server
            ready_event.set()

        def driver():
            assert ready_event.wait(10)
            with ServiceClient("127.0.0.1", holder["server"].port) as client:
                holder["record"] = client.submit(
                    CompileRequest(case="hubbard:1x2")
                )
            os.kill(os.getpid(), signal.SIGTERM)
            time.sleep(0.2)
            gate.set()  # release the worker so the drain settles it

        try:
            with JobQueue(service=_service(tmp_path), workers=1) as q:
                thread = threading.Thread(target=driver)
                thread.start()
                run_server(q, host="127.0.0.1", port=0, ready=ready,
                           drain_timeout=20)
                thread.join(timeout=10)
                record = q.get(holder["record"].id)
                assert record is not None and record.done
                assert record.status == JobStatus.DONE
        finally:
            gate.set()


# ----------------------------------------------------------------------
# Partial socket writes (client hardening)
# ----------------------------------------------------------------------
class TestPartialWriteFault:
    def test_idempotent_get_retries_through_truncation(self, tmp_path,
                                                       monkeypatch):
        with JobQueue(service=_service(tmp_path), workers=1) as q, \
                BackgroundServer(q) as bg, \
                ServiceClient(bg.host, bg.port) as client:
            _arm(monkeypatch, "partial_write:1:0.5:1")
            stats = client.stats()  # first response truncated; GET retried
            assert stats["executor"] == "thread"

    def test_post_surfaces_typed_connection_error(self, tmp_path, monkeypatch):
        monkeypatch.setattr(queue_mod, "_run_request", _fake_result)
        with JobQueue(service=_service(tmp_path), workers=1) as q, \
                BackgroundServer(q) as bg, \
                ServiceClient(bg.host, bg.port) as client:
            _arm(monkeypatch, "partial_write:1:0.5:1")
            with pytest.raises(ServiceError) as err:
                client.submit(CompileRequest(case="hubbard:1x2"))
            assert err.value.kind == "connection"
            assert err.value.status == 0
            assert "re-submit" in str(err.value)
            # The documented recovery: re-submit; the retry converges on the
            # already-running job (coalesced) or a fresh one — either way a
            # terminal record.
            record = client.submit(CompileRequest(case="hubbard:1x2"),
                                   wait=True, timeout=30)
            assert record.done


# ----------------------------------------------------------------------
# End-to-end chaos acceptance
# ----------------------------------------------------------------------
class TestChaosEndToEnd:
    def test_16_clients_all_terminal_under_10pct_fault_mix(self, tmp_path,
                                                           monkeypatch):
        """The ISSUE acceptance scenario: N=16 concurrent clients, 10%
        worker-crash + slow-compile faults — every client gets a terminal
        response, retried jobs succeed with attempts > 1 in stats, and no
        job is left wedged ``running``."""

        def quick(request, service):
            time.sleep(0.01)
            return _fake_result(request, service)

        monkeypatch.setattr(queue_mod, "_run_request", quick)
        _arm(monkeypatch, "worker_crash:0.1,slow_compile:0.1:0.05")
        n_clients = 16
        records, errors = [], []
        lock = threading.Lock()
        with JobQueue(service=_service(tmp_path), workers=4, retry=FAST_RETRY,
                      breaker=CircuitBreaker(min_samples=1000)) as q, \
                BackgroundServer(q) as bg:

            def client_thread(i):
                try:
                    with ServiceClient(bg.host, bg.port) as client:
                        # Distinct cases → no coalescing: 16 cold jobs.
                        record = client.submit(
                            CompileRequest(case=f"hubbard:{i + 1}x7", kind="jw"),
                            wait=True, timeout=60,
                        )
                    with lock:
                        records.append(record)
                except Exception as exc:  # noqa: BLE001 - collected and asserted
                    with lock:
                        errors.append(exc)

            threads = [
                threading.Thread(target=client_thread, args=(i,))
                for i in range(n_clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not any(t.is_alive() for t in threads), "hung ?wait=1 hold"
            assert not errors, errors
            assert len(records) == n_clients
            # Every client got a *terminal* response...
            assert all(r.done for r in records)
            # ...and the crashes were retried to success, not surfaced.
            assert all(r.status == JobStatus.DONE for r in records), [
                (r.status, r.error) for r in records
            ]
            stats = q.stats()
            assert stats["retried"] >= 1
            assert any(r.attempts > 1 for r in records)
            assert stats["jobs"][JobStatus.RUNNING] == 0
            assert stats["jobs"][JobStatus.QUEUED] == 0
            assert stats["faults"]["fired"]["worker_crash"] >= 1
