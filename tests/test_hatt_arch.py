"""Architecture-adaptive HATT construction (``hatt-arch``) equivalence.

The distance-biased candidate selection must be bit-identical between the
scalar reference and the packed-uint64 vector backend on every coupling
graph, must reduce *exactly* to plain HATT when ``arch_weight=0`` (the
blended score becomes a monotone rescaling of the weight, preserving every
tie-break), and must survive multiword (> 64 term) Hamiltonians under a
memory budget that forces candidate chunking.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.architectures import ARCHITECTURE_NAMES, architecture
from repro.fermion import MajoranaOperator
from repro.hatt import DEFAULT_ARCH_WEIGHT, HattConstruction, hatt_mapping

ARCHS = ("montreal", "sycamore", "ionq_forte")


@st.composite
def majorana_hamiltonians(draw):
    """Random Hermitian-support Hamiltonians on 1..6 modes."""
    n = draw(st.integers(min_value=1, max_value=6))
    n_terms = draw(st.integers(min_value=0, max_value=10))
    op = MajoranaOperator.zero()
    for _ in range(n_terms):
        size = draw(st.sampled_from([s for s in (1, 2, 4) if s <= 2 * n]))
        indices = draw(
            st.lists(
                st.integers(min_value=0, max_value=2 * n - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        coeff = 1j if (size * (size - 1) // 2) % 2 else 1.0
        op = op + MajoranaOperator.from_term(sorted(indices), coeff)
    return n, op


def _run_both(op, n, **kwargs):
    scalar = HattConstruction(op, n, backend="scalar", **kwargs)
    tree_s = scalar.run()
    vector = HattConstruction(op, n, backend="vector", **kwargs)
    tree_v = vector.run()
    return scalar, tree_s, vector, tree_v


def _dense_hamiltonian(n=6, n_terms=150, seed=11):
    rng = np.random.default_rng(seed)
    op = MajoranaOperator.zero()
    for _ in range(n_terms):
        size = int(rng.choice([2, 4]))
        idx = sorted(rng.choice(2 * n, size=size, replace=False).tolist())
        coeff = 1j if (size * (size - 1) // 2) % 2 else 1.0
        op = op + MajoranaOperator.from_term(idx, coeff)
    return n, op


class TestBitIdenticalAcrossArchitectures:
    @given(majorana_hamiltonians(), st.sampled_from(ARCHS))
    @settings(max_examples=30, deadline=None)
    def test_vacuum_trace(self, data, arch):
        n, op = data
        graph = architecture(arch)
        s, ts, v, tv = _run_both(op, n, vacuum=True, graph=graph)
        assert v.trace == s.trace
        assert v.step_weights == s.step_weights
        assert tv.strings_by_leaf_index() == ts.strings_by_leaf_index()

    @given(majorana_hamiltonians(), st.sampled_from(ARCHS))
    @settings(max_examples=20, deadline=None)
    def test_free_selection_trace(self, data, arch):
        n, op = data
        graph = architecture(arch)
        s, ts, v, tv = _run_both(op, n, vacuum=False, graph=graph)
        assert v.trace == s.trace
        assert tv.strings_by_leaf_index() == ts.strings_by_leaf_index()

    @given(
        majorana_hamiltonians(),
        st.sampled_from(ARCHS),
        st.sampled_from([0.25, 1.0, 2.0]),
    )
    @settings(max_examples=20, deadline=None)
    def test_nondefault_weights(self, data, arch, weight):
        n, op = data
        graph = architecture(arch)
        s, _, v, _ = _run_both(op, n, graph=graph, arch_weight=weight)
        assert v.trace == s.trace


class TestPlainHattEquivalence:
    @given(majorana_hamiltonians(), st.sampled_from(ARCHS))
    @settings(max_examples=25, deadline=None)
    def test_zero_weight_is_plain_hatt(self, data, arch):
        """``arch_weight=0`` rescales every score by the same constant, so
        selection order — including tie-breaks — matches plain HATT."""
        n, op = data
        graph = architecture(arch)
        for vacuum in (True, False):
            plain = HattConstruction(op, n, vacuum=vacuum)
            plain.run()
            biased = HattConstruction(
                op, n, vacuum=vacuum, graph=graph, arch_weight=0.0
            )
            biased.run()
            assert biased.trace == plain.trace
            assert biased.step_weights == plain.step_weights

    @given(majorana_hamiltonians())
    @settings(max_examples=25, deadline=None)
    def test_all_to_all_is_plain_hatt(self, data):
        """All physical distances are 1 on ionq_forte, so the penalty term
        vanishes at any weight and plain HATT falls out."""
        n, op = data
        biased = HattConstruction(
            op, n, graph=architecture("ionq_forte"), arch_weight=1.0
        )
        biased.run()
        plain = HattConstruction(op, n)
        plain.run()
        assert biased.trace == plain.trace


class TestMultiwordAndChunking:
    def test_multiword_masks_bit_identical(self):
        """> 64 terms spills into multiple uint64 words per node."""
        n, op = _dense_hamiltonian()
        assert len(op.support_terms()) > 64
        for arch in ("montreal", "sycamore"):
            graph = architecture(arch)
            for vacuum in (True, False):
                s, ts, v, tv = _run_both(op, n, vacuum=vacuum, graph=graph)
                assert v.trace == s.trace
                assert tv.strings_by_leaf_index() == ts.strings_by_leaf_index()

    @given(majorana_hamiltonians(), st.sampled_from(ARCHS))
    @settings(max_examples=15, deadline=None)
    def test_tiny_memory_budget(self, data, arch):
        """A budget far below one candidate grid must not change results."""
        n, op = data
        graph = architecture(arch)
        for vacuum in (True, False):
            scalar = HattConstruction(
                op, n, vacuum=vacuum, backend="scalar", graph=graph
            )
            scalar.run()
            vector = HattConstruction(
                op, n, vacuum=vacuum, backend="vector", graph=graph,
                memory_budget=512,
            )
            vector.run()
            assert vector.trace == scalar.trace

    def test_multiword_under_budget(self):
        n, op = _dense_hamiltonian(seed=7)
        graph = architecture("sycamore")
        scalar = HattConstruction(op, n, backend="scalar", graph=graph)
        scalar.run()
        vector = HattConstruction(
            op, n, backend="vector", graph=graph, memory_budget=512
        )
        vector.run()
        assert vector.trace == scalar.trace


class TestArchApi:
    def test_mapping_name(self):
        op = MajoranaOperator.from_term([0, 3], 1.0)
        m = hatt_mapping(op, n_modes=2, graph=architecture("montreal"))
        assert m.name == "HATT-arch"
        assert m.is_valid()
        assert m.preserves_vacuum()
        m_unopt = hatt_mapping(
            op, n_modes=2, vacuum=False, graph=architecture("montreal")
        )
        assert m_unopt.name == "HATT-arch-unopt"

    def test_weight_without_graph_rejected(self):
        with pytest.raises(ValueError):
            HattConstruction(MajoranaOperator.zero(), 2, arch_weight=0.5)

    def test_bad_weights_rejected(self):
        g = architecture("montreal")
        for bad in (-0.5, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                HattConstruction(MajoranaOperator.zero(), 2, graph=g, arch_weight=bad)

    def test_too_many_modes_rejected(self):
        g = architecture("montreal")  # 27 qubits < 30 modes
        with pytest.raises(ValueError):
            HattConstruction(MajoranaOperator.zero(), 30, graph=g)

    def test_default_weight_exported(self):
        assert DEFAULT_ARCH_WEIGHT > 0
        assert "montreal" in ARCHITECTURE_NAMES
