"""Property-based tests for HATT over random Majorana Hamiltonians."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fermion import MajoranaOperator
from repro.hatt import hatt_mapping
from repro.mappings import balanced_ternary_tree, jordan_wigner


@st.composite
def majorana_hamiltonians(draw):
    """Random Hermitian-support Hamiltonians on 2..6 modes."""
    n = draw(st.integers(min_value=2, max_value=6))
    n_terms = draw(st.integers(min_value=1, max_value=8))
    op = MajoranaOperator.zero()
    for _ in range(n_terms):
        size = draw(st.sampled_from([2, 4]))
        indices = draw(
            st.lists(
                st.integers(min_value=0, max_value=2 * n - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        # Phase making the monomial Hermitian: a product of k Majoranas
        # conjugates to (-1)^{k(k-1)/2} times itself.
        coeff = 1j if (size * (size - 1) // 2) % 2 else 1.0
        op = op + MajoranaOperator.from_term(sorted(indices), coeff)
    return n, op


@given(majorana_hamiltonians())
@settings(max_examples=40, deadline=None)
def test_hatt_always_valid_and_vacuum_preserving(data):
    n, op = data
    mapping = hatt_mapping(op, n_modes=n, vacuum=True)
    assert mapping.is_valid()
    assert mapping.preserves_vacuum()
    assert mapping.discarded is not None
    # All 2N+1 tree strings pairwise anticommute, including the discarded one.
    assert all(
        mapping.discarded.anticommutes_with(s) for s in mapping.strings
    )


@given(majorana_hamiltonians())
@settings(max_examples=25, deadline=None)
def test_unopt_hatt_valid(data):
    n, op = data
    mapping = hatt_mapping(op, n_modes=n, vacuum=False)
    assert mapping.is_valid()


@given(majorana_hamiltonians())
@settings(max_examples=25, deadline=None)
def test_cached_equals_uncached(data):
    n, op = data
    cached = hatt_mapping(op, n_modes=n, cached=True)
    uncached = hatt_mapping(op, n_modes=n, cached=False)
    assert cached.strings == uncached.strings


@given(majorana_hamiltonians())
@settings(max_examples=25, deadline=None)
def test_spectral_equivalence_with_jw(data):
    """The HATT-mapped operator is isospectral with the JW-mapped one."""
    import numpy as np

    n, op = data
    if n > 5:  # keep dense matrices small
        return
    assert op.is_hermitian()
    hatt_q = hatt_mapping(op, n_modes=n).map(op)
    jw_q = jordan_wigner(n).map(op)
    assert hatt_q.is_hermitian() and jw_q.is_hermitian()
    ev_h = np.linalg.eigvalsh(hatt_q.to_matrix())
    ev_j = np.linalg.eigvalsh(jw_q.to_matrix())
    np.testing.assert_allclose(ev_h, ev_j, atol=1e-8)


@given(majorana_hamiltonians())
@settings(max_examples=20, deadline=None)
def test_weight_not_worse_than_btt_on_average_structure(data):
    """Greedy adaptivity should rarely lose to the oblivious balanced tree.

    This is a *statistical* paper claim, not a theorem; we assert the weak
    form that HATT never exceeds BTT by more than 25% on random instances.
    """
    n, op = data
    hatt_w = hatt_mapping(op, n_modes=n).map(op).pauli_weight()
    btt_w = balanced_ternary_tree(n).map(op).pauli_weight()
    assert hatt_w <= max(btt_w * 1.25, btt_w + 3)
