"""Tests for the stock fermion-to-qubit mappings and mapping application.

The heavy hitters here are the dense-matrix CAR checks and the
spectrum-invariance test: every valid mapping of the same fermionic
Hamiltonian must produce a qubit Hamiltonian with the identical spectrum.
"""

import numpy as np
import pytest

from repro.fermion import FermionOperator, MajoranaOperator
from repro.mappings import (
    FermionQubitMapping,
    balanced_ternary_tree,
    bravyi_kitaev,
    fenwick_sets,
    jordan_wigner,
    parity_mapping,
    symplectic_rank,
)
from repro.paulis import PauliString

ALL_MAPPINGS = [jordan_wigner, bravyi_kitaev, parity_mapping, balanced_ternary_tree]
MAPPING_IDS = ["JW", "BK", "Parity", "BTT"]


@pytest.mark.parametrize("factory", ALL_MAPPINGS, ids=MAPPING_IDS)
@pytest.mark.parametrize("n", [1, 2, 3, 4, 6, 9])
class TestUniversalProperties:
    def test_valid(self, factory, n):
        m = factory(n)
        assert m.n_modes == n
        assert m.n_qubits == n
        assert m.is_valid()

    def test_vacuum_preservation(self, factory, n):
        assert factory(n).preserves_vacuum()

    def test_occupation_paulis_commute_and_hermitian(self, factory, n):
        m = factory(n)
        occs = [m.occupation_pauli(j) for j in range(n)]
        for p in occs:
            assert p.is_hermitian
        for i in range(n):
            for j in range(i + 1, n):
                assert occs[i].commutes_with(occs[j])


class TestJordanWigner:
    def test_strings_match_formula(self):
        m = jordan_wigner(4)
        for j in range(4):
            even = {q: "Z" for q in range(j)}
            even[j] = "X"
            odd = {q: "Z" for q in range(j)}
            odd[j] = "Y"
            assert m.majorana(2 * j) == PauliString.from_ops(even, 4)
            assert m.majorana(2 * j + 1) == PauliString.from_ops(odd, 4)

    def test_paper_section2c_majoranas(self):
        # Paper §II-C: M0=IX, M1=IY, M2=XZ, M3=YZ on two modes.
        m = jordan_wigner(2)
        assert m.majorana(0) == PauliString.from_label("IX")
        assert m.majorana(1) == PauliString.from_label("IY")
        assert m.majorana(2) == PauliString.from_label("XZ")
        assert m.majorana(3) == PauliString.from_label("YZ")

    def test_paper_equation1_mapping(self):
        """Map HF = c0 n0 + c1 n1 + c2 a†0a†1a0a1 and compare with §II-C."""
        c0, c1, c2 = 0.3, -0.7, 1.1
        hf = (
            FermionOperator.number(0, c0)
            + FermionOperator.number(1, c1)
            + FermionOperator.from_term(
                [(0, True), (1, True), (0, False), (1, False)], c2
            )
        )
        hq = jordan_wigner(2).map(hf)
        II = PauliString.from_label("II")
        IZ = PauliString.from_label("IZ")
        ZI = PauliString.from_label("ZI")
        ZZ = PauliString.from_label("ZZ")
        assert hq.coefficient(II) == pytest.approx((2 * c0 + 2 * c1 - c2) / 4)
        assert hq.coefficient(IZ) == pytest.approx((c2 - 2 * c0) / 4)
        assert hq.coefficient(ZI) == pytest.approx((c2 - 2 * c1) / 4)
        assert hq.coefficient(ZZ) == pytest.approx(-c2 / 4)
        assert hq.pauli_weight() == 1 + 1 + 2

    def test_number_operator(self):
        m = jordan_wigner(3)
        n1 = m.map(FermionOperator.number(1))
        assert n1.coefficient(PauliString.identity(3)) == pytest.approx(0.5)
        assert n1.coefficient(PauliString.single(3, 1, "Z")) == pytest.approx(-0.5)


class TestBravyiKitaev:
    def test_fenwick_sets_n4(self):
        sets = fenwick_sets(4)
        assert sets[0] == ({1, 3}, set(), set())
        assert sets[1] == ({3}, {0}, set())
        assert sets[2] == ({3}, {1}, {1})
        assert sets[3] == (set(), {1, 2}, set())

    def test_known_strings_n4(self):
        m = bravyi_kitaev(4)
        assert m.majorana(6) == PauliString.from_ops({3: "X", 2: "Z", 1: "Z"}, 4)
        assert m.majorana(7) == PauliString.from_ops({3: "Y"}, 4)

    def test_logarithmic_weight_growth(self):
        """BK string weight is O(log N); check a generous bound."""
        import math

        for n in [4, 8, 16, 32]:
            m = bravyi_kitaev(n)
            max_w = max(s.weight for s in m.strings)
            assert max_w <= 2 * math.ceil(math.log2(n)) + 2

    def test_bk_equals_parity_n2(self):
        # Classic coincidence at two modes.
        bk, par = bravyi_kitaev(2), parity_mapping(2)
        assert [s for s in bk.strings] == [s for s in par.strings]


class TestSymplecticRank:
    def test_full_rank_for_jw(self):
        m = jordan_wigner(5)
        assert symplectic_rank(m.strings, 5) == 10

    def test_dependent_set_detected(self):
        x = PauliString.from_label("XI")
        z = PauliString.from_label("ZI")
        y = x * z  # dependent on the first two
        assert symplectic_rank([x, z, y.with_phase(0)], 2) == 2

    def test_rejects_identity_string(self):
        strings = [PauliString.from_label("II"), PauliString.from_label("XX")]
        assert symplectic_rank(strings, 2) == 1


def dense_ladder_operators(mapping: FermionQubitMapping):
    """Build dense a†_j matrices from the mapping's Majorana strings."""
    out = []
    for j in range(mapping.n_modes):
        even = mapping.majorana(2 * j).to_matrix()
        odd = mapping.majorana(2 * j + 1).to_matrix()
        out.append((even - 1j * odd) / 2)
    return out


@pytest.mark.parametrize("factory", ALL_MAPPINGS, ids=MAPPING_IDS)
def test_car_relations_dense(factory):
    """Mapped ladder operators satisfy the CAR algebra exactly (3 modes)."""
    mapping = factory(3)
    adags = dense_ladder_operators(mapping)
    eye = np.eye(8)
    for i in range(3):
        ai = adags[i].conj().T
        for j in range(3):
            aj_dag = adags[j]
            anti = ai @ aj_dag + aj_dag @ ai
            np.testing.assert_allclose(anti, eye if i == j else 0 * eye, atol=1e-12)
            anti2 = adags[i] @ adags[j] + adags[j] @ adags[i]
            np.testing.assert_allclose(anti2, 0 * eye, atol=1e-12)


@pytest.mark.parametrize("factory", ALL_MAPPINGS, ids=MAPPING_IDS)
def test_vacuum_annihilated_dense(factory):
    mapping = factory(3)
    vac = np.zeros(8)
    vac[0] = 1.0
    for adag in dense_ladder_operators(mapping):
        a = adag.conj().T
        np.testing.assert_allclose(a @ vac, 0, atol=1e-12)


def random_hermitian_fermion_op(n_modes, rng):
    op = FermionOperator()
    for _ in range(6):
        i, j = rng.integers(0, n_modes, 2)
        op = op + FermionOperator.hopping(int(i), int(j), float(rng.normal()))
    for _ in range(3):
        i, j = rng.integers(0, n_modes, 2)
        op = op + FermionOperator.number(int(i)) * FermionOperator.number(int(j)) * float(
            rng.normal()
        )
    return op


def test_spectrum_invariance_across_mappings():
    """All valid mappings produce isospectral qubit Hamiltonians."""
    rng = np.random.default_rng(42)
    hf = random_hermitian_fermion_op(3, rng)
    spectra = []
    for factory in ALL_MAPPINGS:
        hq = factory(3).map(hf)
        assert hq.is_hermitian()
        spectra.append(np.linalg.eigvalsh(hq.to_matrix()))
    for other in spectra[1:]:
        np.testing.assert_allclose(spectra[0], other, atol=1e-9)


def test_map_majorana_rejects_out_of_range():
    m = jordan_wigner(2)
    op = MajoranaOperator.single(7)
    with pytest.raises(ValueError):
        m.map(op)


def test_mode_number_operator_expectation():
    m = balanced_ternary_tree(3)
    for j in range(3):
        nj = m.mode_number_operator(j)
        # Vacuum expectation must be 0 for a vacuum-preserving mapping.
        assert abs(nj.expectation_basis_state(0)) < 1e-12
