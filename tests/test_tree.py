"""Tests for ternary-tree machinery: structure, extraction, vacuum pairing."""

import random

import pytest

from repro.mappings import TernaryTree, TreeNode, balanced_tree, jw_tree, parity_tree
from repro.paulis import PauliString


def build_random_tree(n_modes: int, rng: random.Random) -> TernaryTree:
    """Bottom-up random complete ternary tree (the HATT skeleton with random
    selections): start from 2N+1 leaves, repeatedly parent three random nodes."""
    pool = [TreeNode(leaf_index=i) for i in range(2 * n_modes + 1)]
    for qubit in range(n_modes):
        children = [pool.pop(rng.randrange(len(pool))) for _ in range(3)]
        parent = TreeNode(qubit=qubit)
        for branch, child in zip("XYZ", children):
            parent.attach(branch, child)
        pool.append(parent)
    return TernaryTree(pool[0], n_modes)


class TestStructure:
    def test_balanced_tree_counts(self):
        for n in [1, 2, 3, 5, 8, 13]:
            tree = balanced_tree(n)
            assert tree.n_internal == n
            assert tree.n_leaves == 2 * n + 1

    def test_jw_tree_counts(self):
        tree = jw_tree(4)
        tree.validate()
        assert tree.n_internal == 4
        assert tree.n_leaves == 9

    def test_validate_rejects_incomplete(self):
        root = TreeNode(qubit=0)
        root.attach("X", TreeNode(leaf_index=0))
        root.attach("Y", TreeNode(leaf_index=1))
        # Missing Z child.
        tree = TernaryTree(root, 1)
        with pytest.raises(ValueError):
            tree.validate()

    def test_duplicate_leaf_index_rejected(self):
        root = TreeNode(qubit=0)
        root.attach("X", TreeNode(leaf_index=0))
        root.attach("Y", TreeNode(leaf_index=0))
        root.attach("Z", TreeNode(leaf_index=2))
        with pytest.raises(ValueError):
            TernaryTree(root, 1)

    def test_attach_rejects_duplicate_branch(self):
        node = TreeNode(qubit=0)
        node.attach("X", TreeNode(leaf_index=0))
        with pytest.raises(ValueError):
            node.attach("X", TreeNode(leaf_index=1))

    def test_desc_z(self):
        tree = jw_tree(3)
        # descZ of root walks the whole Z chain to leaf 2N.
        assert tree.root.desc_z().leaf_index == 6


class TestExtraction:
    def test_single_mode_strings(self):
        tree = jw_tree(1)
        strings = tree.strings_by_leaf_index()
        assert [s.label() for s in strings] == ["X", "Y", "Z"]

    def test_paper_figure3_path(self):
        """Reproduce the paper's Fig. 3(c): path In2 -Y-> In0 -Z-> In1 -X-> leaf
        yields the string I3 Y2 X1 Z0."""
        q2, q0, q1 = TreeNode(qubit=2), TreeNode(qubit=0), TreeNode(qubit=1)
        leaf = TreeNode(leaf_index=0)
        q2.attach("Y", q0)
        q0.attach("Z", q1)
        q1.attach("X", leaf)
        partial = TernaryTree.__new__(TernaryTree)
        partial.n_qubits = 4
        s = partial.string_for_leaf(leaf)
        assert s == PauliString.from_compact("Y2X1Z0", n=4)
        assert s.compact() == "Y2X1Z0"

    def test_jw_strings_equal_textbook(self):
        tree = jw_tree(3)
        strings = tree.strings_by_leaf_index()
        assert strings[0] == PauliString.from_label("IIX")
        assert strings[1] == PauliString.from_label("IIY")
        assert strings[2] == PauliString.from_label("IXZ")
        assert strings[3] == PauliString.from_label("IYZ")
        assert strings[4] == PauliString.from_label("XZZ")
        assert strings[5] == PauliString.from_label("YZZ")
        assert strings[6] == PauliString.from_label("ZZZ")

    def test_balanced_tree_weight_bound(self):
        import math

        for n in [2, 4, 7, 12, 20]:
            tree = balanced_tree(n)
            bound = math.ceil(math.log(2 * n + 1, 3)) + 1
            for s in tree.strings_by_leaf_index():
                assert s.weight <= bound


class TestVacuumPairing:
    @pytest.mark.parametrize("builder", [jw_tree, parity_tree, balanced_tree])
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 9])
    def test_pairs_share_xy(self, builder, n):
        strings, discarded = builder(n).vacuum_pairing()
        assert len(strings) == 2 * n
        for j in range(n):
            even, odd = strings[2 * j], strings[2 * j + 1]
            shared = [
                q
                for q in range(n)
                if even.op_at(q) == "X" and odd.op_at(q) == "Y"
            ]
            assert len(shared) == 1
            q = shared[0]
            for other in range(n):
                if other == q:
                    continue
                pair = (even.op_at(other), odd.op_at(other))
                # Must act identically on |0>: equal, or a Z/I combination.
                assert pair[0] == pair[1] or set(pair) <= {"Z", "I"}

    def test_random_trees_pair_correctly(self):
        rng = random.Random(1234)
        for _ in range(20):
            n = rng.randint(1, 10)
            tree = build_random_tree(n, rng)
            tree.validate()
            strings, discarded = tree.vacuum_pairing()
            all_strings = strings + [discarded]
            # All 2N+1 extracted strings pairwise anticommute.
            for i in range(len(all_strings)):
                for j in range(i + 1, len(all_strings)):
                    assert all_strings[i].anticommutes_with(all_strings[j])


class TestTreeFromUidArrays:
    """Bulk export from uid arrays must match node-by-node construction."""

    def test_matches_incremental_build(self):
        from repro.fermion import FermionOperator, MajoranaOperator
        from repro.hatt import HattConstruction
        from repro.mappings import tree_from_uid_arrays

        hf = FermionOperator.number(0) + FermionOperator.hopping(0, 1)
        hm = MajoranaOperator.from_fermion_operator(hf)
        for vacuum in (True, False):
            c = HattConstruction(hm, 3, vacuum=vacuum, backend="scalar")
            incremental = c.run()
            bulk = tree_from_uid_arrays(c.children_uids, 3)
            bulk.validate()
            assert (
                bulk.strings_by_leaf_index() == incremental.strings_by_leaf_index()
            )

    def test_caterpillar_from_uids(self):
        from repro.mappings import tree_from_uid_arrays

        # Bottom-up caterpillar on 2 modes: qubit 0 (uid 5) parents leaves
        # (0, 1, 2); qubit 1 (uid 6, the root) parents leaves 3, 4 and
        # qubit 0's node on its Z branch.
        tree = tree_from_uid_arrays([(0, 1, 2), (3, 4, 5)], 2)
        tree.validate()
        assert tree.n_internal == 2
        assert tree.root.qubit == 1
        assert tree.root.children["Z"].qubit == 0

    def test_wrong_length_rejected(self):
        from repro.mappings import tree_from_uid_arrays

        with pytest.raises(ValueError):
            tree_from_uid_arrays([(0, 1, 2)], 2)

    def test_unknown_uid_rejected(self):
        from repro.mappings import tree_from_uid_arrays

        with pytest.raises(ValueError):
            tree_from_uid_arrays([(0, 1, 99)], 1)

    def test_multiple_roots_rejected(self):
        from repro.mappings import tree_from_uid_arrays

        # Two internal nodes that each parent only leaves: disconnected.
        with pytest.raises(ValueError):
            tree_from_uid_arrays([(0, 1, 2), (3, 4, 0)], 2)
