"""Tests for RHF SCF, MO transformation, and active spaces."""

import numpy as np
import pytest

from repro.chem import (
    active_space_integrals,
    build_basis,
    molecule,
    mo_integrals,
    restricted_hartree_fock,
)


def run_scf(name, basis_name="sto-3g"):
    mol = molecule(name)
    basis = build_basis(mol.atoms, basis_name)
    return restricted_hartree_fock(basis, mol.charges, mol.n_electrons)


class TestEnergies:
    def test_h2_sto3g(self):
        """Published STO-3G H2 RHF ≈ -1.117 Ha near equilibrium."""
        res = run_scf("H2")
        assert res.converged
        assert res.energy == pytest.approx(-1.117, abs=3e-3)

    def test_h2_631g_below_sto3g(self):
        """Bigger basis must lower the variational energy."""
        sto = run_scf("H2").energy
        big = run_scf("H2", "6-31g").energy
        assert big < sto
        assert big == pytest.approx(-1.1268, abs=5e-3)

    def test_lih_sto3g(self):
        res = run_scf("LiH")
        assert res.converged
        # Published STO-3G value ≈ -7.862; our Slater-rule ζ gives a few mHa off.
        assert res.energy == pytest.approx(-7.86, abs=0.05)

    def test_h2o_sto3g(self):
        res = run_scf("H2O")
        assert res.converged
        # Published ≈ -74.963; Slater-rule ζ lands within ~0.5%.
        assert res.energy == pytest.approx(-74.96, rel=5e-3)

    def test_orbital_energies_sorted(self):
        res = run_scf("LiH")
        assert np.all(np.diff(res.mo_energies) >= -1e-10)

    def test_odd_electron_count_rejected(self):
        mol = molecule("H2")
        basis = build_basis(mol.atoms)
        with pytest.raises(ValueError):
            restricted_hartree_fock(basis, mol.charges, 3)


class TestMOIntegrals:
    def test_energy_reconstruction_from_mo_integrals(self):
        """E_HF = 2Σ_i h_ii + Σ_ij [2(ii|jj) − (ij|ji)] + E_nuc — a full
        consistency check of the AO→MO transformation."""
        res = run_scf("LiH")
        h_mo, eri_mo = mo_integrals(res)
        n_occ = res.n_electrons // 2
        e = 2.0 * np.trace(h_mo[:n_occ, :n_occ])
        for i in range(n_occ):
            for j in range(n_occ):
                e += 2.0 * eri_mo[i, i, j, j] - eri_mo[i, j, j, i]
        assert e + res.nuclear_repulsion == pytest.approx(res.energy, abs=1e-7)

    def test_mo_overlap_is_identity(self):
        res = run_scf("H2O")
        s_mo = res.mo_coeffs.T @ res.overlap @ res.mo_coeffs
        np.testing.assert_allclose(s_mo, np.eye(s_mo.shape[0]), atol=1e-8)

    def test_mo_eri_symmetric(self):
        res = run_scf("H2")
        _, eri = mo_integrals(res)
        np.testing.assert_allclose(eri, eri.transpose(1, 0, 2, 3), atol=1e-10)
        np.testing.assert_allclose(eri, eri.transpose(2, 3, 0, 1), atol=1e-10)


class TestActiveSpace:
    def test_no_freeze_is_identity(self):
        res = run_scf("H2")
        h_mo, eri_mo = mo_integrals(res)
        space = active_space_integrals(
            h_mo, eri_mo, res.nuclear_repulsion, 2, freeze=0
        )
        np.testing.assert_allclose(space.h, h_mo)
        assert space.core_energy == pytest.approx(res.nuclear_repulsion)
        assert space.n_electrons == 2

    def test_freeze_all_recovers_scf_energy(self):
        """Freezing every occupied orbital puts the whole HF energy in the core."""
        res = run_scf("LiH")
        h_mo, eri_mo = mo_integrals(res)
        space = active_space_integrals(
            h_mo, eri_mo, res.nuclear_repulsion, res.n_electrons,
            freeze=res.n_electrons // 2,
        )
        assert space.n_electrons == 0
        assert space.core_energy == pytest.approx(res.energy, abs=1e-8)

    def test_overlapping_active_and_core_rejected(self):
        res = run_scf("LiH")
        h_mo, eri_mo = mo_integrals(res)
        with pytest.raises(ValueError):
            active_space_integrals(h_mo, eri_mo, 0.0, 4, freeze=1, active=[0, 2])

    def test_too_many_electrons_rejected(self):
        res = run_scf("LiH")
        h_mo, eri_mo = mo_integrals(res)
        with pytest.raises(ValueError):
            active_space_integrals(h_mo, eri_mo, 0.0, 4, freeze=0, active=[1])

    def test_over_freezing_rejected(self):
        res = run_scf("H2")
        h_mo, eri_mo = mo_integrals(res)
        with pytest.raises(ValueError):
            active_space_integrals(h_mo, eri_mo, 0.0, 2, freeze=2)
