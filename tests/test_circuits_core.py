"""Tests for gates, Circuit metrics, and the statevector simulator."""

import math

import numpy as np
import pytest

from repro.circuits import Circuit, Gate, gate_matrix
from repro.sim import Statevector


class TestGates:
    def test_unknown_gate(self):
        with pytest.raises(ValueError):
            Gate("foo", (0,))

    def test_wrong_arity(self):
        with pytest.raises(ValueError):
            Gate("cx", (0,))
        with pytest.raises(ValueError):
            Gate("h", (0, 1))

    def test_identical_qubits_rejected(self):
        with pytest.raises(ValueError):
            Gate("cx", (1, 1))

    def test_all_matrices_unitary(self):
        for name in ["i", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "cx", "cz", "swap"]:
            m = gate_matrix(name)
            np.testing.assert_allclose(m @ m.conj().T, np.eye(len(m)), atol=1e-12)
        for name in ["rx", "ry", "rz"]:
            m = gate_matrix(name, (0.7,))
            np.testing.assert_allclose(m @ m.conj().T, np.eye(2), atol=1e-12)
        m = gate_matrix("u3", (0.3, 1.1, -0.4))
        np.testing.assert_allclose(m @ m.conj().T, np.eye(2), atol=1e-12)

    def test_inverse_gates(self):
        for gate in [
            Gate("h", (0,)),
            Gate("s", (0,)),
            Gate("rz", (0,), (0.37,)),
            Gate("u3", (0,), (0.3, 1.0, -0.2)),
            Gate("cx", (0, 1)),
        ]:
            dim = 2 if len(gate.qubits) == 1 else 4
            prod = gate.matrix() @ gate.inverse().matrix()
            np.testing.assert_allclose(prod, np.eye(dim), atol=1e-12)

    def test_hadamard_conjugation_property(self):
        h, x, z = gate_matrix("h"), gate_matrix("x"), gate_matrix("z")
        np.testing.assert_allclose(h @ x @ h, z, atol=1e-12)


class TestCircuit:
    def test_metrics(self):
        c = Circuit(3)
        c.add("h", 0).add("cx", 0, 1).add("cx", 1, 2).add("rz", 2, params=(0.5,))
        assert c.cx_count == 2
        assert c.depth() == 4
        assert len(c) == 4

    def test_depth_parallel_gates(self):
        c = Circuit(4)
        c.add("h", 0).add("h", 1).add("h", 2).add("h", 3)
        assert c.depth() == 1
        c.add("cx", 0, 1).add("cx", 2, 3)
        assert c.depth() == 2

    def test_swap_counts_as_three_cx(self):
        c = Circuit(2)
        c.add("swap", 0, 1)
        assert c.cx_count == 3

    def test_out_of_range_gate(self):
        c = Circuit(2)
        with pytest.raises(ValueError):
            c.add("h", 5)

    def test_inverse_circuit(self):
        c = Circuit(2)
        c.add("h", 0).add("s", 1).add("cx", 0, 1).add("rz", 1, params=(0.3,))
        prod = c.to_matrix() @ c.inverse().to_matrix()
        np.testing.assert_allclose(prod, np.eye(4), atol=1e-12)

    def test_compose(self):
        a = Circuit(2)
        a.add("h", 0)
        b = Circuit(2)
        b.add("cx", 0, 1)
        np.testing.assert_allclose(
            b.compose(a.inverse()).compose(a).to_matrix().shape, (4, 4)
        )


class TestStatevector:
    def test_initial_state(self):
        sv = Statevector(2)
        assert sv.probability(0) == 1.0

    def test_x_flips(self):
        sv = Statevector(2)
        sv.apply(Gate("x", (1,)))
        assert sv.probability(0b10) == pytest.approx(1.0)

    def test_bell_state(self):
        sv = Statevector(2)
        sv.apply(Gate("h", (0,)))
        sv.apply(Gate("cx", (0, 1)))
        assert sv.probability(0b00) == pytest.approx(0.5)
        assert sv.probability(0b11) == pytest.approx(0.5)

    def test_cx_control_orientation(self):
        # cx(control=1, target=0) must not fire on |01> (control qubit 1 is 0).
        sv = Statevector.basis(2, 0b01)
        sv.apply(Gate("cx", (1, 0)))
        assert sv.probability(0b01) == pytest.approx(1.0)
        sv = Statevector.basis(2, 0b10)
        sv.apply(Gate("cx", (1, 0)))
        assert sv.probability(0b11) == pytest.approx(1.0)

    def test_gate_application_matches_kron(self):
        """Random circuit vs explicit kron matrices on 3 qubits."""
        rng = np.random.default_rng(8)
        eye = np.eye(2)
        for _ in range(20):
            sv = Statevector(3)
            full = np.eye(8, dtype=complex)
            for _ in range(6):
                if rng.random() < 0.5:
                    q = int(rng.integers(3))
                    name = ["h", "s", "x", "t"][int(rng.integers(4))]
                    sv.apply(Gate(name, (q,)))
                    mats = [eye] * 3
                    mats[2 - q] = gate_matrix(name)
                    full = np.kron(np.kron(mats[0], mats[1]), mats[2]) @ full
                else:
                    q0, q1 = rng.permutation(3)[:2]
                    sv.apply(Gate("cx", (int(q0), int(q1))))
                    m = np.zeros((8, 8), dtype=complex)
                    for b in range(8):
                        if (b >> q0) & 1:
                            m[b ^ (1 << int(q1)), b] = 1
                        else:
                            m[b, b] = 1
                    full = m @ full
            expected = full[:, 0]
            np.testing.assert_allclose(sv.amplitudes, expected, atol=1e-12)

    def test_apply_pauli_matches_matrix(self):
        from repro.paulis import PauliString

        rng = np.random.default_rng(3)
        for _ in range(10):
            label = "".join(rng.choice(list("IXYZ")) for _ in range(3))
            p = PauliString.from_label(label, phase=int(rng.integers(4)))
            amps = rng.normal(size=8) + 1j * rng.normal(size=8)
            amps /= np.linalg.norm(amps)
            sv = Statevector(3, amps.copy())
            sv.apply_pauli(p)
            np.testing.assert_allclose(sv.amplitudes, p.to_matrix() @ amps, atol=1e-12)

    def test_expectation(self):
        from repro.paulis import QubitOperator

        sv = Statevector(2)
        sv.apply(Gate("h", (0,)))
        op = QubitOperator.from_label_dict({"IX": 1.0, "IZ": 1.0, "ZI": 2.0})
        assert sv.expectation(op) == pytest.approx(1.0 + 0.0 + 2.0)
