"""CLI coverage: happy paths, JSON output, and the cache/batch surface.

Serialization-focused CLI tests predating this file live in
``test_mapping_io.py``; this suite owns the command-line surface itself.
"""

import json

import pytest

from repro.cli import build_parser, main
from repro.mappings.io import load_mapping
from repro.serve.schema import SCHEMA
from repro.service import ArtifactStore


def run_json(capsys, argv, command=None):
    """Run a CLI invocation and return the envelope's ``result`` payload."""
    assert main(argv) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == SCHEMA
    assert "command" in doc and "result" in doc
    if command is not None:
        assert doc["command"] == command
    return doc["result"]


class TestCompare:
    def test_happy_path(self, capsys):
        assert main(["compare", "hubbard:2x2", "--no-circuit"]) == 0
        out = capsys.readouterr().out
        assert "HATT" in out and "JW" in out and "76" in out

    def test_json_output(self, capsys):
        data = run_json(
            capsys, ["compare", "hubbard:2x2", "--no-circuit", "--json"]
        )
        assert data["n_modes"] == 8
        assert data["reports"]["HATT"]["pauli_weight"] == 76
        assert data["reports"]["JW"]["pauli_weight"] == 80
        assert data["reports"]["HATT"]["cx_count"] is None  # --no-circuit

    def test_json_includes_circuit_metrics(self, capsys):
        data = run_json(capsys, ["compare", "hubbard:1x2", "--json"])
        assert data["reports"]["HATT"]["cx_count"] > 0
        assert data["reports"]["HATT"]["depth"] > 0

    def test_cache_flags_warm_second_run(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        argv = ["compare", "hubbard:2x2", "--no-circuit", "--json",
                "--cache-dir", cache]
        cold = run_json(capsys, argv)
        assert cold["cache"]["compiles"] == 4
        warm = run_json(capsys, argv)
        assert warm["cache"]["compiles"] == 0
        assert warm["cache"]["hits_disk"] == 4
        assert warm["reports"] == cold["reports"]

    def test_no_cache_overrides_env(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        data = run_json(capsys, ["compare", "hubbard:1x2", "--no-circuit",
                                 "--json", "--no-cache"])
        assert "cache" not in data
        assert not (tmp_path / "env").exists()

    def test_jobs_prewarms_cache(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        data = run_json(capsys, ["compare", "hubbard:2x2", "--no-circuit",
                                 "--json", "--cache-dir", cache, "--jobs", "2"])
        # The pool compiled everything; the in-process service only read disk.
        assert data["cache"]["compiles"] == 0
        assert data["cache"]["hits_disk"] == 4


class TestMap:
    def test_happy_path(self, capsys):
        assert main(["map", "hubbard:1x2", "--mapping", "jw",
                     "--show-strings"]) == 0
        out = capsys.readouterr().out
        assert "M_0" in out and "vacuum preserved" in out

    def test_output_roundtrip(self, tmp_path, capsys):
        out_file = tmp_path / "mapping.json"
        assert main(["map", "hubbard:2x2", "--mapping", "hatt",
                     "--output", str(out_file)]) == 0
        loaded = load_mapping(out_file)
        assert loaded.n_modes == 8
        assert loaded.tree is not None  # schema v2 embeds the HATT tree

    def test_cached_map_notes_source(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        argv = ["map", "hubbard:2x2", "--cache-dir", cache]
        assert main(argv) == 0
        assert "[compiled" in capsys.readouterr().out
        assert main(argv) == 0
        assert "[disk" in capsys.readouterr().out

    def test_cached_output_carries_provenance(self, tmp_path, capsys):
        out_file = tmp_path / "m.json"
        assert main(["map", "hubbard:1x2", "--cache-dir",
                     str(tmp_path / "cache"), "--output", str(out_file)]) == 0
        assert load_mapping(out_file).provenance["kind"] == "hatt"


class TestCases:
    def test_happy_path(self, capsys):
        assert main(["cases"]) == 0
        out = capsys.readouterr().out
        assert "H2_sto3g" in out and "hubbard:" in out

    def test_json_output(self, capsys):
        data = run_json(capsys, ["cases", "--json"])
        assert "H2_sto3g" in data["electronic"]
        assert data["hubbard"]["pattern"] == "hubbard:<AxB>"
        assert "hatt" in data["mappings"]

    def test_table_lists_registered_sources(self, capsys):
        assert main(["cases"]) == 0
        out = capsys.readouterr().out
        assert "registered Hamiltonian sources" in out
        for prefix in ("electronic", "fcidump", "npz", "random"):
            assert prefix in out

    def test_json_includes_source_catalog(self, capsys):
        data = run_json(capsys, ["cases", "--json"])
        prefixes = {s["prefix"] for s in data["sources"]}
        assert {"electronic", "fcidump", "hubbard", "npz", "random"} <= prefixes
        for entry in data["sources"]:
            assert {"grammar", "description", "file_backed"} <= set(entry)


class TestBatch:
    def test_batch_json_and_second_pass_hits(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        argv = ["batch", "hubbard:1x2", "hubbard:2x2", "H2_sto3g",
                "--mappings", "hatt", "--cache-dir", cache, "--json"]
        first = run_json(capsys, argv)
        assert first["n_tasks"] == 3 and first["n_errors"] == 0
        assert first["n_cache_hits"] == 0
        second = run_json(capsys, argv)
        assert second["n_cache_hits"] == 3
        assert all(t["cache_hit"] for t in second["tasks"])
        assert [t["pauli_weight"] for t in second["tasks"]] == \
            [t["pauli_weight"] for t in first["tasks"]]

    def test_batch_table_output_and_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.txt"
        assert main(["batch", "hubbard:1x2", "--cache-dir",
                     str(tmp_path / "cache"), "--output", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "batch suite" in out and "hubbard:1x2" in out
        assert "hubbard:1x2" in out_file.read_text()

    def test_batch_multiple_kinds_dedup(self, tmp_path, capsys):
        data = run_json(capsys, ["batch", "hubbard:1x2", "H2_sto3g",
                                 "--mappings", "hatt,jw", "--cache-dir",
                                 str(tmp_path / "cache"), "--json"])
        # Two 4-mode cases share one JW fingerprint.
        assert data["n_tasks"] == 4 and data["n_unique"] == 3

    def test_batch_parallel_jobs(self, tmp_path, capsys):
        data = run_json(capsys, ["batch", "hubbard:1x2", "hubbard:2x2",
                                 "--cache-dir", str(tmp_path / "cache"),
                                 "--jobs", "2", "--json"])
        assert data["n_errors"] == 0 and data["n_tasks"] == 2

    def test_batch_error_exit_code(self, tmp_path, capsys):
        assert main(["batch", "no_such_case", "--cache-dir",
                     str(tmp_path / "cache"), "--json"]) == 1

    def test_batch_no_cache(self, capsys):
        data = run_json(capsys, ["batch", "hubbard:1x2", "--no-cache", "--json"])
        assert data["tasks"][0]["source"] == "compiled"

    def test_batch_invalid_mapping_kind_is_clean_error(self, capsys):
        assert main(["batch", "hubbard:1x2", "--mappings", "hat",
                     "--no-cache"]) == 2
        err = capsys.readouterr().err
        assert "invalid --mappings" in err and "Traceback" not in err


class TestCache:
    def test_stats_list_clear_cycle(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["map", "hubbard:2x2", "--cache-dir", cache]) == 0
        capsys.readouterr()

        stats = run_json(capsys, ["cache", "stats", "--cache-dir", cache, "--json"])
        assert stats["n_mappings"] == 1

        entries = run_json(capsys, ["cache", "list", "--cache-dir", cache, "--json"])
        assert len(entries) == 1 and entries[0]["kind"] == "hatt"

        assert main(["cache", "clear", "--cache-dir", cache]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert ArtifactStore(cache).fingerprints() == []

    def test_human_readable_stats(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "mappings:" in out and "circuits:" in out

    def _warm_both_namespaces(self, cache, capsys):
        assert main(["compile", "hubbard:1x2", "--arch", "montreal",
                     "--mappings", "jw", "--cache-dir", cache]) == 0
        capsys.readouterr()

    def test_namespace_scoped_stats_and_list(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        self._warm_both_namespaces(cache, capsys)
        stats = run_json(capsys, ["cache", "stats", "--cache-dir", cache,
                                  "--namespace", "circuits", "--json"],
                         command="cache.stats")
        assert set(stats["namespaces"]) == {"circuits"}
        assert stats["namespaces"]["circuits"]["entries"] == 1
        assert stats["namespaces"]["circuits"]["bytes"] > 0
        entries = run_json(capsys, ["cache", "list", "--cache-dir", cache,
                                    "--namespace", "circuits", "--json"],
                           command="cache.list")
        assert len(entries) == 1
        assert entries[0]["namespace"] == "circuits"
        assert entries[0]["architecture"] == "montreal"

    def test_namespace_scoped_clear_leaves_other_namespace(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        self._warm_both_namespaces(cache, capsys)
        cleared = run_json(capsys, ["cache", "clear", "--cache-dir", cache,
                                    "--namespace", "circuits", "--json"],
                           command="cache.clear")
        assert cleared["removed"] == {"circuits": 1}
        store = ArtifactStore(cache)
        assert store.circuit_fingerprints() == []
        assert len(store.fingerprints()) == 1


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        sub = next(a for a in parser._actions
                   if isinstance(a, type(parser._subparsers._group_actions[0])))
        assert {"compare", "map", "compile", "batch", "serve", "cache",
                "cases"} <= set(sub.choices)

    @pytest.mark.parametrize("argv", [
        ["compare", "hubbard:1x2", "--hatt-backend", "bogus"],
        ["map", "hubbard:1x2", "--mapping", "bogus"],
        ["cache", "bogus"],
        ["cache", "stats", "--namespace", "bogus"],
    ])
    def test_invalid_choices_rejected(self, argv):
        with pytest.raises(SystemExit):
            main(argv)

    @pytest.mark.parametrize("command,argv", [
        ("compare", ["compare", "hubbard:1x2", "--no-circuit", "--json"]),
        ("map", ["map", "hubbard:1x2", "--json"]),
        ("cases", ["cases", "--json"]),
        ("batch", ["batch", "hubbard:1x2", "--no-cache", "--json"]),
    ])
    def test_every_json_path_emits_the_envelope(self, command, argv, capsys):
        run_json(capsys, argv, command=command)

    def test_deprecated_backend_alias_warns_once(self, capsys):
        import repro.cli as cli

        cli._warned_deprecated.clear()
        assert main(["map", "hubbard:1x2", "--hatt-backend", "scalar"]) == 0
        assert "--hatt-backend is deprecated" in capsys.readouterr().err
        assert main(["map", "hubbard:1x2", "--hatt-backend", "scalar"]) == 0
        assert "deprecated" not in capsys.readouterr().err

    def test_deprecated_alias_warning_gives_exact_replacement(self, capsys):
        import repro.cli as cli

        cli._warned_deprecated.clear()
        cli._alias_seen.clear()
        assert main(["map", "hubbard:1x2", "--hatt-backend", "scalar"]) == 0
        err = capsys.readouterr().err
        assert "removed in repro 1.1" in err
        assert "use --backend hatt=scalar" in err

    def test_unified_backend_flag_matches_default(self, capsys):
        fast = run_json(capsys, ["map", "hubbard:2x2", "--json"])
        slow = run_json(capsys, ["map", "hubbard:2x2", "--json",
                                 "--backend", "scalar"])
        assert fast["pauli_weight"] == slow["pauli_weight"]
        assert fast["n_qubits"] == slow["n_qubits"]

    def test_bad_backend_spec_rejected(self, capsys):
        with pytest.raises(ValueError):
            main(["map", "hubbard:1x2", "--backend", "bogus"])


class TestCompile:
    def test_table_output(self, capsys):
        assert main(["compile", "H2_sto3g", "--arch", "montreal"]) == 0
        out = capsys.readouterr().out
        assert "routed single Trotter step" in out
        for kind in ("JW", "BK", "BTT", "HATT"):
            assert kind in out

    def test_json_emits_routed_metrics_per_kind(self, capsys):
        data = run_json(capsys, ["compile", "H2_sto3g", "--arch", "montreal",
                                 "--json"])
        assert data["case"] == "H2_sto3g" and data["n_modes"] == 4
        per_kind = data["metrics"]["montreal"]
        assert set(per_kind) == {"jw", "bk", "btt", "hatt"}
        for kind, m in per_kind.items():
            assert m["routed_cx"] > 0
            assert m["routed_swaps"] >= 0
            assert m["routed_depth"] > 0

    def test_all_architectures(self, capsys):
        data = run_json(capsys, ["compile", "H2_sto3g", "--json",
                                 "--mappings", "jw"])
        assert set(data["metrics"]) == {"manhattan", "montreal", "sycamore",
                                        "ionq_forte"}
        assert data["metrics"]["ionq_forte"]["jw"]["routed_swaps"] == 0

    def test_cache_warm_second_run(self, tmp_path, capsys):
        argv = ["compile", "H2_sto3g", "--arch", "sycamore", "--json",
                "--mappings", "jw,hatt", "--cache-dir", str(tmp_path / "c")]
        cold = run_json(capsys, argv)
        assert cold["pipeline"] == {"circuit_hits": 0, "routed": 2}
        warm = run_json(capsys, argv)
        assert warm["pipeline"] == {"circuit_hits": 2, "routed": 0}
        assert warm["cache"]["store"]["n_circuits"] == 2
        def strip(d):
            return {a: {k: {x: v for x, v in m.items() if x != "source"}
                        for k, m in per.items()} for a, per in d.items()}

        assert strip(warm["metrics"]) == strip(cold["metrics"])

    def test_bad_arch_rejected(self, capsys):
        assert main(["compile", "H2_sto3g", "--arch", "osprey"]) == 2

    def test_bad_mappings_rejected(self, capsys):
        assert main(["compile", "H2_sto3g", "--mappings", "qiskit"]) == 2

    def test_scalar_router_matches_vector(self, capsys):
        base = ["compile", "H2_sto3g", "--arch", "montreal", "--json",
                "--mappings", "jw"]
        vec = run_json(capsys, base + ["--router-backend", "vector"])
        sca = run_json(capsys, base + ["--router-backend", "scalar"])
        assert vec["metrics"] == sca["metrics"]

    def test_lexicographic_order_flag(self, capsys):
        mut = run_json(capsys, ["compile", "LiH_sto3g_frz", "--arch",
                                "ionq_forte", "--json", "--mappings", "jw"])
        lex = run_json(capsys, ["compile", "LiH_sto3g_frz", "--arch",
                                "ionq_forte", "--json", "--mappings", "jw",
                                "--order", "lexicographic"])
        assert mut["metrics"]["ionq_forte"]["jw"]["routed_cx"] < \
            lex["metrics"]["ionq_forte"]["jw"]["routed_cx"]
