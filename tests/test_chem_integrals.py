"""Tests for the McMurchie-Davidson integral engine.

Cross-checked against published H2/STO-3G values (Szabo & Ostlund) and
against direct numerical quadrature.
"""

import math

import numpy as np
import pytest

from repro.chem import (
    boys,
    build_basis,
    eri_tensor,
    kinetic_matrix,
    molecule,
    nuclear_attraction_matrix,
    nuclear_repulsion,
    overlap_matrix,
)
from repro.chem.basis import ANGSTROM_TO_BOHR, BasisFunction


def h2_setup():
    mol = molecule("H2")
    return build_basis(mol.atoms), mol.charges


class TestBoys:
    def test_zero_argument(self):
        for m in range(5):
            assert boys(m, 0.0) == pytest.approx(1.0 / (2 * m + 1))

    def test_f0_closed_form(self):
        from scipy.special import erf

        for t in [0.1, 1.0, 5.0, 20.0]:
            expected = 0.5 * math.sqrt(math.pi / t) * erf(math.sqrt(t))
            assert boys(0, t) == pytest.approx(expected, rel=1e-10)

    def test_downward_recursion(self):
        # (2m+1) F_m(t) = 2t F_{m+1}(t) + e^{-t}
        for t in [0.3, 2.7, 9.0]:
            for m in range(4):
                lhs = (2 * m + 1) * boys(m, t)
                rhs = 2 * t * boys(m + 1, t) + math.exp(-t)
                assert lhs == pytest.approx(rhs, rel=1e-9)

    def test_monotone_decreasing_in_m(self):
        for t in [0.5, 3.0]:
            values = [boys(m, t) for m in range(6)]
            assert all(a > b for a, b in zip(values, values[1:]))


class TestSzaboOstlundH2:
    """Published STO-3G H2 values (R = 1.4 a0 ≈ 0.7408 Å; ours is 0.735 Å,
    so tolerances are a little loose on distance-dependent numbers)."""

    def test_overlap(self):
        basis, _ = h2_setup()
        s = overlap_matrix(basis)
        assert s[0, 0] == pytest.approx(1.0, abs=1e-10)
        assert s[0, 1] == pytest.approx(0.6593, abs=0.006)

    def test_kinetic(self):
        basis, _ = h2_setup()
        t = kinetic_matrix(basis)
        assert t[0, 0] == pytest.approx(0.7600, abs=1e-3)
        assert t[0, 1] == pytest.approx(0.2365, abs=0.01)

    def test_eri_1111(self):
        basis, _ = h2_setup()
        eri = eri_tensor(basis)
        assert eri[0, 0, 0, 0] == pytest.approx(0.7746, abs=1e-3)
        assert eri[0, 0, 1, 1] == pytest.approx(0.5697, abs=0.01)

    def test_nuclear_repulsion(self):
        _, charges = h2_setup()
        r = 0.735 * ANGSTROM_TO_BOHR
        assert nuclear_repulsion(charges) == pytest.approx(1.0 / r)


class TestAgainstQuadrature:
    def test_nuclear_attraction_s_function(self):
        """⟨1s|−1/r|1s⟩ for a single normalized s primitive vs radial quadrature."""
        alpha = 0.9
        f = BasisFunction.contracted(np.zeros(3), (0, 0, 0), [alpha], [1.0])
        v = nuclear_attraction_matrix([f], [(1, np.zeros(3))])[0, 0]
        # Analytic: -sqrt(8·alpha/pi) for a normalized s Gaussian at the origin.
        assert v == pytest.approx(-math.sqrt(8 * alpha / math.pi), rel=1e-10)

    def test_kinetic_single_primitive(self):
        """⟨g|−∇²/2|g⟩ = 3α/2 for a normalized s primitive."""
        alpha = 1.7
        f = BasisFunction.contracted(np.zeros(3), (0, 0, 0), [alpha], [1.0])
        t = kinetic_matrix([f])[0, 0]
        assert t == pytest.approx(1.5 * alpha, rel=1e-10)

    def test_p_function_overlap_orthogonality(self):
        """px ⊥ py ⊥ pz ⊥ s on the same center."""
        fns = []
        for lmn in [(0, 0, 0), (1, 0, 0), (0, 1, 0), (0, 0, 1)]:
            fns.append(BasisFunction.contracted(np.zeros(3), lmn, [0.8], [1.0]))
        s = overlap_matrix(fns)
        np.testing.assert_allclose(s, np.eye(4), atol=1e-12)

    def test_overlap_against_grid(self):
        """s-p overlap between displaced centers vs brute-force 3D grid."""
        f1 = BasisFunction.contracted(np.zeros(3), (0, 0, 0), [0.5], [1.0])
        f2 = BasisFunction.contracted(np.array([0.0, 0.0, 1.1]), (0, 0, 1), [0.7], [1.0])
        s = overlap_matrix([f1, f2])[0, 1]
        # Numeric: cylindrical symmetry -> 2D integral over (rho, z).
        rho = np.linspace(0, 12, 400)
        z = np.linspace(-10, 12, 700)
        rr, zz = np.meshgrid(rho, z, indexing="ij")
        g1 = f1.coeffs[0] * np.exp(-f1.alphas[0] * (rr**2 + zz**2))
        g2 = f2.coeffs[0] * (zz - 1.1) * np.exp(-f2.alphas[0] * (rr**2 + (zz - 1.1) ** 2))
        integrand = g1 * g2 * 2 * np.pi * rr
        num = np.trapezoid(np.trapezoid(integrand, z, axis=1), rho)
        assert s == pytest.approx(num, abs=1e-4)


class TestSymmetries:
    def test_eri_eightfold_symmetry(self):
        mol = molecule("LiH")
        basis = build_basis(mol.atoms)[:4]  # subset for speed
        eri = eri_tensor(basis)
        n = len(basis)
        rng = np.random.default_rng(0)
        for _ in range(40):
            p, q, r, s = rng.integers(0, n, 4)
            base = eri[p, q, r, s]
            for perm in [
                (q, p, r, s), (p, q, s, r), (q, p, s, r),
                (r, s, p, q), (s, r, p, q), (r, s, q, p), (s, r, q, p),
            ]:
                assert eri[perm] == pytest.approx(base, abs=1e-10)

    def test_matrices_symmetric(self):
        basis, charges = h2_setup()
        for mat in (
            overlap_matrix(basis),
            kinetic_matrix(basis),
            nuclear_attraction_matrix(basis, charges),
        ):
            np.testing.assert_allclose(mat, mat.T, atol=1e-12)

    def test_eri_positive_definite_supermatrix(self):
        """(μν|μν) ≥ 0 — Schwarz requirement used by the screening."""
        basis, _ = h2_setup()
        eri = eri_tensor(basis)
        n = len(basis)
        for p in range(n):
            for q in range(n):
                assert eri[p, q, p, q] >= -1e-12
