"""Tests for the pluggable HamiltonianSource API (repro.sources).

Covers the registry (every spec form, canonicalization, the satellite
error contract), the back-compat ``load_case`` shim, streamed
fingerprinting bit-identity, ``.npz``/FCIDUMP round-trips (property-based
via Hypothesis), the SYK ensemble, and the batch/serve integration.
"""

import json
import random
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.models as models
from repro.fermion import FermionOperator, MajoranaOperator
from repro.models.electronic import case_integrals, fermion_hamiltonian_from_integrals
from repro.service import MappingService, MappingSpec, compile_suite
from repro.service.fingerprint import (
    fingerprint_operator,
    fingerprint_request,
    fingerprint_request_stream,
    fingerprint_stream,
)
from repro.serve.schema import CompileRequest
from repro.sources import (
    HamiltonianSource,
    build_case,
    canonical_spec,
    load_npz,
    read_fcidump,
    register_source,
    registered_prefixes,
    resolve,
    save_npz,
    source_catalog,
    write_fcidump,
)
from repro.sources import registry as registry_mod

BUILTIN_CASES = ["hubbard:2x3", "neutrino:2x2F", "H2_sto3g"]


# ----------------------------------------------------------------------
# Registry: every spec form + error contract
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtin_prefixes_registered(self):
        assert set(registered_prefixes()) >= {
            "electronic", "fcidump", "hubbard", "neutrino", "npz", "random"
        }

    @pytest.mark.parametrize("spec, n_modes", [
        ("hubbard:2x3", 12),
        ("hubbard:3x3,bc=open", 18),
        ("hubbard:2x2,t=1.5,u=8,ordering=blocked", 8),
        ("neutrino:2x2F", 8),
        ("neutrino:2x2F,mu=0.05", 8),
        ("electronic:H2_sto3g", 4),
        ("H2_sto3g", 4),
        ("random:syk:n=6,seed=3", 6),
    ])
    def test_spec_forms_resolve(self, spec, n_modes):
        src = resolve(spec)
        assert src.n_modes == n_modes
        assert src.build().n_modes <= n_modes
        doc = src.describe()
        assert doc["spec"] == src.spec
        assert doc["n_modes"] == n_modes

    def test_bare_name_is_electronic_alias(self):
        assert canonical_spec("H2_sto3g") == "electronic:H2_sto3g"
        a = fingerprint_operator(build_case("H2_sto3g"))
        b = fingerprint_operator(build_case("electronic:H2_sto3g"))
        assert a == b

    def test_canonical_spec_normalizes_parameter_tails(self):
        assert canonical_spec("hubbard:2x3,u=4,t=1") == "hubbard:2x3"
        assert (canonical_spec("hubbard:2x3,u=8,t=2")
                == canonical_spec("hubbard:2x3,t=2,u=8"))

    def test_hubbard_default_matches_legacy_generator(self):
        from repro.models import hubbard_case

        assert fingerprint_operator(build_case("hubbard:2x3")) == \
            fingerprint_operator(hubbard_case("2x3"))

    def test_hubbard_variants_are_distinct_hamiltonians(self):
        fps = {
            fingerprint_operator(build_case(s))
            for s in ("hubbard:3x3", "hubbard:3x3,bc=open",
                      "hubbard:3x3,ordering=blocked", "hubbard:3x3,u=8")
        }
        assert len(fps) == 4

    def test_unknown_prefix_error_names_everything(self):
        with pytest.raises(ValueError) as err:
            build_case("hubard:2x3")
        msg = str(err.value)
        assert "hubard:2x3" in msg          # the spec
        assert "prefix 'hubard'" in msg      # the attempted resolver
        for prefix in ("hubbard", "fcidump", "npz", "random"):
            assert prefix in msg             # the registered prefixes

    def test_unknown_bare_name_error_names_resolver(self):
        with pytest.raises(ValueError) as err:
            build_case("H2_sto3")
        msg = str(err.value)
        assert "H2_sto3" in msg
        assert "bare electronic name" in msg
        assert "registered prefixes" in msg

    @pytest.mark.parametrize("bad", [
        "", "hubbard:9z9", "hubbard:2x3,volume=2", "hubbard:2x3,bc=twisted",
        "hubbard:2x3,t=1,t=2", "hubbard:2x3,t",
        "neutrino:2x2", "random:ising:n=4", "random:syk:seed=1",
        "random:syk:n=two", "npz:", "npz:/no/such/file.npz",
        "fcidump:/no/such/file.fcid",
    ])
    def test_bad_specs_raise_value_error(self, bad):
        with pytest.raises(ValueError):
            resolve(bad)

    def test_non_string_spec_raises_type_error(self):
        with pytest.raises(TypeError):
            resolve(123)

    def test_register_source_rejects_duplicates_and_bad_prefixes(self):
        with pytest.raises(ValueError):
            register_source("hubbard", lambda s: None,
                            description="x", grammar="x")
        for bad in ("", "a:b", "a,b", " pad "):
            with pytest.raises(ValueError):
                register_source(bad, lambda s: None, description="x", grammar="x")

    def test_custom_source_registration(self):
        class Toy(HamiltonianSource):
            family = "toy"

            @property
            def n_modes(self):
                return 2

            def _build(self):
                return FermionOperator.number(0) + FermionOperator.number(1)

        try:
            register_source("toy", Toy, description="toy model",
                            grammar="toy:<anything>")
            src = resolve("toy:x")
            assert src.n_modes == 2
            assert len(src.build()) == 2
            assert any(s["prefix"] == "toy" for s in source_catalog())
            assert src.fingerprint_stream() == fingerprint_operator(src.build())
        finally:
            registry_mod._REGISTRY.pop("toy", None)

    def test_source_catalog_shape(self):
        for entry in source_catalog():
            assert set(entry) == {
                "prefix", "description", "grammar", "examples", "file_backed"
            }
            json.dumps(entry)  # must be JSON-serializable for `cases --json`


class TestLoadCaseShim:
    def test_load_case_still_resolves_and_warns_once(self):
        models._load_case_warned = False
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            h = models.load_case("hubbard:1x2")
            models.load_case("hubbard:1x2")
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "repro.sources.build_case" in str(deprecations[0].message)
        assert fingerprint_operator(h) == \
            fingerprint_operator(build_case("hubbard:1x2"))

    def test_load_case_accepts_new_spec_forms(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            h = models.load_case("random:syk:n=4,seed=1")
        assert h.n_modes <= 4

    def test_load_case_unknown_spec_is_value_error(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with pytest.raises(ValueError):
                models.load_case("hubard:2x3")


# ----------------------------------------------------------------------
# Streamed fingerprinting: bit-identity with the in-memory path
# ----------------------------------------------------------------------
class TestFingerprintStream:
    @pytest.mark.parametrize("case", BUILTIN_CASES)
    def test_bit_identical_for_builtin_cases(self, case):
        h = build_case(case)
        expected = fingerprint_operator(h)
        src = resolve(case)
        assert src.fingerprint_stream() == expected
        # Tiny spill threshold forces the external-sort path.
        assert src.fingerprint_stream(spill_at=7) == expected
        # Chunk size must not matter.
        assert src.fingerprint_stream(chunk_size=3) == expected

    @pytest.mark.parametrize("case", BUILTIN_CASES)
    def test_order_invariance(self, case):
        h = build_case(case)
        items = list(h.terms())
        rng = random.Random(11)
        rng.shuffle(items)
        assert fingerprint_stream(iter(items), spill_at=13) == \
            fingerprint_operator(h)

    def test_majorana_form(self):
        m = MajoranaOperator.from_fermion_operator(build_case("hubbard:1x2"))
        assert fingerprint_stream(m.terms(), form="majorana") == \
            fingerprint_operator(m)

    def test_unknown_form_rejected(self):
        with pytest.raises(ValueError):
            fingerprint_stream(iter([]), form="pauli")

    def test_request_stream_matches_request_adaptive(self):
        h = build_case("hubbard:1x2")
        spec = MappingSpec(kind="hatt")
        expected = fingerprint_request(h, spec)
        resolved = MappingSpec(kind="hatt", n_modes=h.n_modes)
        assert fingerprint_request_stream(h.terms(), resolved) == expected

    def test_request_stream_matches_request_static_without_terms(self):
        h = build_case("hubbard:1x2")
        spec = MappingSpec(kind="jw")
        resolved = MappingSpec(kind="jw", n_modes=h.n_modes)
        assert fingerprint_request_stream(None, resolved) == \
            fingerprint_request(h, spec)

    def test_request_stream_requires_resolved_modes(self):
        with pytest.raises(ValueError, match="n_modes"):
            fingerprint_request_stream(iter([]), MappingSpec(kind="hatt"))

    def test_request_stream_adaptive_requires_terms(self):
        with pytest.raises(ValueError, match="term stream"):
            fingerprint_request_stream(None, MappingSpec(kind="hatt", n_modes=4))

    # Property: for ANY term multiset in ANY order (duplicates included),
    # the streamed digest equals the in-memory digest of the summed operator.
    fermion_terms = st.lists(
        st.tuples(
            st.lists(
                st.tuples(st.integers(0, 4), st.booleans()),
                min_size=0, max_size=4,
            ).map(tuple),
            st.complex_numbers(
                max_magnitude=10, allow_nan=False, allow_infinity=False
            ),
        ),
        max_size=25,
    )

    @given(fermion_terms, st.integers(1, 40))
    @settings(max_examples=60, deadline=None)
    def test_property_stream_equals_in_memory(self, items, spill_at):
        op = FermionOperator()
        for term, coeff in items:
            op.add_term(term, coeff)
        assert fingerprint_stream(iter(items), spill_at=spill_at) == \
            fingerprint_operator(op)


# ----------------------------------------------------------------------
# .npz round-trip
# ----------------------------------------------------------------------
class TestNpzRoundTrip:
    def test_builtin_case_round_trip(self, tmp_path):
        h = build_case("neutrino:2x2F")
        path = tmp_path / "nu.npz"
        save_npz(path, h)
        assert load_npz(path) == h
        src = resolve(f"npz:{path}")
        assert src.file_backed
        assert src.n_modes == h.n_modes
        assert fingerprint_operator(src.build()) == fingerprint_operator(h)
        assert src.fingerprint_stream() == fingerprint_operator(h)
        assert src.describe()["n_terms"] == len(h)

    def test_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, stuff=np.arange(3))
        src = resolve(f"npz:{path}")  # header validation is lazy
        with pytest.raises(ValueError, match="schema"):
            src.n_modes

    @given(TestFingerprintStream.fermion_terms)
    @settings(max_examples=40, deadline=None)
    def test_property_save_load_fingerprint(self, items):
        import tempfile

        op = FermionOperator()
        for term, coeff in items:
            op.add_term(term, coeff)
        with tempfile.TemporaryDirectory() as d:
            path = f"{d}/op.npz"
            save_npz(path, op)
            loaded = load_npz(path)
        assert loaded == op
        assert fingerprint_operator(loaded) == fingerprint_operator(op)


# ----------------------------------------------------------------------
# FCIDUMP round-trip
# ----------------------------------------------------------------------
class TestFcidumpRoundTrip:
    def test_case_round_trip_is_bitwise(self, tmp_path):
        h, eri, core, nelec = case_integrals("H2_sto3g")
        path = tmp_path / "h2.fcid"
        write_fcidump(path, h, eri, core, nelec)
        h2, eri2, core2, nelec2, _ = read_fcidump(path)
        assert np.array_equal(h, h2)
        assert np.array_equal(eri, eri2)
        assert core == core2 and nelec == nelec2

    def test_source_fingerprint_matches_builtin_case(self, tmp_path):
        h, eri, core, nelec = case_integrals("H2_sto3g")
        path = tmp_path / "h2.fcid"
        write_fcidump(path, h, eri, core, nelec)
        src = resolve(f"fcidump:{path}")
        expected = fingerprint_operator(build_case("H2_sto3g"))
        assert src.file_backed
        assert src.n_modes == 4
        assert fingerprint_operator(src.build()) == expected
        assert src.fingerprint_stream(spill_at=5) == expected

    def test_reads_symmetry_compacted_external_file(self, tmp_path):
        # External-program style: one line per orbit, Fortran D exponents.
        path = tmp_path / "ext.fcid"
        path.write_text(
            "&FCI NORB=2,NELEC=2,MS2=0,\n ORBSYM=1,1,\n ISYM=1,\n&END\n"
            "  0.5D0  1 1 1 1\n"
            "  0.25D0 1 2 1 1\n"
            "  1.0D0  1 1 0 0\n"
            " -0.75D0 1 2 0 0\n"
            "  0.125D0 0 0 0 0\n"
        )
        h, eri, core, nelec, ms2 = read_fcidump(path)
        assert (nelec, ms2, core) == (2, 0, 0.125)
        assert h[0, 0] == 1.0 and h[0, 1] == h[1, 0] == -0.75
        assert eri[0, 0, 0, 0] == 0.5
        # All 8 images of (12|11) must be populated.
        for idx in [(0, 1, 0, 0), (1, 0, 0, 0), (0, 0, 0, 1), (0, 0, 1, 0)]:
            assert eri[idx] == 0.25

    def test_malformed_files_rejected(self, tmp_path):
        no_header = tmp_path / "a.fcid"
        no_header.write_text("1.0 1 1 0 0\n")
        with pytest.raises(ValueError):
            read_fcidump(no_header)
        bad_line = tmp_path / "b.fcid"
        bad_line.write_text("&FCI NORB=1,NELEC=0,MS2=0,\n&END\n1.0 1 1\n")
        with pytest.raises(ValueError, match="malformed"):
            read_fcidump(bad_line)

    @given(st.integers(0, 2**32 - 1), st.integers(1, 3), st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_property_round_trip_any_tensors(self, seed, norb, symmetrize):
        """Both symmetric and wholly asymmetric tensors round-trip bitwise,
        and the rebuilt operator fingerprints identically."""
        import tempfile

        rng = np.random.default_rng(seed)
        h = rng.standard_normal((norb, norb))
        eri = rng.standard_normal((norb, norb, norb, norb))
        if symmetrize:
            h = h + h.T
            eri = eri + eri.transpose(1, 0, 2, 3)
            eri = eri + eri.transpose(0, 1, 3, 2)
            eri = eri + eri.transpose(2, 3, 0, 1)
        core = float(rng.standard_normal())
        with tempfile.TemporaryDirectory() as d:
            path = f"{d}/t.fcid"
            write_fcidump(path, h, eri, core)
            h2, eri2, core2, _, _ = read_fcidump(path)
        assert np.array_equal(h, h2)
        assert np.array_equal(eri, eri2)
        assert core == core2
        a = fermion_hamiltonian_from_integrals(h, eri, core)
        b = fermion_hamiltonian_from_integrals(h2, eri2, core2)
        assert fingerprint_operator(a) == fingerprint_operator(b)


# ----------------------------------------------------------------------
# SYK ensemble
# ----------------------------------------------------------------------
class TestSykSource:
    def test_deterministic_and_seed_sensitive(self):
        a = fingerprint_operator(build_case("random:syk:n=6,seed=3"))
        b = fingerprint_operator(build_case("random:syk:n=6,seed=3"))
        c = fingerprint_operator(build_case("random:syk:n=6,seed=4"))
        assert a == b != c

    def test_hermitian(self):
        assert build_case("random:syk:n=6,seed=0").is_hermitian()
        assert build_case("random:syk:n=5,seed=2,j=0.5").is_hermitian()

    def test_stream_matches_build(self):
        src = resolve("random:syk:n=6,seed=9")
        assert src.fingerprint_stream(spill_at=17) == \
            fingerprint_operator(src.build())

    def test_canonical_spec_normalizes(self):
        assert canonical_spec("random:syk:seed=7,n=8") == "random:syk:n=8,seed=7"
        assert canonical_spec("random:syk:n=8,seed=7,j=1") == \
            "random:syk:n=8,seed=7"


# ----------------------------------------------------------------------
# Batch + serve integration
# ----------------------------------------------------------------------
class TestSourcesThroughTheStack:
    def _dump_h2(self, tmp_path):
        h, eri, core, nelec = case_integrals("H2_sto3g")
        path = tmp_path / "h2.fcid"
        write_fcidump(path, h, eri, core, nelec)
        return f"fcidump:{path}"

    def test_file_backed_batch_dedups_against_builtin(self, tmp_path):
        fcid_spec = self._dump_h2(tmp_path)
        report = compile_suite(
            ["H2_sto3g", fcid_spec], ["hatt"], cache_dir=str(tmp_path / "cache")
        )
        assert report.n_errors == 0
        assert report.n_tasks == 2
        # Same physics through two frontends → one unique compile.
        assert report.n_unique == 1
        weights = {t.pauli_weight for t in report.tasks}
        assert len(weights) == 1

    def test_file_backed_batch_parallel_spec_shipping(self, tmp_path):
        fcid_spec = self._dump_h2(tmp_path)
        cache = str(tmp_path / "cache")
        serial = compile_suite(
            [fcid_spec, "random:syk:n=5,seed=1", "hubbard:1x2"],
            ["hatt", "jw"], cache_dir=cache,
        )
        assert serial.n_errors == 0
        warm = compile_suite(
            [fcid_spec, "random:syk:n=5,seed=1", "hubbard:1x2"],
            ["hatt", "jw"], cache_dir=cache, jobs=2,
        )
        assert warm.n_errors == 0
        assert all(t.cache_hit for t in warm.tasks)
        assert [t.pauli_weight for t in warm.tasks] == \
            [t.pauli_weight for t in serial.tasks]
        assert [t.fingerprint for t in warm.tasks] == \
            [t.fingerprint for t in serial.tasks]

    def test_cold_parallel_file_backed_batch(self, tmp_path):
        fcid_spec = self._dump_h2(tmp_path)
        report = compile_suite(
            [fcid_spec, "hubbard:1x2"], ["hatt", "jw"],
            cache_dir=str(tmp_path / "cache"), jobs=2,
        )
        assert report.n_errors == 0
        assert all(t.pauli_weight is not None for t in report.tasks)

    def test_bad_case_is_per_task_error(self, tmp_path):
        report = compile_suite(
            ["hubard:2x3", "hubbard:1x2"], ["jw"],
            cache_dir=str(tmp_path / "cache"),
        )
        assert report.n_errors == 1
        bad = [t for t in report.tasks if not t.ok][0]
        assert "hubard" in (bad.error or "")

    def test_service_cache_hit_across_frontends(self, tmp_path):
        fcid_spec = self._dump_h2(tmp_path)
        service = MappingService(cache_dir=str(tmp_path / "cache"))
        spec = MappingSpec(kind="hatt")
        cold = service.get_or_compile(build_case("H2_sto3g"), spec)
        warm = service.get_or_compile(build_case(fcid_spec), spec)
        assert cold.source == "compiled"
        assert warm.source in ("memory", "disk")
        assert warm.fingerprint == cold.fingerprint

    def test_coalesce_key_canonicalizes_aliases(self):
        a = CompileRequest(case="H2_sto3g")
        b = CompileRequest(case="electronic:H2_sto3g")
        assert a.coalesce_key() == b.coalesce_key()
        # Unresolvable cases keep the raw string and differ.
        c = CompileRequest(case="no_such_case")
        d = CompileRequest(case="H2_sto3g")
        assert c.coalesce_key() != d.coalesce_key()
