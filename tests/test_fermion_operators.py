"""Tests for FermionOperator: CAR algebra, normal ordering, hermiticity."""

import pytest

from repro.fermion import FermionOperator


def a(mode):
    return FermionOperator.annihilation(mode)


def adag(mode):
    return FermionOperator.creation(mode)


class TestBasics:
    def test_constructors(self):
        assert len(FermionOperator.zero()) == 0
        assert FermionOperator.identity(2.0).constant == pytest.approx(2.0)
        assert adag(3).n_modes == 4
        assert FermionOperator.number(2).coefficient([(2, True), (2, False)]) == 1.0

    def test_hopping_is_hermitian(self):
        assert FermionOperator.hopping(0, 3, 1.5).is_hermitian()
        assert FermionOperator.hopping(0, 3, 1.0 + 0.5j).is_hermitian()

    def test_addition_combines(self):
        op = adag(0) + adag(0)
        assert op.coefficient([(0, True)]) == pytest.approx(2.0)

    def test_scalar_multiplication(self):
        op = 3.0 * adag(1) * 2.0
        assert op.coefficient([(1, True)]) == pytest.approx(6.0)

    def test_product_concatenates(self):
        op = adag(0) * a(1)
        assert op.coefficient([(0, True), (1, False)]) == pytest.approx(1.0)


class TestCAR:
    def test_anticommutator_same_mode(self):
        # {a_0, a†_0} = 1
        anti = (a(0) * adag(0) + adag(0) * a(0)).normal_order()
        assert anti == FermionOperator.identity(1.0)

    def test_anticommutator_different_modes(self):
        anti = (a(0) * adag(1) + adag(1) * a(0)).normal_order()
        assert anti == FermionOperator.zero()

    def test_annihilation_anticommute(self):
        anti = (a(0) * a(1) + a(1) * a(0)).normal_order()
        assert anti == FermionOperator.zero()

    def test_pauli_exclusion(self):
        assert (adag(0) * adag(0)).normal_order() == FermionOperator.zero()
        assert (a(1) * a(1)).normal_order() == FermionOperator.zero()

    def test_number_squared_is_number(self):
        n = FermionOperator.number(0)
        assert (n * n).normal_order() == n.normal_order()

    def test_normal_order_idempotent(self):
        op = a(0) * adag(1) * a(2) * adag(0)
        once = op.normal_order()
        assert once == once.normal_order()

    def test_normal_order_preserves_operator(self):
        """Normal ordering must not change the operator; verified by a
        three-mode occupation-basis representation."""
        op = a(0) * adag(1) + 2.0 * adag(2) * a(0) * adag(0)
        no = op.normal_order()
        # Compare matrix elements in the 8-dim occupation basis via a
        # elementary simulation of ladder actions.
        for source in range(8):
            amps = {}
            for term, coeff in no.terms():
                res = _apply_term(term, source)
                if res is not None:
                    tgt, sgn = res
                    amps[tgt] = amps.get(tgt, 0) + sgn * coeff
            for term, coeff in op.terms():
                res = _apply_term(term, source)
                if res is not None:
                    tgt, sgn = res
                    amps[tgt] = amps.get(tgt, 0) - sgn * coeff
            assert all(abs(v) < 1e-9 for v in amps.values())


def _apply_term(term, bits):
    """Apply a ladder monomial to occupation state |bits> (JW sign convention).

    Returns (new_bits, sign) or None when annihilated.
    """
    sign = 1
    for mode, dagger in reversed(term):
        occupied = (bits >> mode) & 1
        if dagger == bool(occupied):
            return None
        # Fermionic sign: parity of occupied modes below `mode`.
        below = bits & ((1 << mode) - 1)
        sign *= (-1) ** below.bit_count()
        bits ^= 1 << mode
    return bits, sign


class TestNormalOrderFastPath:
    """The contraction-free fast path must agree with the generic CAR rewrite
    on every monomial shape (ordered, block-sortable, repeated, mixed)."""

    def test_exhaustive_small_monomials(self):
        from itertools import product

        from repro.fermion.operators import _normal_order_term

        actions = [(m, d) for m in range(3) for d in (True, False)]
        for length in range(5):
            for term in product(actions, repeat=length):
                generic = FermionOperator()
                for t, c in _normal_order_term(term, 1.0):
                    generic.add_term(t, c)
                assert FermionOperator({term: 1.0}).normal_order() == generic, term

    def test_block_sort_sign(self):
        # a†_0 a†_1 = -a†_1 a†_0: one anticommutation swap, no contraction.
        op = (adag(0) * adag(1)).normal_order()
        assert op.coefficient(((1, True), (0, True))) == -1.0

    def test_integral_style_term(self):
        # a†_p a†_q a_r a_s with p<q, r>s — the molecular-Hamiltonian shape.
        # One swap per block: (-1)·(-1) = +1.
        op = (adag(1) * adag(3) * a(2) * a(0)).normal_order()
        assert op.coefficient(((3, True), (1, True), (0, False), (2, False))) == 1.0
        assert len(op) == 1

    def test_fast_path_none_on_contraction_shapes(self):
        from repro.fermion.operators import _normal_order_fast

        assert _normal_order_fast(((0, False), (0, True))) is None  # a a†
        assert _normal_order_fast(((0, True), (0, True))) is None  # repeated
        assert _normal_order_fast(((1, False), (2, True))) is None  # mixed
        ordered, sign = _normal_order_fast(((2, True), (0, False), (1, False)))
        assert ordered == ((2, True), (0, False), (1, False)) and sign == 1


class TestHermitian:
    def test_hermitian_conjugate_single(self):
        op = adag(2) * a(0)
        hc = op.hermitian_conjugate()
        assert hc.coefficient([(0, True), (2, False)]) == pytest.approx(1.0)

    def test_double_conjugate_is_identity(self):
        op = (1 + 2j) * adag(0) * a(1) * adag(2)
        assert op.hermitian_conjugate().hermitian_conjugate() == op

    def test_number_is_hermitian(self):
        assert FermionOperator.number(4).is_hermitian()

    def test_non_hermitian_detected(self):
        assert not adag(0).is_hermitian()
        assert not (1j * FermionOperator.number(0)).is_hermitian()

    def test_hubbard_style_term_hermitian(self):
        op = FermionOperator.number(0) * FermionOperator.number(1)
        assert op.is_hermitian()
