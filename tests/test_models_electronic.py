"""Tests for the electronic-structure benchmark cases.

Includes the paper-exact regression values: our pipeline reproduces several
Table I Pauli weights to the digit (H2 JW=32, LiH-frz JW=192/BK=221/HATT=188,
H2O JW=6332/BK=6567/HATT=5545).
"""

import numpy as np
import pytest

from repro.fermion import MajoranaOperator
from repro.hatt import hatt_mapping
from repro.mappings import balanced_ternary_tree, bravyi_kitaev, jordan_wigner
from repro.models.electronic import (
    ELECTRONIC_CASES,
    electronic_case,
    electronic_case_names,
    fermion_hamiltonian_from_integrals,
)


class TestSecondQuantization:
    def test_one_body_only(self):
        h = np.array([[1.0, 0.5], [0.5, -2.0]])
        eri = np.zeros((2, 2, 2, 2))
        op = fermion_hamiltonian_from_integrals(h, eri, constant=3.0)
        # 4 diagonal-ish entries × 2 spins + constant.
        assert op.constant == pytest.approx(3.0)
        assert op.coefficient([(0, True), (0, False)]) == pytest.approx(1.0)
        assert op.coefficient([(2, True), (3, False)]) == pytest.approx(0.5)

    def test_hermitian(self):
        rng = np.random.default_rng(5)
        h = rng.normal(size=(2, 2))
        h = h + h.T
        eri = rng.normal(size=(2, 2, 2, 2))
        # Impose the 8-fold real-orbital symmetry.
        eri = eri + eri.transpose(1, 0, 2, 3)
        eri = eri + eri.transpose(0, 1, 3, 2)
        eri = eri + eri.transpose(2, 3, 0, 1)
        op = fermion_hamiltonian_from_integrals(h, eri)
        hq = jordan_wigner(4).map(op)
        assert hq.is_hermitian()

    def test_same_spin_same_orbital_terms_skipped(self):
        h = np.zeros((1, 1))
        eri = np.ones((1, 1, 1, 1))
        op = fermion_hamiltonian_from_integrals(h, eri)
        # Only the αβ/βα cross terms survive for a single orbital.
        assert all(len(t) == 4 for t, _ in op.terms())
        assert len(op) == 2


class TestPaperRegression:
    """Pauli weights that match the paper's Table I exactly."""

    def test_h2_jw_weight_32(self):
        case = electronic_case("H2_sto3g")
        assert case.n_modes == 4
        hq = jordan_wigner(4).map(case.hamiltonian)
        assert hq.pauli_weight() == 32  # paper Table I
        assert len(hq) == 15

    def test_lih_frz_weights(self):
        case = electronic_case("LiH_sto3g_frz")
        assert case.n_modes == 6
        h = case.hamiltonian
        assert jordan_wigner(6).map(h).pauli_weight() == 192  # paper: 192
        assert bravyi_kitaev(6).map(h).pauli_weight() == 221  # paper: 221
        assert hatt_mapping(h, n_modes=6).map(h).pauli_weight() == 188  # paper: 188

    def test_h2_all_mappings_beat_nothing(self):
        """HATT ≤ all constructive baselines on H2 (paper: all tie at 32-36)."""
        case = electronic_case("H2_sto3g")
        h = case.hamiltonian
        hatt_w = hatt_mapping(h, n_modes=4).map(h).pauli_weight()
        jw_w = jordan_wigner(4).map(h).pauli_weight()
        assert hatt_w <= jw_w


class TestCaseMetadata:
    def test_case_names(self):
        names = electronic_case_names()
        assert "H2_sto3g" in names and "CO2_sto3g" in names
        assert len(names) == len(ELECTRONIC_CASES)

    def test_unknown_case(self):
        with pytest.raises(ValueError):
            electronic_case("C60_sto3g")

    def test_h2_metadata(self):
        case = electronic_case("H2_sto3g")
        assert case.n_electrons == 2
        assert case.scf_converged
        assert case.scf_energy == pytest.approx(-1.117, abs=3e-3)
        assert case.hf_occupation == [0, 2]

    def test_disk_cache_roundtrip(self):
        a = electronic_case("H2_sto3g")
        b = electronic_case("H2_sto3g")  # served from .cache
        assert a.core_energy == b.core_energy
        assert len(a.hamiltonian) == len(b.hamiltonian)


class TestPhysics:
    def test_h2_fci_energy(self):
        """Exact diagonalization of the mapped H2 Hamiltonian: published
        STO-3G FCI ≈ -1.1373 Ha near equilibrium."""
        case = electronic_case("H2_sto3g")
        hq = jordan_wigner(4).map(case.hamiltonian)
        assert hq.ground_energy() == pytest.approx(-1.1373, abs=3e-3)

    def test_hf_determinant_expectation_equals_scf(self):
        """⟨HF|H_Q|HF⟩ must equal the SCF energy for any mapping."""
        case = electronic_case("H2_sto3g")
        bits = 0
        for mode in case.hf_occupation:
            bits |= 1 << mode
        hq = jordan_wigner(4).map(case.hamiltonian)
        assert hq.expectation_basis_state(bits).real == pytest.approx(
            case.scf_energy, abs=1e-8
        )

    def test_spectrum_invariance_h2(self):
        case = electronic_case("H2_sto3g")
        h = case.hamiltonian
        ref = np.linalg.eigvalsh(jordan_wigner(4).map(h).to_matrix())
        for factory in (bravyi_kitaev, balanced_ternary_tree):
            ev = np.linalg.eigvalsh(factory(4).map(h).to_matrix())
            np.testing.assert_allclose(ev, ref, atol=1e-8)
        hatt = hatt_mapping(h, n_modes=4)
        ev = np.linalg.eigvalsh(hatt.map(h).to_matrix())
        np.testing.assert_allclose(ev, ref, atol=1e-8)

    def test_majorana_form_matches_fermionic(self):
        """Mapping the pre-expanded Majorana operator gives the same result."""
        case = electronic_case("H2_sto3g")
        m = jordan_wigner(4)
        direct = m.map(case.hamiltonian)
        via_majorana = m.map(
            MajoranaOperator.from_fermion_operator(case.hamiltonian)
        )
        assert direct == via_majorana
