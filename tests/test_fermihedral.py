"""Tests for the SAT solver, the Fermihedral encoding, and the search."""

import itertools

import pytest

from repro.fermion import FermionOperator, MajoranaOperator
from repro.fermihedral import (
    SAT,
    UNSAT,
    MappingEncoding,
    Solver,
    fermihedral_mapping,
)
from repro.hatt import hatt_mapping
from repro.mappings import symplectic_rank
from repro.paulis import PauliString


class TestSolverBasics:
    def test_empty_is_sat(self):
        assert Solver().solve() == SAT

    def test_single_unit(self):
        s = Solver()
        s.add_clause([1])
        assert s.solve() == SAT
        assert s.model()[1] is True

    def test_contradiction(self):
        s = Solver()
        s.add_clause([1])
        s.add_clause([-1])
        assert s.solve() == UNSAT

    def test_empty_clause(self):
        s = Solver()
        s.add_clause([])
        assert s.solve() == UNSAT

    def test_tautology_ignored(self):
        s = Solver()
        s.add_clause([1, -1])
        assert s.solve() == SAT

    def test_chain_implications(self):
        s = Solver()
        n = 30
        for i in range(1, n):
            s.add_clause([-i, i + 1])
        s.add_clause([1])
        assert s.solve() == SAT
        assert all(s.model()[i] for i in range(1, n + 1))

    def test_xor_system(self):
        # x1 ⊕ x2 = 1, x2 ⊕ x3 = 1, x1 ⊕ x3 = 1 -> UNSAT.
        s = Solver()
        def xor_true(a, b):
            s.add_clause([a, b])
            s.add_clause([-a, -b])
        xor_true(1, 2)
        xor_true(2, 3)
        xor_true(1, 3)
        assert s.solve() == UNSAT


class TestSolverHard:
    def test_pigeonhole_3_into_2(self):
        """PHP(3,2) is a classic small UNSAT instance requiring learning."""
        s = Solver()
        def var(p, h):
            return p * 2 + h + 1
        for p in range(3):
            s.add_clause([var(p, 0), var(p, 1)])
        for h in range(2):
            for p1, p2 in itertools.combinations(range(3), 2):
                s.add_clause([-var(p1, h), -var(p2, h)])
        assert s.solve() == UNSAT

    def test_pigeonhole_4_into_3(self):
        s = Solver()
        def var(p, h):
            return p * 3 + h + 1
        for p in range(4):
            s.add_clause([var(p, h) for h in range(3)])
        for h in range(3):
            for p1, p2 in itertools.combinations(range(4), 2):
                s.add_clause([-var(p1, h), -var(p2, h)])
        assert s.solve() == UNSAT

    def test_random_3sat_satisfiable(self):
        """Planted-solution random 3-SAT instances must come back SAT with a
        model that satisfies every clause."""
        import random

        rng = random.Random(99)
        n, m = 40, 160
        planted = {v: rng.random() < 0.5 for v in range(1, n + 1)}
        s = Solver()
        clauses = []
        for _ in range(m):
            vs = rng.sample(range(1, n + 1), 3)
            clause = [v if rng.random() < 0.5 else -v for v in vs]
            # Force at least one literal to agree with the planted model.
            fix = rng.choice(range(3))
            v = abs(clause[fix])
            clause[fix] = v if planted[v] else -v
            clauses.append(clause)
            s.add_clause(clause)
        assert s.solve() == SAT
        model = s.model()
        for clause in clauses:
            assert any(
                (l > 0) == model.get(abs(l), False) for l in clause
            ), f"model violates {clause}"

    def test_timeout_returns_unknown(self):
        """A hard instance with a tiny budget reports UNKNOWN."""
        s = Solver()
        def var(p, h):
            return p * 5 + h + 1
        for p in range(6):
            s.add_clause([var(p, h) for h in range(5)])
        for h in range(5):
            for p1, p2 in itertools.combinations(range(6), 2):
                s.add_clause([-var(p1, h), -var(p2, h)])
        result = s.solve(time_limit=1e-4)
        assert result in ("unknown", "unsat")  # tiny budget; usually unknown


class TestEncoding:
    def test_validity_only_n1(self):
        enc = MappingEncoding(1, [])
        enc.add_validity_constraints()
        assert enc.solver.solve() == SAT
        strings = enc.decode()
        assert len(strings) == 2
        assert strings[0].anticommutes_with(strings[1])

    def test_validity_n2_anticommutation(self):
        enc = MappingEncoding(2, [])
        enc.add_validity_constraints()
        assert enc.solver.solve() == SAT
        strings = enc.decode()
        for a, b in itertools.combinations(strings, 2):
            assert a.anticommutes_with(b)
        assert symplectic_rank(strings, 2) == 4

    def test_weight_bound_zero_unsat(self):
        """Weight 0 on a non-trivial term is impossible for valid strings."""
        enc = MappingEncoding(1, [(0,)])
        enc.add_validity_constraints()
        enc.add_weight_bound(0)
        assert enc.solver.solve() == UNSAT

    def test_weight_bound_counts(self):
        """Σ indicators ≤ k enforced exactly on a toy instance.

        For H = M0+M1+M2+M3 on 2 qubits the optimum is 6: at most three
        weight-1 strings can pairwise anticommute (X,Y,Z on one qubit) and
        nothing anticommutes with all three, so (1,1,1,2) is infeasible and
        the best partition is (1,1,2,2).
        """
        enc = MappingEncoding(2, [(0,), (1,), (2,), (3,)])
        enc.add_validity_constraints()
        enc.add_weight_bound(5)
        assert enc.solver.solve() == UNSAT

        enc = MappingEncoding(2, [(0,), (1,), (2,), (3,)])
        enc.add_validity_constraints()
        enc.add_weight_bound(6)
        assert enc.solver.solve() == SAT
        strings = enc.decode()
        assert sum(s.weight for s in strings) == 6

    def test_term_out_of_range(self):
        with pytest.raises(ValueError):
            MappingEncoding(1, [(5,)])


def test_anticommutation_implies_independence():
    """2N pairwise-anticommuting non-identity strings on N qubits are always
    independent (the argument used to omit an explicit constraint):
    exhaustively verified for N=2 over SAT-generated solutions."""
    for seed_terms in ([], [(0, 1)], [(0, 1, 2, 3)]):
        enc = MappingEncoding(2, list(seed_terms))
        enc.add_validity_constraints()
        assert enc.solver.solve() == SAT
        strings = enc.decode()
        assert symplectic_rank(strings, 2) == 4


class TestSearch:
    def test_single_mode_optimum(self):
        """N=1, H = M0: optimal weight is 1 and provably so."""
        result = fermihedral_mapping(MajoranaOperator.single(0), n_modes=1,
                                     time_limit=30)
        assert result.optimal
        assert result.weight == 1
        assert result.mapping is not None
        assert result.mapping.is_valid()

    def test_two_mode_number_operators(self):
        """H = n_0 + n_1: both occupation products can sit on single qubits."""
        hf = FermionOperator.number(0) + FermionOperator.number(1)
        result = fermihedral_mapping(hf, n_modes=2, time_limit=60)
        assert result.mapping is not None
        assert result.mapping.is_valid()
        assert result.weight == 2  # one Z per mode is achievable and minimal
        assert result.optimal

    def test_fh_never_worse_than_hatt(self):
        hf = FermionOperator.number(0) + FermionOperator.hopping(0, 1, 0.5)
        hatt = hatt_mapping(hf, n_modes=2)
        hatt_w = hatt.map(hf).pauli_weight()
        result = fermihedral_mapping(hf, n_modes=2, time_limit=60)
        assert result.weight is not None
        assert result.weight <= hatt_w

    def test_label_formatting(self):
        from repro.fermihedral import FermihedralResult

        assert FermihedralResult(None, None, False, True, 1.0).label == "--"
        m = hatt_mapping(MajoranaOperator.single(0), n_modes=1)
        assert FermihedralResult(m, 5, True, False, 1.0).label == "5"
        assert FermihedralResult(m, 5, False, True, 1.0).label == "5*"
