"""Tests for shot-based energy estimation (QWC grouping + sampling)."""

import numpy as np
import pytest

from repro.paulis import PauliString, QubitOperator
from repro.sim import Statevector
from repro.sim.measurement import (
    EnergyEstimate,
    basis_rotation_circuit,
    estimate_energy,
    qubitwise_commuting_groups,
    sample_bitstrings,
)


def op_from(labels):
    return QubitOperator.from_label_dict(labels)


class TestGrouping:
    def test_compatible_terms_share_group(self):
        h = op_from({"ZZ": 1.0, "ZI": 0.5, "IZ": 0.25})
        groups = qubitwise_commuting_groups(h)
        assert len(groups) == 1
        assert groups[0].basis == {0: "Z", 1: "Z"}

    def test_conflicting_bases_split(self):
        h = op_from({"XX": 1.0, "ZZ": 1.0})
        assert len(qubitwise_commuting_groups(h)) == 2

    def test_commuting_but_not_qwc_split(self):
        # XX and YY commute globally but not qubit-wise.
        h = op_from({"XX": 1.0, "YY": 1.0})
        assert len(qubitwise_commuting_groups(h)) == 2

    def test_identity_excluded(self):
        h = op_from({"II": 5.0, "ZI": 1.0})
        groups = qubitwise_commuting_groups(h)
        assert len(groups) == 1
        assert len(groups[0].terms) == 1

    def test_partition_is_complete(self):
        h = op_from({"XY": 0.1, "XI": 0.2, "ZY": 0.3, "IY": 0.4, "ZZ": 0.5})
        groups = qubitwise_commuting_groups(h)
        total_terms = sum(len(g.terms) for g in groups)
        assert total_terms == 5


class TestBasisRotation:
    @pytest.mark.parametrize("label", ["XX", "YZ", "ZY", "XY"])
    def test_rotated_terms_become_diagonal(self, label):
        h = op_from({label: 1.0})
        (group,) = qubitwise_commuting_groups(h)
        circ = basis_rotation_circuit(group, 2)
        from repro.circuits import conjugate_through_circuit

        p = conjugate_through_circuit(PauliString.from_label(label), circ)
        assert p.x == 0  # diagonal after rotation


class TestSampling:
    def test_deterministic_state(self):
        state = Statevector.basis(3, 0b101)
        rng = np.random.default_rng(0)
        outcomes = sample_bitstrings(state, 50, rng)
        assert set(outcomes) == {0b101}

    def test_readout_error_flips(self):
        state = Statevector.basis(1, 0)
        rng = np.random.default_rng(0)
        outcomes = sample_bitstrings(state, 4000, rng, readout_error=0.25)
        flipped = np.mean(outcomes)
        assert 0.2 < flipped < 0.3

    def test_uniform_superposition(self):
        state = Statevector(1)
        from repro.circuits import Gate

        state.apply(Gate("h", (0,)))
        rng = np.random.default_rng(1)
        outcomes = sample_bitstrings(state, 4000, rng)
        assert 0.45 < np.mean(outcomes) < 0.55


class TestEstimator:
    def test_diagonal_exact_on_basis_state(self):
        h = op_from({"ZI": 1.0, "IZ": 2.0, "II": 0.5})
        state = Statevector.basis(2, 0b01)
        est = estimate_energy(state, h, shots=100)
        # Single deterministic group: estimator is exact.
        assert est.value == pytest.approx(1.0 - 2.0 + 0.5)
        assert est.stderr == pytest.approx(0.0)

    def test_unbiased_against_exact_expectation(self):
        h = op_from({"XI": 0.7, "ZZ": -0.4, "YY": 0.9, "IZ": 0.3})
        state = Statevector(2)
        from repro.circuits import Gate

        state.apply(Gate("h", (0,)))
        state.apply(Gate("cx", (0, 1)))
        state.apply(Gate("t", (1,)))
        exact = state.expectation(h)
        est = estimate_energy(state, h, shots=60000, seed=5)
        assert est.value == pytest.approx(exact, abs=0.05)
        assert est.n_groups >= 2

    def test_h2_energy_estimation(self):
        """Full physics path: HF state of H2, sampled energy ≈ SCF energy."""
        from repro.mappings import jordan_wigner
        from repro.models.electronic import electronic_case
        from repro.sim import occupation_statevector

        case = electronic_case("H2_sto3g")
        mapping = jordan_wigner(4)
        hq = mapping.map(case.hamiltonian)
        state = occupation_statevector(mapping, [0, 2])
        est = estimate_energy(state, hq, shots=40000, seed=2)
        assert est.value == pytest.approx(case.scf_energy, abs=0.03)

    def test_readout_error_biases(self):
        h = op_from({"ZZZ": 1.0})
        state = Statevector.basis(3, 0)
        clean = estimate_energy(state, h, shots=2000, seed=1)
        noisy = estimate_energy(state, h, shots=2000, seed=1, readout_error=0.1)
        assert clean.value == pytest.approx(1.0)
        assert noisy.value < clean.value

    def test_constant_hamiltonian(self):
        h = op_from({"II": 3.25})
        est = estimate_energy(Statevector(2), h, shots=10)
        assert est == EnergyEstimate(3.25, 0.0, 0, 0)
