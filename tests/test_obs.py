"""Tests for repro.obs — metrics registry, tracing, structured logging.

Covers the PR's observability guarantees:

* histogram bucket edges use Prometheus ``le`` (inclusive-upper) semantics
  and the rendered text parses as valid exposition format (mini-parser);
* the metric-counter choke point (``JobQueue._count``) is race-free under
  a 16-thread hammer — per-queue stats and registry totals agree exactly;
* a trace context survives the round trip through a real
  ``ProcessPoolExecutor`` worker and comes back with recorded spans;
* JSON log lines carry the active trace ID; the slow-compile threshold
  triggers a warning with that ID attached.
"""

import json
import logging
import math
import threading
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.obs.logging import (
    JsonFormatter,
    configure_logging,
    set_slow_compile_threshold,
    slow_compile_threshold,
)
from repro.obs.metrics import (
    BENCH_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    latency_summary,
)
from repro.obs.trace import (
    StageTimings,
    TraceContext,
    activate,
    current_trace,
    current_trace_id,
    span,
)
from repro.serve import CompileRequest, JobQueue
from repro.serve.queue import execute_request
from repro.service import MappingService, pool_context


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
class TestInstruments:
    def test_counter_monotonic(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)

    def test_gauge_set_inc_dec(self):
        g = Gauge()
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert g.value == 4.0

    def test_histogram_le_inclusive_bucket_edges(self):
        # A value exactly on a bucket boundary counts in that bucket
        # (Prometheus le semantics), not the next one up.
        h = Histogram(buckets=(0.01, 0.1, 1.0))
        h.observe(0.01)   # == first upper bound -> first bucket
        h.observe(0.05)   # second bucket
        h.observe(0.1)    # == second upper bound -> second bucket
        h.observe(2.0)    # +Inf overflow
        assert h.cumulative_counts() == [
            (0.01, 1), (0.1, 3), (1.0, 3), (math.inf, 4)]
        assert h.count == 4
        assert h.sum == pytest.approx(2.16)

    def test_histogram_quantiles_clamped_to_observed_range(self):
        h = Histogram(buckets=(1.0, 10.0))
        for v in (4.0, 5.0, 6.0):
            h.observe(v)
        # Interpolation happens inside (1, 10] but never escapes [min, max].
        assert 4.0 <= h.quantile(0.5) <= 6.0
        assert h.quantile(0.0) == 4.0
        assert h.quantile(1.0) == 6.0
        assert math.isnan(Histogram(buckets=(1.0,)).quantile(0.5))
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_histogram_overflow_quantile_returns_observed_max(self):
        h = Histogram(buckets=(0.001,))
        h.observe(7.0)
        assert h.quantile(0.99) == 7.0

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError, match="at least one"):
            Histogram(buckets=())
        with pytest.raises(ValueError, match="finite"):
            Histogram(buckets=(1.0, math.inf))

    def test_summary_empty_and_populated(self):
        h = Histogram(buckets=(1.0,))
        assert h.summary() == {"count": 0, "sum": 0.0, "min": None, "max": None}
        h.observe(0.5)
        s = h.summary()
        assert s["count"] == 1 and s["min"] == s["max"] == 0.5


# ----------------------------------------------------------------------
# Registry: families, snapshot, Prometheus rendering
# ----------------------------------------------------------------------
def parse_prometheus(text):
    """Mini-parser for exposition format: {name: {"type":…, "samples": {…}}}.

    Raises on malformed lines, so tests using it validate the whole scrape.
    """
    out = {}
    current = None
    for line in text.splitlines():
        if not line:
            raise AssertionError("blank line in exposition output")
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "histogram"), line
            out[name] = {"type": kind, "samples": {}}
            current = name
            continue
        assert not line.startswith("#"), f"unknown comment: {line}"
        name_and_labels, _, value = line.rpartition(" ")
        assert name_and_labels and current is not None, line
        base = name_and_labels.split("{", 1)[0]
        stripped = base
        for suffix in ("_bucket", "_sum", "_count"):
            if out[current]["type"] == "histogram" and base.endswith(suffix):
                stripped = base[: -len(suffix)]
                break
        assert stripped == current, f"sample {line!r} outside family {current}"
        out[current]["samples"][name_and_labels] = (
            math.inf if value == "+Inf" else float(value))
    return out


class TestRegistry:
    def test_counter_families_and_label_consistency(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", state="done").inc(3)
        reg.counter("jobs_total", state="error").inc()
        snap = reg.snapshot()
        assert snap["jobs_total"]["values"] == {"state=done": 3, "state=error": 1}
        with pytest.raises(ValueError, match="previously"):
            reg.counter("jobs_total", reason="oops")
        with pytest.raises(ValueError, match="is a counter"):
            reg.gauge("jobs_total")

    def test_render_parses_and_counts_are_cumulative(self):
        reg = MetricsRegistry()
        reg.counter("repro_jobs_total", help="Jobs.", state="done").inc(2)
        reg.gauge("repro_queue_depth").set(4)
        h = reg.histogram("repro_compile_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        families = parse_prometheus(reg.render())
        assert families["repro_jobs_total"]["type"] == "counter"
        assert families["repro_jobs_total"]["samples"][
            'repro_jobs_total{state="done"}'] == 2
        assert families["repro_queue_depth"]["samples"]["repro_queue_depth"] == 4
        samples = families["repro_compile_seconds"]["samples"]
        # Cumulative buckets: 1 <= 2 <= 3 (+Inf), count == +Inf bucket.
        assert samples['repro_compile_seconds_bucket{le="0.1"}'] == 1
        assert samples['repro_compile_seconds_bucket{le="1"}'] == 2
        assert samples['repro_compile_seconds_bucket{le="+Inf"}'] == 3
        assert samples["repro_compile_seconds_count"] == 3
        assert samples["repro_compile_seconds_sum"] == pytest.approx(5.55)

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        reg.counter("weird_total", path='a\\b"c\nd').inc()
        text = reg.render()
        assert 'path="a\\\\b\\"c\\nd"' in text
        # And the escaped text still round-trips through the parser.
        families = parse_prometheus(text)
        assert list(families["weird_total"]["samples"].values()) == [1.0]

    def test_help_escaping_and_empty_registry(self):
        reg = MetricsRegistry()
        assert reg.render() == ""
        reg.counter("c_total", help="line1\nline2 \\ slash").inc()
        assert "# HELP c_total line1\\nline2 \\\\ slash" in reg.render()

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("x_total").inc()
        reg.reset()
        assert reg.snapshot() == {}


class TestLatencySummary:
    def test_empty(self):
        assert latency_summary([]) == {
            "n": 0, "p50_ms": None, "p99_ms": None,
            "min_ms": None, "max_ms": None}

    def test_bench_buckets_resolve_warm_vs_cold(self):
        # The seed bench's real numbers: warm ~3.9 ms vs cold ~10.6 ms must
        # not collapse into one bucket.
        warm = latency_summary([0.0038, 0.0042, 0.0040], BENCH_LATENCY_BUCKETS)
        cold = latency_summary([0.0106, 0.0110, 0.0108], BENCH_LATENCY_BUCKETS)
        assert warm["p50_ms"] < cold["p50_ms"]
        assert warm["min_ms"] == 3.8 and cold["max_ms"] == 11.0


# ----------------------------------------------------------------------
# Metric-counter races: the single choke point under 16 threads
# ----------------------------------------------------------------------
class TestCounterRaces:
    def test_sixteen_thread_hammer_exact_totals(self, tmp_path):
        registry = MetricsRegistry()
        service = MappingService(cache_dir=tmp_path / "cache")
        with JobQueue(service=service, workers=1, registry=registry) as queue:
            names = ["submitted", "coalesced", "executed", "errors", "retried"]
            per_thread = 250
            barrier = threading.Barrier(16)

            def hammer():
                barrier.wait()
                for i in range(per_thread):
                    queue._count(names[i % len(names)])

            threads = [threading.Thread(target=hammer) for _ in range(16)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            stats = queue.stats()
            expected = 16 * per_thread // len(names)
            for name in names:
                assert stats[name] == expected, name
            snap = registry.snapshot()
            assert snap["repro_jobs_submitted_total"]["values"][""] == expected
            assert snap["repro_jobs_coalesced_total"]["values"][""] == expected
            assert snap["repro_jobs_total"]["values"]["state=done"] == expected
            assert snap["repro_jobs_total"]["values"]["state=error"] == expected
            assert snap["repro_job_retries_total"]["values"][""] == expected

    def test_queue_metrics_reach_registry_end_to_end(self, tmp_path):
        registry = MetricsRegistry()
        service = MappingService(cache_dir=tmp_path / "cache")
        with JobQueue(service=service, workers=2, registry=registry) as queue:
            record, _ = queue.submit(CompileRequest(case="hubbard:1x2"))
            assert queue.wait(record.id, timeout=120).status == "done"
        snap = registry.snapshot()
        assert snap["repro_jobs_submitted_total"]["values"][""] == 1
        assert snap["repro_jobs_total"]["values"]["state=done"] == 1
        job_seconds = snap["repro_job_seconds"]["values"][""]
        assert job_seconds["count"] == 1 and job_seconds["sum"] > 0
        assert snap["repro_queue_depth"]["values"][""] == 0


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
class TestTrace:
    def test_no_active_trace_by_default(self):
        assert current_trace() is None
        assert current_trace_id() is None

    def test_activate_and_span_record(self):
        reg = MetricsRegistry()
        ctx = TraceContext("abc123")
        with activate(ctx):
            assert current_trace_id() == "abc123"
            with span("fingerprint", registry=reg):
                pass
        assert current_trace() is None
        spans = ctx.spans
        assert len(spans) == 1 and spans[0]["stage"] == "fingerprint"
        assert spans[0]["seconds"] >= 0
        snap = reg.snapshot()
        assert snap["repro_stage_seconds"]["values"]["stage=fingerprint"][
            "count"] == 1

    def test_span_without_active_trace_still_observes_metric(self):
        reg = MetricsRegistry()
        with span("routing", registry=reg):
            pass
        assert "repro_stage_seconds" in reg.snapshot()

    def test_to_dict_round_trip(self):
        ctx = TraceContext("deadbeef")
        ctx.record("construction", 0.25)
        clone = TraceContext.from_dict(
            json.loads(json.dumps(ctx.to_dict())))
        assert clone.trace_id == "deadbeef"
        assert clone.stage_seconds() == {"construction": 0.25}

    def test_trace_round_trips_through_process_pool(self, tmp_path):
        """The real serving path: a trace dict rides the pickled args into a
        pool worker, which re-activates it and ships spans back."""
        request = CompileRequest(case="hubbard:1x2").to_dict()
        with ProcessPoolExecutor(
                max_workers=1, mp_context=pool_context()) as pool:
            future = pool.submit(
                execute_request, request, str(tmp_path / "cache"), True,
                {"trace_id": "feedface01", "spans": []})
            out = future.result(timeout=120)
        assert out["trace"]["trace_id"] == "feedface01"
        stages = {s["stage"] for s in out["trace"]["spans"]}
        assert "fingerprint" in stages and "tree_construction" in stages

    def test_stage_timings_accumulate_and_merge(self):
        t = StageTimings()
        t.add("routing", 0.5)
        t.add("routing", 0.25)
        with t.time("ordering"):
            pass
        t.merge_spans([{"stage": "construction", "seconds": 1.0}])
        other = StageTimings()
        other.add("routing", 0.25)
        t.merge(other)
        doc = t.to_dict()
        assert doc["stages"]["routing"] == {"seconds": 1.0, "count": 3}
        assert doc["stages"]["construction"]["count"] == 1
        assert doc["stage_total_seconds"] == pytest.approx(
            2.0 + doc["stages"]["ordering"]["seconds"])


# ----------------------------------------------------------------------
# Structured logging
# ----------------------------------------------------------------------
class TestLogging:
    def _record(self, msg="hello", **extra):
        record = logging.LogRecord(
            "repro.service", logging.INFO, __file__, 1, msg, (), None)
        for k, v in extra.items():
            setattr(record, k, v)
        return record

    def test_json_formatter_basic_fields(self):
        doc = json.loads(JsonFormatter().format(self._record()))
        assert doc["level"] == "info"
        assert doc["logger"] == "repro.service"
        assert doc["message"] == "hello"
        assert "trace_id" not in doc

    def test_json_formatter_pulls_trace_from_context(self):
        with activate(TraceContext("cafe01")):
            doc = json.loads(JsonFormatter().format(self._record()))
        assert doc["trace_id"] == "cafe01"

    def test_json_formatter_extra_fields(self):
        doc = json.loads(JsonFormatter().format(
            self._record(trace_id="t1", fingerprint="ff", seconds=1.5)))
        assert doc["trace_id"] == "t1"
        assert doc["fingerprint"] == "ff" and doc["seconds"] == 1.5

    def test_configure_logging_idempotent_and_validating(self):
        logger = configure_logging(fmt="json", level="warning")
        try:
            logger = configure_logging(fmt="json", level="warning")
            assert len(logger.handlers) == 1
            assert logger.level == logging.WARNING
            with pytest.raises(ValueError, match="unknown log format"):
                configure_logging(fmt="xml")
            with pytest.raises(ValueError, match="unknown log level"):
                configure_logging(level="loud")
        finally:
            # Leave the shared "repro" logger as other tests expect it.
            for handler in list(logger.handlers):
                logger.removeHandler(handler)
            logger.propagate = True
            logger.setLevel(logging.NOTSET)

    def test_slow_compile_threshold_override(self):
        try:
            set_slow_compile_threshold(0.5)
            assert slow_compile_threshold() == 0.5
        finally:
            set_slow_compile_threshold(None)
        assert slow_compile_threshold() == 30.0

    def test_slow_compile_warning_carries_trace_id(self, tmp_path):
        captured = []

        class Capture(logging.Handler):
            def emit(self, record):
                captured.append(record)

        logger = logging.getLogger("repro.service")
        handler = Capture(level=logging.WARNING)
        logger.addHandler(handler)
        try:
            set_slow_compile_threshold(0.0)  # every compile is "slow"
            service = MappingService(cache_dir=tmp_path / "cache")
            from repro.models import load_case
            from repro.service import MappingSpec

            ctx = TraceContext("f00dd00d")
            with activate(ctx):
                service.get_or_compile(
                    load_case("hubbard:1x2"), MappingSpec(kind="jw"))
        finally:
            set_slow_compile_threshold(None)
            logger.removeHandler(handler)
        warnings = [r for r in captured if "slow compile" in r.getMessage()]
        assert warnings, [r.getMessage() for r in captured]
        assert warnings[0].trace_id == "f00dd00d"
