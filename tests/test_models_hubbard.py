"""Tests for the Fermi-Hubbard generator."""

import numpy as np
import pytest

from repro.fermion import FermionOperator
from repro.hatt import hatt_mapping
from repro.mappings import jordan_wigner
from repro.models.hubbard import fermi_hubbard, hubbard_case, lattice_edges


class TestLattice:
    def test_edge_counts_open(self):
        # rows*(cols-1) horizontal + (rows-1)*cols vertical.
        assert len(lattice_edges(2, 2)) == 4
        assert len(lattice_edges(2, 3)) == 7
        assert len(lattice_edges(3, 3)) == 12
        assert len(lattice_edges(1, 4)) == 3

    def test_edges_are_neighbours(self):
        for i, j in lattice_edges(3, 4):
            ri, ci = divmod(i, 4)
            rj, cj = divmod(j, 4)
            assert abs(ri - rj) + abs(ci - cj) == 1

    def test_periodic_adds_wraparound(self):
        open_edges = len(lattice_edges(3, 3))
        per_edges = len(lattice_edges(3, 3, periodic=True))
        assert per_edges == open_edges + 6


class TestHamiltonian:
    def test_mode_count(self):
        for rows, cols in [(2, 2), (2, 3), (4, 5)]:
            h = fermi_hubbard(rows, cols)
            assert h.n_modes == 2 * rows * cols

    def test_term_count(self):
        # Each edge gives 2 spins × 2 directed hops; each site 1 U-product term.
        h = fermi_hubbard(2, 2, t=1.0, u=4.0)
        n_hop = 4 * len(lattice_edges(2, 2))
        assert len(h) == n_hop + 4

    def test_hermitian(self):
        assert fermi_hubbard(2, 3).is_hermitian()

    def test_jw_weight_1x2(self):
        """Hand-computed JW Pauli weight for the 1×2 lattice (4 modes) = 20."""
        h = fermi_hubbard(1, 2, t=1.0, u=4.0)
        hq = jordan_wigner(4).map(h)
        assert hq.pauli_weight() == 20

    def test_blocked_ordering_differs(self):
        inter = fermi_hubbard(2, 2, ordering="interleaved")
        blocked = fermi_hubbard(2, 2, ordering="blocked")
        wi = jordan_wigner(8).map(inter).pauli_weight()
        wb = jordan_wigner(8).map(blocked).pauli_weight()
        assert wi != wb  # blocked ordering stretches the up/down JW chains

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            fermi_hubbard(0, 2)
        with pytest.raises(ValueError):
            fermi_hubbard(2, 2, ordering="diagonal")

    def test_particle_number_conserved(self):
        """[H, N_total] = 0 in a dense 2-site check."""
        h = fermi_hubbard(1, 2)
        m = jordan_wigner(4)
        hq = m.map(h).to_matrix()
        n_tot = sum(
            m.mode_number_operator(j).to_matrix() for j in range(4)
        )
        np.testing.assert_allclose(hq @ n_tot - n_tot @ hq, 0, atol=1e-12)

    def test_half_filling_ground_state_energy(self):
        """1×2 Hubbard in the N=2 sector: E0 = (U - sqrt(U² + 16t²)) / 2."""
        t, u = 1.0, 4.0
        h = fermi_hubbard(1, 2, t=t, u=u)
        m = jordan_wigner(4)
        hq = m.map(h).to_matrix()
        n_tot = sum(m.mode_number_operator(j).to_matrix() for j in range(4))
        # Project onto the two-particle sector and diagonalize there.
        occ = np.round(np.diag(n_tot).real).astype(int)
        sel = np.where(occ == 2)[0]
        block = hq[np.ix_(sel, sel)]
        expected = (u - np.sqrt(u * u + 16 * t * t)) / 2
        assert np.linalg.eigvalsh(block)[0] == pytest.approx(expected, abs=1e-9)


class TestCaseParser:
    def test_parse(self):
        h = hubbard_case("2x3")
        assert h.n_modes == 12
        h2 = hubbard_case("3×4")
        assert h2.n_modes == 24

    def test_reject(self):
        with pytest.raises(ValueError):
            hubbard_case("2by3")


def test_hatt_on_hubbard_2x2_beats_jw():
    """Table II shape: HATT ≤ JW in Pauli weight on the 2×2 lattice."""
    h = fermi_hubbard(2, 2)
    hatt_w = hatt_mapping(h).map(h).pauli_weight()
    jw_w = jordan_wigner(8).map(h).pauli_weight()
    assert hatt_w <= jw_w


def test_paper_table2_exact_regression():
    """With the periodic column-major convention, JW/BK/HATT reproduce the
    paper's Table II weights exactly on the small geometries."""
    from repro.mappings import bravyi_kitaev

    expected = {  # geometry: (JW, BK, HATT) from paper Table II
        "2x2": (80, 80, 76),
        "2x3": (212, 200, 187),
        "2x4": (304, 263, 256),
    }
    for geometry, (jw_w, bk_w, hatt_w) in expected.items():
        h = hubbard_case(geometry)
        n = h.n_modes
        assert jordan_wigner(n).map(h).pauli_weight() == jw_w
        assert bravyi_kitaev(n).map(h).pauli_weight() == bk_w
        assert hatt_mapping(h, n_modes=n).map(h).pauli_weight() == hatt_w
