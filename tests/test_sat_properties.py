"""Property-based tests: the CDCL solver against a brute-force oracle."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fermihedral import SAT, UNSAT, Solver


def brute_force_sat(clauses: list[list[int]], n_vars: int) -> bool:
    for bits in itertools.product((False, True), repeat=n_vars):
        ok = True
        for clause in clauses:
            if not any(
                (lit > 0) == bits[abs(lit) - 1] for lit in clause
            ):
                ok = False
                break
        if ok:
            return True
    return False


@st.composite
def cnf_instances(draw):
    n_vars = draw(st.integers(min_value=1, max_value=8))
    n_clauses = draw(st.integers(min_value=1, max_value=24))
    clauses = []
    for _ in range(n_clauses):
        width = draw(st.integers(min_value=1, max_value=min(3, n_vars)))
        lits = draw(
            st.lists(
                st.integers(min_value=1, max_value=n_vars),
                min_size=width,
                max_size=width,
                unique=True,
            )
        )
        signs = draw(st.lists(st.booleans(), min_size=width, max_size=width))
        clauses.append([v if s else -v for v, s in zip(lits, signs)])
    return n_vars, clauses


@given(cnf_instances())
@settings(max_examples=120, deadline=None)
def test_solver_agrees_with_brute_force(instance):
    n_vars, clauses = instance
    solver = Solver()
    for clause in clauses:
        solver.add_clause(list(clause))
    result = solver.solve()
    expected = brute_force_sat(clauses, n_vars)
    assert result == (SAT if expected else UNSAT)
    if result == SAT:
        model = solver.model()
        for clause in clauses:
            assert any((l > 0) == model.get(abs(l), False) for l in clause)


@given(cnf_instances())
@settings(max_examples=40, deadline=None)
def test_solver_deterministic(instance):
    _, clauses = instance
    results = []
    for _ in range(2):
        s = Solver()
        for clause in clauses:
            s.add_clause(list(clause))
        results.append(s.solve())
    assert results[0] == results[1]


@given(st.integers(min_value=1, max_value=6), st.randoms())
@settings(max_examples=30, deadline=None)
def test_xor_chain_parity(n, rnd):
    """Encode a parity constraint via Tseitin chain; solver must respect it."""
    from repro.fermihedral.encoding import MappingEncoding

    enc = MappingEncoding(1, [])
    lits = [enc.solver.new_var() for _ in range(n)]
    out = enc._xor_chain(lits)
    target = rnd.choice([True, False])
    enc.solver.add_clause([out if target else -out])
    # Pin each input randomly; parity of inputs must equal target iff SAT
    # under forced assignment.
    values = [rnd.choice([True, False]) for _ in range(n)]
    for lit, val in zip(lits, values):
        enc.solver.add_clause([lit if val else -lit])
    result = enc.solver.solve()
    parity = sum(values) % 2 == 1
    assert result == (SAT if parity == target else UNSAT)
