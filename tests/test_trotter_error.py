"""Tests for Trotter-error bounds."""

import pytest

from repro.analysis.trotter_error import (
    commutator_weight,
    empirical_trotter_error,
    trotter_error_bound,
)
from repro.paulis import QubitOperator


def op_from(labels):
    return QubitOperator.from_label_dict(labels)


class TestCommutatorWeight:
    def test_commuting_terms_zero(self):
        h = op_from({"ZZ": 1.0, "ZI": 2.0, "IZ": 3.0})
        assert commutator_weight(h) == 0.0

    def test_anticommuting_pair(self):
        h = op_from({"XI": 0.5, "ZI": 2.0})
        assert commutator_weight(h) == pytest.approx(2.0 * 0.5 * 2.0)

    def test_identity_ignored(self):
        h = op_from({"II": 100.0, "XI": 1.0, "ZI": 1.0})
        assert commutator_weight(h) == pytest.approx(2.0)


class TestBound:
    def test_zero_for_commuting(self):
        h = op_from({"ZZ": 1.0, "IZ": 0.5})
        assert trotter_error_bound(h, 1.0, 1) == 0.0
        assert empirical_trotter_error(h, 1.0, 1) == pytest.approx(0.0, abs=1e-9)

    def test_bound_dominates_empirical(self):
        h = op_from({"XI": 0.8, "ZZ": 0.6, "IY": -0.5})
        for steps in (1, 2, 4):
            bound = trotter_error_bound(h, 0.5, steps)
            actual = empirical_trotter_error(h, 0.5, steps)
            assert actual <= bound + 1e-9

    def test_error_decreases_linearly_in_steps(self):
        h = op_from({"XX": 0.9, "ZI": 0.7})
        e1 = empirical_trotter_error(h, 1.0, 1)
        e4 = empirical_trotter_error(h, 1.0, 4)
        assert e4 < e1 / 2.5  # first-order formula: ~1/steps

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            trotter_error_bound(op_from({"X": 1.0}), 1.0, 0)
