"""HATT: Hamiltonian-Adaptive Ternary Tree construction (the paper's core)."""

from .construction import (
    ARCH_WEIGHT_SCALE,
    BACKENDS,
    DEFAULT_ARCH_WEIGHT,
    DEFAULT_MEMORY_BUDGET,
    HattConstruction,
    Selection,
    hatt_mapping,
)

__all__ = [
    "HattConstruction",
    "Selection",
    "hatt_mapping",
    "BACKENDS",
    "DEFAULT_MEMORY_BUDGET",
    "ARCH_WEIGHT_SCALE",
    "DEFAULT_ARCH_WEIGHT",
]
