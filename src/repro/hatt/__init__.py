"""HATT: Hamiltonian-Adaptive Ternary Tree construction (the paper's core)."""

from .construction import HattConstruction, Selection, hatt_mapping

__all__ = ["HattConstruction", "Selection", "hatt_mapping"]
