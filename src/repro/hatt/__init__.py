"""HATT: Hamiltonian-Adaptive Ternary Tree construction (the paper's core)."""

from .construction import (
    BACKENDS,
    DEFAULT_MEMORY_BUDGET,
    HattConstruction,
    Selection,
    hatt_mapping,
)

__all__ = [
    "HattConstruction",
    "Selection",
    "hatt_mapping",
    "BACKENDS",
    "DEFAULT_MEMORY_BUDGET",
]
