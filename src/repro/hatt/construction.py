"""Hamiltonian-Adaptive Ternary Tree construction (paper Algorithms 1–3).

The constructor grows a complete ternary tree bottom-up from the ``2N+1``
leaves.  At step ``i`` it selects three working-set nodes as the X/Y/Z
children of a new internal node (qubit ``i``), choosing the selection that
minimizes the Hamiltonian's Pauli weight *on qubit i*, then reduces the
Hamiltonian (paper Fig. 5/7).

Exact-and-fast weight evaluation
--------------------------------
After preprocessing, the Hamiltonian is a list of Majorana monomials — index
subsets ``T ⊆ {0..2N}``.  Each working-set node ``O`` keeps an integer
bitmask ``m(O)`` over terms that currently contain it.  For a candidate
triple ``(A, B, C)`` the operator a term acquires on qubit ``i`` depends only
on ``k = |T ∩ {A,B,C}|``:

* ``k = 0`` → I (term untouched),
* ``k = 1`` → the child's branch operator (X, Y or Z) — weight 1,
* ``k = 2`` → product of two distinct anchored operators — weight 1, and the
  two children cancel out of the term entirely (``S_A·S_B = S_P² ⊗ XY``),
* ``k = 3`` → ``X·Y·Z = iI`` — weight 0, the three children collapse to the
  parent (``S_P ⊗ iI``).

Hence the candidate's weight on qubit ``i`` is
``popcount((mA|mB|mC) & ~(mA&mB&mC))`` and the parent's term mask after the
reduction step is ``mA ^ mB ^ mC`` (odd ``k`` keeps the parent in the term).
This realizes the paper's ``pauli_weight``/``reduce`` exactly, at
``O(terms/64)`` cost per candidate.

Vacuum-preserving pairing (Algorithm 2) restricts the search to ordered
``(O_X, O_Z)`` pairs and derives ``O_Y`` from the Z-descendant maps
``mdown``/``mup`` (Algorithm 3); pass ``cached=False`` to use the explicit
tree traversals of Algorithm 2 instead of the O(1) maps.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

from ..fermion import FermionOperator, MajoranaOperator
from ..mappings.base import FermionQubitMapping
from ..mappings.tree import TernaryTree, TreeNode

__all__ = ["HattConstruction", "hatt_mapping", "Selection"]

#: One construction step: (qubit, (uid_X, uid_Y, uid_Z), weight_on_qubit).
Selection = tuple[int, tuple[int, int, int], int]


class HattConstruction:
    """Stateful bottom-up HATT tree builder.

    Parameters
    ----------
    hamiltonian:
        The preprocessed Majorana-form Hamiltonian.
    n_modes:
        Number of fermionic modes N (≥ the operator's own mode count).
    vacuum:
        ``True`` → paper Algorithm 2 (vacuum-state-preserving pairing);
        ``False`` → paper Algorithm 1 (free triple selection).
    cached:
        Only meaningful with ``vacuum=True``.  ``True`` → Algorithm 3's O(1)
        ``mdown``/``mup`` maps; ``False`` → explicit O(N) tree traversals.
        Both produce identical trees (tested); only the complexity differs.
    """

    def __init__(
        self,
        hamiltonian: MajoranaOperator,
        n_modes: int,
        vacuum: bool = True,
        cached: bool = True,
    ):
        if n_modes < 1:
            raise ValueError("need at least one fermionic mode")
        if hamiltonian.n_majoranas > 2 * n_modes:
            raise ValueError(
                f"Hamiltonian touches Majorana index {hamiltonian.n_majoranas - 1} "
                f"but n_modes={n_modes} provides only indices < {2 * n_modes}"
            )
        self.n = n_modes
        self.vacuum = vacuum
        self.cached = cached
        self.terms: list[tuple[int, ...]] = hamiltonian.support_terms()

        n_leaves = 2 * n_modes + 1
        self.nodes: list[TreeNode] = [TreeNode(leaf_index=i) for i in range(n_leaves)]
        # Term-membership bitmask per node (uid-indexed).
        self.masks: list[int] = [0] * n_leaves
        for t, term in enumerate(self.terms):
            bit = 1 << t
            for idx in term:
                self.masks[idx] |= bit
        # Working set U (ordered for deterministic tie-breaking).
        self.working: list[int] = list(range(n_leaves))
        # Algorithm 3 maps: uid -> descZ leaf uid, and inverse.
        self.mdown: dict[int, int] = {i: i for i in range(n_leaves)}
        self.mup: dict[int, int] = {i: i for i in range(n_leaves)}
        self.trace: list[Selection] = []
        self._done = False

    # ------------------------------------------------------------------
    # Weight oracle
    # ------------------------------------------------------------------
    def _weight_on_qubit(self, a: int, b: int, c: int) -> int:
        ma, mb, mc = self.masks[a], self.masks[b], self.masks[c]
        return ((ma | mb | mc) & ~(ma & mb & mc)).bit_count()

    # ------------------------------------------------------------------
    # Z-descendant lookups (Algorithm 3 vs explicit traversal)
    # ------------------------------------------------------------------
    def _desc_z(self, uid: int) -> int:
        if self.cached:
            return self.mdown[uid]
        node = self.nodes[uid].desc_z()
        return node.leaf_index  # leaves have uid == leaf_index

    def _traverse_up(self, leaf_uid: int, working_set: set[int]) -> int:
        if self.cached:
            return self.mup[leaf_uid]
        node = self.nodes[leaf_uid]
        uid = leaf_uid
        while uid not in working_set:
            node = node.parent
            uid = self._uid_of[id(node)]
        return uid

    # ------------------------------------------------------------------
    # Selection rules
    # ------------------------------------------------------------------
    def _select_free(self, qubit: int) -> tuple[tuple[int, int, int], int]:
        """Algorithm 1: scan unordered triples (weight is symmetric in the
        children, so combinations suffice — the X/Y/Z roles follow U order)."""
        best: tuple[int, int, int] | None = None
        best_w = None
        for a, b, c in combinations(self.working, 3):
            w = self._weight_on_qubit(a, b, c)
            if best_w is None or w < best_w:
                best_w, best = w, (a, b, c)
                if w == 0:
                    break
        assert best is not None and best_w is not None
        return best, best_w

    def _select_paired(self, qubit: int) -> tuple[tuple[int, int, int], int]:
        """Algorithm 2: pick (O_X, O_Z); O_Y is forced by leaf pairing."""
        last_leaf = 2 * self.n
        working_set = set(self.working)
        best: tuple[int, int, int] | None = None
        best_w = None
        for ox in self.working:
            x_leaf = self._desc_z(ox)
            if x_leaf == last_leaf:
                # S_2N is the discarded string and never pairs (paper §IV-B).
                continue
            y_leaf = x_leaf + 1 if x_leaf % 2 == 0 else x_leaf - 1
            oy = self._traverse_up(y_leaf, working_set)
            if oy == ox:
                continue
            # The (X, Y) roles must put the even leaf under the X branch.
            cx, cy = (ox, oy) if x_leaf % 2 == 0 else (oy, ox)
            for oz in self.working:
                if oz == ox or oz == oy:
                    continue
                w = self._weight_on_qubit(cx, cy, oz)
                if best_w is None or w < best_w:
                    best_w, best = w, (cx, cy, oz)
        if best is None or best_w is None:
            raise RuntimeError(
                "no valid (O_X, O_Z) selection found — tree state is corrupt"
            )
        return best, best_w

    # ------------------------------------------------------------------
    # Reduction (paper Fig. 7 step 3)
    # ------------------------------------------------------------------
    def _reduce(self, qubit: int, children: tuple[int, int, int]) -> None:
        cx, cy, cz = children
        parent_uid = len(self.nodes)
        parent = TreeNode(qubit=qubit)
        for branch, uid in zip("XYZ", children):
            parent.attach(branch, self.nodes[uid])
        self.nodes.append(parent)
        self._uid_of[id(parent)] = parent_uid
        self.masks.append(self.masks[cx] ^ self.masks[cy] ^ self.masks[cz])
        for uid in children:
            self.working.remove(uid)
        self.working.append(parent_uid)
        # Maintain the Algorithm-3 maps: the new parent inherits its Z child's
        # Z-descendant; (descZ(X), descZ(Y)) just became a Majorana pair.
        z_desc = self.mdown[cz]
        self.mdown[parent_uid] = z_desc
        self.mup[z_desc] = parent_uid

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def run(self) -> TernaryTree:
        if self._done:
            raise RuntimeError("construction already ran")
        self._uid_of = {id(node): uid for uid, node in enumerate(self.nodes)}
        for qubit in range(self.n):
            if self.vacuum:
                children, w = self._select_paired(qubit)
            else:
                children, w = self._select_free(qubit)
            self.trace.append((qubit, children, w))
            self._reduce(qubit, children)
        self._done = True
        (root_uid,) = self.working
        tree = TernaryTree(self.nodes[root_uid], self.n)
        tree.validate()
        return tree

    @property
    def step_weights(self) -> list[int]:
        """Greedy per-qubit weights chosen at each step (diagnostics)."""
        return [w for _, _, w in self.trace]


def _to_majorana(
    hamiltonian: FermionOperator | MajoranaOperator,
) -> MajoranaOperator:
    if isinstance(hamiltonian, FermionOperator):
        return MajoranaOperator.from_fermion_operator(hamiltonian)
    if isinstance(hamiltonian, MajoranaOperator):
        return hamiltonian
    raise TypeError(f"cannot build HATT from {type(hamiltonian).__name__}")


def hatt_mapping(
    hamiltonian: FermionOperator | MajoranaOperator,
    n_modes: int | None = None,
    vacuum: bool = True,
    cached: bool = True,
) -> FermionQubitMapping:
    """Compile a Hamiltonian-adaptive ternary-tree fermion-to-qubit mapping.

    Parameters mirror :class:`HattConstruction`.  Returns a
    :class:`~repro.mappings.FermionQubitMapping` whose string ``S_i`` is
    assigned to Majorana ``M_i`` (leaf ``i`` of the constructed tree); the
    tree itself is attached as ``mapping.tree``.
    """
    majorana = _to_majorana(hamiltonian)
    if n_modes is None:
        n_modes = majorana.n_modes
    construction = HattConstruction(majorana, n_modes, vacuum=vacuum, cached=cached)
    tree = construction.run()
    strings = tree.strings_by_leaf_index()
    name = "HATT" if vacuum else "HATT-unopt"
    mapping = FermionQubitMapping(strings[:-1], name=name, discarded=strings[-1])
    mapping.tree = tree
    mapping.construction = construction
    return mapping
