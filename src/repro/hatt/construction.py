"""Hamiltonian-Adaptive Ternary Tree construction (paper Algorithms 1–3).

The constructor grows a complete ternary tree bottom-up from the ``2N+1``
leaves.  At step ``i`` it selects three working-set nodes as the X/Y/Z
children of a new internal node (qubit ``i``), choosing the selection that
minimizes the Hamiltonian's Pauli weight *on qubit i*, then reduces the
Hamiltonian (paper Fig. 5/7).

Exact-and-fast weight evaluation
--------------------------------
After preprocessing, the Hamiltonian is a list of Majorana monomials — index
subsets ``T ⊆ {0..2N}``.  Each working-set node ``O`` keeps a term-membership
bitmask ``m(O)`` over terms that currently contain it.  For a candidate
triple ``(A, B, C)`` the operator a term acquires on qubit ``i`` depends only
on ``k = |T ∩ {A,B,C}|``:

* ``k = 0`` → I (term untouched),
* ``k = 1`` → the child's branch operator (X, Y or Z) — weight 1,
* ``k = 2`` → product of two distinct anchored operators — weight 1, and the
  two children cancel out of the term entirely (``S_A·S_B = S_P² ⊗ XY``),
* ``k = 3`` → ``X·Y·Z = iI`` — weight 0, the three children collapse to the
  parent (``S_P ⊗ iI``).

Hence the candidate's weight on qubit ``i`` is
``popcount((mA|mB|mC) & ~(mA&mB&mC))`` and the parent's term mask after the
reduction step is ``mA ^ mB ^ mC`` (odd ``k`` keeps the parent in the term).
This realizes the paper's ``pauli_weight``/``reduce`` exactly, at
``O(terms/64)`` cost per candidate.

Vacuum-preserving pairing (Algorithm 2) restricts the search to ordered
``(O_X, O_Z)`` pairs and derives ``O_Y`` from the Z-descendant maps
``mdown``/``mup`` (Algorithm 3); pass ``cached=False`` to use the explicit
tree traversals of Algorithm 2 instead of the O(1) maps.

Architecture-adaptive construction (``hatt-arch``)
--------------------------------------------------
Passing a coupling graph grows the tree *against* the hardware (the
Bonsai/Treespilation direction): every internal node is greedily anchored to
a physical qubit as it is created, and candidate selection minimizes the
blended integer score ``SCALE·weight + round(arch_weight·SCALE)·penalty``
with ``SCALE = 64`` and ``penalty(A,B,C)`` the sum over anchored child pairs
of ``max(dist − 1, 0)`` from the cached all-pairs
:func:`~repro.circuits.routing.distance_matrix`.  Adjacent anchors are free
(the ``− 1``), so an all-to-all graph — and any ``arch_weight`` on it —
reproduces the plain HATT tree exactly; ``arch_weight = 0`` likewise reduces
to plain HATT on *any* graph, because ``64·w`` preserves the plain ordering
and tie-breaks bit for bit.  Anchors assign deterministically: the first
internal node takes the highest-degree free physical qubit (ties toward the
lowest node id, matching the router's ``initial_layout`` rank) and each
later parent takes the free physical qubit minimizing the summed distance
to its already-anchored children.  Both backends share the anchor state and
penalty table, so scalar and vector stay bit-identical in this mode too.

Construction backends
---------------------
``backend="vector"`` (default) stores the per-node masks as an
``(n_nodes, n_words)`` packed-uint64 matrix
(:func:`repro.paulis.table.pack_incidence`) and evaluates **all** candidate
weights of a selection step in one broadcast NumPy kernel: the full
upper-triangular ``(A, B, C)`` grid for Algorithm 1 and the ``(O_X, O_Z)``
pair grid for Algorithms 2/3, chunked under ``memory_budget`` bytes of
intermediate arrays.  State is maintained incrementally — row-XOR reduction
into the matrix, ``mdown``/``mup`` as int arrays, O(1) swap-removal from the
working array — and candidates are always enumerated over the uid-sorted
working set, which reproduces the scalar backend's deterministic
first-minimum tie-breaking bit for bit (the scalar working list stays
uid-sorted by construction).  ``backend="scalar"`` keeps the original
per-candidate Python big-int scan as the cross-checked reference; the
property suite asserts identical traces and trees across the full
``vacuum``/``cached`` matrix.

Measured complexity (Fig. 12, ``HF = Σ_i M_i``)
-----------------------------------------------
Per selection step the paired scan evaluates ``O(N)`` candidate pairs times
``O(N)`` Z-choices and the free scan ``O(N³)`` triples, each costing
``O(terms/64)`` words; over ``N`` steps that is the paper's O(N³)
(Algorithm 3) and O(N⁴) (Algorithm 1) term-popcount totals.  The fitted
log-log slopes in ``BENCH_fig12.json`` sit *below* those exponents for both
backends (scalar ≈ N^2.7 vs vector ≈ N^1.2 for HATT, ≈ N^4.1 vs N^1.8–2.6
for the free variant on the bench sizes): the Fig. 12 Hamiltonian has only
``2N`` single-index terms, so the per-candidate popcount stays a word or
two throughout and fixed Python/NumPy per-step constants — not the
asymptotic word count — dominate at small ``N``, flattening the measured
curves.  The paper's exponents are upper bounds that the sweep approaches
from below as ``N`` (and the term count) grows — visibly so for the scalar
free scan, whose measured slope already matches the predicted N⁴.
"""

from __future__ import annotations

import math
import time
from itertools import combinations

import numpy as np

from ..fermion import FermionOperator, MajoranaOperator
from ..mappings.base import FermionQubitMapping
from ..mappings.tree import TernaryTree, TreeNode, tree_from_uid_arrays
from ..paulis.table import pack_incidence

__all__ = [
    "HattConstruction",
    "hatt_mapping",
    "Selection",
    "BACKENDS",
    "DEFAULT_MEMORY_BUDGET",
    "ARCH_WEIGHT_SCALE",
    "DEFAULT_ARCH_WEIGHT",
]

#: One construction step: (qubit, (uid_X, uid_Y, uid_Z), weight_on_qubit).
Selection = tuple[int, tuple[int, int, int], int]

#: Supported construction backends.
BACKENDS = ("vector", "scalar")

#: Default cap on the vector backend's intermediate candidate-grid arrays.
DEFAULT_MEMORY_BUDGET = 128 * 1024 * 1024

#: Fixed-point grid for the architecture blend: candidate scores are the
#: integers ``ARCH_WEIGHT_SCALE·weight + round(arch_weight·SCALE)·penalty``,
#: so both backends compare identically and ``arch_weight`` is effectively
#: quantized to multiples of ``1/ARCH_WEIGHT_SCALE``.
ARCH_WEIGHT_SCALE = 64

#: Default distance-penalty blend when a coupling graph is supplied (the
#: Table IV bench sweep's best-measured setting).
DEFAULT_ARCH_WEIGHT = 0.5

#: Sentinel weight for masked-out candidates in the broadcast kernels.
_INF = np.iinfo(np.int64).max


class HattConstruction:
    """Stateful bottom-up HATT tree builder.

    Parameters
    ----------
    hamiltonian:
        The preprocessed Majorana-form Hamiltonian.
    n_modes:
        Number of fermionic modes N (≥ the operator's own mode count).
    vacuum:
        ``True`` → paper Algorithm 2 (vacuum-state-preserving pairing);
        ``False`` → paper Algorithm 1 (free triple selection).
    cached:
        Only meaningful with ``vacuum=True``.  ``True`` → Algorithm 3's O(1)
        ``mdown``/``mup`` maps; ``False`` → explicit O(N) tree traversals.
        Both produce identical trees (tested); only the complexity differs.
    backend:
        ``"vector"`` (default) → packed-bitmask broadcast kernels evaluating
        every candidate of a step at once; ``"scalar"`` → the original
        per-candidate Python scan.  Both produce identical traces and trees
        (tested); only the speed differs.
    memory_budget:
        Approximate byte cap on the vector backend's per-step intermediate
        arrays; large candidate grids are chunked to stay under it.
    graph:
        Optional hardware coupling graph (``networkx`` graph with integer
        nodes ``0..n-1``, e.g. from :mod:`repro.circuits.architectures`).
        When given, candidate selection blends a routed-distance penalty
        into the Pauli-weight objective (the ``hatt-arch`` mode; see the
        module docstring).  Requires ``n_modes`` ≤ the graph's qubit count.
    arch_weight:
        Blend strength for the distance penalty, quantized to the
        ``1/ARCH_WEIGHT_SCALE`` grid; ``0`` reduces exactly to plain HATT.
        Only meaningful with ``graph``; defaults to
        :data:`DEFAULT_ARCH_WEIGHT`.
    """

    def __init__(
        self,
        hamiltonian: MajoranaOperator,
        n_modes: int,
        vacuum: bool = True,
        cached: bool = True,
        backend: str = "vector",
        memory_budget: int | None = None,
        graph=None,
        arch_weight: float | None = None,
    ):
        if n_modes < 1:
            raise ValueError("need at least one fermionic mode")
        if hamiltonian.n_majoranas > 2 * n_modes:
            raise ValueError(
                f"Hamiltonian touches Majorana index {hamiltonian.n_majoranas - 1} "
                f"but n_modes={n_modes} provides only indices < {2 * n_modes}"
            )
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        self.n = n_modes
        self.vacuum = vacuum
        self.cached = cached
        self.backend = backend
        self.memory_budget = (
            DEFAULT_MEMORY_BUDGET if memory_budget is None else int(memory_budget)
        )
        if self.memory_budget <= 0:
            raise ValueError("memory_budget must be positive")
        self.terms: list[tuple[int, ...]] = hamiltonian.support_terms()
        self.trace: list[Selection] = []
        #: Child-uid triples per qubit, appended by :meth:`_reduce`.
        self._children: list[tuple[int, int, int]] = []
        self._done = False

        n_leaves = 2 * n_modes + 1
        self._n_leaves = n_leaves
        if backend == "vector":
            self._init_vector(n_leaves)
        else:
            self._init_scalar(n_leaves)
        self._init_arch(graph, arch_weight)

    # ------------------------------------------------------------------
    # Backend state initialization
    # ------------------------------------------------------------------
    def _init_scalar(self, n_leaves: int) -> None:
        n_total = n_leaves + self.n
        self.nodes: list[TreeNode] = [TreeNode(leaf_index=i) for i in range(n_leaves)]
        # Term-membership bitmask per node (uid-indexed), as Python big-ints.
        self.masks: list[int] = [0] * n_leaves
        for t, term in enumerate(self.terms):
            bit = 1 << t
            for idx in term:
                self.masks[idx] |= bit
        # Working set U.  Removals preserve order and the new parent always
        # carries the largest uid, so the list stays uid-sorted throughout —
        # the invariant the vector backend relies on for identical
        # tie-breaking.
        self.working: list[int] = list(range(n_leaves))
        # Persistent membership flags (uid-indexed), maintained by _reduce so
        # the Algorithm-2 traversal never rebuilds a set per call.
        self._in_working = bytearray(n_total)
        for i in range(n_leaves):
            self._in_working[i] = 1
        # Algorithm 3 maps: uid -> descZ leaf uid, and inverse.
        self.mdown: dict[int, int] = {i: i for i in range(n_leaves)}
        self.mup: dict[int, int] = {i: i for i in range(n_leaves)}

    def _init_vector(self, n_leaves: int) -> None:
        n_total = n_leaves + self.n
        # Packed term-membership masks, one row per uid; parent rows are
        # filled in place by the row-XOR reduction.
        rows = pack_incidence(self.terms, n_leaves)
        self._rows = np.zeros((n_total, rows.shape[1]), dtype=np.uint64)
        self._rows[:n_leaves] = rows
        self._n_nodes = n_leaves
        # Working set as a swap-managed prefix of _warr plus a position map:
        # removal moves the last live entry into the freed slot (O(1)).
        self._warr = np.full(n_total, -1, dtype=np.intp)
        self._warr[:n_leaves] = np.arange(n_leaves, dtype=np.intp)
        self._wpos = np.full(n_total, -1, dtype=np.intp)
        self._wpos[:n_leaves] = np.arange(n_leaves, dtype=np.intp)
        self._n_working = n_leaves
        self._in_working_arr = np.zeros(n_total, dtype=bool)
        self._in_working_arr[:n_leaves] = True
        # Algorithm 3 maps and tree topology as flat int arrays.
        self._mdown = np.full(n_total, -1, dtype=np.intp)
        self._mdown[:n_leaves] = np.arange(n_leaves, dtype=np.intp)
        # One dummy slot past the leaves: indexing with the (out-of-range)
        # pair partner of the discarded leaf 2N yields -1 instead of a bounds
        # check, so the paired kernel needs no guard before the gather.
        self._mup = np.full(n_leaves + 1, -1, dtype=np.intp)
        self._mup[:n_leaves] = np.arange(n_leaves, dtype=np.intp)
        self._parent = np.full(n_total, -1, dtype=np.intp)
        self._child_z = np.full(n_total, -1, dtype=np.intp)

    def _init_arch(self, graph, arch_weight: float | None) -> None:
        if graph is None:
            if arch_weight is not None:
                raise ValueError("arch_weight requires a coupling graph")
            self._arch = False
            self.graph = None
            self.arch_weight = None
            self._aw_int = 0
            return
        # Deferred import keeps the plain construction path free of the
        # circuits/networkx dependency.
        from ..circuits.routing import distance_matrix

        n_phys = graph.number_of_nodes()
        if self.n > n_phys:
            raise ValueError(
                f"coupling graph has {n_phys} qubits but the tree needs {self.n}"
            )
        aw = DEFAULT_ARCH_WEIGHT if arch_weight is None else float(arch_weight)
        if not math.isfinite(aw) or aw < 0:
            raise ValueError(
                f"arch_weight must be finite and >= 0, got {arch_weight!r}"
            )
        self._arch = True
        self.graph = graph
        self._aw_int = int(round(aw * ARCH_WEIGHT_SCALE))
        self.arch_weight = self._aw_int / ARCH_WEIGHT_SCALE
        dist = distance_matrix(graph)  # validates 0..n-1 labels, connectivity
        # Penalty table with a trailing all-zero sentinel row/column: anchor
        # -1 (unanchored — every leaf) indexes the sentinel, contributing
        # nothing; the ``- 1`` makes *adjacent* anchors free, so all-to-all
        # graphs reduce exactly to plain HATT.
        pen = np.zeros((n_phys + 1, n_phys + 1), dtype=np.int64)
        pen[:n_phys, :n_phys] = np.maximum(dist.astype(np.int64) - 1, 0)
        self._pen = pen
        self._pen_list: list[list[int]] = pen.tolist()
        self._dist_list: list[list[int]] = dist.tolist()
        # Anchor placement rank: high degree first, node id breaking ties —
        # the same preference the router's initial_layout uses.
        self._free_rank = sorted(graph.nodes, key=lambda v: (-graph.degree[v], v))
        self._phys_used = [False] * n_phys
        self._anchor = [-1] * (self._n_leaves + self.n)

    # ------------------------------------------------------------------
    # Weight oracle (scalar)
    # ------------------------------------------------------------------
    def _weight_on_qubit(self, a: int, b: int, c: int) -> int:
        ma, mb, mc = self.masks[a], self.masks[b], self.masks[c]
        return ((ma | mb | mc) & ~(ma & mb & mc)).bit_count()

    # ------------------------------------------------------------------
    # Architecture penalty + anchor bookkeeping (backend-shared)
    # ------------------------------------------------------------------
    def _penalty3(self, a: int, b: int, c: int) -> int:
        """Summed pairwise anchor penalty of a candidate triple; anchor -1
        indexes the zero sentinel row, so unanchored nodes contribute 0."""
        anc = self._anchor
        pen = self._pen_list
        pa, pb, pc = anc[a], anc[b], anc[c]
        return pen[pa][pb] + pen[pa][pc] + pen[pb][pc]

    def _assign_anchor(self, parent_uid: int, children: tuple[int, int, int]) -> None:
        """Greedily pin the new internal node to a free physical qubit:
        closest (by summed distance) to its already-anchored children, or the
        highest-rank free node when all children are leaves.  Deterministic
        (rank order breaks all ties) and shared by both backends."""
        anchors = [self._anchor[u] for u in children if self._anchor[u] >= 0]
        dist = self._dist_list
        best = None
        if anchors:
            best_d = None
            for p in self._free_rank:
                if self._phys_used[p]:
                    continue
                total = 0
                for q in anchors:
                    total += dist[p][q]
                if best_d is None or total < best_d:
                    best_d, best = total, p
        else:
            for p in self._free_rank:
                if not self._phys_used[p]:
                    best = p
                    break
        assert best is not None  # n internal nodes <= n_phys (validated)
        self._phys_used[best] = True
        self._anchor[parent_uid] = best

    # ------------------------------------------------------------------
    # Z-descendant lookups (Algorithm 3 vs explicit traversal)
    # ------------------------------------------------------------------
    def _desc_z(self, uid: int) -> int:
        if self.cached:
            return self.mdown[uid]
        node = self.nodes[uid].desc_z()
        return node.leaf_index  # leaves have uid == leaf_index

    def _traverse_up(self, leaf_uid: int) -> int:
        if self.cached:
            return self.mup[leaf_uid]
        node = self.nodes[leaf_uid]
        uid = leaf_uid
        while not self._in_working[uid]:
            node = node.parent
            uid = self._uid_of[id(node)]
        return uid

    def _desc_z_vec(self, uid: int) -> int:
        if self.cached:
            return int(self._mdown[uid])
        while self._child_z[uid] >= 0:
            uid = int(self._child_z[uid])
        return uid

    def _traverse_up_vec(self, leaf_uid: int) -> int:
        if self.cached:
            return int(self._mup[leaf_uid])
        uid = leaf_uid
        while not self._in_working_arr[uid]:
            uid = int(self._parent[uid])
        return uid

    # ------------------------------------------------------------------
    # Selection rules (scalar reference)
    # ------------------------------------------------------------------
    def _select_free(self, qubit: int) -> tuple[tuple[int, int, int], int]:
        """Algorithm 1: scan unordered triples (weight is symmetric in the
        children, so combinations suffice — the X/Y/Z roles follow U order).
        In arch mode the scan key is the blended integer score; without a
        graph the score *is* the weight, so plain behaviour is untouched."""
        arch = self._arch
        aw = self._aw_int
        best: tuple[int, int, int] | None = None
        best_w = None
        best_s = None
        for a, b, c in combinations(self.working, 3):
            w = self._weight_on_qubit(a, b, c)
            s = ARCH_WEIGHT_SCALE * w + aw * self._penalty3(a, b, c) if arch else w
            if best_s is None or s < best_s:
                best_s, best_w, best = s, w, (a, b, c)
                if s == 0:
                    break
        assert best is not None and best_w is not None
        return best, best_w

    def _select_paired(self, qubit: int) -> tuple[tuple[int, int, int], int]:
        """Algorithm 2: pick (O_X, O_Z); O_Y is forced by leaf pairing."""
        last_leaf = 2 * self.n
        arch = self._arch
        aw = self._aw_int
        best: tuple[int, int, int] | None = None
        best_w = None
        best_s = None
        for ox in self.working:
            x_leaf = self._desc_z(ox)
            if x_leaf == last_leaf:
                # S_2N is the discarded string and never pairs (paper §IV-B).
                continue
            y_leaf = x_leaf + 1 if x_leaf % 2 == 0 else x_leaf - 1
            oy = self._traverse_up(y_leaf)
            if oy == ox:
                continue
            # The (X, Y) roles must put the even leaf under the X branch.
            cx, cy = (ox, oy) if x_leaf % 2 == 0 else (oy, ox)
            for oz in self.working:
                if oz == ox or oz == oy:
                    continue
                w = self._weight_on_qubit(cx, cy, oz)
                s = (
                    ARCH_WEIGHT_SCALE * w + aw * self._penalty3(cx, cy, oz)
                    if arch
                    else w
                )
                if best_s is None or s < best_s:
                    best_s, best_w, best = s, w, (cx, cy, oz)
                    if s == 0:
                        break
            if best_s == 0:
                # Scores can't go below zero; the first zero-score candidate
                # in scan order is final, so skip the remaining evaluation.
                break
        if best is None or best_w is None:
            raise RuntimeError(
                "no valid (O_X, O_Z) selection found — tree state is corrupt"
            )
        return best, best_w

    # ------------------------------------------------------------------
    # Selection rules (vectorized broadcast kernels)
    # ------------------------------------------------------------------
    def _sorted_working(self) -> np.ndarray:
        """Live working-set uids in ascending order.

        The swap-managed array is unordered; sorting restores the scalar
        backend's (always uid-sorted) scan order so both backends break
        weight ties identically.
        """
        return np.sort(self._warr[: self._n_working])

    @staticmethod
    def _acc_dtype(n_words: int):
        """Smallest unsigned dtype that can hold a ``64 * n_words`` popcount."""
        return np.uint16 if n_words <= 1023 else np.uint32

    def _select_free_vector(self, qubit: int) -> tuple[tuple[int, int, int], int]:
        """Algorithm 1, one broadcast kernel over all C(m, 3) candidate triples.

        Enumerates exactly the upper-triangular ``a < b < c`` candidates: the
        ``(b, c)`` pairs come from ``np.triu_indices`` and each pair is
        repeated once per valid ``a`` (``a < b``) via arange arithmetic, so
        no dense cube is built and no sentinel masking is needed.  Pairs are
        chunked so the candidate arrays stay under ``memory_budget`` bytes.
        The winner is the minimum-weight candidate with the lexicographically
        smallest ``(a, b, c)`` — exactly the scalar scan's first strict
        minimum over ``combinations``.
        """
        uids = self._sorted_working()
        m = len(uids)
        rows = self._rows[uids]
        n_words = rows.shape[1]
        acc_dtype = self._acc_dtype(n_words)
        arch = self._arch
        if arch:
            anc = np.array(self._anchor, dtype=np.intp)[uids]
            pen = self._pen
            aw_int = self._aw_int
        # Per-word flat columns: every kernel pass stays 1-D, so popcounts
        # are plain uint8 vectors accumulated across words instead of a
        # (candidates, n_words) reduction.
        cols = [rows[:, k] for k in range(n_words)]
        b_all, c_all = np.triu_indices(m, k=1)
        # Pairs with b == 0 admit no a < b.
        has_a = b_all > 0
        b_all, c_all = b_all[has_a], c_all[has_a]
        # ~ (3 flat word temps per word pass + index/weight vectors, plus the
        # int64 score/penalty temps in arch mode) per candidate; a pair
        # contributes at most m candidates.  Each pair belongs to exactly one
        # chunk, so the per-chunk OR/AND pair grids below cost no extra
        # compute and keep peak memory under the budget.
        per_pair = m * (3 * n_words + 4 + (6 if arch else 0)) * 8
        chunk = max(1, self.memory_budget // per_pair)
        best_w = None
        best_s = _INF
        best_key = None
        best: tuple[int, int, int] | None = None
        m2 = m * m
        for p0 in range(0, len(b_all), chunk):
            p1 = min(p0 + chunk, len(b_all))
            b_chunk = b_all[p0:p1]
            c_chunk = c_all[p0:p1]
            counts = b_chunk  # number of valid a's per pair
            total = int(counts.sum())
            pair = np.repeat(np.arange(p1 - p0, dtype=np.intp), counts)
            a = np.arange(total, dtype=np.intp) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            w = None
            for col in cols:
                or_k = col[b_chunk] | col[c_chunk]
                and_k = col[b_chunk] & col[c_chunk]
                aw = col[a]
                wk = np.bitwise_count((aw | or_k[pair]) & ~(aw & and_k[pair]))
                if w is None:
                    w = wk if n_words == 1 else wk.astype(acc_dtype)
                else:
                    w += wk
            if arch:
                # Blended integer score; the per-pair (b, c) penalty is
                # computed once per pair and broadcast over the a's.
                pen_b = pen[anc[b_chunk], anc[c_chunk]]
                s = w.astype(np.int64) * ARCH_WEIGHT_SCALE + aw_int * (
                    pen[anc[a], anc[b_chunk][pair]]
                    + pen[anc[a], anc[c_chunk][pair]]
                    + pen_b[pair]
                )
            else:
                s = w
            s_min = int(s.min())
            if s_min < best_s or (best_key is not None and s_min == best_s):
                sel = np.flatnonzero(s == s_min)
                keys = a[sel] * m2 + b_chunk[pair[sel]] * m + c_chunk[pair[sel]]
                j = int(np.argmin(keys))
                k = int(keys[j])
                if s_min < best_s or k < best_key:
                    best_s = s_min
                    best_key = k
                    best_w = int(w[sel[j]])
                    best = (
                        int(uids[k // m2]),
                        int(uids[(k // m) % m]),
                        int(uids[k % m]),
                    )
            if best_s == 0 and p1 < len(b_all):
                # Score floor reached; remaining chunks hold pairs that are
                # lexicographically later, so their candidate keys all exceed
                # best_key once the pair prefix alone does — safe to stop.
                if best_key < int(b_all[p1]) * m + int(c_all[p1]):
                    break
        assert best is not None and best_w is not None
        return best, best_w

    def _select_paired_vector(self, qubit: int) -> tuple[tuple[int, int, int], int]:
        """Algorithms 2/3, one broadcast kernel over the (O_X, O_Z) grid.

        Valid ``O_X`` rows (pair partner exists and differs) are resolved via
        the int-array ``mdown``/``mup`` maps (or the explicit array
        traversals when ``cached=False``), then every ``O_Z`` column is
        scored at once; masked entries take a sentinel weight so the flat
        row-major argmin reproduces the scalar double loop's tie-breaking.
        """
        uids = self._sorted_working()
        m = len(uids)
        last_leaf = 2 * self.n
        if self.cached:
            x_leaf = self._mdown[uids]
            # The dummy _mup slot maps the discarded leaf's nonexistent
            # partner to -1, so the gather needs no validity guard.
            oy = self._mup[x_leaf ^ 1]
        else:
            x_leaf = np.fromiter(
                (self._desc_z_vec(int(u)) for u in uids), dtype=np.intp, count=m
            )
            oy = np.fromiter(
                (self._traverse_up_vec(int(x) ^ 1) if x != last_leaf else -1
                 for x in x_leaf),
                dtype=np.intp,
                count=m,
            )
        r_idx = np.flatnonzero((x_leaf != last_leaf) & (oy != uids) & (oy >= 0))
        if r_idx.size == 0:
            raise RuntimeError(
                "no valid (O_X, O_Z) selection found — tree state is corrupt"
            )
        ox_r = uids[r_idx]
        oy_r = oy[r_idx]
        even = (x_leaf[r_idx] & 1) == 0
        cx = np.where(even, ox_r, oy_r)
        cy = np.where(even, oy_r, ox_r)
        n_words = self._rows.shape[1]
        acc_dtype = self._acc_dtype(n_words)
        arch = self._arch
        if arch:
            anc_all = np.array(self._anchor, dtype=np.intp)
            anc_x = anc_all[cx]
            anc_y = anc_all[cy]
            anc_z = anc_all[uids]
            pen = self._pen
            aw_int = self._aw_int
            pen_xy = pen[anc_x, anc_y]
        # Per-word flat precomputations; see _select_free_vector.
        cols = [self._rows[:, k] for k in range(n_words)]
        pre_or = [(col[cx] | col[cy])[:, None] for col in cols]
        pre_and = [(col[cx] & col[cy])[:, None] for col in cols]
        z_rows = [col[uids][None, :] for col in cols]
        # Weights on one word never exceed 64, so the dtype max is a safe
        # larger-than-any-weight sentinel for the masked candidates.
        bad = np.uint8(255) if n_words == 1 else acc_dtype(np.iinfo(acc_dtype).max)
        per_row = m * (4 * n_words + 2 + (6 if arch else 0)) * 8
        chunk = max(1, self.memory_budget // per_row)
        best_w = None
        best_s = _INF
        best: tuple[int, int, int] | None = None
        for r0 in range(0, len(r_idx), chunk):
            r1 = min(r0 + chunk, len(r_idx))
            w = None
            for po_k, pa_k, z_k in zip(pre_or, pre_and, z_rows):
                po = po_k[r0:r1]
                pa = pa_k[r0:r1]
                wk = np.bitwise_count((po | z_k) & ~(pa & z_k))
                if w is None:
                    w = wk if n_words == 1 else wk.astype(acc_dtype)
                else:
                    w += wk
            mask = (uids[None, :] == ox_r[r0:r1, None]) | (
                uids[None, :] == oy_r[r0:r1, None]
            )
            if arch:
                # Blended score grid; w stays unmasked so the winner's pure
                # Pauli weight can be read back for the trace.
                s = w.astype(np.int64) * ARCH_WEIGHT_SCALE + aw_int * (
                    pen_xy[r0:r1, None]
                    + pen[anc_x[r0:r1, None], anc_z[None, :]]
                    + pen[anc_y[r0:r1, None], anc_z[None, :]]
                )
                s[mask] = _INF
            else:
                w[mask] = bad
                s = w
            flat = int(np.argmin(s))
            s_min = int(s.reshape(-1)[flat])
            if s_min < best_s:
                lr, j = np.unravel_index(flat, s.shape)
                r = r0 + int(lr)
                best_s = s_min
                best_w = int(w[int(lr), int(j)])
                best = (int(cx[r]), int(cy[r]), int(uids[j]))
            if best_s == 0:
                break
        assert best is not None and best_w is not None
        return best, best_w

    # ------------------------------------------------------------------
    # Reduction (paper Fig. 7 step 3)
    # ------------------------------------------------------------------
    def _reduce(self, qubit: int, children: tuple[int, int, int]) -> None:
        self._children.append(children)
        if self.backend == "vector":
            self._reduce_vector(children)
        else:
            self._reduce_scalar(qubit, children)
        if self._arch:
            # Both backends number the new parent n_leaves + qubit.
            self._assign_anchor(self._n_leaves + qubit, children)

    def _reduce_scalar(self, qubit: int, children: tuple[int, int, int]) -> None:
        cx, cy, cz = children
        parent_uid = len(self.nodes)
        parent = TreeNode(qubit=qubit)
        for branch, uid in zip("XYZ", children):
            parent.attach(branch, self.nodes[uid])
        self.nodes.append(parent)
        self._uid_of[id(parent)] = parent_uid
        self.masks.append(self.masks[cx] ^ self.masks[cy] ^ self.masks[cz])
        for uid in children:
            self.working.remove(uid)
            self._in_working[uid] = 0
        self.working.append(parent_uid)
        self._in_working[parent_uid] = 1
        # Maintain the Algorithm-3 maps: the new parent inherits its Z child's
        # Z-descendant; (descZ(X), descZ(Y)) just became a Majorana pair.
        z_desc = self.mdown[cz]
        self.mdown[parent_uid] = z_desc
        self.mup[z_desc] = parent_uid

    def _reduce_vector(self, children: tuple[int, int, int]) -> None:
        cx, cy, cz = children
        parent_uid = self._n_nodes
        self._n_nodes += 1
        self._rows[parent_uid] = (
            self._rows[cx] ^ self._rows[cy] ^ self._rows[cz]
        )
        for uid in children:
            self._parent[uid] = parent_uid
        self._child_z[parent_uid] = cz
        # O(1) swap-removal: the last live entry fills the freed slot.
        for uid in children:
            pos = int(self._wpos[uid])
            last = self._n_working - 1
            last_uid = int(self._warr[last])
            self._warr[pos] = last_uid
            self._wpos[last_uid] = pos
            self._wpos[uid] = -1
            self._n_working = last
            self._in_working_arr[uid] = False
        self._warr[self._n_working] = parent_uid
        self._wpos[parent_uid] = self._n_working
        self._n_working += 1
        self._in_working_arr[parent_uid] = True
        z_desc = int(self._mdown[cz])
        self._mdown[parent_uid] = z_desc
        self._mup[z_desc] = parent_uid

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def run(self) -> TernaryTree:
        if self._done:
            raise RuntimeError("construction already ran")
        if self.backend == "vector":
            select = self._select_paired_vector if self.vacuum else self._select_free_vector
        else:
            self._uid_of = {id(node): uid for uid, node in enumerate(self.nodes)}
            select = self._select_paired if self.vacuum else self._select_free
        for qubit in range(self.n):
            children, w = select(qubit)
            self.trace.append((qubit, children, w))
            self._reduce(qubit, children)
        self._done = True
        if self.backend == "vector":
            tree = tree_from_uid_arrays(self._children, self.n)
        else:
            (root_uid,) = self.working
            tree = TernaryTree(self.nodes[root_uid], self.n)
        tree.validate()
        return tree

    @property
    def step_weights(self) -> list[int]:
        """Greedy per-qubit weights chosen at each step (diagnostics)."""
        return [w for _, _, w in self.trace]

    @property
    def children_uids(self) -> list[tuple[int, int, int]]:
        """Per-qubit (X, Y, Z) child-uid triples under the bottom-up numbering
        consumed by :func:`repro.mappings.tree.tree_from_uid_arrays`."""
        return list(self._children)


def _to_majorana(
    hamiltonian: FermionOperator | MajoranaOperator,
) -> MajoranaOperator:
    if isinstance(hamiltonian, FermionOperator):
        return MajoranaOperator.from_fermion_operator(hamiltonian)
    if isinstance(hamiltonian, MajoranaOperator):
        return hamiltonian
    raise TypeError(f"cannot build HATT from {type(hamiltonian).__name__}")


def hatt_mapping(
    hamiltonian: FermionOperator | MajoranaOperator,
    n_modes: int | None = None,
    vacuum: bool = True,
    cached: bool = True,
    backend: str = "vector",
    memory_budget: int | None = None,
    graph=None,
    arch_weight: float | None = None,
) -> FermionQubitMapping:
    """Compile a Hamiltonian-adaptive ternary-tree fermion-to-qubit mapping.

    Parameters mirror :class:`HattConstruction`; passing ``graph`` selects
    the architecture-adaptive ``hatt-arch`` mode (see the module docstring).
    Returns a :class:`~repro.mappings.FermionQubitMapping` whose string
    ``S_i`` is assigned to Majorana ``M_i`` (leaf ``i`` of the constructed
    tree); the tree itself is attached as ``mapping.tree``.
    """
    majorana = _to_majorana(hamiltonian)
    if n_modes is None:
        n_modes = majorana.n_modes
    construction = HattConstruction(
        majorana,
        n_modes,
        vacuum=vacuum,
        cached=cached,
        backend=backend,
        memory_budget=memory_budget,
        graph=graph,
        arch_weight=arch_weight,
    )
    started = time.perf_counter()
    tree = construction.run()
    from ..obs.metrics import get_registry

    get_registry().histogram(
        "repro_hatt_construction_seconds",
        help="Wall time of HATT tree construction runs.",
    ).observe(time.perf_counter() - started)
    strings = tree.strings_by_leaf_index()
    base = "HATT-arch" if graph is not None else "HATT"
    name = base if vacuum else base + "-unopt"
    mapping = FermionQubitMapping(strings[:-1], name=name, discarded=strings[-1])
    mapping.tree = tree
    mapping.construction = construction
    return mapping
