"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``compare``  Evaluate JW/BK/BTT/HATT on a benchmark Hamiltonian and print a
             Table-I-style row set (``--json`` for machine-readable output).
``map``      Compile one mapping and optionally save it to JSON.
``compile``  Route a single-Trotter-step circuit onto hardware coupling
             graphs and print a Table-IV-style row set (routed CNOT / SWAP /
             depth per mapping kind × architecture).
``batch``    Compile a suite of cases × mappings through the compilation
             service (fingerprint dedup, process-pool fan-out, shared cache).
``serve``    Run the async compilation-service HTTP API (job queue, request
             coalescing, LRU-capped caches).
``cache``    Inspect or clear the content-addressed artifact cache, per
             namespace (``mappings`` / ``circuits``).
``cases``    List the registered Hamiltonian sources and built-in cases
             (``--json`` enumerates the full spec-grammar catalog).

Conventions
-----------
* **JSON envelope** — every ``--json`` path emits the same versioned wrapper
  the HTTP API speaks: ``{"schema": "repro/v1", "command": ..., "result":
  ...}`` (see :mod:`repro.serve.schema`).
* **Engines** — ``--backend`` selects every subsystem's engine in one flag
  (``vector`` / ``scalar`` shorthand, or ``hatt=...,router=...,sim=...``
  pairs; see :class:`repro.backends.BackendConfig`).  The historical
  ``--hatt-backend`` / ``--router-backend`` flags still work as deprecated
  aliases that override the unified value; they warn once per run with the
  exact ``--backend`` replacement string and are scheduled for removal in
  repro 1.1.
* **Cases** — every ``case`` argument is a Hamiltonian source spec resolved
  through the :mod:`repro.sources` registry: built-in generators
  (``hubbard:2x3``, ``neutrino:3x2F``, electronic names), files
  (``npz:path``, ``fcidump:path``), or synthetic ensembles
  (``random:syk:n=24,seed=7``).  ``repro cases`` prints the grammar.
* **Caching** — ``map``/``compare``/``compile`` use the compilation cache
  when ``--cache-dir`` is given or ``$REPRO_CACHE_DIR`` is set (opt-in, so
  ad-hoc runs leave no state behind); ``batch``/``serve``/``cache`` default
  to the standard cache directory (``~/.cache/repro-hatt``).  ``--no-cache``
  always wins.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from .analysis import compare_mappings, format_table
from .backends import BackendConfig
from .circuits.routing import ROUTER_BACKENDS
from .hatt.construction import BACKENDS as HATT_BACKENDS
from .mappings.io import save_mapping
from .serve.schema import envelope
from .sources import build_case, source_catalog
from .service import (
    MAPPING_KINDS,
    ArtifactStore,
    MappingService,
    MappingSpec,
    compile_suite,
    default_cache_dir,
)
from .service.store import NAMESPACES

__all__ = ["main"]


def _load_case(spec: str):
    """Resolve a case spec (kept for backward import compatibility)."""
    return build_case(spec)


def _emit_json(command: str, result, **extra) -> None:
    """Print one versioned envelope — the only JSON emitter in the CLI."""
    print(json.dumps(envelope(command, result, **extra), indent=2, sort_keys=True))


# ----------------------------------------------------------------------
# Shared parent parsers (defined once, inherited by every subcommand)
# ----------------------------------------------------------------------
_warned_deprecated: set[str] = set()

_ALIAS_FIELD = {"--hatt-backend": "hatt", "--router-backend": "router"}

#: The release that drops the legacy per-subsystem flags (README "Deprecation
#: schedule" documents the same date); values given this run accumulate so
#: the warning always shows the exact combined ``--backend`` replacement.
_ALIAS_REMOVAL = "repro 1.1"
_alias_seen: dict[str, str] = {}


class _DeprecatedBackendAction(argparse.Action):
    """Store a legacy per-subsystem engine flag, warning once per run.

    The warning names the removal release and prints the literal
    ``--backend hatt=...,router=...`` string that replaces every legacy
    flag seen so far, ready to paste.
    """

    def __call__(self, parser, namespace, values, option_string=None):
        field = _ALIAS_FIELD.get(option_string, "?")
        _alias_seen[field] = values
        if option_string not in _warned_deprecated:
            _warned_deprecated.add(option_string)
            replacement = ",".join(
                f"{f}={v}" for f, v in sorted(_alias_seen.items())
            )
            print(
                f"repro: warning: {option_string} is deprecated and will be "
                f"removed in {_ALIAS_REMOVAL}; use --backend {replacement}",
                file=sys.stderr,
            )
        setattr(namespace, self.dest, values)


def _json_parent() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument("--json", action="store_true",
                   help="emit a versioned JSON envelope "
                        '({"schema": "repro/v1", ...}) instead of text')
    return p


def _engine_parent(router: bool = False) -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument("--backend", metavar="SPEC", default=None,
                   help="engine selection for every subsystem: 'vector' (fast "
                        "kernels, default), 'scalar' (reference kernels), or "
                        "field=engine pairs like 'hatt=scalar,router=vector' "
                        "(identical artifacts either way)")
    p.add_argument("--hatt-backend", choices=HATT_BACKENDS, default=None,
                   action=_DeprecatedBackendAction,
                   help="deprecated alias for --backend hatt=ENGINE")
    if router:
        p.add_argument("--router-backend", choices=ROUTER_BACKENDS, default=None,
                       action=_DeprecatedBackendAction,
                       help="deprecated alias for --backend router=ENGINE")
    return p


def _cache_parent(opt_in: bool, jobs_help: str | None = None) -> argparse.ArgumentParser:
    default_hint = (
        "default: no cache unless $REPRO_CACHE_DIR is set"
        if opt_in
        else f"default: {default_cache_dir()}"
    )
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument("--cache-dir", metavar="DIR",
                   help=f"compilation-cache directory ({default_hint})")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the compilation cache entirely")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help=jobs_help or "compile with N worker processes "
                        "(cache-backed; ignored without an enabled cache)")
    return p


def _arch_parent() -> argparse.ArgumentParser:
    """--arch/--arch-weight for the hatt-arch construction kind."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument("--arch", default=None, metavar="NAME",
                   help="coupling graph for hatt-arch construction "
                        "(manhattan, montreal, sycamore, ionq_forte)")
    p.add_argument("--arch-weight", type=float, default=None, metavar="W",
                   help="hatt-arch distance-penalty blend (>= 0; "
                        "default: the construction default)")
    return p


def _resolve_backends(args: argparse.Namespace) -> BackendConfig:
    """Merge ``--backend`` with any deprecated per-subsystem aliases."""
    base = (
        BackendConfig.parse(args.backend)
        if getattr(args, "backend", None)
        else BackendConfig()
    )
    return base.with_overrides(
        hatt=getattr(args, "hatt_backend", None),
        router=getattr(args, "router_backend", None),
    )


def _resolve_cache_dir(args: argparse.Namespace, opt_in: bool) -> str | None:
    """The cache root for this invocation, or ``None`` when caching is off."""
    if args.no_cache:
        return None
    if args.cache_dir:
        return args.cache_dir
    if os.environ.get("REPRO_CACHE_DIR"):
        return os.environ["REPRO_CACHE_DIR"]
    return None if opt_in else str(default_cache_dir())


def _make_service(cache_dir: str | None) -> MappingService | None:
    return MappingService(cache_dir=cache_dir) if cache_dir is not None else None


def _prewarm(args: argparse.Namespace, cache_dir: str | None,
             cases: list[str], kinds: list[str], hatt_backend: str,
             arch: str | None = None, arch_weight: float | None = None) -> None:
    """Fan the compiles of an impending serial step across worker processes."""
    if args.jobs > 1 and cache_dir is not None:
        compile_suite(cases, kinds, jobs=args.jobs, cache_dir=cache_dir,
                      hatt_backend=hatt_backend, evaluate=False,
                      arch=arch, arch_weight=arch_weight)


def _check_arch_flags(prog: str, args: argparse.Namespace,
                      wants_arch: bool) -> str | None:
    """Validate the --arch/--arch-weight pairing; returns an error or None.

    ``wants_arch`` — whether any requested mapping kind is ``hatt-arch``
    (the only kind these flags configure).
    """
    from .compile import ARCHITECTURES

    arch = getattr(args, "arch", None)
    if wants_arch and arch is None:
        return f"{prog}: error: hatt-arch needs --arch (one of " \
               f"{', '.join(ARCHITECTURES)})"
    if arch is not None and arch not in ARCHITECTURES:
        return f"{prog}: error: unknown --arch {arch!r} " \
               f"(choose from {', '.join(ARCHITECTURES)})"
    if args.arch_weight is not None and not wants_arch:
        return f"{prog}: error: --arch-weight only applies to hatt-arch"
    return None


# ----------------------------------------------------------------------
# compare
# ----------------------------------------------------------------------
def _cmd_compare(args: argparse.Namespace) -> int:
    from .analysis.pipeline import COMPARE_KINDS

    error = _check_arch_flags("repro compare", args,
                              wants_arch=args.arch is not None)
    if error:
        print(error, file=sys.stderr)
        return 2
    h = build_case(args.case)
    n = h.n_modes
    backends = _resolve_backends(args)
    cache_dir = _resolve_cache_dir(args, opt_in=True)
    kinds = list(COMPARE_KINDS.values()) + (["hatt-unopt"] if args.unopt else [])
    if args.arch is not None:
        kinds.append("hatt-arch")
    _prewarm(args, cache_dir, [args.case], kinds, backends.hatt,
             arch=args.arch, arch_weight=args.arch_weight)
    service = _make_service(cache_dir)
    reports = compare_mappings(
        h,
        n,
        compile_circuit=not args.no_circuit,
        include_unopt=args.unopt,
        service=service,
        backends=backends,
        arch=args.arch,
        arch_weight=args.arch_weight,
    )
    if args.json:
        result = {
            "case": args.case,
            "n_modes": n,
            "reports": {name: r.to_dict() for name, r in reports.items()},
        }
        if service is not None:
            result["cache"] = service.stats()
        _emit_json("compare", result)
        return 0
    rows = [r.row() for r in reports.values()]
    print(format_table(
        f"{args.case} ({n} modes)",
        ["mapping", "Pauli weight", "CNOT", "depth"],
        rows,
    ))
    return 0


# ----------------------------------------------------------------------
# map
# ----------------------------------------------------------------------
def _cmd_map(args: argparse.Namespace) -> int:
    is_arch = args.mapping == "hatt-arch"
    error = _check_arch_flags("repro map", args, wants_arch=is_arch)
    if error is None and not is_arch and args.arch is not None:
        error = "repro map: error: --arch only applies to --mapping hatt-arch"
    if error:
        print(error, file=sys.stderr)
        return 2
    h = build_case(args.case)
    n = h.n_modes
    backends = _resolve_backends(args)
    spec = MappingSpec(
        kind=args.mapping,
        n_modes=n,
        hatt_backend=backends.hatt,
        arch=args.arch if is_arch else None,
        arch_weight=args.arch_weight if is_arch else None,
    )
    cache_dir = _resolve_cache_dir(args, opt_in=True)
    # One task, so --jobs adds no parallelism here, but routing it through
    # the orchestrator keeps the flag honest (and warms the shared cache).
    _prewarm(args, cache_dir, [args.case], [args.mapping], backends.hatt,
             arch=args.arch, arch_weight=args.arch_weight)
    service = _make_service(cache_dir)
    fingerprint = source = None
    if service is not None:
        result = service.get_or_compile(h, spec)
        mapping = result.mapping
        fingerprint, source = result.fingerprint, result.source
        cache_note = f" [{source}, key {fingerprint[:12]}]"
    else:
        from .service import compile_mapping

        mapping = compile_mapping(h, spec)
        cache_note = ""
    weight = int(mapping.map(h).pauli_weight())
    if args.output:
        save_mapping(mapping, args.output)
    if args.json:
        _emit_json("map", {
            "case": args.case,
            "kind": args.mapping,
            "mapping": mapping.name,
            "n_modes": n,
            "n_qubits": mapping.n_qubits,
            "pauli_weight": weight,
            "preserves_vacuum": bool(mapping.preserves_vacuum()),
            "fingerprint": fingerprint,
            "source": source,
            "saved_to": args.output,
        })
        return 0
    print(f"{mapping.name} mapping for {args.case}: {n} modes, "
          f"Pauli weight {weight}, vacuum preserved: "
          f"{mapping.preserves_vacuum()}{cache_note}")
    if args.output:
        print(f"saved to {args.output}")
    if args.show_strings:
        for i, s in enumerate(mapping.strings):
            print(f"  M_{i} -> {s}")
    return 0


# ----------------------------------------------------------------------
# compile
# ----------------------------------------------------------------------
def _cmd_compile(args: argparse.Namespace) -> int:
    from .compile import ARCHITECTURES, CompilationPipeline, CompileOptions

    if args.arch == "all":
        archs = ARCHITECTURES
    elif args.arch in ARCHITECTURES:
        archs = (args.arch,)
    else:
        print(
            f"repro compile: error: unknown --arch {args.arch!r} "
            f"(choose from {', '.join(ARCHITECTURES)} or 'all')",
            file=sys.stderr,
        )
        return 2
    kinds = tuple(k.strip() for k in args.mappings.split(",") if k.strip())
    bad = [k for k in kinds if k not in MAPPING_KINDS]
    if bad or not kinds:
        print(
            f"repro compile: error: invalid --mappings {args.mappings!r} "
            f"(choose from {','.join(MAPPING_KINDS)})",
            file=sys.stderr,
        )
        return 2
    if args.arch_weight is not None and "hatt-arch" not in kinds:
        print("repro compile: error: --arch-weight only applies when "
              "--mappings includes hatt-arch", file=sys.stderr)
        return 2
    h = build_case(args.case)
    backends = _resolve_backends(args)
    cache_dir = _resolve_cache_dir(args, opt_in=True)
    # hatt-arch mappings are per-architecture; the mapping prewarm can only
    # target one graph, so it covers that kind only on single-arch runs
    # (the sweep itself fills the cache for the rest).
    prewarm_kinds = [k for k in kinds if k != "hatt-arch" or len(archs) == 1]
    _prewarm(args, cache_dir, [args.case], prewarm_kinds, backends.hatt,
             arch=archs[0] if len(archs) == 1 else None,
             arch_weight=args.arch_weight)
    service = _make_service(cache_dir)
    opt_kwargs = {"term_order": args.order}
    if args.lookahead is not None:
        opt_kwargs["lookahead"] = args.lookahead
    pipeline = CompilationPipeline(
        service=service,
        options=CompileOptions(**opt_kwargs),
        backends=backends,
        arch_weight=args.arch_weight,
    )
    from .obs.trace import TraceContext, activate

    trace_ctx = TraceContext()
    sweep_started = time.perf_counter()
    with activate(trace_ctx):
        report = pipeline.sweep(h, kinds=kinds, architectures=archs, case=args.case)
    sweep_wall = time.perf_counter() - sweep_started
    if args.json:
        result = report.to_dict()
        result["pipeline"] = dict(pipeline.stats)
        # Pipeline stages are the authoritative breakdown; the finer
        # service-level spans (fingerprint, cache lookups, tree build)
        # overlap them, so they ride in the trace block instead of the
        # stage table — merging both would double-count wall time.
        result["timings"] = pipeline.timings.to_dict()
        result["timings"]["wall_seconds"] = round(sweep_wall, 6)
        result["trace"] = trace_ctx.to_dict()
        result["trace_id"] = trace_ctx.trace_id
        if service is not None:
            result["cache"] = service.stats()
        _emit_json("compile", result)
        return 0
    print(report.table())
    if service is not None:
        hits, routed = pipeline.stats["circuit_hits"], pipeline.stats["routed"]
        print(f"[circuit cache: {hits} hits, {routed} routed]", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# batch
# ----------------------------------------------------------------------
def _cmd_batch(args: argparse.Namespace) -> int:
    kinds = [k.strip() for k in args.mappings.split(",") if k.strip()]
    bad = [k for k in kinds if k not in MAPPING_KINDS]
    if bad or not kinds:
        print(
            f"repro batch: error: invalid --mappings {args.mappings!r} "
            f"(choose from {','.join(MAPPING_KINDS)})",
            file=sys.stderr,
        )
        return 2
    error = _check_arch_flags("repro batch", args,
                              wants_arch="hatt-arch" in kinds)
    if error:
        print(error, file=sys.stderr)
        return 2
    backends = _resolve_backends(args)
    cache_dir = _resolve_cache_dir(args, opt_in=False)
    progress = None
    if not args.json:
        def progress(t):  # noqa: E306
            status = t.source if t.ok else f"error: {t.error}"
            print(f"  {t.case} × {t.kind}: {status}", file=sys.stderr)

    report = compile_suite(
        args.cases,
        kinds,
        jobs=args.jobs,
        cache_dir=cache_dir,
        use_cache=cache_dir is not None,
        hatt_backend=backends.hatt,
        evaluate=not args.no_eval,
        progress=progress,
        arch=args.arch,
        arch_weight=args.arch_weight,
    )
    content = (
        json.dumps(envelope("batch", report.to_dict()), indent=2, sort_keys=True)
        if args.json
        else report.table()
    )
    print(content)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(content + "\n")
    return 1 if report.n_errors else 0


# ----------------------------------------------------------------------
# serve
# ----------------------------------------------------------------------
def _cmd_serve(args: argparse.Namespace) -> int:
    from .obs.logging import configure_logging, set_slow_compile_threshold
    from .serve import EXECUTORS, JobQueue, RetryPolicy, run_server

    configure_logging(fmt=args.log_format, level=args.log_level)
    if args.slow_compile_threshold is not None:
        set_slow_compile_threshold(args.slow_compile_threshold)
    if args.executor not in EXECUTORS:
        print(
            f"repro serve: error: unknown --executor {args.executor!r} "
            f"(choose from {', '.join(EXECUTORS)})",
            file=sys.stderr,
        )
        return 2
    cache_dir = _resolve_cache_dir(args, opt_in=False)
    service_kwargs: dict = {
        "cache_dir": cache_dir,
        "use_disk": cache_dir is not None,
        "max_bytes": args.max_bytes,
    }
    if args.memory_capacity is not None:
        service_kwargs["memory_capacity"] = args.memory_capacity
    service = MappingService(**service_kwargs)
    queue = JobQueue(
        service=service,
        workers=args.jobs,
        executor=args.executor,
        job_timeout=args.job_timeout,
        max_pending=args.max_pending or None,
        retry=RetryPolicy(max_attempts=max(1, args.retries)),
    )

    def ready(server) -> None:
        cache_note = cache_dir if cache_dir is not None else "disabled"
        print(
            f"repro serve: listening on http://{server.host}:{server.port} "
            f"(executor={args.executor}, workers={queue.workers}, "
            f"cache={cache_note})",
            file=sys.stderr,
        )

    try:
        run_server(
            queue,
            host=args.host,
            port=args.port,
            ready=ready,
            drain_timeout=args.drain_timeout,
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        print("repro serve: shutting down", file=sys.stderr)
    finally:
        # cancel_futures settles every still-queued job as cancelled before
        # stopping the pool, so no ``?wait=1`` client is left hanging on a
        # Ctrl-C (run_server's drain normally did this already; after a
        # drain this is an idempotent no-op).
        queue.shutdown(wait=False, cancel_futures=True)
    return 0


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------
def _cache_namespaces(args: argparse.Namespace) -> tuple[str, ...]:
    return NAMESPACES if args.namespace is None else (args.namespace,)


def _cache_list_entry(store: ArtifactStore, namespace: str, entry: dict) -> dict:
    """One inventory row: store accounting + a peek into the document."""
    fp = entry["fingerprint"]
    out = {
        "namespace": namespace,
        "fingerprint": fp,
        "bytes": entry["bytes"],
        "mtime": entry["mtime"],
    }
    if namespace == "mappings":
        prov = store.provenance(fp) or {}
        out.update(
            kind=prov.get("kind", "?"),
            n_modes=prov.get("n_modes", "?"),
            compile_seconds=prov.get("compile_seconds", "?"),
            created_at=prov.get("created_at", "?"),
        )
    else:
        doc = store.get_circuit_report(fp) or {}
        out.update(
            kind=doc.get("kind", "?"),
            architecture=doc.get("architecture", "?"),
            routed_cx=doc.get("routed_cx", "?"),
        )
    return out


def _cmd_cache(args: argparse.Namespace) -> int:
    cache_dir = _resolve_cache_dir(args, opt_in=False)
    if cache_dir is None:
        print("cache disabled (--no-cache)", file=sys.stderr)
        return 2
    store = ArtifactStore(cache_dir)
    namespaces = _cache_namespaces(args)
    if args.cache_command == "stats":
        stats = store.stats()
        stats["namespaces"] = {
            ns: stats["namespaces"][ns] for ns in namespaces
        }
        if args.json:
            from .obs.metrics import get_registry

            stats["metrics"] = get_registry().snapshot()
            _emit_json("cache.stats", stats)
            return 0
        print(f"cache root:  {stats['root']}")
        for ns in namespaces:
            s = stats["namespaces"][ns]
            cap = s["max_bytes"] if s["max_bytes"] is not None else "unbounded"
            print(f"{ns + ':':<12} {s['entries']} entries, {s['bytes']} bytes "
                  f"(cap: {cap}, evictions: {s['evictions']})")
        print(f"total bytes: {sum(s['bytes'] for s in stats['namespaces'].values())}")
        return 0
    if args.cache_command == "list":
        entries = [
            _cache_list_entry(store, ns, e)
            for ns in namespaces
            for e in store.entries(ns)
        ]
        if args.json:
            _emit_json("cache.list", entries)
            return 0
        for ns in namespaces:
            ns_entries = [e for e in entries if e["namespace"] == ns]
            if ns == "mappings":
                headers = ["fingerprint", "kind", "modes", "compile s", "created"]
                rows = [[e["fingerprint"][:16], e["kind"], e["n_modes"],
                         e["compile_seconds"], e["created_at"]] for e in ns_entries]
            else:
                headers = ["fingerprint", "kind", "architecture", "routed CX", "bytes"]
                rows = [[e["fingerprint"][:16], e["kind"], e["architecture"],
                         e["routed_cx"], e["bytes"]] for e in ns_entries]
            print(format_table(
                f"{store.root}/{ns} ({len(ns_entries)} entries, LRU first)",
                headers,
                rows,
            ))
        return 0
    # clear
    removed = {ns: store.clear(ns) for ns in namespaces}
    if args.json:
        _emit_json("cache.clear", {"root": str(store.root), "removed": removed})
        return 0
    scope = ", ".join(f"{n} {ns}" for ns, n in removed.items())
    print(f"removed {scope} entries from {store.root}")
    return 0


# ----------------------------------------------------------------------
# cases
# ----------------------------------------------------------------------
def _cmd_cases(args: argparse.Namespace) -> int:
    from .models.electronic import electronic_case_names

    catalog = source_catalog()
    if args.json:
        _emit_json("cases", {
            # Registered HamiltonianSource families (prefix, grammar,
            # examples, file_backed) — the authoritative spec listing.
            "sources": catalog,
            "electronic": electronic_case_names(),
            # Legacy per-family keys, kept for consumers of the old shape.
            "hubbard": {"pattern": "hubbard:<AxB>",
                        "examples": ["hubbard:2x2", "hubbard:2x3", "hubbard:3x3"]},
            "neutrino": {"pattern": "neutrino:<NxFF>",
                         "examples": ["neutrino:2x2F", "neutrino:3x2F"]},
            "mappings": list(MAPPING_KINDS),
        })
        return 0
    print(format_table(
        "registered Hamiltonian sources (spec grammar)",
        ["prefix", "grammar", "file-backed", "description"],
        [[s["prefix"], s["grammar"], "yes" if s["file_backed"] else "no",
          s["description"]] for s in catalog],
    ))
    print("electronic case names:", ", ".join(electronic_case_names()))
    examples = [ex for s in catalog for ex in s["examples"]]
    print("examples:", ", ".join(examples))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HATT fermion-to-qubit mapping toolkit (HPCA 2025 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    json_parent = _json_parent()
    engine_parent = _engine_parent()
    engine_router_parent = _engine_parent(router=True)
    cache_opt_in = _cache_parent(opt_in=True)
    cache_default = _cache_parent(opt_in=False)
    arch_parent = _arch_parent()

    p_compare = sub.add_parser(
        "compare", help="evaluate all mappings on a case",
        parents=[json_parent, engine_parent, cache_opt_in, arch_parent],
    )
    p_compare.add_argument("case", help="e.g. H2_sto3g, hubbard:2x3, neutrino:3x2F")
    p_compare.add_argument("--no-circuit", action="store_true",
                           help="skip circuit synthesis (Pauli weight only)")
    p_compare.add_argument("--unopt", action="store_true",
                           help="include HATT without vacuum pairing")
    p_compare.set_defaults(func=_cmd_compare)

    p_map = sub.add_parser(
        "map", help="compile one mapping",
        parents=[json_parent, engine_parent, cache_opt_in, arch_parent],
    )
    p_map.add_argument("case")
    p_map.add_argument("--mapping", choices=sorted(MAPPING_KINDS),
                       default="hatt")
    p_map.add_argument("--output", help="save mapping JSON here")
    p_map.add_argument("--show-strings", action="store_true")
    p_map.set_defaults(func=_cmd_map)

    p_compile = sub.add_parser(
        "compile",
        help="route a Trotter step onto hardware architectures (Table IV)",
        parents=[json_parent, engine_router_parent, cache_opt_in],
    )
    p_compile.add_argument("case", help="e.g. H2_sto3g, hubbard:2x3")
    p_compile.add_argument("--arch", default="all", metavar="NAME",
                           help="architecture (manhattan, montreal, sycamore, "
                                "ionq_forte) or 'all' (default)")
    p_compile.add_argument("--mappings", default="jw,bk,btt,hatt", metavar="K1,K2",
                           help=f"comma-separated kinds from {','.join(MAPPING_KINDS)}")
    p_compile.add_argument("--order", choices=("mutual", "lexicographic"),
                           default="mutual",
                           help="Pauli-term ordering pass (mutual-support "
                                "aligned ladders cut CNOTs; default)")
    p_compile.add_argument("--lookahead", type=int, default=None,
                           metavar="N", help="router lookahead horizon "
                           "(default: the router's deep-window default)")
    p_compile.add_argument("--arch-weight", type=float, default=None, metavar="W",
                           help="hatt-arch distance-penalty blend (>= 0; only "
                                "with --mappings including hatt-arch)")
    p_compile.set_defaults(func=_cmd_compile)

    p_batch = sub.add_parser(
        "batch",
        help="compile a suite of cases × mappings through the service",
        parents=[json_parent, engine_parent, cache_default, arch_parent],
    )
    p_batch.add_argument("cases", nargs="+",
                         help="case specs (see `repro cases`)")
    p_batch.add_argument("--mappings", default="hatt", metavar="K1,K2",
                         help=f"comma-separated kinds from {','.join(MAPPING_KINDS)} "
                              "(default: hatt)")
    p_batch.add_argument("--no-eval", action="store_true",
                         help="skip per-task Pauli-weight evaluation")
    p_batch.add_argument("--output", metavar="FILE",
                         help="also write the report here")
    p_batch.set_defaults(func=_cmd_batch)

    p_serve = sub.add_parser(
        "serve",
        help="run the compilation-service HTTP API",
        parents=[_cache_parent(opt_in=False,
                               jobs_help="executor width: N worker threads or "
                                         "processes (default: 1)")],
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8035,
                         help="bind port; 0 picks a free port (default: 8035)")
    p_serve.add_argument("--executor", default="thread", metavar="KIND",
                         help="job executor: 'thread' (shared memory LRU, "
                              "default) or 'process' (fork pool over the "
                              "shared disk store)")
    p_serve.add_argument("--memory-capacity", type=int, default=None, metavar="N",
                         help="memory-LRU capacity in mappings "
                              "(default: the service default)")
    p_serve.add_argument("--max-bytes", type=int, default=None, metavar="BYTES",
                         help="disk LRU cap applied to each artifact namespace "
                              "(default: unbounded)")
    p_serve.add_argument("--job-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-attempt execution deadline for every job; "
                              "requests may set a 'deadline' of their own "
                              "(default: no limit)")
    p_serve.add_argument("--max-pending", type=int, default=256, metavar="N",
                         help="load-shedding cap on live (queued+running) "
                              "jobs; past it cold submissions get 503 + "
                              "Retry-After; 0 disables (default: 256)")
    p_serve.add_argument("--retries", type=int, default=3, metavar="N",
                         help="max attempts per job for retryable failures "
                              "(worker crash, transient store I/O); 1 "
                              "disables retry (default: 3)")
    p_serve.add_argument("--log-format", choices=("text", "json"),
                         default="text",
                         help="log output format (json = one JSON object "
                              "per line, with trace_id fields)")
    p_serve.add_argument("--log-level", default="info", metavar="LEVEL",
                         choices=("debug", "info", "warning", "error"),
                         help="log verbosity (default: info)")
    p_serve.add_argument("--slow-compile-threshold", type=float, default=None,
                         metavar="SECONDS",
                         help="warn (with trace_id) when a compile exceeds "
                              "this many seconds (default: "
                              "$REPRO_SLOW_COMPILE_SECONDS or 30)")
    p_serve.add_argument("--drain-timeout", type=float, default=30.0,
                         metavar="SECONDS",
                         help="graceful-shutdown budget: on SIGTERM/SIGINT "
                              "in-flight jobs get this long to settle before "
                              "being cancelled (default: 30)")
    p_serve.set_defaults(func=_cmd_serve)

    p_cache = sub.add_parser(
        "cache", help="inspect or clear the artifact cache",
        parents=[json_parent, cache_default],
    )
    p_cache.add_argument("cache_command", choices=["stats", "list", "clear"])
    p_cache.add_argument("--namespace", choices=list(NAMESPACES), default=None,
                         help="restrict to one artifact namespace "
                              "(default: all namespaces)")
    p_cache.set_defaults(func=_cmd_cache)

    p_cases = sub.add_parser(
        "cases", help="list built-in benchmark cases", parents=[json_parent],
    )
    p_cases.set_defaults(func=_cmd_cases)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
