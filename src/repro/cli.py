"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``compare``  Evaluate JW/BK/BTT/HATT on a benchmark Hamiltonian and print a
             Table-I-style row set.
``map``      Compile one mapping and optionally save it to JSON.
``cases``    List the built-in benchmark Hamiltonians.
"""

from __future__ import annotations

import argparse
import sys

from .analysis import compare_mappings, format_table
from .fermion import FermionOperator
from .hatt import hatt_mapping
from .hatt.construction import BACKENDS as HATT_BACKENDS
from .mappings import (
    balanced_ternary_tree,
    bravyi_kitaev,
    jordan_wigner,
    parity_mapping,
)
from .mappings.io import save_mapping

__all__ = ["main"]


def _load_case(spec: str) -> FermionOperator:
    """Resolve a case spec: ``hubbard:2x3``, ``neutrino:3x2F``, or an
    electronic case name such as ``H2_sto3g``."""
    if spec.startswith("hubbard:"):
        from .models import hubbard_case

        return hubbard_case(spec.split(":", 1)[1])
    if spec.startswith("neutrino:"):
        from .models import neutrino_case

        return neutrino_case(spec.split(":", 1)[1])
    from .models.electronic import electronic_case

    return electronic_case(spec).hamiltonian


_MAPPING_FACTORIES = {
    "jw": lambda h, n, backend: jordan_wigner(n),
    "bk": lambda h, n, backend: bravyi_kitaev(n),
    "btt": lambda h, n, backend: balanced_ternary_tree(n),
    "parity": lambda h, n, backend: parity_mapping(n),
    "hatt": lambda h, n, backend: hatt_mapping(h, n_modes=n, backend=backend),
    "hatt-unopt": lambda h, n, backend: hatt_mapping(
        h, n_modes=n, vacuum=False, backend=backend
    ),
}


def _cmd_compare(args: argparse.Namespace) -> int:
    h = _load_case(args.case)
    n = h.n_modes
    reports = compare_mappings(
        h,
        n,
        compile_circuit=not args.no_circuit,
        include_unopt=args.unopt,
        hatt_backend=args.hatt_backend,
    )
    rows = [r.row() for r in reports.values()]
    print(format_table(
        f"{args.case} ({n} modes)",
        ["mapping", "Pauli weight", "CNOT", "depth"],
        rows,
    ))
    return 0


def _cmd_map(args: argparse.Namespace) -> int:
    h = _load_case(args.case)
    n = h.n_modes
    factory = _MAPPING_FACTORIES[args.mapping]
    mapping = factory(h, n, args.hatt_backend)
    weight = mapping.map(h).pauli_weight()
    print(f"{mapping.name} mapping for {args.case}: {n} modes, "
          f"Pauli weight {weight}, vacuum preserved: "
          f"{mapping.preserves_vacuum()}")
    if args.output:
        save_mapping(mapping, args.output)
        print(f"saved to {args.output}")
    if args.show_strings:
        for i, s in enumerate(mapping.strings):
            print(f"  M_{i} -> {s}")
    return 0


def _cmd_cases(args: argparse.Namespace) -> int:
    from .models.electronic import electronic_case_names

    print("electronic:", ", ".join(electronic_case_names()))
    print("hubbard:    hubbard:<AxB>   (paper Table II geometries, e.g. hubbard:2x3)")
    print("neutrino:   neutrino:<NxFF> (paper Table III cases, e.g. neutrino:3x2F)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HATT fermion-to-qubit mapping toolkit (HPCA 2025 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compare = sub.add_parser("compare", help="evaluate all mappings on a case")
    p_compare.add_argument("case", help="e.g. H2_sto3g, hubbard:2x3, neutrino:3x2F")
    p_compare.add_argument("--no-circuit", action="store_true",
                           help="skip circuit synthesis (Pauli weight only)")
    p_compare.add_argument("--unopt", action="store_true",
                           help="include HATT without vacuum pairing")
    p_compare.add_argument("--hatt-backend", choices=HATT_BACKENDS,
                           default="vector",
                           help="HATT construction engine (identical output; "
                                "'vector' is the fast packed-bitmask kernel)")
    p_compare.set_defaults(func=_cmd_compare)

    p_map = sub.add_parser("map", help="compile one mapping")
    p_map.add_argument("case")
    p_map.add_argument("--mapping", choices=sorted(_MAPPING_FACTORIES),
                       default="hatt")
    p_map.add_argument("--hatt-backend", choices=HATT_BACKENDS,
                       default="vector",
                       help="HATT construction engine (ignored for non-HATT "
                            "mappings)")
    p_map.add_argument("--output", help="save mapping JSON here")
    p_map.add_argument("--show-strings", action="store_true")
    p_map.set_defaults(func=_cmd_map)

    p_cases = sub.add_parser("cases", help="list built-in benchmark cases")
    p_cases.set_defaults(func=_cmd_cases)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
