"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``compare``  Evaluate JW/BK/BTT/HATT on a benchmark Hamiltonian and print a
             Table-I-style row set (``--json`` for machine-readable output).
``map``      Compile one mapping and optionally save it to JSON.
``compile``  Route a single-Trotter-step circuit onto hardware coupling
             graphs and print a Table-IV-style row set (routed CNOT / SWAP /
             depth per mapping kind × architecture).
``batch``    Compile a suite of cases × mappings through the compilation
             service (fingerprint dedup, process-pool fan-out, shared cache).
``cache``    Inspect or clear the content-addressed mapping cache.
``cases``    List the built-in benchmark Hamiltonians.

Caching
-------
``map``/``compare`` use the compilation cache when ``--cache-dir`` is given
or ``$REPRO_CACHE_DIR`` is set (opt-in, so ad-hoc runs leave no state
behind); ``batch`` and ``cache`` default to the standard cache directory
(``~/.cache/repro-hatt``).  ``--no-cache`` always wins.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .analysis import compare_mappings, format_table
from .hatt.construction import BACKENDS as HATT_BACKENDS
from .mappings.io import save_mapping
from .models import load_case
from .service import (
    MAPPING_KINDS,
    ArtifactStore,
    MappingService,
    MappingSpec,
    compile_suite,
    default_cache_dir,
)

__all__ = ["main"]


def _load_case(spec: str):
    """Resolve a case spec (kept for backward import compatibility)."""
    return load_case(spec)


# ----------------------------------------------------------------------
# Cache plumbing shared by map/compare/batch/cache
# ----------------------------------------------------------------------
def _add_cache_args(parser: argparse.ArgumentParser, opt_in: bool) -> None:
    default_hint = (
        "default: no cache unless $REPRO_CACHE_DIR is set"
        if opt_in
        else f"default: {default_cache_dir()}"
    )
    parser.add_argument("--cache-dir", metavar="DIR",
                        help=f"compilation-cache directory ({default_hint})")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the compilation cache entirely")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="compile with N worker processes (cache-backed; "
                             "ignored without an enabled cache)")


def _resolve_cache_dir(args: argparse.Namespace, opt_in: bool) -> str | None:
    """The cache root for this invocation, or ``None`` when caching is off."""
    if args.no_cache:
        return None
    if args.cache_dir:
        return args.cache_dir
    if os.environ.get("REPRO_CACHE_DIR"):
        return os.environ["REPRO_CACHE_DIR"]
    return None if opt_in else str(default_cache_dir())


def _make_service(cache_dir: str | None) -> MappingService | None:
    return MappingService(cache_dir=cache_dir) if cache_dir is not None else None


def _prewarm(args: argparse.Namespace, cache_dir: str | None,
             cases: list[str], kinds: list[str]) -> None:
    """Fan the compiles of an impending serial step across worker processes."""
    if args.jobs > 1 and cache_dir is not None:
        compile_suite(cases, kinds, jobs=args.jobs, cache_dir=cache_dir,
                      hatt_backend=args.hatt_backend, evaluate=False)


# ----------------------------------------------------------------------
# compare
# ----------------------------------------------------------------------
def _cmd_compare(args: argparse.Namespace) -> int:
    from .analysis.pipeline import COMPARE_KINDS

    h = load_case(args.case)
    n = h.n_modes
    cache_dir = _resolve_cache_dir(args, opt_in=True)
    kinds = list(COMPARE_KINDS.values()) + (["hatt-unopt"] if args.unopt else [])
    _prewarm(args, cache_dir, [args.case], kinds)
    service = _make_service(cache_dir)
    reports = compare_mappings(
        h,
        n,
        compile_circuit=not args.no_circuit,
        include_unopt=args.unopt,
        hatt_backend=args.hatt_backend,
        service=service,
    )
    if args.json:
        payload = {
            "case": args.case,
            "n_modes": n,
            "reports": {name: r.to_dict() for name, r in reports.items()},
        }
        if service is not None:
            payload["cache"] = service.stats()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    rows = [r.row() for r in reports.values()]
    print(format_table(
        f"{args.case} ({n} modes)",
        ["mapping", "Pauli weight", "CNOT", "depth"],
        rows,
    ))
    return 0


# ----------------------------------------------------------------------
# map
# ----------------------------------------------------------------------
def _cmd_map(args: argparse.Namespace) -> int:
    h = load_case(args.case)
    n = h.n_modes
    spec = MappingSpec(kind=args.mapping, n_modes=n, hatt_backend=args.hatt_backend)
    cache_dir = _resolve_cache_dir(args, opt_in=True)
    # One task, so --jobs adds no parallelism here, but routing it through
    # the orchestrator keeps the flag honest (and warms the shared cache).
    _prewarm(args, cache_dir, [args.case], [args.mapping])
    service = _make_service(cache_dir)
    if service is not None:
        result = service.get_or_compile(h, spec)
        mapping = result.mapping
        cache_note = f" [{result.source}, key {result.fingerprint[:12]}]"
    else:
        from .service import compile_mapping

        mapping = compile_mapping(h, spec)
        cache_note = ""
    weight = mapping.map(h).pauli_weight()
    print(f"{mapping.name} mapping for {args.case}: {n} modes, "
          f"Pauli weight {weight}, vacuum preserved: "
          f"{mapping.preserves_vacuum()}{cache_note}")
    if args.output:
        save_mapping(mapping, args.output)
        print(f"saved to {args.output}")
    if args.show_strings:
        for i, s in enumerate(mapping.strings):
            print(f"  M_{i} -> {s}")
    return 0


# ----------------------------------------------------------------------
# compile
# ----------------------------------------------------------------------
def _cmd_compile(args: argparse.Namespace) -> int:
    from .compile import ARCHITECTURES, CompilationPipeline, CompileOptions

    if args.arch == "all":
        archs = ARCHITECTURES
    elif args.arch in ARCHITECTURES:
        archs = (args.arch,)
    else:
        print(
            f"repro compile: error: unknown --arch {args.arch!r} "
            f"(choose from {', '.join(ARCHITECTURES)} or 'all')",
            file=sys.stderr,
        )
        return 2
    kinds = tuple(k.strip() for k in args.mappings.split(",") if k.strip())
    bad = [k for k in kinds if k not in MAPPING_KINDS]
    if bad or not kinds:
        print(
            f"repro compile: error: invalid --mappings {args.mappings!r} "
            f"(choose from {','.join(MAPPING_KINDS)})",
            file=sys.stderr,
        )
        return 2
    h = load_case(args.case)
    cache_dir = _resolve_cache_dir(args, opt_in=True)
    _prewarm(args, cache_dir, [args.case], list(kinds))
    service = _make_service(cache_dir)
    opt_kwargs = {"term_order": args.order, "router_backend": args.router_backend}
    if args.lookahead is not None:
        opt_kwargs["lookahead"] = args.lookahead
    pipeline = CompilationPipeline(
        service=service,
        options=CompileOptions(**opt_kwargs),
        hatt_backend=args.hatt_backend,
    )
    report = pipeline.sweep(h, kinds=kinds, architectures=archs, case=args.case)
    if args.json:
        payload = report.to_dict()
        payload["pipeline"] = dict(pipeline.stats)
        if service is not None:
            payload["cache"] = service.stats()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(report.table())
    if service is not None:
        hits, routed = pipeline.stats["circuit_hits"], pipeline.stats["routed"]
        print(f"[circuit cache: {hits} hits, {routed} routed]", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# batch
# ----------------------------------------------------------------------
def _cmd_batch(args: argparse.Namespace) -> int:
    kinds = [k.strip() for k in args.mappings.split(",") if k.strip()]
    bad = [k for k in kinds if k not in MAPPING_KINDS]
    if bad or not kinds:
        print(
            f"repro batch: error: invalid --mappings {args.mappings!r} "
            f"(choose from {','.join(MAPPING_KINDS)})",
            file=sys.stderr,
        )
        return 2
    cache_dir = _resolve_cache_dir(args, opt_in=False)
    progress = None
    if not args.json:
        def progress(t):  # noqa: E306
            status = t.source if t.ok else f"error: {t.error}"
            print(f"  {t.case} × {t.kind}: {status}", file=sys.stderr)

    report = compile_suite(
        args.cases,
        kinds,
        jobs=args.jobs,
        cache_dir=cache_dir,
        use_cache=cache_dir is not None,
        hatt_backend=args.hatt_backend,
        evaluate=not args.no_eval,
        progress=progress,
    )
    content = (
        json.dumps(report.to_dict(), indent=2, sort_keys=True)
        if args.json
        else report.table()
    )
    print(content)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(content + "\n")
    return 1 if report.n_errors else 0


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------
def _cmd_cache(args: argparse.Namespace) -> int:
    cache_dir = _resolve_cache_dir(args, opt_in=False)
    if cache_dir is None:
        print("cache disabled (--no-cache)", file=sys.stderr)
        return 2
    store = ArtifactStore(cache_dir)
    if args.cache_command == "stats":
        stats = store.stats()
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True))
        else:
            print(f"cache root:  {stats['root']}")
            print(f"mappings:    {stats['n_mappings']}")
            print(f"circuits:    {stats['n_circuits']}")
            print(f"total bytes: {stats['total_bytes']}")
        return 0
    if args.cache_command == "list":
        entries = []
        for fp in store.fingerprints():
            prov = store.provenance(fp) or {}
            entries.append({
                "fingerprint": fp,
                "kind": prov.get("kind", "?"),
                "n_modes": prov.get("n_modes", "?"),
                "compile_seconds": prov.get("compile_seconds", "?"),
                "created_at": prov.get("created_at", "?"),
            })
        if args.json:
            print(json.dumps(entries, indent=2, sort_keys=True))
        else:
            rows = [[e["fingerprint"][:16], e["kind"], e["n_modes"],
                     e["compile_seconds"], e["created_at"]] for e in entries]
            print(format_table(
                f"{store.root} ({len(entries)} mappings)",
                ["fingerprint", "kind", "modes", "compile s", "created"],
                rows,
            ))
        return 0
    # clear
    n = store.clear()
    print(f"removed {n} cached artifacts from {store.root}")
    return 0


# ----------------------------------------------------------------------
# cases
# ----------------------------------------------------------------------
def _cmd_cases(args: argparse.Namespace) -> int:
    from .models.electronic import electronic_case_names

    if args.json:
        print(json.dumps({
            "electronic": electronic_case_names(),
            "hubbard": {"pattern": "hubbard:<AxB>",
                        "examples": ["hubbard:2x2", "hubbard:2x3", "hubbard:3x3"]},
            "neutrino": {"pattern": "neutrino:<NxFF>",
                         "examples": ["neutrino:2x2F", "neutrino:3x2F"]},
            "mappings": list(MAPPING_KINDS),
        }, indent=2, sort_keys=True))
        return 0
    print("electronic:", ", ".join(electronic_case_names()))
    print("hubbard:    hubbard:<AxB>   (paper Table II geometries, e.g. hubbard:2x3)")
    print("neutrino:   neutrino:<NxFF> (paper Table III cases, e.g. neutrino:3x2F)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HATT fermion-to-qubit mapping toolkit (HPCA 2025 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compare = sub.add_parser("compare", help="evaluate all mappings on a case")
    p_compare.add_argument("case", help="e.g. H2_sto3g, hubbard:2x3, neutrino:3x2F")
    p_compare.add_argument("--no-circuit", action="store_true",
                           help="skip circuit synthesis (Pauli weight only)")
    p_compare.add_argument("--unopt", action="store_true",
                           help="include HATT without vacuum pairing")
    p_compare.add_argument("--hatt-backend", choices=HATT_BACKENDS,
                           default="vector",
                           help="HATT construction engine (identical output; "
                                "'vector' is the fast packed-bitmask kernel)")
    p_compare.add_argument("--json", action="store_true",
                           help="emit machine-readable JSON instead of a table")
    _add_cache_args(p_compare, opt_in=True)
    p_compare.set_defaults(func=_cmd_compare)

    p_map = sub.add_parser("map", help="compile one mapping")
    p_map.add_argument("case")
    p_map.add_argument("--mapping", choices=sorted(MAPPING_KINDS),
                       default="hatt")
    p_map.add_argument("--hatt-backend", choices=HATT_BACKENDS,
                       default="vector",
                       help="HATT construction engine (ignored for non-HATT "
                            "mappings)")
    p_map.add_argument("--output", help="save mapping JSON here")
    p_map.add_argument("--show-strings", action="store_true")
    _add_cache_args(p_map, opt_in=True)
    p_map.set_defaults(func=_cmd_map)

    p_compile = sub.add_parser(
        "compile",
        help="route a Trotter step onto hardware architectures (Table IV)",
    )
    p_compile.add_argument("case", help="e.g. H2_sto3g, hubbard:2x3")
    p_compile.add_argument("--arch", default="all", metavar="NAME",
                           help="architecture (manhattan, montreal, sycamore, "
                                "ionq_forte) or 'all' (default)")
    p_compile.add_argument("--mappings", default="jw,bk,btt,hatt", metavar="K1,K2",
                           help=f"comma-separated kinds from {','.join(MAPPING_KINDS)}")
    p_compile.add_argument("--order", choices=("mutual", "lexicographic"),
                           default="mutual",
                           help="Pauli-term ordering pass (mutual-support "
                                "aligned ladders cut CNOTs; default)")
    p_compile.add_argument("--lookahead", type=int, default=None,
                           metavar="N", help="router lookahead horizon "
                           "(default: the router's deep-window default)")
    p_compile.add_argument("--router-backend", choices=("vector", "scalar"),
                           default="vector",
                           help="routing engine (bit-identical output; "
                                "'vector' is the batched-kernel engine)")
    p_compile.add_argument("--hatt-backend", choices=HATT_BACKENDS,
                           default="vector")
    p_compile.add_argument("--json", action="store_true",
                           help="emit machine-readable JSON instead of a table")
    _add_cache_args(p_compile, opt_in=True)
    p_compile.set_defaults(func=_cmd_compile)

    p_batch = sub.add_parser(
        "batch",
        help="compile a suite of cases × mappings through the service",
    )
    p_batch.add_argument("cases", nargs="+",
                         help="case specs (see `repro cases`)")
    p_batch.add_argument("--mappings", default="hatt", metavar="K1,K2",
                         help=f"comma-separated kinds from {','.join(MAPPING_KINDS)} "
                              "(default: hatt)")
    p_batch.add_argument("--hatt-backend", choices=HATT_BACKENDS, default="vector")
    p_batch.add_argument("--json", action="store_true",
                         help="emit the suite report as JSON")
    p_batch.add_argument("--no-eval", action="store_true",
                         help="skip per-task Pauli-weight evaluation")
    p_batch.add_argument("--output", metavar="FILE",
                         help="also write the report here")
    _add_cache_args(p_batch, opt_in=False)
    p_batch.set_defaults(func=_cmd_batch)

    p_cache = sub.add_parser("cache", help="inspect or clear the mapping cache")
    p_cache.add_argument("cache_command", choices=["stats", "list", "clear"])
    p_cache.add_argument("--json", action="store_true")
    p_cache.add_argument("--cache-dir", metavar="DIR",
                         help=f"cache directory (default: {default_cache_dir()})")
    p_cache.add_argument("--no-cache", action="store_true",
                         help=argparse.SUPPRESS)
    p_cache.set_defaults(func=_cmd_cache)

    p_cases = sub.add_parser("cases", help="list built-in benchmark cases")
    p_cases.add_argument("--json", action="store_true",
                         help="emit the case registry as JSON")
    p_cases.set_defaults(func=_cmd_cases)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
