"""Unified engine selection across the stack (``BackendConfig``).

Three subsystems ship paired engines — a fast vectorized kernel plus a
bit-identical (or statistically-equivalent) reference — each historically
selected through its own knob:

* HATT construction: ``backend="vector" | "scalar"``
  (:mod:`repro.hatt.construction`);
* circuit routing: ``backend="vector" | "scalar"``
  (:mod:`repro.circuits.routing`);
* noisy simulation: ``backend="batched" | "scalar"``
  (:mod:`repro.sim.noise`).

``BackendConfig`` names all three in one value that plumbs through
:func:`repro.analysis.pipeline.compare_mappings`,
:class:`repro.compile.pipeline.CompilationPipeline`, the serve job queue,
and the CLI's single ``--backend`` flag (the per-subsystem
``--hatt-backend`` / ``--router-backend`` flags remain as deprecated
aliases).  Engine choice is never cache-key material — every pair of engines
produces identical artifacts, enforced by the property suites.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "BackendConfig",
    "HATT_BACKENDS",
    "ROUTER_BACKENDS",
    "SIM_BACKENDS",
]

from .circuits.routing import ROUTER_BACKENDS
from .hatt.construction import BACKENDS as HATT_BACKENDS

#: Trajectory engines of :func:`repro.sim.noisy_expectations` (the module
#: dispatches on the literal, with no exported tuple of its own).
SIM_BACKENDS = ("batched", "scalar")

_FIELDS = {
    "hatt": HATT_BACKENDS,
    "router": ROUTER_BACKENDS,
    "sim": SIM_BACKENDS,
}

#: Bare ``--backend vector|scalar`` shorthand per field (``vector`` means
#: "the fast engine", which the sim stack calls ``batched``).
_SHORTHAND = {
    "vector": {"hatt": "vector", "router": "vector", "sim": "batched"},
    "scalar": {"hatt": "scalar", "router": "scalar", "sim": "scalar"},
}


@dataclass(frozen=True)
class BackendConfig:
    """One engine choice per subsystem; defaults are the fast kernels."""

    hatt: str = "vector"
    router: str = "vector"
    sim: str = "batched"

    def __post_init__(self):
        for name, allowed in _FIELDS.items():
            value = getattr(self, name)
            if value not in allowed:
                raise ValueError(
                    f"unknown {name} backend {value!r}; expected one of {allowed}"
                )

    @classmethod
    def parse(cls, text: str) -> "BackendConfig":
        """Parse the CLI's ``--backend`` spec.

        Either a bare shorthand applied to every subsystem (``"vector"`` /
        ``"scalar"``) or comma-separated ``field=engine`` pairs, e.g.
        ``"hatt=scalar,router=vector"``; unnamed fields keep their defaults.
        """
        text = text.strip()
        if "=" not in text:
            if text not in _SHORTHAND:
                raise ValueError(
                    f"unknown backend shorthand {text!r}; expected one of "
                    f"{tuple(_SHORTHAND)} or field=engine pairs "
                    f"(fields: {tuple(_FIELDS)})"
                )
            return cls(**_SHORTHAND[text])
        values: dict[str, str] = {}
        for pair in text.split(","):
            pair = pair.strip()
            if not pair:
                continue
            field, sep, engine = pair.partition("=")
            field, engine = field.strip(), engine.strip()
            if not sep or field not in _FIELDS:
                raise ValueError(
                    f"bad backend spec element {pair!r}; expected field=engine "
                    f"with field in {tuple(_FIELDS)}"
                )
            values[field] = engine
        return cls(**values)

    def with_overrides(self, **overrides: str | None) -> "BackendConfig":
        """A copy with the non-``None`` overrides applied (CLI alias merging)."""
        given = {k: v for k, v in overrides.items() if v is not None}
        return replace(self, **given) if given else self
