"""Content-addressed artifact store for compiled mappings.

Layout (one directory per fingerprint, sharded by the first two hex chars so
no single directory grows unbounded)::

    <root>/mappings/v1/<fp[:2]>/<fp>/mapping.json  # schema-v2 mapping + provenance
    <root>/mappings/v1/<fp[:2]>/<fp>/report.json   # optional evaluation report
    <root>/circuits/v1/<fp[:2]>/<fp>/metrics.json  # routed-circuit metrics

The root defaults to ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-hatt``.  The
``mappings/`` namespace keeps the store disjoint from the chemistry integral
cache (``<root>/chem/``), which honors the same environment variable; the
``circuits/`` namespace holds the hardware-compilation pipeline's artifacts
(keyed by mapping fingerprint × architecture × compile options — see
:mod:`repro.compile.pipeline`).

Both namespaces are **LRU-capped**: construct with ``max_bytes`` (one cap
applied to each namespace, or a ``{"mappings": ..., "circuits": ...}`` dict)
and every put evicts least-recently-used entries until the namespace fits.
Recency is the primary document's mtime — refreshed on every successful read
— so a hot entry survives churn that flushes cold ones.  Recency stamps are
written explicitly with strictly increasing nanosecond timestamps
(:meth:`ArtifactStore._next_recency_ns`): relying on the filesystem's own
mtime would collapse every touch within one second on coarse-granularity
filesystems into a tie, making "least recently used" arbitrary under churn.
The cap is strict: a namespace never exceeds its budget after a put, even
if that means evicting the entry just written.

Durability rules:

* **atomic writes** — documents are written to a same-directory temp file
  and ``os.replace``-d into place, so concurrent writers (batch worker
  processes racing on one fingerprint) and crashes can never expose a
  half-written artifact; last writer wins with identical content, because
  the fingerprint pins the content.
* **corruption-safe loads** — a torn, truncated, or hand-edited document
  loads as a *miss*, never an exception: the store quarantines (unlinks) the
  bad file and counts it in ``stats()["corrupt_dropped"]``, and the service
  recompiles and repairs the entry on the next put.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from pathlib import Path

from ..mappings.base import FermionQubitMapping
from ..mappings.io import mapping_from_dict, mapping_to_dict
from ..obs.metrics import get_registry

__all__ = ["ArtifactStore", "NAMESPACES", "default_cache_dir"]

#: On-disk layout version; bump on incompatible directory-structure changes.
_LAYOUT = "v1"

_MAPPING_DOC = "mapping.json"
_REPORT_DOC = "report.json"
_CIRCUIT_DOC = "metrics.json"

#: Artifact namespaces, in display order.  The first document of each
#: namespace is *primary*: its presence defines the entry, its mtime is the
#: entry's LRU recency.
NAMESPACES = ("mappings", "circuits")

_NS_DOCS = {"mappings": (_MAPPING_DOC, _REPORT_DOC), "circuits": (_CIRCUIT_DOC,)}

#: Exceptions that mean "this document's *content* is unusable" — JSON syntax
#: errors, missing/mistyped keys, inconsistent mapping content (io.py
#: validation).  These quarantine the file.  I/O errors (permissions, EIO,
#: stale NFS) are treated as transient misses instead: the artifact may be
#: perfectly valid, so it must not be deleted.
_CORRUPTION = (json.JSONDecodeError, KeyError, TypeError, ValueError)


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro-hatt"


def _normalize_caps(max_bytes) -> dict[str, int | None]:
    if max_bytes is None:
        return {ns: None for ns in NAMESPACES}
    if isinstance(max_bytes, dict):
        bad = set(max_bytes) - set(NAMESPACES)
        if bad:
            raise ValueError(f"unknown cache namespaces {sorted(bad)!r}")
        return {
            ns: (int(max_bytes[ns]) if max_bytes.get(ns) is not None else None)
            for ns in NAMESPACES
        }
    return {ns: int(max_bytes) for ns in NAMESPACES}


class ArtifactStore:
    """Disk half of the compilation cache; see module docstring for layout.

    Parameters
    ----------
    root:
        Store root; defaults to ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-hatt``.
    max_bytes:
        LRU cap per namespace — an int (applied to each namespace
        independently), a ``{namespace: bytes}`` dict, or ``None`` (unbounded,
        the default).
    """

    def __init__(self, root: str | Path | None = None, max_bytes=None, registry=None):
        self.root = Path(root).expanduser() if root is not None else default_cache_dir()
        self.registry = registry if registry is not None else get_registry()
        self._bases = {ns: self.root / ns / _LAYOUT for ns in NAMESPACES}
        self._caps = _normalize_caps(max_bytes)
        self._evictions = {ns: 0 for ns in NAMESPACES}
        self._corrupt_dropped = 0
        self._recency_lock = threading.Lock()
        self._last_recency_ns = 0

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @staticmethod
    def _check_fingerprint(fingerprint: str) -> str:
        if len(fingerprint) < 8 or not all(c in "0123456789abcdef" for c in fingerprint):
            raise ValueError(f"malformed fingerprint {fingerprint!r}")
        return fingerprint

    def _ns_dir(self, namespace: str, fingerprint: str) -> Path:
        fp = self._check_fingerprint(fingerprint)
        return self._bases[namespace] / fp[:2] / fp

    def _entry_dir(self, fingerprint: str) -> Path:
        return self._ns_dir("mappings", fingerprint)

    def _circuit_dir(self, fingerprint: str) -> Path:
        return self._ns_dir("circuits", fingerprint)

    def mapping_path(self, fingerprint: str) -> Path:
        return self._entry_dir(fingerprint) / _MAPPING_DOC

    def report_path(self, fingerprint: str) -> Path:
        return self._entry_dir(fingerprint) / _REPORT_DOC

    def circuit_path(self, fingerprint: str) -> Path:
        return self._circuit_dir(fingerprint) / _CIRCUIT_DOC

    def _primary_path(self, namespace: str, fingerprint: str) -> Path:
        return self._ns_dir(namespace, fingerprint) / _NS_DOCS[namespace][0]

    # ------------------------------------------------------------------
    # Raw document I/O
    # ------------------------------------------------------------------
    def _next_recency_ns(self) -> int:
        """A strictly increasing nanosecond recency stamp.

        ``st_mtime`` alone is unusable as an LRU clock: some filesystems
        round it to whole seconds, so every document touched within one
        second ties and eviction order becomes arbitrary.  Stamping each
        write/read-hit with ``max(now_ns, last + 1)`` makes recency a total
        order regardless of filesystem timestamp granularity.
        """
        with self._recency_lock:
            ns = max(time.time_ns(), self._last_recency_ns + 1)
            self._last_recency_ns = ns
            return ns

    @staticmethod
    def _write_fault_check() -> None:
        """Chaos hook: raise before the atomic rename when ``store_write``
        is armed, proving the cleanup path leaves no partial documents.

        Imported lazily — ``repro.serve`` imports this module at package
        level, so a top-level import here would be a cycle.
        """
        from ..serve import faults

        faults.raise_if("store_write", faults.store_write_error)

    def _write_atomic(self, path: Path, payload: dict) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
            self._write_fault_check()
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._touch(path)

    def _read_doc(self, path: Path, touch: bool = False) -> dict | None:
        try:
            data = json.loads(path.read_text())
            if not isinstance(data, dict):
                raise ValueError("artifact document is not a JSON object")
        except FileNotFoundError:
            return None
        except _CORRUPTION:
            self._quarantine(path)
            return None
        except OSError:
            return None  # transient I/O: a miss, but keep the artifact
        if touch:
            self._touch(path)
        return data

    def _touch(self, path: Path) -> None:
        """Refresh a document's LRU recency (write or read hit)."""
        ns = self._next_recency_ns()
        try:
            os.utime(path, ns=(ns, ns))
        except OSError:
            pass

    def _quarantine(self, path: Path) -> None:
        self._corrupt_dropped += 1
        self.registry.counter(
            "repro_store_corrupt_dropped_total",
            help="Corrupt artifact documents quarantined by the store.",
        ).inc()
        try:
            path.unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Namespace scans and LRU accounting
    # ------------------------------------------------------------------
    def _ns_fingerprints(self, namespace: str) -> list[str]:
        base = self._bases[namespace]
        primary = _NS_DOCS[namespace][0]
        if not base.is_dir():
            return []
        return sorted(
            entry.name
            for shard in base.iterdir()
            if shard.is_dir()
            for entry in shard.iterdir()
            if (entry / primary).is_file()
        )

    def _entry_bytes(self, namespace: str, fingerprint: str) -> int:
        entry = self._ns_dir(namespace, fingerprint)
        total = 0
        for doc in _NS_DOCS[namespace]:
            try:
                total += (entry / doc).stat().st_size
            except OSError:
                pass
        return total

    def entries(self, namespace: str) -> list[dict]:
        """Per-entry inventory of one namespace, least-recently-used first."""
        if namespace not in NAMESPACES:
            raise ValueError(f"unknown namespace {namespace!r}; expected {NAMESPACES}")
        out = []
        for fp in self._ns_fingerprints(namespace):
            try:
                st = self._primary_path(namespace, fp).stat()
                mtime, mtime_ns = st.st_mtime, st.st_mtime_ns
            except OSError:
                mtime, mtime_ns = 0.0, 0
            out.append(
                {
                    "fingerprint": fp,
                    "bytes": self._entry_bytes(namespace, fp),
                    "mtime": mtime,
                    "mtime_ns": mtime_ns,
                }
            )
        # Sort on st_mtime_ns: the float st_mtime cannot represent the
        # store's nanosecond recency stamps (53-bit mantissa), so close
        # touches would alias back into ties.
        out.sort(key=lambda e: (e["mtime_ns"], e["fingerprint"]))
        return out

    def _remove_entry(self, namespace: str, fingerprint: str) -> bool:
        entry = self._ns_dir(namespace, fingerprint)
        existed = False
        for doc in _NS_DOCS[namespace]:
            try:
                (entry / doc).unlink()
                existed = True
            except OSError:
                pass
        try:
            entry.rmdir()
        except OSError:
            pass
        return existed

    def _enforce_cap(self, namespace: str) -> int:
        """Evict least-recently-used entries until the namespace fits its cap.

        Strict bound: eviction continues while the namespace exceeds the cap,
        even if that removes the entry that was just written (a cap smaller
        than one artifact yields an always-empty namespace, never an
        over-budget one).  Returns the number of entries evicted.
        """
        cap = self._caps[namespace]
        if cap is None:
            return 0
        inventory = self.entries(namespace)
        total = sum(e["bytes"] for e in inventory)
        evicted = 0
        for entry in inventory:  # LRU-first order
            if total <= cap:
                break
            if self._remove_entry(namespace, entry["fingerprint"]):
                evicted += 1
            total -= entry["bytes"]
        self._evictions[namespace] += evicted
        if evicted:
            self.registry.counter(
                "repro_cache_evictions_total",
                help="Cache entries evicted, by namespace (memory tier or store).",
                namespace=namespace,
            ).inc(evicted)
        return evicted

    # ------------------------------------------------------------------
    # Mappings
    # ------------------------------------------------------------------
    def put_mapping(
        self,
        fingerprint: str,
        mapping: FermionQubitMapping,
        provenance: dict | None = None,
    ) -> Path:
        path = self.mapping_path(fingerprint)
        self._write_atomic(path, mapping_to_dict(mapping, provenance=provenance))
        self._enforce_cap("mappings")
        return path

    def get_mapping(self, fingerprint: str) -> FermionQubitMapping | None:
        """Load a stored mapping, or ``None`` on miss *or* corruption."""
        path = self.mapping_path(fingerprint)
        data = self._read_doc(path, touch=True)
        if data is None:
            return None
        try:
            return mapping_from_dict(data)
        except _CORRUPTION:
            self._quarantine(path)
            return None

    def get_mapping_doc(self, fingerprint: str) -> dict | None:
        """The raw stored mapping document (schema-v2 JSON), without parsing."""
        return self._read_doc(self.mapping_path(fingerprint), touch=True)

    # ------------------------------------------------------------------
    # Evaluation reports
    # ------------------------------------------------------------------
    def put_report(self, fingerprint: str, report: dict) -> Path:
        path = self.report_path(fingerprint)
        self._write_atomic(path, report)
        self._enforce_cap("mappings")
        return path

    def get_report(self, fingerprint: str) -> dict | None:
        return self._read_doc(self.report_path(fingerprint))

    # ------------------------------------------------------------------
    # Routed-circuit metrics (compilation-pipeline artifacts)
    # ------------------------------------------------------------------
    def put_circuit_report(self, fingerprint: str, report: dict) -> Path:
        path = self.circuit_path(fingerprint)
        self._write_atomic(path, report)
        self._enforce_cap("circuits")
        return path

    def get_circuit_report(self, fingerprint: str) -> dict | None:
        return self._read_doc(self.circuit_path(fingerprint), touch=True)

    def circuit_fingerprints(self) -> list[str]:
        """All fingerprints with a routed-circuit document, sorted."""
        return self._ns_fingerprints("circuits")

    def remove_circuit(self, fingerprint: str) -> bool:
        return self._remove_entry("circuits", fingerprint)

    # ------------------------------------------------------------------
    # Inventory
    # ------------------------------------------------------------------
    def contains(self, fingerprint: str) -> bool:
        return self.mapping_path(fingerprint).exists()

    def fingerprints(self) -> list[str]:
        """All fingerprints with a mapping document, sorted."""
        return self._ns_fingerprints("mappings")

    def provenance(self, fingerprint: str) -> dict | None:
        data = self._read_doc(self.mapping_path(fingerprint))
        if data is None:
            return None
        prov = data.get("provenance")
        return prov if isinstance(prov, dict) else None

    def remove(self, fingerprint: str) -> bool:
        """Drop one entry (mapping + report). Returns whether anything existed."""
        return self._remove_entry("mappings", fingerprint)

    def clear(self, namespace: str | None = None) -> int:
        """Remove every entry of one namespace (default: all); returns the
        number of entries dropped."""
        targets = NAMESPACES if namespace is None else (namespace,)
        n = 0
        for ns in targets:
            if ns not in NAMESPACES:
                raise ValueError(f"unknown namespace {ns!r}; expected {NAMESPACES}")
            for fp in self._ns_fingerprints(ns):
                if self._remove_entry(ns, fp):
                    n += 1
        return n

    def namespace_stats(self) -> dict:
        """Per-namespace entry counts, byte totals, caps, and evictions."""
        out = {}
        for ns in NAMESPACES:
            inventory = self.entries(ns)
            out[ns] = {
                "entries": len(inventory),
                "bytes": sum(e["bytes"] for e in inventory),
                "max_bytes": self._caps[ns],
                "evictions": self._evictions[ns],
            }
        return out

    def stats(self) -> dict:
        ns = self.namespace_stats()
        return {
            "root": str(self.root),
            "n_mappings": ns["mappings"]["entries"],
            "n_circuits": ns["circuits"]["entries"],
            "total_bytes": sum(s["bytes"] for s in ns.values()),
            "corrupt_dropped": self._corrupt_dropped,
            "namespaces": ns,
        }

    def __repr__(self) -> str:
        return f"ArtifactStore({str(self.root)!r})"
