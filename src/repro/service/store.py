"""Content-addressed artifact store for compiled mappings.

Layout (one directory per fingerprint, sharded by the first two hex chars so
no single directory grows unbounded)::

    <root>/mappings/v1/<fp[:2]>/<fp>/mapping.json  # schema-v2 mapping + provenance
    <root>/mappings/v1/<fp[:2]>/<fp>/report.json   # optional evaluation report
    <root>/circuits/v1/<fp[:2]>/<fp>/metrics.json  # routed-circuit metrics

The root defaults to ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-hatt``.  The
``mappings/`` namespace keeps the store disjoint from the chemistry integral
cache (``<root>/chem/``), which honors the same environment variable; the
``circuits/`` namespace holds the hardware-compilation pipeline's artifacts
(keyed by mapping fingerprint × architecture × compile options — see
:mod:`repro.compile.pipeline`).

Durability rules:

* **atomic writes** — documents are written to a same-directory temp file
  and ``os.replace``-d into place, so concurrent writers (batch worker
  processes racing on one fingerprint) and crashes can never expose a
  half-written artifact; last writer wins with identical content, because
  the fingerprint pins the content.
* **corruption-safe loads** — a torn, truncated, or hand-edited document
  loads as a *miss*, never an exception: the store quarantines (unlinks) the
  bad file and counts it in ``stats()["corrupt_dropped"]``, and the service
  recompiles and repairs the entry on the next put.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from ..mappings.base import FermionQubitMapping
from ..mappings.io import mapping_from_dict, mapping_to_dict

__all__ = ["ArtifactStore", "default_cache_dir"]

#: On-disk layout version; bump on incompatible directory-structure changes.
_LAYOUT = "v1"

_MAPPING_DOC = "mapping.json"
_REPORT_DOC = "report.json"
_CIRCUIT_DOC = "metrics.json"

#: Exceptions that mean "this document's *content* is unusable" — JSON syntax
#: errors, missing/mistyped keys, inconsistent mapping content (io.py
#: validation).  These quarantine the file.  I/O errors (permissions, EIO,
#: stale NFS) are treated as transient misses instead: the artifact may be
#: perfectly valid, so it must not be deleted.
_CORRUPTION = (json.JSONDecodeError, KeyError, TypeError, ValueError)


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro-hatt"


class ArtifactStore:
    """Disk half of the compilation cache; see module docstring for layout."""

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root).expanduser() if root is not None else default_cache_dir()
        self._base = self.root / "mappings" / _LAYOUT
        self._circuit_base = self.root / "circuits" / _LAYOUT
        self._corrupt_dropped = 0

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @staticmethod
    def _check_fingerprint(fingerprint: str) -> str:
        if len(fingerprint) < 8 or not all(c in "0123456789abcdef" for c in fingerprint):
            raise ValueError(f"malformed fingerprint {fingerprint!r}")
        return fingerprint

    def _entry_dir(self, fingerprint: str) -> Path:
        fp = self._check_fingerprint(fingerprint)
        return self._base / fp[:2] / fp

    def _circuit_dir(self, fingerprint: str) -> Path:
        fp = self._check_fingerprint(fingerprint)
        return self._circuit_base / fp[:2] / fp

    def mapping_path(self, fingerprint: str) -> Path:
        return self._entry_dir(fingerprint) / _MAPPING_DOC

    def report_path(self, fingerprint: str) -> Path:
        return self._entry_dir(fingerprint) / _REPORT_DOC

    # ------------------------------------------------------------------
    # Raw document I/O
    # ------------------------------------------------------------------
    @staticmethod
    def _write_atomic(path: Path, payload: dict) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _read_doc(self, path: Path) -> dict | None:
        try:
            data = json.loads(path.read_text())
            if not isinstance(data, dict):
                raise ValueError("artifact document is not a JSON object")
            return data
        except FileNotFoundError:
            return None
        except _CORRUPTION:
            self._quarantine(path)
            return None
        except OSError:
            return None  # transient I/O: a miss, but keep the artifact

    def _quarantine(self, path: Path) -> None:
        self._corrupt_dropped += 1
        try:
            path.unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Mappings
    # ------------------------------------------------------------------
    def put_mapping(
        self,
        fingerprint: str,
        mapping: FermionQubitMapping,
        provenance: dict | None = None,
    ) -> Path:
        path = self.mapping_path(fingerprint)
        self._write_atomic(path, mapping_to_dict(mapping, provenance=provenance))
        return path

    def get_mapping(self, fingerprint: str) -> FermionQubitMapping | None:
        """Load a stored mapping, or ``None`` on miss *or* corruption."""
        path = self.mapping_path(fingerprint)
        data = self._read_doc(path)
        if data is None:
            return None
        try:
            return mapping_from_dict(data)
        except _CORRUPTION:
            self._quarantine(path)
            return None

    # ------------------------------------------------------------------
    # Evaluation reports
    # ------------------------------------------------------------------
    def put_report(self, fingerprint: str, report: dict) -> Path:
        path = self.report_path(fingerprint)
        self._write_atomic(path, report)
        return path

    def get_report(self, fingerprint: str) -> dict | None:
        return self._read_doc(self.report_path(fingerprint))

    # ------------------------------------------------------------------
    # Routed-circuit metrics (compilation-pipeline artifacts)
    # ------------------------------------------------------------------
    def circuit_path(self, fingerprint: str) -> Path:
        return self._circuit_dir(fingerprint) / _CIRCUIT_DOC

    def put_circuit_report(self, fingerprint: str, report: dict) -> Path:
        path = self.circuit_path(fingerprint)
        self._write_atomic(path, report)
        return path

    def get_circuit_report(self, fingerprint: str) -> dict | None:
        return self._read_doc(self.circuit_path(fingerprint))

    def circuit_fingerprints(self) -> list[str]:
        """All fingerprints with a routed-circuit document, sorted."""
        if not self._circuit_base.is_dir():
            return []
        return sorted(
            entry.name
            for shard in self._circuit_base.iterdir()
            if shard.is_dir()
            for entry in shard.iterdir()
            if (entry / _CIRCUIT_DOC).is_file()
        )

    def remove_circuit(self, fingerprint: str) -> bool:
        entry = self._circuit_dir(fingerprint)
        existed = False
        try:
            (entry / _CIRCUIT_DOC).unlink()
            existed = True
        except OSError:
            pass
        try:
            entry.rmdir()
        except OSError:
            pass
        return existed

    # ------------------------------------------------------------------
    # Inventory
    # ------------------------------------------------------------------
    def contains(self, fingerprint: str) -> bool:
        return self.mapping_path(fingerprint).exists()

    def fingerprints(self) -> list[str]:
        """All fingerprints with a mapping document, sorted."""
        if not self._base.is_dir():
            return []
        return sorted(
            entry.name
            for shard in self._base.iterdir()
            if shard.is_dir()
            for entry in shard.iterdir()
            if (entry / _MAPPING_DOC).is_file()
        )

    def provenance(self, fingerprint: str) -> dict | None:
        data = self._read_doc(self.mapping_path(fingerprint))
        if data is None:
            return None
        prov = data.get("provenance")
        return prov if isinstance(prov, dict) else None

    def remove(self, fingerprint: str) -> bool:
        """Drop one entry (mapping + report). Returns whether anything existed."""
        entry = self._entry_dir(fingerprint)
        existed = False
        for doc in (_MAPPING_DOC, _REPORT_DOC):
            try:
                (entry / doc).unlink()
                existed = True
            except OSError:
                pass
        try:
            entry.rmdir()
        except OSError:
            pass
        return existed

    def clear(self) -> int:
        """Remove every entry (mappings *and* circuit metrics); returns the
        number of artifacts dropped."""
        n = 0
        for fp in self.fingerprints():
            if self.remove(fp):
                n += 1
        for fp in self.circuit_fingerprints():
            if self.remove_circuit(fp):
                n += 1
        return n

    def stats(self) -> dict:
        fps = self.fingerprints()
        circuit_fps = self.circuit_fingerprints()
        total = 0
        for fp in fps:
            entry = self._entry_dir(fp)
            for doc in (_MAPPING_DOC, _REPORT_DOC):
                try:
                    total += (entry / doc).stat().st_size
                except OSError:
                    pass
        for fp in circuit_fps:
            try:
                total += self.circuit_path(fp).stat().st_size
            except OSError:
                pass
        return {
            "root": str(self.root),
            "n_mappings": len(fps),
            "n_circuits": len(circuit_fps),
            "total_bytes": total,
            "corrupt_dropped": self._corrupt_dropped,
        }

    def __repr__(self) -> str:
        return f"ArtifactStore({str(self.root)!r})"
