"""Get-or-compile facade over the fingerprint keyspace and artifact store.

``MappingService`` is the single entry point the pipeline, CLI, and batch
orchestrator share.  A request is ``(hamiltonian, MappingSpec)``; the service

1. fingerprints the request (:mod:`.fingerprint`),
2. consults an in-memory LRU (hot mappings stay parsed),
3. falls back to the disk :class:`~repro.service.store.ArtifactStore`,
4. compiles on a full miss, storing the artifact with provenance.

Concurrent requests for one fingerprint are **single-flighted**: the first
thread compiles while the rest block on a per-fingerprint lock and then read
the freshly cached result, so a thundering herd of identical requests costs
one compile.  (Cross-*process* dedup is the batch orchestrator's job — it
dedups by fingerprint before dispatch; racing writers are still safe because
store writes are atomic and content-addressed.)
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from .. import __version__
from ..fermion import FermionOperator, MajoranaOperator
from ..hatt import hatt_mapping
from ..mappings import (
    FermionQubitMapping,
    balanced_ternary_tree,
    bravyi_kitaev,
    jordan_wigner,
    parity_mapping,
)
from ..obs.logging import get_logger, slow_compile_threshold
from ..obs.metrics import get_registry
from ..obs.trace import current_trace_id, span
from .fingerprint import MappingSpec, fingerprint_request
from .store import ArtifactStore

_log = get_logger("repro.service")

__all__ = ["MappingService", "CompileResult", "compile_mapping"]

#: In-memory LRU capacity (mappings are small; disk remains the backstop).
_DEFAULT_MEMORY_CAPACITY = 128


def compile_mapping(
    hamiltonian: FermionOperator | MajoranaOperator, spec: MappingSpec
) -> FermionQubitMapping:
    """Compile one mapping from a resolved spec (the cache-free primitive)."""
    spec = spec.resolve(hamiltonian)
    n = spec.n_modes
    if spec.kind == "jw":
        return jordan_wigner(n)
    if spec.kind == "bk":
        return bravyi_kitaev(n)
    if spec.kind == "btt":
        return balanced_ternary_tree(n)
    if spec.kind == "parity":
        return parity_mapping(n)
    if spec.kind == "hatt-arch":
        from ..circuits.architectures import architecture

        return hatt_mapping(
            hamiltonian,
            n_modes=n,
            vacuum=True,
            cached=spec.cached,
            backend=spec.hatt_backend,
            graph=architecture(spec.arch),
            arch_weight=spec.arch_weight,
        )
    # hatt / hatt-unopt
    return hatt_mapping(
        hamiltonian,
        n_modes=n,
        vacuum=spec.vacuum,
        cached=spec.cached,
        backend=spec.hatt_backend,
    )


@dataclass
class CompileResult:
    """Outcome of one get-or-compile: the mapping plus cache bookkeeping."""

    mapping: FermionQubitMapping
    fingerprint: str
    #: ``"memory"`` | ``"disk"`` | ``"compiled"``
    source: str
    #: Compile wall time when ``source == "compiled"``, else 0.
    compile_seconds: float = 0.0
    provenance: dict | None = None

    @property
    def cache_hit(self) -> bool:
        return self.source != "compiled"


@dataclass
class _Stats:
    hits_memory: int = 0
    hits_disk: int = 0
    misses: int = 0
    compiles: int = 0
    compile_seconds: float = 0.0
    single_flight_waits: int = 0
    memory_evictions: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def snapshot(self) -> dict:
        with self.lock:
            hits = self.hits_memory + self.hits_disk
            lookups = hits + self.misses
            return {
                "hits_memory": self.hits_memory,
                "hits_disk": self.hits_disk,
                "misses": self.misses,
                "compiles": self.compiles,
                "compile_seconds": self.compile_seconds,
                "single_flight_waits": self.single_flight_waits,
                "memory_evictions": self.memory_evictions,
                "hit_rate": round(hits / lookups, 4) if lookups else None,
            }


class MappingService:
    """Two-tier (memory LRU → disk store) compilation cache with stats.

    Parameters
    ----------
    cache_dir:
        Root for a default :class:`ArtifactStore`; ignored when ``store`` is
        given.
    store:
        An explicit store instance to share between services.
    use_disk:
        ``False`` → memory-only service (no artifacts written), for callers
        that want dedup within a run but no persistent state.
    memory_capacity:
        Max parsed mappings held in the LRU; 0 disables the memory tier.
    max_bytes:
        Disk-cache LRU cap, forwarded to the default :class:`ArtifactStore`
        (an int per namespace or a ``{namespace: bytes}`` dict); ignored when
        an explicit ``store`` is given.
    """

    def __init__(
        self,
        cache_dir: str | None = None,
        store: ArtifactStore | None = None,
        use_disk: bool = True,
        memory_capacity: int = _DEFAULT_MEMORY_CAPACITY,
        max_bytes=None,
        registry=None,
    ):
        self.registry = registry if registry is not None else get_registry()
        if store is not None:
            self.store: ArtifactStore | None = store
        elif use_disk:
            self.store = ArtifactStore(
                cache_dir, max_bytes=max_bytes, registry=self.registry
            )
        else:
            self.store = None
        self.memory_capacity = int(memory_capacity)
        self._memory: OrderedDict[str, FermionQubitMapping] = OrderedDict()
        self._memory_lock = threading.Lock()
        self._flight_lock = threading.Lock()
        self._in_flight: dict[str, threading.Lock] = {}
        self._stats = _Stats()

    # ------------------------------------------------------------------
    # Memory tier
    # ------------------------------------------------------------------
    def _memory_get(self, fp: str) -> FermionQubitMapping | None:
        with self._memory_lock:
            mapping = self._memory.get(fp)
            if mapping is not None:
                self._memory.move_to_end(fp)
            return mapping

    def _memory_put(self, fp: str, mapping: FermionQubitMapping) -> None:
        if self.memory_capacity <= 0:
            return
        evicted = 0
        with self._memory_lock:
            self._memory[fp] = mapping
            self._memory.move_to_end(fp)
            while len(self._memory) > self.memory_capacity:
                self._memory.popitem(last=False)
                evicted += 1
        if evicted:
            with self._stats.lock:
                self._stats.memory_evictions += evicted
            self.registry.counter(
                "repro_cache_evictions_total",
                help="Cache entries evicted, by namespace (memory tier or store).",
                namespace="memory",
            ).inc(evicted)

    def _count_hit(self, tier: str) -> None:
        self.registry.counter(
            "repro_cache_hits_total",
            help="Cache hits, by tier.",
            tier=tier,
        ).inc()

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def fingerprint(
        self, hamiltonian: FermionOperator | MajoranaOperator, spec: MappingSpec
    ) -> str:
        return fingerprint_request(hamiltonian, spec)

    def is_cached(self, fingerprint: str) -> bool:
        """True when ``fingerprint`` would be served without compiling.

        A cheap containment probe over both cache tiers (memory LRU, then
        disk store) — the serve-layer circuit breaker uses it to keep
        answering warm requests while shedding cold compiles.
        """
        with self._memory_lock:
            if fingerprint in self._memory:
                return True
        return self.store is not None and self.store.contains(fingerprint)

    def get_or_compile(
        self,
        hamiltonian: FermionOperator | MajoranaOperator,
        spec: MappingSpec,
    ) -> CompileResult:
        with span("fingerprint", registry=self.registry):
            spec = spec.resolve(hamiltonian)
            fp = fingerprint_request(hamiltonian, spec)

        with span("memory_lookup", registry=self.registry):
            mapping = self._memory_get(fp)
        if mapping is not None:
            with self._stats.lock:
                self._stats.hits_memory += 1
            self._count_hit("memory")
            return CompileResult(mapping, fp, "memory",
                                 provenance=getattr(mapping, "provenance", None))

        with self._flight_lock:
            flight = self._in_flight.get(fp)
            if flight is None:
                flight = self._in_flight[fp] = threading.Lock()
        contended = not flight.acquire(blocking=False)
        if contended:
            with self._stats.lock:
                self._stats.single_flight_waits += 1
            flight.acquire()
        try:
            # A single-flight follower lands here after the leader populated
            # the caches; re-check memory before touching disk.
            mapping = self._memory_get(fp)
            if mapping is not None:
                with self._stats.lock:
                    self._stats.hits_memory += 1
                self._count_hit("memory")
                return CompileResult(mapping, fp, "memory",
                                     provenance=getattr(mapping, "provenance", None))

            if self.store is not None:
                with span("disk_lookup", registry=self.registry):
                    mapping = self.store.get_mapping(fp)
                if mapping is not None:
                    self._memory_put(fp, mapping)
                    with self._stats.lock:
                        self._stats.hits_disk += 1
                    self._count_hit("disk")
                    return CompileResult(mapping, fp, "disk",
                                         provenance=getattr(mapping, "provenance", None))

            start = time.perf_counter()
            with span("tree_construction", registry=self.registry):
                mapping = compile_mapping(hamiltonian, spec)
            elapsed = time.perf_counter() - start
            provenance = {
                "fingerprint": fp,
                "kind": spec.kind,
                "n_modes": spec.n_modes,
                "vacuum": spec.vacuum,
                "compile_seconds": round(elapsed, 6),
                "repro_version": __version__,
                "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            }
            if spec.kind == "hatt-arch":
                provenance["arch"] = spec.arch
                provenance["arch_weight"] = spec.arch_weight
            trace_id = current_trace_id()
            if trace_id:
                provenance["trace_id"] = trace_id
            mapping.provenance = provenance
            if self.store is not None:
                with span("store_write", registry=self.registry):
                    self.store.put_mapping(fp, mapping, provenance=provenance)
            self._memory_put(fp, mapping)
            with self._stats.lock:
                self._stats.misses += 1
                self._stats.compiles += 1
                self._stats.compile_seconds += elapsed
            self.registry.counter(
                "repro_cache_misses_total",
                help="Full cache misses (request went to the compiler).",
            ).inc()
            self.registry.counter(
                "repro_compiles_total", help="Mapping compiles executed."
            ).inc()
            self.registry.histogram(
                "repro_compile_seconds",
                help="Wall time of mapping compiles.",
            ).observe(elapsed)
            if elapsed > slow_compile_threshold():
                _log.warning(
                    "slow compile: %s took %.3fs (threshold %.1fs)",
                    fp,
                    elapsed,
                    slow_compile_threshold(),
                    extra={
                        "fingerprint": fp,
                        "seconds": round(elapsed, 3),
                        "trace_id": trace_id,
                    },
                )
            return CompileResult(mapping, fp, "compiled",
                                 compile_seconds=elapsed, provenance=provenance)
        finally:
            flight.release()
            with self._flight_lock:
                # Last one out drops the lock object so the dict stays bounded
                # by the number of concurrently in-flight fingerprints.
                if fp in self._in_flight and not self._in_flight[fp].locked():
                    del self._in_flight[fp]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        out = self._stats.snapshot()
        out["memory_entries"] = len(self._memory)
        out["memory_capacity"] = self.memory_capacity
        if self.store is not None:
            out["store"] = self.store.stats()
        return out

    def __repr__(self) -> str:
        root = self.store.root if self.store is not None else None
        return f"MappingService(store={str(root)!r}, lru={self.memory_capacity})"
