"""Canonical Hamiltonian/mapping fingerprints (compilation-service cache keys).

A HATT compile is a pure function of the *physics* — the Hamiltonian's
normal-ordered term content — and of the mapping configuration (mapping kind,
vacuum pairing, mode count).  Everything else (term insertion order, floating
point dust below tolerance, which construction backend evaluates the
candidate kernels) must NOT change the result, so it must not change the
cache key either.  This module produces a hex SHA-256 digest with exactly
those invariances:

* **order-invariant** — terms are canonically sorted before hashing, so two
  operators built by adding the same terms in different orders collide;
* **coefficient-tolerant** — coefficients are snapped to an integer grid of
  ``tol`` (default ``1e-12``, the algebra's own coefficient tolerance) and
  terms whose real and imaginary parts both snap to zero are dropped, so
  accumulation dust cannot fork the key;
* **backend-independent** — the HATT ``backend``/``cached`` engine switches
  are excluded from the config payload (both engines produce bit-identical
  trees; the property suite enforces this);
* **process-stable** — the digest is SHA-256 over a canonical JSON document,
  never Python's salted ``hash()``, so keys agree across interpreter runs
  and machines.

Static (Hamiltonian-independent) mappings — JW/BK/BTT/parity — are keyed on
``(kind, n_modes)`` alone: the same JW table serves every 8-mode problem, so
every 8-mode problem should hit the same artifact.

The architecture-adaptive ``hatt-arch`` kind additionally keys on the
coupling-graph name and the (grid-quantized) ``arch_weight`` blend: the same
Hamiltonian compiled against two different architectures yields two distinct
trees, so it must yield two distinct ``mappings/v1`` entries.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import math
import tempfile
from dataclasses import dataclass, replace
from typing import Iterable, Iterator

from ..circuits.architectures import ARCHITECTURE_NAMES
from ..fermion import FermionOperator, MajoranaOperator
from ..fermion.operators import (
    _COEFF_TOLERANCE,
    _normal_order_fast,
    _normal_order_term,
)
from ..hatt.construction import ARCH_WEIGHT_SCALE, DEFAULT_ARCH_WEIGHT

__all__ = [
    "MappingSpec",
    "MAPPING_KINDS",
    "STATIC_KINDS",
    "ADAPTIVE_KINDS",
    "DEFAULT_TOLERANCE",
    "DEFAULT_SPILL_AT",
    "FINGERPRINT_SCHEMA",
    "canonical_terms",
    "fingerprint_operator",
    "fingerprint_request",
    "fingerprint_stream",
    "fingerprint_request_stream",
]

#: Bump when the canonical payload layout changes (old cache entries become
#: unreachable rather than silently wrong).
FINGERPRINT_SCHEMA = 1

#: Coefficient quantization grid; matches the operator algebra's own
#: ``_COEFF_TOLERANCE`` so "physically identical" and "hash-identical" agree.
DEFAULT_TOLERANCE = 1e-12

#: Mapping kinds whose output depends only on the mode count.
STATIC_KINDS = frozenset({"jw", "bk", "btt", "parity"})

#: Mapping kinds whose output depends on the Hamiltonian's term content.
ADAPTIVE_KINDS = frozenset({"hatt", "hatt-unopt", "hatt-arch"})

#: All compile-able mapping kinds, in CLI display order.
MAPPING_KINDS = ("jw", "bk", "btt", "parity", "hatt", "hatt-unopt", "hatt-arch")


@dataclass(frozen=True)
class MappingSpec:
    """A compile request's configuration half (the Hamiltonian is the other).

    ``kind``/``n_modes`` are cache-key material — plus ``arch`` and the
    quantized ``arch_weight`` for the architecture-adaptive ``hatt-arch``
    kind; ``hatt_backend`` and ``cached`` select equivalent construction
    engines and are deliberately *not* (see module docstring).
    ``n_modes=None`` means "infer from the Hamiltonian" — call
    :meth:`resolve` before fingerprinting or compiling.
    """

    kind: str
    n_modes: int | None = None
    hatt_backend: str = "vector"
    cached: bool = True
    arch: str | None = None
    arch_weight: float | None = None

    def __post_init__(self):
        if self.kind not in MAPPING_KINDS:
            raise ValueError(
                f"unknown mapping kind {self.kind!r}; expected one of {MAPPING_KINDS}"
            )
        if self.kind == "hatt-arch":
            if self.arch not in ARCHITECTURE_NAMES:
                raise ValueError(
                    f"hatt-arch needs arch from {ARCHITECTURE_NAMES}, "
                    f"got {self.arch!r}"
                )
            if self.arch_weight is not None:
                aw = float(self.arch_weight)
                if not math.isfinite(aw) or aw < 0:
                    raise ValueError(
                        f"arch_weight must be finite and >= 0, got {self.arch_weight!r}"
                    )
        elif self.arch is not None or self.arch_weight is not None:
            raise ValueError(f"arch/arch_weight only apply to hatt-arch, not {self.kind!r}")

    @property
    def vacuum(self) -> bool:
        return self.kind != "hatt-unopt"

    @property
    def hamiltonian_dependent(self) -> bool:
        return self.kind in ADAPTIVE_KINDS

    def resolve(self, hamiltonian: FermionOperator | MajoranaOperator) -> "MappingSpec":
        """Pin ``n_modes`` against a concrete Hamiltonian."""
        if self.n_modes is not None:
            return self
        return replace(self, n_modes=hamiltonian.n_modes)


def _quantize(value: float, tol: float) -> int:
    """Snap one float to the integer grid ``value / tol``.

    Integer grid coordinates serialize exactly (no float repr ambiguity) and
    ``round`` half-to-even is deterministic across processes.  ``-0.0``
    rounds to the integer ``0``, collapsing the two float zeros.
    """
    return round(value / tol)


def canonical_terms(
    op: FermionOperator | MajoranaOperator, tol: float = DEFAULT_TOLERANCE
) -> list[str]:
    """Order-canonical, tolerance-quantized term lines for hashing.

    ``FermionOperator`` input is normal-ordered first (exact CAR algebra), so
    any two representations of the same physical operator reach the same
    monomial basis; ``MajoranaOperator`` monomials are already canonical by
    construction.  Terms are sorted by monomial key and coefficients are
    grid-quantized; terms quantizing to exactly zero are dropped.

    Each entry is one compact line, ``"<key>:<re_grid>:<im_grid>"`` with key
    ``"3^ 0_"`` (``^`` creation, ``_`` annihilation) for ladder monomials or
    ``"0 3 5"`` for Majorana index sets — a flat string form, because this
    sits on the warm-cache hot path where nested-JSON encoding cost is
    measurable.

    The result is memoized on the operator (``_fingerprint_cache``, cleared
    by every mutation path, same contract as ``MajoranaOperator._packed``),
    so a service holding a Hamiltonian pays canonicalization once however
    many get-or-compile calls it routes.
    """
    cached = op._fingerprint_cache
    if cached is not None and cached[0] == tol:
        return cached[1]
    if isinstance(op, FermionOperator):
        lines = [
            line
            for term, coeff in sorted(op.normal_order().terms())
            if (line := _term_line(
                " ".join(f"{m}{'^' if d else '_'}" for m, d in term), coeff, tol
            )) is not None
        ]
    elif isinstance(op, MajoranaOperator):
        lines = [
            line
            for term, coeff in sorted((tuple(t), c) for t, c in op.terms())
            if (line := _term_line(" ".join(map(str, term)), coeff, tol)) is not None
        ]
    else:
        raise TypeError(f"cannot fingerprint object of type {type(op).__name__}")
    op._fingerprint_cache = (tol, lines)
    return lines


def _term_line(key: str, coeff: complex, tol: float) -> str | None:
    coeff = complex(coeff)
    re, im = _quantize(coeff.real, tol), _quantize(coeff.imag, tol)
    if re == 0 and im == 0:
        return None
    return f"{key}:{re}:{im}"


def _digest(payload: dict) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def fingerprint_operator(
    op: FermionOperator | MajoranaOperator, tol: float = DEFAULT_TOLERANCE
) -> str:
    """Content hash of a Hamiltonian alone (no mapping config)."""
    form = "fermion" if isinstance(op, FermionOperator) else "majorana"
    return _digest(
        {
            "fp_schema": FINGERPRINT_SCHEMA,
            "form": form,
            "tol": repr(tol),
            "terms": canonical_terms(op, tol),
        }
    )


def _request_payload(spec: MappingSpec) -> dict:
    """The config half of a request payload (``spec`` must be resolved)."""
    payload: dict = {
        "fp_schema": FINGERPRINT_SCHEMA,
        "config": {
            "kind": spec.kind,
            "n_modes": spec.n_modes,
            "vacuum": spec.vacuum,
        },
    }
    if spec.kind == "hatt-arch":
        # The arch and the effective (quantized) blend are result-changing
        # config; the construction rounds arch_weight to the same grid, so
        # float dust inside one grid cell cannot fork the key.
        aw = DEFAULT_ARCH_WEIGHT if spec.arch_weight is None else float(spec.arch_weight)
        payload["config"]["arch"] = spec.arch
        payload["config"]["arch_weight_q"] = int(round(aw * ARCH_WEIGHT_SCALE))
    return payload


def fingerprint_request(
    hamiltonian: FermionOperator | MajoranaOperator,
    spec: MappingSpec,
    tol: float = DEFAULT_TOLERANCE,
) -> str:
    """Cache key of one compile request: Hamiltonian content × mapping config.

    Static kinds omit the term payload entirely (see module docstring), so
    e.g. every 8-mode problem shares one ``jw`` artifact.
    """
    spec = spec.resolve(hamiltonian)
    payload = _request_payload(spec)
    if spec.hamiltonian_dependent:
        payload["form"] = (
            "fermion" if isinstance(hamiltonian, FermionOperator) else "majorana"
        )
        payload["tol"] = repr(tol)
        payload["terms"] = canonical_terms(hamiltonian, tol)
    return _digest(payload)


# ----------------------------------------------------------------------
# Streamed fingerprinting (chunked, bounded memory, bit-identical)
# ----------------------------------------------------------------------
#: Entries buffered in memory before a sorted run spills to a temp file.
#: The default keeps ~tens of MB resident; sources streaming Hamiltonians
#: too large for memory lower it (or callers raise it to stay in RAM).
DEFAULT_SPILL_AT = 1 << 18

#: Run-file field separator: sorts below every character a term key or a
#: fixed-width sort key uses (digits, space, ``^``, ``_``), so comparing
#: composite lines compares ``(sort_key, sequence)`` pairs.
_FIELD_SEP = "\x1f"

#: Placeholder spliced into the JSON payload where the term array goes;
#: cannot collide with any real payload value.
_TERMS_SENTINEL = "\x00terms\x00"


def _fermion_sort_key(term: tuple) -> str:
    """Fixed-width encoding whose string order equals action-tuple order."""
    return "".join(f"{mode:08d}{1 if dagger else 0}" for mode, dagger in term)


def _majorana_sort_key(term: tuple) -> str:
    return "".join(f"{index:08d}" for index in term)


def _iter_entries(
    terms: Iterable[tuple], form: str
) -> Iterator[tuple[str, str, complex]]:
    """Normal-ordered ``(sort_key, key_str, coeff)`` entries of a term stream.

    Fermion monomials are normal-ordered one at a time — normal ordering is
    linear, so per-term rewriting followed by a global merge of equal
    monomials reproduces :meth:`FermionOperator.normal_order` of the sum.
    The per-term rewrite uses the very same ``_normal_order_fast`` /
    ``_normal_order_term`` machinery, so sub-term emission order (and hence
    floating-point accumulation order downstream) matches the in-memory path.
    """
    if form == "fermion":
        for term, coeff in terms:
            term = tuple(term)
            coeff = complex(coeff)
            fast = _normal_order_fast(term)
            if fast is not None:
                ordered, sign = fast
                yield _fermion_sort_key(ordered), _fermion_key(ordered), sign * coeff
            else:
                for ordered, sub_coeff in _normal_order_term(term, coeff):
                    yield _fermion_sort_key(ordered), _fermion_key(ordered), sub_coeff
    elif form == "majorana":
        for term, coeff in terms:
            term = tuple(term)
            yield _majorana_sort_key(term), " ".join(map(str, term)), complex(coeff)
    else:
        raise ValueError(f"unknown operator form {form!r}; expected fermion|majorana")


def _fermion_key(term: tuple) -> str:
    return " ".join(f"{m}{'^' if d else '_'}" for m, d in term)


def _sorted_entry_lines(
    entries: Iterator[tuple[str, str, complex]],
    spill_at: int,
    tmp_dir: str | None,
) -> Iterator[str]:
    """Globally sorted run-file lines via a bounded-memory external sort.

    Each entry becomes one composite line carrying ``(sort_key, sequence,
    key, coeff)``; runs of ``spill_at`` lines are sorted and spilled to
    anonymous temp files, then k-way merged.  The sequence number keeps
    equal-key entries in stream order, so downstream coefficient summation
    is sequential in exactly the order the in-memory accumulator uses.
    """
    runs: list = []
    buf: list[str] = []
    try:
        for seq, (sort_key, key, coeff) in enumerate(entries):
            buf.append(
                f"{sort_key}{_FIELD_SEP}{seq:012d}{_FIELD_SEP}{key}"
                f"{_FIELD_SEP}{coeff.real.hex()}{_FIELD_SEP}{coeff.imag.hex()}"
            )
            if len(buf) >= spill_at:
                buf.sort()
                run = tempfile.TemporaryFile(
                    mode="w+", encoding="utf-8", dir=tmp_dir, prefix="repro-fp-"
                )
                run.write("\n".join(buf))
                run.write("\n")
                run.seek(0)
                runs.append(run)
                buf = []
        buf.sort()
        if not runs:
            yield from buf
        else:
            streams = [(line.rstrip("\n") for line in run) for run in runs]
            yield from heapq.merge(*streams, iter(buf))
    finally:
        for run in runs:
            run.close()


def canonical_lines_stream(
    terms: Iterable[tuple],
    *,
    form: str = "fermion",
    tol: float = DEFAULT_TOLERANCE,
    spill_at: int = DEFAULT_SPILL_AT,
    tmp_dir: str | None = None,
) -> Iterator[str]:
    """Streamed equivalent of :func:`canonical_terms` over ``(term, coeff)``
    pairs — bounded memory via external-sorted runs, equal monomials merged
    by summing coefficients in stream order, then the same drop/quantize
    rules as the in-memory accumulator.
    """
    current_sort_key: str | None = None
    current_key = ""
    total = 0j
    for line in _sorted_entry_lines(_iter_entries(terms, form), spill_at, tmp_dir):
        sort_key, _, key, re_hex, im_hex = line.split(_FIELD_SEP)
        coeff = complex(float.fromhex(re_hex), float.fromhex(im_hex))
        if sort_key != current_sort_key:
            if current_sort_key is not None and abs(total) > _COEFF_TOLERANCE:
                out = _term_line(current_key, total, tol)
                if out is not None:
                    yield out
            current_sort_key, current_key, total = sort_key, key, 0j
        total += coeff
        if abs(total) <= _COEFF_TOLERANCE:
            # Mirror ``add_term``: a running total inside tolerance pops the
            # key, so the next addition restarts from exact zero rather than
            # the sub-tolerance residue.
            total = 0j
    if current_sort_key is not None and abs(total) > _COEFF_TOLERANCE:
        out = _term_line(current_key, total, tol)
        if out is not None:
            yield out


def _stream_digest(payload: dict, lines: Iterable[str]) -> str:
    """SHA-256 of ``payload`` with ``terms`` spliced in lazily.

    Produces byte-for-byte the blob :func:`_digest` hashes for the same
    payload carrying the full term list, without ever materializing it: the
    payload is serialized around a sentinel, and each line is JSON-encoded
    into the hash as it streams past.
    """
    payload = dict(payload)
    payload["terms"] = _TERMS_SENTINEL
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    marker = json.dumps(_TERMS_SENTINEL)
    prefix, _, suffix = blob.partition(marker)
    digest = hashlib.sha256()
    digest.update(prefix.encode("utf-8"))
    digest.update(b"[")
    first = True
    for line in lines:
        if not first:
            digest.update(b",")
        digest.update(json.dumps(line).encode("utf-8"))
        first = False
    digest.update(b"]")
    digest.update(suffix.encode("utf-8"))
    return digest.hexdigest()


def fingerprint_stream(
    terms: Iterable[tuple],
    *,
    form: str = "fermion",
    tol: float = DEFAULT_TOLERANCE,
    spill_at: int = DEFAULT_SPILL_AT,
    tmp_dir: str | None = None,
) -> str:
    """Streamed :func:`fingerprint_operator`: same digest, bounded memory.

    ``terms`` is a flat iterable of ``(term, coeff)`` pairs (a chunked
    source flattens its chunks into this).  The digest is bit-identical to
    ``fingerprint_operator(op)`` for ``op`` the sum of the streamed terms,
    in any stream order — the property suite and every file-backed
    round-trip test enforce this.
    """
    payload = {"fp_schema": FINGERPRINT_SCHEMA, "form": form, "tol": repr(tol)}
    lines = canonical_lines_stream(
        terms, form=form, tol=tol, spill_at=spill_at, tmp_dir=tmp_dir
    )
    return _stream_digest(payload, lines)


def fingerprint_request_stream(
    terms: Iterable[tuple] | None,
    spec: MappingSpec,
    *,
    form: str = "fermion",
    tol: float = DEFAULT_TOLERANCE,
    spill_at: int = DEFAULT_SPILL_AT,
    tmp_dir: str | None = None,
) -> str:
    """Streamed :func:`fingerprint_request` for sources too big to build.

    ``spec.n_modes`` must already be resolved (sources know their mode count
    without materializing terms).  Static kinds never read the stream —
    ``terms`` may be ``None`` for them; adaptive kinds consume it once.
    """
    if spec.n_modes is None:
        raise ValueError(
            "spec.n_modes must be resolved before streamed fingerprinting "
            "(use dataclasses.replace(spec, n_modes=source.n_modes))"
        )
    payload = _request_payload(spec)
    if not spec.hamiltonian_dependent:
        return _digest(payload)
    if terms is None:
        raise ValueError(f"adaptive kind {spec.kind!r} needs a term stream")
    payload["form"] = form
    payload["tol"] = repr(tol)
    lines = canonical_lines_stream(
        terms, form=form, tol=tol, spill_at=spill_at, tmp_dir=tmp_dir
    )
    return _stream_digest(payload, lines)
