"""Parallel batch compilation: cases × mapping kinds through a process pool.

``compile_suite`` expands a suite spec (case spec strings × mapping kinds)
into tasks, **dedups them by fingerprint before dispatch** (two 8-mode cases
share one JW compile; a repeated case compiles once), fans the unique
compiles across a ``ProcessPoolExecutor``, and streams per-task results as
each lands.  With a shared ``cache_dir`` the workers read and repair the
same content-addressed store the serial service uses, so a warm suite is
pure cache reads.

Cases resolve through the :mod:`repro.sources` registry.  In-memory
sources (built-in generators) are constructed once, in the parent, during
fingerprint planning — some case generators run a Hartree–Fock solve,
which must not be repeated per worker — and ship the built
``FermionOperator`` to the pool.  **File-backed** sources (``npz:``,
``fcidump:``, seeded ``random:`` ensembles) ship only their spec string:
the parent fingerprints them via the streamed path without ever building,
each worker re-resolves the spec locally, and the worker's
fingerprint cross-check doubles as a live streamed-vs-in-memory
bit-identity assertion.  Workers return the compiled mapping as its
schema-v2 JSON document plus the per-fingerprint Pauli-weight evaluation
(equal-fingerprint tasks share canonical terms, hence the weight).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Sequence

from ..analysis.tables import format_table
from ..fermion import FermionOperator
from ..mappings.io import mapping_from_dict, mapping_to_dict
from ..obs.trace import StageTimings, TraceContext, activate
from ..sources import HamiltonianSource, resolve as resolve_source
from .fingerprint import (
    MAPPING_KINDS,
    MappingSpec,
    fingerprint_request,
    fingerprint_request_stream,
)
from .service import MappingService

__all__ = [
    "BatchTask",
    "TaskResult",
    "SuiteReport",
    "expand_tasks",
    "compile_suite",
    "iter_compile_suite",
    "pool_context",
]


def pool_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context every process-pool consumer shares.

    ``fork`` keeps sys.path (and thus an uninstalled src/ layout) visible to
    workers where available; other platforms fall back to the default start
    method.  The serve job queue routes onto the same kind of pool.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return multiprocessing.get_context()


@dataclass(frozen=True)
class BatchTask:
    """One (case, mapping kind) cell of the suite grid."""

    case: str
    kind: str


@dataclass
class TaskResult:
    """Outcome of one suite cell (streamed as soon as its compile lands)."""

    case: str
    kind: str
    fingerprint: str | None = None
    n_modes: int | None = None
    cache_hit: bool = False
    #: ``"memory"`` | ``"disk"`` | ``"compiled"`` | ``"error"``
    source: str = "error"
    compile_seconds: float = 0.0
    pauli_weight: int | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> dict:
        return {
            "case": self.case,
            "mapping": self.kind,
            "fingerprint": self.fingerprint,
            "n_modes": self.n_modes,
            "cache_hit": self.cache_hit,
            "source": self.source,
            "compile_seconds": round(self.compile_seconds, 6),
            "pauli_weight": self.pauli_weight,
            "error": self.error,
        }


@dataclass
class SuiteReport:
    """All task results of one suite run plus aggregate statistics."""

    tasks: list[TaskResult] = field(default_factory=list)
    n_unique: int = 0
    jobs: int = 1
    wall_seconds: float = 0.0
    #: Per-stage wall-time breakdown aggregated across every compile of the
    #: run — including spans recorded inside pool workers and shipped back.
    timings: StageTimings = field(default_factory=StageTimings)

    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    @property
    def n_cache_hits(self) -> int:
        return sum(1 for t in self.tasks if t.ok and t.cache_hit)

    @property
    def n_errors(self) -> int:
        return sum(1 for t in self.tasks if not t.ok)

    @property
    def total_compile_seconds(self) -> float:
        return sum(t.compile_seconds for t in self.tasks if t.ok)

    def table(self) -> str:
        rows = []
        for t in self.tasks:
            if t.ok:
                rows.append([
                    t.case, t.kind, t.n_modes, t.pauli_weight if t.pauli_weight
                    is not None else "-", t.source,
                    f"{t.compile_seconds:.3f}",
                    (t.fingerprint or "")[:12],
                ])
            else:
                rows.append([t.case, t.kind, "-", "-", "error", "-", t.error])
        title = (
            f"batch suite: {self.n_tasks} tasks ({self.n_unique} unique compiles), "
            f"{self.n_cache_hits} cache hits, {self.n_errors} errors, "
            f"jobs={self.jobs}, wall {self.wall_seconds:.2f}s"
        )
        return format_table(
            title,
            ["case", "mapping", "modes", "Pauli weight", "source", "compile s",
             "fingerprint"],
            rows,
        )

    def to_dict(self) -> dict:
        return {
            "n_tasks": self.n_tasks,
            "n_unique": self.n_unique,
            "n_cache_hits": self.n_cache_hits,
            "n_errors": self.n_errors,
            "jobs": self.jobs,
            "wall_seconds": round(self.wall_seconds, 6),
            "total_compile_seconds": round(self.total_compile_seconds, 6),
            "timings": self.timings.to_dict(),
            "tasks": [t.to_dict() for t in self.tasks],
        }


def expand_tasks(
    cases: Sequence[str], kinds: Sequence[str] | None = None
) -> list[BatchTask]:
    """The suite grid, de-duplicated and in deterministic order."""
    kinds = list(kinds) if kinds else ["hatt"]
    for kind in kinds:
        if kind not in MAPPING_KINDS:
            raise ValueError(
                f"unknown mapping kind {kind!r}; expected one of {MAPPING_KINDS}"
            )
    seen: set[tuple[str, str]] = set()
    out: list[BatchTask] = []
    for case in cases:
        for kind in kinds:
            if (case, kind) not in seen:
                seen.add((case, kind))
                out.append(BatchTask(case, kind))
    return out


def _spec_for(
    kind: str, hatt_backend: str, arch: str | None, arch_weight: float | None
) -> MappingSpec:
    """Per-kind spec builder: arch config attaches only to ``hatt-arch``."""
    if kind == "hatt-arch":
        return MappingSpec(
            kind=kind, hatt_backend=hatt_backend, arch=arch, arch_weight=arch_weight
        )
    return MappingSpec(kind=kind, hatt_backend=hatt_backend)


# ----------------------------------------------------------------------
# Worker side (must stay module-level picklable)
# ----------------------------------------------------------------------
def _compile_worker(
    args: tuple,
) -> tuple[str, dict | None, str, float, str | None, list[dict], int | None]:
    """Compile one unique fingerprint in a worker process.

    ``payload`` is ``("op", FermionOperator)`` for in-memory sources or
    ``("spec", str)`` for file-backed ones — the worker re-resolves the
    spec against its local filesystem/generator instead of unpickling a
    shipped operator.  Returns ``(fingerprint, mapping_doc, source,
    compile_seconds, error, spans, pauli_weight)``; the mapping travels
    back as its schema-v2 JSON document (plain dict, no custom pickling
    surface) and ``spans`` carries the worker-side stage timings — context
    vars don't cross processes, so the trace rides the return value.

    For spec-shipped cases the parent's fingerprint came from the streamed
    path, so the cross-check against the service's in-memory fingerprint
    is a live bit-identity assertion between the two canonicalizations.
    """
    (payload, kind, hatt_backend, arch, arch_weight, cache_dir, use_disk,
     expected_fp, evaluate) = args
    trace_ctx = TraceContext()
    try:
        mode, value = payload
        h = value if mode == "op" else resolve_source(value).build()
        spec = _spec_for(kind, hatt_backend, arch, arch_weight)
        service = MappingService(cache_dir=cache_dir, use_disk=use_disk)
        with activate(trace_ctx):
            result = service.get_or_compile(h, spec)
        if result.fingerprint != expected_fp:  # pragma: no cover - sanity
            raise RuntimeError(
                f"worker fingerprint {result.fingerprint[:12]} != "
                f"parent {expected_fp[:12]} — non-deterministic canonicalization?"
            )
        weight = result.mapping.map(h).pauli_weight() if evaluate else None
        return (
            expected_fp,
            mapping_to_dict(result.mapping),
            result.source,
            result.compile_seconds,
            None,
            trace_ctx.spans,
            weight,
        )
    except Exception as exc:  # noqa: BLE001 - reported per-task, never fatal
        return (
            expected_fp,
            None,
            "error",
            0.0,
            f"{type(exc).__name__}: {exc}",
            trace_ctx.spans,
            None,
        )


# ----------------------------------------------------------------------
# Orchestrator
# ----------------------------------------------------------------------
def _plan(
    tasks: Iterable[BatchTask],
    hatt_backend: str,
    arch: str | None = None,
    arch_weight: float | None = None,
) -> tuple[
    dict[str, HamiltonianSource | None],
    dict[str, FermionOperator],
    dict[str, list[BatchTask]],
    list[TaskResult],
]:
    """Resolve sources, fingerprint every task, group tasks by fingerprint.

    In-memory sources build their operator here (once, in the parent);
    file-backed sources are fingerprinted via the streamed path and stay
    unbuilt — workers resolve the spec themselves.
    """
    srcs: dict[str, HamiltonianSource | None] = {}
    hams: dict[str, FermionOperator] = {}
    errors: list[TaskResult] = []
    by_fp: dict[str, list[BatchTask]] = {}
    for task in tasks:
        if task.case not in srcs:
            try:
                srcs[task.case] = resolve_source(task.case)
            except Exception as exc:  # noqa: BLE001 - bad spec → per-task error
                errors.append(
                    TaskResult(task.case, task.kind,
                               error=f"{type(exc).__name__}: {exc}")
                )
                srcs[task.case] = None
                continue
        src = srcs[task.case]
        if src is None:
            errors.append(
                TaskResult(task.case, task.kind, error="case failed to resolve")
            )
            continue
        try:
            spec = _spec_for(task.kind, hatt_backend, arch, arch_weight)
            if src.file_backed:
                resolved = replace(spec, n_modes=src.n_modes)
                terms = None
                if resolved.hamiltonian_dependent:
                    terms = (
                        pair for chunk in src.iter_terms() for pair in chunk
                    )
                fp = fingerprint_request_stream(terms, resolved)
            else:
                if task.case not in hams:
                    hams[task.case] = src.build()
                fp = fingerprint_request(hams[task.case], spec)
        except ValueError as exc:  # e.g. hatt-arch without an arch
            errors.append(TaskResult(task.case, task.kind, error=str(exc)))
            continue
        except Exception as exc:  # noqa: BLE001 - e.g. unreadable backing file
            errors.append(
                TaskResult(task.case, task.kind, error=f"{type(exc).__name__}: {exc}")
            )
            continue
        by_fp.setdefault(fp, []).append(task)
    return srcs, hams, by_fp, errors


def _evaluate(
    task: BatchTask,
    fp: str,
    mapping,
    source: str,
    compile_seconds: float,
    h: FermionOperator | None,
    evaluate: bool,
    weight: int | None = None,
) -> TaskResult:
    if weight is None and evaluate and mapping is not None and h is not None:
        weight = mapping.map(h).pauli_weight()
    return TaskResult(
        case=task.case,
        kind=task.kind,
        fingerprint=fp,
        n_modes=mapping.n_modes if mapping is not None else None,
        cache_hit=source in ("memory", "disk"),
        source=source,
        compile_seconds=compile_seconds,
        pauli_weight=weight,
    )


def iter_compile_suite(
    cases: Sequence[str],
    kinds: Sequence[str] | None = None,
    *,
    jobs: int = 1,
    cache_dir: str | None = None,
    use_cache: bool = True,
    hatt_backend: str = "vector",
    arch: str | None = None,
    arch_weight: float | None = None,
    evaluate: bool = True,
    timings: StageTimings | None = None,
) -> Iterator[TaskResult]:
    """Stream :class:`TaskResult`\\ s for a suite as compiles complete.

    ``jobs > 1`` fans the *unique-fingerprint* compiles over a process pool;
    duplicate tasks ride along for free.  ``use_cache=False`` disables the
    disk store (each run recompiles; parallel dedup still applies).
    ``arch``/``arch_weight`` configure any ``hatt-arch`` tasks in the suite.
    ``timings`` (optional) accumulates per-stage wall time across every
    compile — worker spans included.
    """
    tasks = expand_tasks(cases, kinds)
    srcs, hams, by_fp, errors = _plan(tasks, hatt_backend, arch, arch_weight)
    yield from errors

    def ham_for(case: str) -> FermionOperator:
        """The built operator of a planned case (file-backed build lazily;
        the source instance caches, so one build serves every fp group)."""
        if case not in hams:
            hams[case] = srcs[case].build()  # type: ignore[union-attr]
        return hams[case]

    if jobs <= 1 or len(by_fp) <= 1:
        service = MappingService(cache_dir=cache_dir, use_disk=use_cache)
        for fp, fp_tasks in by_fp.items():
            spec = _spec_for(fp_tasks[0].kind, hatt_backend, arch, arch_weight)
            trace_ctx = TraceContext()
            try:
                h = ham_for(fp_tasks[0].case)
                with activate(trace_ctx):
                    result = service.get_or_compile(h, spec)
            except Exception as exc:  # noqa: BLE001 - keep the suite going
                for task in fp_tasks:
                    yield TaskResult(task.case, task.kind, fingerprint=fp,
                                     error=f"{type(exc).__name__}: {exc}")
                continue
            finally:
                if timings is not None:
                    timings.merge_spans(trace_ctx.spans)
            # Equal-fingerprint tasks share canonical terms, so one mapped
            # Pauli weight (from the group's representative) serves them all.
            lead = _evaluate(fp_tasks[0], fp, result.mapping, result.source,
                             result.compile_seconds, h, evaluate)
            yield lead
            for task in fp_tasks[1:]:
                yield _evaluate(task, fp, result.mapping, result.source,
                                result.compile_seconds, None, evaluate,
                                weight=lead.pauli_weight)
        return

    # Parallel path: one pool task per unique fingerprint.  File-backed
    # sources ship their spec string; workers resolve it locally and also
    # run the Pauli-weight evaluation, so the parent never builds them.
    def worker_payload(case: str):
        src = srcs[case]
        if src is not None and src.file_backed:
            return ("spec", src.spec)
        return ("op", ham_for(case))

    max_workers = min(jobs, len(by_fp), os.cpu_count() or 1)
    with ProcessPoolExecutor(max_workers=max_workers, mp_context=pool_context()) as pool:
        futures = {
            pool.submit(
                _compile_worker,
                (worker_payload(fp_tasks[0].case), fp_tasks[0].kind, hatt_backend,
                 arch, arch_weight, cache_dir, use_cache, fp, evaluate),
            ): fp
            for fp, fp_tasks in by_fp.items()
        }
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                fp = futures[future]
                fp_tasks = by_fp[fp]
                weight = None
                try:
                    fp_result, doc, source, secs, err, spans, weight = future.result()
                    if timings is not None:
                        timings.merge_spans(spans)
                except Exception as exc:  # noqa: BLE001 - e.g. BrokenProcessPool
                    # A dead worker (OOM kill, segfault) must cost its own
                    # tasks, not the rest of the suite.
                    err = f"{type(exc).__name__}: {exc}"
                if err is not None:
                    for task in fp_tasks:
                        yield TaskResult(task.case, task.kind, fingerprint=fp,
                                         source="error", error=err)
                    continue
                mapping = mapping_from_dict(doc)
                for task in fp_tasks:
                    yield _evaluate(task, fp, mapping, source, secs,
                                    None, evaluate, weight=weight)


def compile_suite(
    cases: Sequence[str],
    kinds: Sequence[str] | None = None,
    *,
    jobs: int = 1,
    cache_dir: str | None = None,
    use_cache: bool = True,
    hatt_backend: str = "vector",
    arch: str | None = None,
    arch_weight: float | None = None,
    evaluate: bool = True,
    progress=None,
) -> SuiteReport:
    """Run a suite to completion and return its :class:`SuiteReport`.

    ``progress`` (optional callable) receives each :class:`TaskResult` as it
    streams in — the CLI uses it for live per-task lines.
    """
    start = time.perf_counter()
    report = SuiteReport(jobs=jobs)
    for result in iter_compile_suite(
        cases,
        kinds,
        jobs=jobs,
        cache_dir=cache_dir,
        use_cache=use_cache,
        hatt_backend=hatt_backend,
        arch=arch,
        arch_weight=arch_weight,
        evaluate=evaluate,
        timings=report.timings,
    ):
        report.tasks.append(result)
        if progress is not None:
            progress(result)
    report.wall_seconds = time.perf_counter() - start
    fps = {t.fingerprint for t in report.tasks if t.ok and t.fingerprint}
    report.n_unique = len(fps)
    # Deterministic report order regardless of completion order.
    report.tasks.sort(key=lambda t: (t.case, t.kind))
    return report
