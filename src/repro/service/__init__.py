"""Compilation service layer: fingerprints, artifact cache, batch orchestration.

HATT mappings are Hamiltonian-adaptive, so every distinct problem instance
pays a fresh O(N^3)–O(N^4) compile.  This package treats compiled mappings as
cacheable, shareable artifacts keyed by the *physics* of the request:

* :mod:`.fingerprint` — order-invariant, coefficient-tolerant content hashes
  over normal-ordered Hamiltonian terms plus the mapping config;
* :mod:`.store` — a content-addressed on-disk artifact store with atomic
  writes and corruption-safe loads;
* :mod:`.service` — the :class:`MappingService` get-or-compile facade
  (memory LRU → disk → compile, single-flight dedup, hit/miss statistics);
* :mod:`.batch` — :func:`compile_suite`, fanning cases × mappings across a
  process pool with fingerprint-level dedup and streamed results.
"""

from .fingerprint import (
    ADAPTIVE_KINDS,
    DEFAULT_SPILL_AT,
    DEFAULT_TOLERANCE,
    MAPPING_KINDS,
    STATIC_KINDS,
    MappingSpec,
    canonical_terms,
    fingerprint_operator,
    fingerprint_request,
    fingerprint_request_stream,
    fingerprint_stream,
)
from .store import NAMESPACES, ArtifactStore, default_cache_dir
from .service import CompileResult, MappingService, compile_mapping
from .batch import (
    BatchTask,
    SuiteReport,
    TaskResult,
    compile_suite,
    expand_tasks,
    iter_compile_suite,
    pool_context,
)

__all__ = [
    "MappingSpec",
    "MAPPING_KINDS",
    "STATIC_KINDS",
    "ADAPTIVE_KINDS",
    "DEFAULT_TOLERANCE",
    "DEFAULT_SPILL_AT",
    "canonical_terms",
    "fingerprint_operator",
    "fingerprint_request",
    "fingerprint_request_stream",
    "fingerprint_stream",
    "ArtifactStore",
    "NAMESPACES",
    "default_cache_dir",
    "MappingService",
    "CompileResult",
    "compile_mapping",
    "BatchTask",
    "TaskResult",
    "SuiteReport",
    "expand_tasks",
    "compile_suite",
    "iter_compile_suite",
    "pool_context",
]
