"""Weight-minimizing search over the Fermihedral encoding.

Linear-descent strategy (each bound gets a fresh solver — the encoding is
small at the mode counts where SAT is feasible at all): start from the best
constructive upper bound, repeatedly demand strictly smaller weight until
UNSAT (optimal) or the time budget runs out (approximate — the paper marks
such results with '*').
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..fermion import FermionOperator, MajoranaOperator
from ..mappings.base import FermionQubitMapping
from .encoding import MappingEncoding
from .sat import SAT, UNKNOWN, UNSAT, Solver

__all__ = ["fermihedral_mapping", "FermihedralResult"]


@dataclass
class FermihedralResult:
    """Outcome of the SAT search."""

    mapping: FermionQubitMapping | None
    weight: int | None  # Hamiltonian Pauli weight of `mapping`
    optimal: bool  # proved optimal (paper: plain number vs '*')
    timed_out: bool
    solve_time: float

    @property
    def label(self) -> str:
        """Table annotation: '123', '123*', or '--'."""
        if self.mapping is None:
            return "--"
        return f"{self.weight}{'' if self.optimal else '*'}"


def _majorana_terms(
    hamiltonian: FermionOperator | MajoranaOperator,
) -> MajoranaOperator:
    if isinstance(hamiltonian, FermionOperator):
        return MajoranaOperator.from_fermion_operator(hamiltonian)
    return hamiltonian


def fermihedral_mapping(
    hamiltonian: FermionOperator | MajoranaOperator,
    n_modes: int | None = None,
    time_limit: float = 60.0,
    upper_bound: int | None = None,
) -> FermihedralResult:
    """SAT-search the minimum-Pauli-weight mapping for ``hamiltonian``.

    ``upper_bound``: a known achievable weight (e.g. from HATT); the search
    starts just below it.  Practical only for N ≲ 4 — exactly the paper's
    observation that exhaustive search does not scale (Fig. 12).
    """
    majorana = _majorana_terms(hamiltonian)
    if n_modes is None:
        n_modes = majorana.n_modes
    terms = majorana.support_terms()
    start = time.monotonic()
    deadline = start + time_limit

    best_strings = None
    best_weight = None
    optimal = False
    timed_out = False

    if upper_bound is None:
        # Constructive warm start keeps the first SAT call easy.
        from ..hatt import hatt_mapping

        hatt = hatt_mapping(majorana, n_modes=n_modes, vacuum=False)
        ub = hatt.map(majorana).pauli_weight()
    else:
        ub = upper_bound

    bound = ub - 1
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            timed_out = True
            break
        enc = MappingEncoding(n_modes, terms)
        enc.add_validity_constraints()
        enc.add_weight_bound(bound)
        status = enc.solver.solve(time_limit=remaining)
        if status == UNKNOWN:
            timed_out = True
            break
        if status == UNSAT:
            optimal = True
            break
        strings = enc.decode()
        # Recompute the true weight: the model may beat the bound.
        from ..mappings.apply import map_majorana_operator

        weight = map_majorana_operator(majorana, strings, n_modes).pauli_weight()
        best_strings, best_weight = strings, weight
        bound = min(bound, weight) - 1
        if bound < 0:
            optimal = True
            break

    mapping = None
    if best_strings is not None:
        mapping = FermionQubitMapping(best_strings, name="FH")
    elif optimal:
        # The constructive upper bound itself was optimal; re-derive it so the
        # caller still gets a mapping.  (UNSAT at ub-1 proves ub optimal.)
        from ..hatt import hatt_mapping

        if upper_bound is None:
            hatt = hatt_mapping(majorana, n_modes=n_modes, vacuum=False)
            mapping = FermionQubitMapping(list(hatt.strings), name="FH")
            best_weight = ub
        else:
            mapping, best_weight = None, upper_bound
    return FermihedralResult(
        mapping=mapping,
        weight=best_weight,
        optimal=optimal and not timed_out,
        timed_out=timed_out,
        solve_time=time.monotonic() - start,
    )
