"""A compact CDCL SAT solver.

Fermihedral [Liu et al., ASPLOS'24] finds Pauli-weight-optimal fermion-to-
qubit mappings with an industrial SAT solver; offline we bring our own.
This is a classic conflict-driven clause-learning solver with two-literal
watches, 1UIP learning, VSIDS-style activities, phase saving, and geometric
restarts — enough to handle the few-thousand-variable instances the
Fermihedral encoding produces for small mode counts.

Literals are non-zero ints (DIMACS convention): ``+v`` is variable ``v``
true, ``-v`` false.
"""

from __future__ import annotations

import time

__all__ = ["Solver", "SAT", "UNSAT", "UNKNOWN"]

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"


class Solver:
    """CDCL solver; build with :meth:`add_clause`, then :meth:`solve`."""

    def __init__(self):
        self.n_vars = 0
        self.clauses: list[list[int]] = []
        self.watches: dict[int, list[int]] = {}
        self.assign: dict[int, bool] = {}
        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self.reason: dict[int, int | None] = {}
        self.level: dict[int, int] = {}
        self.activity: dict[int, float] = {}
        self.phase: dict[int, bool] = {}
        self.var_inc = 1.0
        self._unsat = False
        self._units: list[int] = []

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        self.n_vars += 1
        return self.n_vars

    def add_clause(self, literals: list[int]) -> None:
        lits = sorted(set(literals), key=abs)
        if any(-l in lits for l in lits):
            return  # tautology
        if not lits:
            self._unsat = True
            return
        for l in lits:
            self.n_vars = max(self.n_vars, abs(l))
        if len(lits) == 1:
            # Unit clauses become level-0 facts at solve time; the two-watch
            # scheme needs at least two literals.
            self._units.append(lits[0])
            return
        idx = len(self.clauses)
        self.clauses.append(lits)
        for l in lits[:2]:
            self.watches.setdefault(l, []).append(idx)

    # ------------------------------------------------------------------
    # Core machinery
    # ------------------------------------------------------------------
    def _value(self, lit: int):
        v = self.assign.get(abs(lit))
        if v is None:
            return None
        return v if lit > 0 else not v

    def _enqueue(self, lit: int, reason: int | None) -> None:
        self.assign[abs(lit)] = lit > 0
        self.reason[abs(lit)] = reason
        self.level[abs(lit)] = len(self.trail_lim)
        self.trail.append(lit)

    def _propagate(self) -> int | None:
        """Unit propagation; returns a conflicting clause index or None."""
        while self._qhead < len(self.trail):
            lit = self.trail[self._qhead]
            self._qhead += 1
            falsified = -lit
            watchers = self.watches.get(falsified, [])
            new_watchers = []
            j = 0
            while j < len(watchers):
                ci = watchers[j]
                j += 1
                clause = self.clauses[ci]
                # Ensure falsified literal is in slot 1.
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) is True:
                    new_watchers.append(ci)
                    continue
                # Search replacement watch.
                found = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) is not False:
                        clause[1], clause[k] = clause[k], clause[1]
                        self.watches.setdefault(clause[1], []).append(ci)
                        found = True
                        break
                if found:
                    continue
                new_watchers.append(ci)
                if self._value(first) is False:
                    # Conflict: keep remaining watchers.
                    new_watchers.extend(watchers[j:])
                    self.watches[falsified] = new_watchers
                    return ci
                self._enqueue(first, ci)
            self.watches[falsified] = new_watchers
        return None

    def _bump(self, var: int) -> None:
        self.activity[var] = self.activity.get(var, 0.0) + self.var_inc

    def _decay(self) -> None:
        self.var_inc /= 0.95
        if self.var_inc > 1e100:
            for v in self.activity:
                self.activity[v] *= 1e-100
            self.var_inc = 1.0

    def _analyze(self, conflict: int) -> tuple[list[int], int]:
        """1UIP conflict analysis -> (learned clause, backjump level)."""
        learned: list[int] = []
        seen: set[int] = set()
        counter = 0
        lit = None
        clause = list(self.clauses[conflict])
        idx = len(self.trail) - 1
        current_level = len(self.trail_lim)
        while True:
            for l in clause:
                v = abs(l)
                if v in seen or (lit is not None and l == lit):
                    continue
                if v not in self.level:
                    continue
                seen.add(v)
                self._bump(v)
                if self.level[v] == current_level:
                    counter += 1
                elif self.level[v] > 0:
                    learned.append(l)
            # Walk the trail backwards to the next seen literal.
            while abs(self.trail[idx]) not in seen:
                idx -= 1
            lit = self.trail[idx]
            idx -= 1
            counter -= 1
            if counter == 0:
                learned.append(-lit)
                break
            clause = [l for l in self.clauses[self.reason[abs(lit)]] if l != lit]
        if len(learned) == 1:
            return learned, 0
        levels = sorted({self.level[abs(l)] for l in learned[:-1]})
        return learned, levels[-1] if levels else 0

    def _backtrack(self, target_level: int) -> None:
        while len(self.trail_lim) > target_level:
            mark = self.trail_lim.pop()
            while len(self.trail) > mark:
                lit = self.trail.pop()
                v = abs(lit)
                self.phase[v] = lit > 0
                del self.assign[v]
                del self.reason[v]
                del self.level[v]
        self._qhead = min(self._qhead, len(self.trail))

    def _decide(self) -> int | None:
        best_v, best_a = None, -1.0
        for v in range(1, self.n_vars + 1):
            if v not in self.assign:
                a = self.activity.get(v, 0.0)
                if a > best_a:
                    best_v, best_a = v, a
        if best_v is None:
            return None
        return best_v if self.phase.get(best_v, False) else -best_v

    # ------------------------------------------------------------------
    # Public solve
    # ------------------------------------------------------------------
    def solve(self, time_limit: float | None = None) -> str:
        if self._unsat:
            return UNSAT
        self._qhead = 0
        for u in self._units:
            val = self._value(u)
            if val is False:
                return UNSAT
            if val is None:
                self._enqueue(u, None)
        deadline = time.monotonic() + time_limit if time_limit else None
        conflicts_until_restart = 100
        conflict_count = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                conflict_count += 1
                if not self.trail_lim:
                    return UNSAT
                learned, back_level = self._analyze(conflict)
                self._backtrack(back_level)
                idx = len(self.clauses)
                # Slot 0: the asserting literal; slot 1: the deepest remaining
                # literal (first to unassign later — keeps watches healthy).
                rest = learned[:-1]
                rest.sort(key=lambda l: self.level.get(abs(l), 0), reverse=True)
                learned = [learned[-1]] + rest
                self.clauses.append(learned)
                for l in learned[:2]:
                    self.watches.setdefault(l, []).append(idx)
                self._enqueue(learned[0], idx if len(learned) > 1 else None)
                self._decay()
                if conflict_count >= conflicts_until_restart:
                    conflict_count = 0
                    conflicts_until_restart = int(conflicts_until_restart * 1.3)
                    self._backtrack(0)
                continue
            if deadline is not None and time.monotonic() > deadline:
                return UNKNOWN
            decision = self._decide()
            if decision is None:
                return SAT
            self.trail_lim.append(len(self.trail))
            self._enqueue(decision, None)

    def model(self) -> dict[int, bool]:
        """Satisfying assignment (call after ``solve() == SAT``)."""
        return dict(self.assign)
