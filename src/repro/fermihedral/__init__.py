"""Fermihedral-style SAT-optimal mapping search (exhaustive baseline)."""

from .encoding import MappingEncoding
from .sat import SAT, UNKNOWN, UNSAT, Solver
from .search import FermihedralResult, fermihedral_mapping

__all__ = [
    "Solver",
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "MappingEncoding",
    "FermihedralResult",
    "fermihedral_mapping",
]
