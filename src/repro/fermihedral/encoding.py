"""CNF encoding of the optimal fermion-to-qubit mapping problem.

Following Fermihedral [Liu et al., ASPLOS'24]: a mapping for N modes is 2N
Pauli strings encoded by symplectic bits ``x[i][q]``, ``z[i][q]``.  Validity
is pairwise anticommutation — the symplectic inner product of every string
pair must be 1 (an XOR-of-ANDs parity constraint per pair).  Pairwise
anticommutation of 2N non-identity strings already implies algebraic
independence (see ``tests/test_fermihedral.py::test_anticommutation_implies_independence``),
so no extra constraint is needed.

The objective — the Pauli weight of the mapped Hamiltonian — is encoded as
one indicator per (term, qubit): the term's product has a non-identity
operator on ``q`` iff the XOR of its strings' x-bits or z-bits is 1.  A
sequential-counter cardinality constraint caps the indicator sum at ``k``;
the search layer binary-searches ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..paulis import PauliString
from .sat import Solver

__all__ = ["MappingEncoding"]


@dataclass
class MappingEncoding:
    """CNF builder for an N-mode instance with Hamiltonian terms."""

    n_modes: int
    terms: list[tuple[int, ...]]  # Majorana index subsets
    solver: Solver = field(default_factory=Solver)

    def __post_init__(self):
        n, s = self.n_modes, self.solver
        if n < 1:
            raise ValueError("need at least one mode")
        for t in self.terms:
            if any(i >= 2 * n for i in t):
                raise ValueError("term references a Majorana outside 2N")
        self.x = [[s.new_var() for _ in range(n)] for _ in range(2 * n)]
        self.z = [[s.new_var() for _ in range(n)] for _ in range(2 * n)]
        self._indicators: list[int] | None = None

    # ------------------------------------------------------------------
    # Gadgets
    # ------------------------------------------------------------------
    def _and(self, a: int, b: int) -> int:
        """t <-> a ∧ b."""
        s = self.solver
        t = s.new_var()
        s.add_clause([-t, a])
        s.add_clause([-t, b])
        s.add_clause([t, -a, -b])
        return t

    def _xor(self, a: int, b: int) -> int:
        """t <-> a ⊕ b."""
        s = self.solver
        t = s.new_var()
        s.add_clause([-t, a, b])
        s.add_clause([-t, -a, -b])
        s.add_clause([t, -a, b])
        s.add_clause([t, a, -b])
        return t

    def _xor_chain(self, lits: list[int]) -> int:
        """Auxiliary variable equal to the parity of ``lits`` (non-empty)."""
        acc = lits[0]
        for l in lits[1:]:
            acc = self._xor(acc, l)
        return acc

    def _or(self, a: int, b: int) -> int:
        s = self.solver
        t = s.new_var()
        s.add_clause([-t, a, b])
        s.add_clause([t, -a])
        s.add_clause([t, -b])
        return t

    # ------------------------------------------------------------------
    # Constraints
    # ------------------------------------------------------------------
    def add_validity_constraints(self) -> None:
        """Pairwise anticommutation + non-identity strings."""
        n, s = self.n_modes, self.solver
        for i in range(2 * n):
            s.add_clause(self.x[i] + self.z[i])  # not the identity
        for i in range(2 * n):
            for j in range(i + 1, 2 * n):
                # parity over q of x_i z_j ⊕ z_i x_j must be 1
                parities = []
                for q in range(n):
                    a = self._and(self.x[i][q], self.z[j][q])
                    b = self._and(self.z[i][q], self.x[j][q])
                    parities.append(self._xor(a, b))
                s.add_clause([self._xor_chain(parities)])

    def weight_indicators(self) -> list[int]:
        """One variable per (term, qubit), true iff the mapped term has a
        non-identity operator there."""
        if self._indicators is not None:
            return self._indicators
        out: list[int] = []
        for term in self.terms:
            for q in range(self.n_modes):
                xs = [self.x[i][q] for i in term]
                zs = [self.z[i][q] for i in term]
                out.append(self._or(self._xor_chain(xs), self._xor_chain(zs)))
        self._indicators = out
        return out

    def add_weight_bound(self, k: int) -> None:
        """Sequential-counter encoding of ``Σ indicators ≤ k``."""
        s = self.solver
        lits = self.weight_indicators()
        m = len(lits)
        if k >= m:
            return
        if k < 0:
            s.add_clause([])
            return
        if k == 0:
            for l in lits:
                s.add_clause([-l])
            return
        # registers[i][j]: at least j+1 of the first i+1 lits are true.
        prev = [s.new_var() for _ in range(k)]
        s.add_clause([-lits[0], prev[0]])
        for j in range(1, k):
            s.add_clause([-prev[j]])
        for i in range(1, m):
            cur = [s.new_var() for _ in range(k)]
            s.add_clause([-lits[i], cur[0]])
            for j in range(k):
                s.add_clause([-prev[j], cur[j]])
                if j + 1 < k:
                    s.add_clause([-lits[i], -prev[j], cur[j + 1]])
            # Overflow: lits[i] with k already reached is forbidden.
            s.add_clause([-lits[i], -prev[k - 1]])
            prev = cur

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(self) -> list[PauliString]:
        """Read the 2N Pauli strings out of a satisfying model."""
        model = self.solver.model()
        n = self.n_modes
        strings = []
        for i in range(2 * n):
            xm = zm = 0
            for q in range(n):
                if model.get(self.x[i][q], False):
                    xm |= 1 << q
                if model.get(self.z[i][q], False):
                    zm |= 1 << q
            strings.append(PauliString(n, xm, zm))
        return strings
