"""Z2-symmetry qubit tapering [Bravyi–Gambetta–Mezzacapo–Temme 2017].

The paper's related-work section positions tapering ("parity mapping [4]")
as a compatible post-mapping optimization; this module implements it so the
library covers the full mapping-optimization toolchain:

1. :func:`find_z2_symmetries` — Pauli strings commuting with *every* term of
   the qubit Hamiltonian (the GF(2) kernel of the term matrix under the
   symplectic form), excluding the identity;
2. :func:`taper` — conjugate by the Clifford ``U_i = (X_{q_i} + τ_i)/√2``
   per symmetry, which maps ``τ_i`` onto the single-qubit ``X_{q_i}``; every
   Hamiltonian term then acts as I or X on the pivot, so the pivot qubit is
   replaced by its ±1 eigenvalue (the symmetry sector) and removed.

Tapering composes with any fermion-to-qubit mapping produced by this
library (JW/BK/BTT/HATT/FH alike).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..paulis import PauliString, QubitOperator

__all__ = ["find_z2_symmetries", "taper", "TaperedOperator", "sector_of_state"]


def _kernel_basis(rows: list[int], width: int) -> list[int]:
    """Basis of the GF(2) null space of the row space ``rows`` (bitmask form):
    vectors v with popcount(row & v) even for every row."""
    # Gaussian elimination to row-echelon form, tracking pivot columns.
    echelon: list[int] = []
    pivots: list[int] = []
    for row in rows:
        for e, p in zip(echelon, pivots):
            if (row >> p) & 1:
                row ^= e
        if row:
            pivot = row.bit_length() - 1
            echelon.append(row)
            pivots.append(pivot)
    free = [c for c in range(width) if c not in pivots]
    basis = []
    for f in free:
        v = 1 << f
        # Back-substitute to satisfy every echelon row.
        for e, p in sorted(zip(echelon, pivots), key=lambda t: t[1]):
            if (e & v).bit_count() % 2 == 1:
                v ^= 1 << p
        basis.append(v)
    return basis


def find_z2_symmetries(op: QubitOperator) -> list[PauliString]:
    """Independent, pairwise-commuting Pauli symmetries of ``op``.

    A candidate τ = (xt, zt) commutes with term (x, z) iff
    popcount(x·zt) + popcount(z·xt) is even — i.e. τ's *swapped* symplectic
    vector lies in the kernel of the term matrix.
    """
    n = op.n
    rows = [x | (z << n) for x, z, _ in op.raw_terms()]
    mask = (1 << n) - 1
    symmetries: list[PauliString] = []
    for v in _kernel_basis(rows, 2 * n):
        # v = (a | b<<n) pairs with terms as popcount(x·a + z·b); the Pauli τ
        # with x-part b and z-part a satisfies the commutation condition.
        tau = PauliString(n, (v >> n) & mask, v & mask)
        if tau.is_identity:
            continue
        if all(tau.commutes_with(s) for s in symmetries):
            symmetries.append(tau)
    return symmetries


@dataclass
class TaperedOperator:
    """Result of tapering: the reduced operator plus bookkeeping."""

    operator: QubitOperator
    pivots: list[int]  # removed qubit per symmetry (original indexing)
    symmetries: list[PauliString]
    sector: tuple[int, ...]


def _conjugate_by_u(op: QubitOperator, a: PauliString, b: PauliString) -> QubitOperator:
    """U H U with U = (A + B)/√2 (A, B Hermitian, anticommuting)."""
    u = QubitOperator.from_terms([(a, 2 ** -0.5), (b, 2 ** -0.5)])
    return (u * op * u).simplify()


def _drop_qubit(
    op: QubitOperator, q: int, eigenvalue: int, axis: str
) -> QubitOperator:
    """Replace the ``axis`` operator (or I) on ``q`` by ``eigenvalue`` and
    delete qubit ``q``.  ``axis`` is 'X' or 'Z' — the single-qubit image of
    the tapered symmetry."""
    low = (1 << q) - 1
    out = QubitOperator(op.n - 1)
    forbidden = "z" if axis == "X" else "x"
    for x, z, coeff in op.raw_terms():
        bad = (z if forbidden == "z" else x) >> q & 1
        if bad:
            raise ValueError(
                f"term has a non-{axis} operator on pivot qubit {q}; the "
                "operator does not commute with the symmetry"
            )
        hit = (x if axis == "X" else z) >> q & 1
        if hit:
            coeff = coeff * eigenvalue
        new_x = (x & low) | ((x >> (q + 1)) << q)
        new_z = (z & low) | ((z >> (q + 1)) << q)
        out.add_raw(new_x, new_z, coeff)
    return out.simplify()


def sector_of_state(symmetries: list[PauliString], bits: int) -> tuple[int, ...]:
    """±1 eigenvalues of Z-type symmetries on basis state ``|bits⟩``.

    Raises if a symmetry has X/Y support (no definite eigenvalue on a
    computational basis state).
    """
    sector = []
    for tau in symmetries:
        if tau.x:
            raise ValueError(f"{tau!r} is not diagonal; pick the sector manually")
        sign = (-1) ** ((tau.z & bits).bit_count() + (1 if tau.phase == 2 else 0))
        sector.append(int(sign))
    return tuple(sector)


def taper(
    op: QubitOperator,
    symmetries: list[PauliString] | None = None,
    sector: tuple[int, ...] | None = None,
) -> TaperedOperator:
    """Remove one qubit per Z2 symmetry.

    ``sector`` selects the ±1 eigenvalue of each symmetry (default all +1);
    the spectrum of the returned operator is the restriction of ``op`` to
    that symmetry sector.
    """
    if symmetries is None:
        symmetries = find_z2_symmetries(op)
    if sector is None:
        sector = tuple(1 for _ in symmetries)
    if len(sector) != len(symmetries):
        raise ValueError("need one sector eigenvalue per symmetry")
    if not symmetries:
        return TaperedOperator(op.copy(), [], [], ())

    n = op.n
    current = op.copy()
    taus = list(symmetries)
    pivots: list[int] = []
    axes: list[str] = []
    for i, tau in enumerate(taus):
        # Pivot: a support qubit not yet used.  The rotation axis is a
        # single-qubit Pauli anticommuting with tau's operator there:
        # X_q against Z/Y, Z_q against a pure X.
        z_candidates = [
            q for q in range(n) if (tau.z >> q) & 1 and q not in pivots
        ]
        x_candidates = [
            q
            for q in range(n)
            if (tau.x >> q) & 1 and not (tau.z >> q) & 1 and q not in pivots
        ]
        if z_candidates:
            q, axis = z_candidates[0], "X"
        elif x_candidates:
            q, axis = x_candidates[0], "Z"
        else:
            raise ValueError(f"symmetry {tau!r} has no usable pivot qubit")
        pivots.append(q)
        axes.append(axis)
        axis_pauli = PauliString.single(n, q, axis)
        hermitian_tau = tau if tau.is_hermitian else tau.with_phase(0)
        current = _conjugate_by_u(current, axis_pauli, hermitian_tau)
        # Conjugate the remaining symmetries into the new frame too.
        for j in range(i + 1, len(taus)):
            conj = _conjugate_by_u(
                QubitOperator.from_terms([(taus[j], 1.0)]), axis_pauli, hermitian_tau
            )
            ((x, z, c),) = list(conj.raw_terms())
            taus[j] = PauliString(n, x, z, 0 if c.real > 0 else 2)

    # Drop pivots from highest index down so indices stay valid.
    reduced = current
    order = sorted(range(len(pivots)), key=lambda i: -pivots[i])
    for i in order:
        reduced = _drop_qubit(reduced, pivots[i], sector[i], axes[i])
    return TaperedOperator(
        operator=reduced, pivots=pivots, symmetries=list(symmetries), sector=sector
    )
