"""Mapping serialization.

Compiled mappings are artifacts worth persisting (a HATT compile for a large
molecule takes minutes); this module round-trips them through a stable JSON
schema keyed by compact Pauli labels.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..paulis import PauliString
from .base import FermionQubitMapping

__all__ = ["mapping_to_dict", "mapping_from_dict", "save_mapping", "load_mapping"]

_SCHEMA_VERSION = 1


def mapping_to_dict(mapping: FermionQubitMapping) -> dict:
    return {
        "schema": _SCHEMA_VERSION,
        "name": mapping.name,
        "n_modes": mapping.n_modes,
        "n_qubits": mapping.n_qubits,
        "majorana_strings": [s.compact() for s in mapping.strings],
        "phases": [s.phase for s in mapping.strings],
        "discarded": mapping.discarded.compact() if mapping.discarded else None,
    }


def mapping_from_dict(data: dict) -> FermionQubitMapping:
    if data.get("schema") != _SCHEMA_VERSION:
        raise ValueError(f"unsupported mapping schema {data.get('schema')!r}")
    n = data["n_qubits"]
    strings = [
        PauliString.from_compact(label, n, phase=phase)
        for label, phase in zip(data["majorana_strings"], data["phases"])
    ]
    discarded = (
        PauliString.from_compact(data["discarded"], n)
        if data.get("discarded")
        else None
    )
    mapping = FermionQubitMapping(strings, name=data["name"], discarded=discarded)
    if mapping.n_modes != data["n_modes"]:
        raise ValueError("inconsistent mode count in serialized mapping")
    return mapping


def save_mapping(mapping: FermionQubitMapping, path: str | Path) -> None:
    Path(path).write_text(json.dumps(mapping_to_dict(mapping), indent=2))


def load_mapping(path: str | Path) -> FermionQubitMapping:
    return mapping_from_dict(json.loads(Path(path).read_text()))
