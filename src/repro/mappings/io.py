"""Mapping serialization.

Compiled mappings are artifacts worth persisting (a HATT compile for a large
molecule takes minutes); this module round-trips them through a stable JSON
schema keyed by compact Pauli labels.

Schema history
--------------
* **v1** — name, mode/qubit counts, Majorana strings + phases, discarded
  string.  Still loadable.
* **v2** (current) — adds two optional fields:

  - ``tree``: the ternary-tree topology as per-qubit ``children_uids``
    triples (see :func:`~repro.mappings.tree.tree_from_uid_arrays`), so a
    loaded HATT mapping keeps its tree — serialized artifacts stay
    inspectable and re-deriving vacuum pairings needs no recompile;
  - ``provenance``: free-form compile metadata written by the compilation
    service (schema version, compile wall time, repro version, …).

Writers always emit v2; both versions load.  A v2 document whose embedded
tree disagrees with its string list is rejected (``ValueError``), which the
service-layer store treats as corruption.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..paulis import PauliString
from .base import FermionQubitMapping
from .tree import children_uid_triples, tree_from_uid_arrays

__all__ = ["mapping_to_dict", "mapping_from_dict", "save_mapping", "load_mapping"]

_SCHEMA_VERSION = 2
_LOADABLE_SCHEMAS = (1, 2)


def mapping_to_dict(
    mapping: FermionQubitMapping, provenance: dict | None = None
) -> dict:
    """Serialize a mapping (plus its tree and provenance, when present).

    ``provenance`` overrides any ``mapping.provenance`` attached by a
    previous load; pass ``None`` to carry the existing one through.
    """
    tree = getattr(mapping, "tree", None)
    if tree is not None:
        # Only embed a topology that regenerates the stored strings in leaf
        # order (the HATT convention); a tree whose Majorana assignment comes
        # from vacuum pairing instead would fail the load-time consistency
        # check, so it is carried by the strings alone.
        try:
            _check_tree_matches_strings(tree, mapping)
        except ValueError:
            tree = None
    if provenance is None:
        provenance = getattr(mapping, "provenance", None)
    return {
        "schema": _SCHEMA_VERSION,
        "name": mapping.name,
        "n_modes": mapping.n_modes,
        "n_qubits": mapping.n_qubits,
        "majorana_strings": [s.compact() for s in mapping.strings],
        "phases": [s.phase for s in mapping.strings],
        "discarded": mapping.discarded.compact() if mapping.discarded else None,
        "tree": (
            {"children_uids": [list(t) for t in children_uid_triples(tree)]}
            if tree is not None
            else None
        ),
        "provenance": provenance,
    }


def mapping_from_dict(data: dict) -> FermionQubitMapping:
    schema = data.get("schema")
    if schema not in _LOADABLE_SCHEMAS:
        raise ValueError(f"unsupported mapping schema {schema!r}")
    n = data["n_qubits"]
    strings = [
        PauliString.from_compact(label, n, phase=phase)
        for label, phase in zip(data["majorana_strings"], data["phases"])
    ]
    discarded = (
        PauliString.from_compact(data["discarded"], n)
        if data.get("discarded")
        else None
    )
    mapping = FermionQubitMapping(strings, name=data["name"], discarded=discarded)
    if mapping.n_modes != data["n_modes"]:
        raise ValueError("inconsistent mode count in serialized mapping")
    if schema >= 2:
        tree_doc = data.get("tree")
        if tree_doc is not None:
            tree = tree_from_uid_arrays(
                tree_doc["children_uids"], mapping.n_modes
            )
            tree.validate()
            _check_tree_matches_strings(tree, mapping)
            mapping.tree = tree
        prov = data.get("provenance")
        if prov is not None:
            if not isinstance(prov, dict):
                raise ValueError("provenance must be a JSON object")
            mapping.provenance = prov
    return mapping


def _check_tree_matches_strings(tree, mapping: FermionQubitMapping) -> None:
    """The embedded topology must regenerate the stored strings (mod phase)."""
    derived = tree.strings_by_leaf_index()
    stored = list(mapping.strings) + (
        [mapping.discarded] if mapping.discarded is not None else []
    )
    if len(derived) != len(stored) or any(
        d.x != s.x or d.z != s.z for d, s in zip(derived, stored)
    ):
        raise ValueError("embedded tree is inconsistent with the Majorana strings")


def save_mapping(
    mapping: FermionQubitMapping,
    path: str | Path,
    provenance: dict | None = None,
) -> None:
    Path(path).write_text(
        json.dumps(mapping_to_dict(mapping, provenance=provenance), indent=2)
    )


def load_mapping(path: str | Path) -> FermionQubitMapping:
    return mapping_from_dict(json.loads(Path(path).read_text()))
