"""Fermion-to-qubit mappings: tree machinery, stock baselines, application."""

from .apply import map_fermion_operator, map_majorana_operator
from .io import load_mapping, mapping_from_dict, mapping_to_dict, save_mapping
from .tapering import TaperedOperator, find_z2_symmetries, sector_of_state, taper
from .base import FermionQubitMapping, symplectic_rank
from .standard import (
    balanced_ternary_tree,
    bravyi_kitaev,
    fenwick_sets,
    jordan_wigner,
    mapping_from_tree,
    parity_mapping,
)
from .tree import (
    TernaryTree,
    TreeNode,
    balanced_tree,
    jw_tree,
    parity_tree,
    tree_from_uid_arrays,
)

__all__ = [
    "FermionQubitMapping",
    "symplectic_rank",
    "map_fermion_operator",
    "map_majorana_operator",
    "load_mapping",
    "save_mapping",
    "mapping_to_dict",
    "mapping_from_dict",
    "find_z2_symmetries",
    "taper",
    "TaperedOperator",
    "sector_of_state",
    "jordan_wigner",
    "bravyi_kitaev",
    "parity_mapping",
    "balanced_ternary_tree",
    "mapping_from_tree",
    "fenwick_sets",
    "TernaryTree",
    "TreeNode",
    "balanced_tree",
    "jw_tree",
    "parity_tree",
    "tree_from_uid_arrays",
]
