"""The fermion-to-qubit mapping abstraction shared by all methods.

A mapping for an N-mode system is fully specified by the 2N Pauli strings
assigned to the Majorana operators ``M_0 … M_{2N-1}`` (paper §II-C).  All
concrete mappings (JW, BK, parity, BTT, HATT, Fermihedral) reduce to this
representation, so every metric and experiment downstream is
mapping-agnostic.
"""

from __future__ import annotations

from ..fermion import FermionOperator, MajoranaOperator
from ..paulis import PauliString, QubitOperator
from .apply import map_fermion_operator, map_majorana_operator

__all__ = ["FermionQubitMapping", "symplectic_rank"]


def symplectic_rank(strings: list[PauliString], n_qubits: int) -> int:
    """GF(2) rank of the strings' symplectic vectors ``(x | z << n)``.

    Algebraic independence of a set of Pauli strings (up to phase) is
    equivalent to full rank of this matrix.
    """
    rows = [s.x | (s.z << n_qubits) for s in strings]
    rank = 0
    for bit in range(2 * n_qubits):
        mask = 1 << bit
        pivot = next((r for r in rows if r & mask), None)
        if pivot is None:
            continue
        rank += 1
        rows = [r ^ pivot if (r & mask and r is not pivot) else r for r in rows]
        rows.remove(pivot)
    return rank


class FermionQubitMapping:
    """A concrete fermion-to-qubit mapping: 2N Majorana Pauli strings."""

    def __init__(
        self,
        majorana_strings: list[PauliString],
        name: str = "custom",
        discarded: PauliString | None = None,
    ):
        if len(majorana_strings) % 2 != 0:
            raise ValueError("need an even number of Majorana strings (2 per mode)")
        if not majorana_strings:
            raise ValueError("empty mapping")
        n = majorana_strings[0].n
        if any(s.n != n for s in majorana_strings):
            raise ValueError("all strings must act on the same qubit count")
        # Frozen: map() caches a packed table of these strings (packed_table),
        # so the sequence must not change after construction.
        self.strings = tuple(majorana_strings)
        self.n_qubits = n
        self.n_modes = len(majorana_strings) // 2
        self.name = name
        #: The unused (2N+1)-th ternary-tree string, when one exists.
        self.discarded = discarded
        self._table = None  # packed PauliTable of self.strings, built lazily

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def majorana(self, i: int) -> PauliString:
        """Pauli string for Majorana operator ``M_i``."""
        return self.strings[i]

    def occupation_pauli(self, mode: int) -> PauliString:
        """The Hermitian string ``P_j = i·S_2j·S_2j+1`` with ``n_j = (1 + P_j)/2``.

        Its ±1 eigenvalue encodes the occupation of ``mode`` (−1 ⇔ empty for
        vacuum-preserving mappings, since ``a†a = 1/2 + (i/2)·M_2j M_2j+1``).
        """
        prod = self.strings[2 * mode] * self.strings[2 * mode + 1]
        return prod.with_phase(prod.phase + 1)

    def mode_number_operator(self, mode: int) -> QubitOperator:
        """``n_mode`` as a qubit operator."""
        op = QubitOperator(self.n_qubits)
        op.add_string(PauliString.identity(self.n_qubits), 0.5)
        op.add_string(self.occupation_pauli(mode), 0.5)
        return op

    # ------------------------------------------------------------------
    # Operator mapping
    # ------------------------------------------------------------------
    @property
    def packed_table(self):
        """The Majorana strings packed as a :class:`~repro.paulis.PauliTable`.

        Built once and reused by every :meth:`map` call, so bulk mapping pays
        the string-packing cost a single time per mapping.
        """
        if self._table is None:
            from ..paulis import PauliTable

            self._table = PauliTable.from_strings(self.strings, n=self.n_qubits)
        return self._table

    def map(self, op: FermionOperator | MajoranaOperator) -> QubitOperator:
        """Map a fermionic or Majorana operator to a qubit operator."""
        if isinstance(op, FermionOperator):
            return map_fermion_operator(op, self.packed_table, self.n_qubits)
        if isinstance(op, MajoranaOperator):
            return map_majorana_operator(op, self.packed_table, self.n_qubits)
        raise TypeError(f"cannot map object of type {type(op).__name__}")

    # ------------------------------------------------------------------
    # Validity checks (used heavily by the test suite)
    # ------------------------------------------------------------------
    def anticommutation_ok(self) -> bool:
        """All distinct string pairs anticommute (Majorana CAR requirement)."""
        return all(
            self.strings[i].anticommutes_with(self.strings[j])
            for i in range(len(self.strings))
            for j in range(i + 1, len(self.strings))
        )

    def independent(self) -> bool:
        """Strings are algebraically independent (symplectic full rank)."""
        return symplectic_rank(self.strings, self.n_qubits) == len(self.strings)

    def is_valid(self) -> bool:
        return (
            all(not s.is_identity for s in self.strings)
            and self.anticommutation_ok()
            and self.independent()
        )

    def preserves_vacuum(self) -> bool:
        """Check ``a_j |0…0⟩ = 0`` for every mode, i.e. ``(S_2j + i·S_2j+1)|0…0⟩ = 0``."""
        for j in range(self.n_modes):
            even, odd = self.strings[2 * j], self.strings[2 * j + 1]
            bits_e, amp_e = even.apply_to_basis_state(0)
            bits_o, amp_o = odd.apply_to_basis_state(0)
            if bits_e != bits_o or abs(amp_e + 1j * amp_o) > 1e-12:
                return False
        return True

    def total_string_weight(self) -> int:
        """Σ_i w(S_i): the mapping's intrinsic weight (Fig. 12 workload)."""
        return sum(s.weight for s in self.strings)

    def __repr__(self) -> str:
        return (
            f"FermionQubitMapping({self.name}, modes={self.n_modes}, "
            f"qubits={self.n_qubits})"
        )
