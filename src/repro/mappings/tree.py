"""Complete ternary trees and Pauli-string extraction (paper §III-A).

A complete ternary tree with ``N`` internal nodes has ``2N + 1`` leaves.  Each
internal node is assigned a qubit; each root-to-leaf path spells a Pauli
string: an internal node on the path contributes X, Y or Z on its qubit
according to the branch the path takes, and I otherwise.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..paulis import PauliString

__all__ = [
    "TreeNode",
    "TernaryTree",
    "tree_from_uid_arrays",
    "children_uid_triples",
    "balanced_tree",
    "jw_tree",
    "parity_tree",
]

BRANCHES = ("X", "Y", "Z")


class TreeNode:
    """A node of a ternary tree.

    Internal nodes carry a ``qubit`` index and exactly three children;
    leaves carry a ``leaf_index`` (the Majorana index in HATT's convention).
    """

    __slots__ = ("qubit", "leaf_index", "children", "parent", "branch")

    def __init__(self, qubit: int | None = None, leaf_index: int | None = None):
        self.qubit = qubit
        self.leaf_index = leaf_index
        self.children: dict[str, "TreeNode"] = {}
        self.parent: "TreeNode | None" = None
        self.branch: str | None = None  # branch label from parent to this node

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def attach(self, branch: str, child: "TreeNode") -> None:
        if branch not in BRANCHES:
            raise ValueError(f"invalid branch {branch!r}")
        if branch in self.children:
            raise ValueError(f"branch {branch} already occupied")
        self.children[branch] = child
        child.parent = self
        child.branch = branch

    def desc_z(self) -> "TreeNode":
        """Z-descendant: follow Z branches down to a leaf (paper §IV-B)."""
        node = self
        while not node.is_leaf:
            node = node.children["Z"]
        return node

    def __repr__(self) -> str:
        if self.is_leaf:
            return f"Leaf({self.leaf_index})"
        return f"Internal(q{self.qubit})"


class TernaryTree:
    """A complete ternary tree defining a fermion-to-qubit mapping."""

    def __init__(self, root: TreeNode, n_qubits: int):
        self.root = root
        self.n_qubits = n_qubits
        self._leaves: dict[int, TreeNode] = {}
        self._internals: list[TreeNode] = []
        self._index_nodes()

    def _index_nodes(self) -> None:
        for node in self.iter_nodes():
            if node.is_leaf:
                if node.leaf_index is None:
                    raise ValueError("leaf without leaf_index")
                if node.leaf_index in self._leaves:
                    raise ValueError(f"duplicate leaf index {node.leaf_index}")
                self._leaves[node.leaf_index] = node
            else:
                if node.qubit is None:
                    raise ValueError("internal node without qubit")
                self._internals.append(node)

    def iter_nodes(self) -> Iterator[TreeNode]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    @property
    def n_internal(self) -> int:
        return len(self._internals)

    @property
    def n_leaves(self) -> int:
        return len(self._leaves)

    def leaf(self, index: int) -> TreeNode:
        return self._leaves[index]

    def validate(self) -> None:
        """Assert completeness: every internal node has exactly 3 children,
        leaf count is 2·internal + 1, and qubit labels are a permutation."""
        for node in self.iter_nodes():
            if not node.is_leaf and set(node.children) != set(BRANCHES):
                raise ValueError(f"internal node {node} lacks a full X/Y/Z child set")
        if self.n_leaves != 2 * self.n_internal + 1:
            raise ValueError(
                f"tree is not complete: {self.n_internal} internal nodes but "
                f"{self.n_leaves} leaves"
            )
        qubits = sorted(node.qubit for node in self._internals)
        if qubits != list(range(self.n_qubits)):
            raise ValueError("internal-node qubit labels are not 0..N-1")

    # ------------------------------------------------------------------
    # String extraction (paper Fig. 3)
    # ------------------------------------------------------------------
    def string_for_leaf(self, leaf: TreeNode) -> PauliString:
        """Walk from ``leaf`` up to the root collecting branch operators."""
        ops: dict[int, str] = {}
        node = leaf
        while node.parent is not None:
            ops[node.parent.qubit] = node.branch
            node = node.parent
        return PauliString.from_ops(ops, self.n_qubits)

    def strings_by_leaf_index(self) -> list[PauliString]:
        """All ``2N + 1`` strings ordered by leaf index."""
        return [self.string_for_leaf(self._leaves[i]) for i in sorted(self._leaves)]

    def vacuum_pairing(self) -> tuple[list[PauliString], PauliString]:
        """Majorana strings with vacuum-state preservation, plus the discarded string.

        For each internal node ``v`` (enumerated in qubit order), the leaves
        ``descZ(v.X)`` and ``descZ(v.Y)`` give strings sharing an (X, Y) pair
        on ``v.qubit`` while agreeing on ``|0⟩`` elsewhere (all deeper
        operators on the two paths are Z).  Assigning them to ``M_2l`` and
        ``M_2l+1`` yields ``a_l |0…0⟩ = 0`` for every mode ``l``.  The single
        unpaired leaf is ``descZ(root)`` (paper Lemma 1), returned separately.
        """
        strings: list[PauliString] = []
        for v in sorted(self._internals, key=lambda nd: nd.qubit):
            x_leaf = v.children["X"].desc_z()
            y_leaf = v.children["Y"].desc_z()
            strings.append(self.string_for_leaf(x_leaf))
            strings.append(self.string_for_leaf(y_leaf))
        discarded = self.string_for_leaf(self.root.desc_z())
        return strings, discarded


# ----------------------------------------------------------------------
# Bulk construction from uid arrays
# ----------------------------------------------------------------------
def tree_from_uid_arrays(
    children: Sequence[Sequence[int]], n_modes: int
) -> TernaryTree:
    """Bulk-build a complete ternary tree from per-qubit child-uid triples.

    ``children[q]`` holds the ``(X, Y, Z)`` child uids of qubit ``q``'s
    internal node under the bottom-up uid numbering used by the HATT
    construction: uids ``0..2·n_modes`` are leaves (uid == leaf index) and
    uid ``2·n_modes + 1 + q`` is qubit ``q``'s node.  All nodes are allocated
    up front and wired in one pass, so a construction backend can work purely
    on integer arrays and export the :class:`TreeNode` structure at the end.

    The root is the unique parentless node; callers should still
    :meth:`TernaryTree.validate` the result.
    """
    if len(children) != n_modes:
        raise ValueError(
            f"expected {n_modes} child triples for {n_modes} modes, got {len(children)}"
        )
    n_leaves = 2 * n_modes + 1
    nodes = [TreeNode(leaf_index=i) for i in range(n_leaves)]
    nodes.extend(TreeNode(qubit=q) for q in range(n_modes))
    for q, triple in enumerate(children):
        if len(triple) != 3:
            raise ValueError(f"qubit {q} has {len(triple)} children, expected 3")
        parent = nodes[n_leaves + q]
        for branch, uid in zip(BRANCHES, triple):
            uid = int(uid)
            if not 0 <= uid < len(nodes):
                raise ValueError(f"qubit {q} references unknown uid {uid}")
            parent.attach(branch, nodes[uid])
    roots = [node for node in nodes if node.parent is None]
    if len(roots) != 1:
        raise ValueError(f"expected exactly one root, found {len(roots)}")
    return TernaryTree(roots[0], n_modes)


def children_uid_triples(tree: TernaryTree) -> list[tuple[int, int, int]]:
    """Inverse of :func:`tree_from_uid_arrays`: per-qubit (X, Y, Z) child uids.

    Works for any complete ternary tree whose internal qubit labels are
    ``0..N-1``: a leaf's uid is its ``leaf_index`` and internal node ``q``'s
    uid is ``2N + 1 + q``, so
    ``tree_from_uid_arrays(children_uid_triples(t), t.n_internal)``
    reconstructs a tree with identical topology and Pauli strings.  This is
    the compact topology form embedded in schema-v2 mapping artifacts.
    """
    n_leaves = 2 * tree.n_internal + 1

    def uid(node: TreeNode) -> int:
        return node.leaf_index if node.is_leaf else n_leaves + node.qubit

    triples: dict[int, tuple[int, int, int]] = {}
    for node in tree.iter_nodes():
        if not node.is_leaf:
            triples[node.qubit] = tuple(uid(node.children[b]) for b in BRANCHES)
    if sorted(triples) != list(range(tree.n_internal)):
        raise ValueError("internal-node qubit labels are not 0..N-1")
    return [triples[q] for q in range(tree.n_internal)]


# ----------------------------------------------------------------------
# Stock tree builders
# ----------------------------------------------------------------------
def balanced_tree(n_modes: int) -> TernaryTree:
    """The balanced (minimum-depth) complete ternary tree of [Jiang et al.].

    Internal nodes fill positions 0..N-1 in BFS order (node ``k``'s children
    sit at ``3k+1, 3k+2, 3k+3``); positions ≥ N become leaves, numbered in BFS
    order.  Majorana assignment for this tree comes from
    :meth:`TernaryTree.vacuum_pairing`, which ignores leaf numbering.
    """
    if n_modes < 1:
        raise ValueError("need at least one mode")
    n = n_modes
    nodes = [TreeNode(qubit=k) for k in range(n)]
    leaf_count = 0
    all_positions: list[TreeNode] = list(nodes)
    for k in range(n):
        for b, pos in zip(BRANCHES, (3 * k + 1, 3 * k + 2, 3 * k + 3)):
            if pos < n:
                child = all_positions[pos]
            else:
                child = TreeNode(leaf_index=leaf_count)
                leaf_count += 1
                all_positions.append(child)
            nodes[k].attach(b, child)
    # Renumber leaves in BFS position order so indices increase left-to-right.
    tree = TernaryTree(nodes[0], n)
    tree.validate()
    return tree


def jw_tree(n_modes: int) -> TernaryTree:
    """The degenerate 'caterpillar' tree whose mapping equals Jordan–Wigner.

    Internal node at depth ``d`` is qubit ``d``; its X and Y children are
    leaves ``2d`` and ``2d+1`` and its Z child is the next internal node
    (the deepest node's Z child is leaf ``2N``).
    """
    if n_modes < 1:
        raise ValueError("need at least one mode")
    internals = [TreeNode(qubit=d) for d in range(n_modes)]
    for d, node in enumerate(internals):
        node.attach("X", TreeNode(leaf_index=2 * d))
        node.attach("Y", TreeNode(leaf_index=2 * d + 1))
        if d + 1 < n_modes:
            node.attach("Z", internals[d + 1])
        else:
            node.attach("Z", TreeNode(leaf_index=2 * n_modes))
    tree = TernaryTree(internals[0], n_modes)
    tree.validate()
    return tree


def parity_tree(n_modes: int) -> TernaryTree:
    """Caterpillar tree descending along X branches: the parity mapping.

    Mirror image of :func:`jw_tree` — the running chain uses X branches, so
    strings accumulate X (occupation-parity propagation) instead of Z.
    Internal node at depth ``d`` is qubit ``n-1-d`` so that qubit ``j`` stores
    the parity of modes ``0..j`` (matching the textbook parity transform).
    """
    if n_modes < 1:
        raise ValueError("need at least one mode")
    internals = [TreeNode(qubit=n_modes - 1 - d) for d in range(n_modes)]
    for d, node in enumerate(internals):
        node.attach("Z", TreeNode(leaf_index=2 * (n_modes - 1 - d)))
        node.attach("Y", TreeNode(leaf_index=2 * (n_modes - 1 - d) + 1))
        if d + 1 < n_modes:
            node.attach("X", internals[d + 1])
        else:
            node.attach("X", TreeNode(leaf_index=2 * n_modes))
    tree = TernaryTree(internals[0], n_modes)
    tree.validate()
    return tree
