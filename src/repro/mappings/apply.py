"""Apply a fermion-to-qubit mapping to operators.

This is the bulk path used by every experiment: it converts a
:class:`~repro.fermion.MajoranaOperator` (tens of thousands of monomials for
the larger molecules) into a :class:`~repro.paulis.QubitOperator` by
multiplying the mapped Majorana Pauli strings with exact phase tracking.
Everything runs on raw ``(x, z, k)`` integer triples.
"""

from __future__ import annotations

from ..fermion import FermionOperator, MajoranaOperator
from ..paulis import PauliString, QubitOperator
from ..paulis.algebra import mul_xzk

__all__ = ["map_majorana_operator", "map_fermion_operator"]

_PHASE = (1.0 + 0j, 1j, -1.0 + 0j, -1j)


def map_majorana_operator(
    op: MajoranaOperator, strings: list[PauliString], n_qubits: int
) -> QubitOperator:
    """Map ``Σ c_T Π_{i∈T} M_i`` to ``Σ c_T Π_{i∈T} S_i``, combining terms.

    ``strings[i]`` is the Pauli string assigned to Majorana ``M_i``.  Terms
    that cancel exactly disappear; the result is simplified to drop numerical
    dust below 1e-10.
    """
    if op.n_majoranas > len(strings):
        raise ValueError(
            f"operator touches Majorana {op.n_majoranas - 1} but only "
            f"{len(strings)} strings were supplied"
        )
    raw = [(s.x, s.z, s.phase) for s in strings]
    out = QubitOperator(n_qubits)
    for indices, coeff in op.terms():
        x = z = k = 0
        for i in indices:
            sx, sz, sk = raw[i]
            x, z, k = mul_xzk(x, z, k, sx, sz, sk)
        out.add_raw(x, z, coeff * _PHASE[k])
    return out.simplify()


def map_fermion_operator(
    op: FermionOperator, strings: list[PauliString], n_qubits: int
) -> QubitOperator:
    """Convenience wrapper: expand to Majoranas (paper Eq. 2) then map."""
    return map_majorana_operator(
        MajoranaOperator.from_fermion_operator(op), strings, n_qubits
    )
