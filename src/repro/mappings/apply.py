"""Apply a fermion-to-qubit mapping to operators.

This is the bulk path used by every experiment: it converts a
:class:`~repro.fermion.MajoranaOperator` (tens of thousands of monomials for
the larger molecules) into a :class:`~repro.paulis.QubitOperator` by
multiplying the mapped Majorana Pauli strings with exact phase tracking.

Two backends are provided:

* ``"table"`` (default) — the operator's monomials are multiplied as batched
  rows of a packed :class:`~repro.paulis.PauliTable`: padding with a virtual
  identity row makes the whole batch cost ``max_len - 1`` vectorized
  multiplication steps no matter how many thousands of terms it holds;
* ``"scalar"`` — the original per-term Python loop over raw ``(x, z, k)``
  integer triples, kept as the reference implementation and cross-checked
  against the table backend in the property tests.

The mapping may be given either as a list of :class:`~repro.paulis.PauliString`
or as an already-packed :class:`~repro.paulis.PauliTable` (see
:attr:`~repro.mappings.FermionQubitMapping.packed_table`); the latter skips
per-call packing entirely.
"""

from __future__ import annotations

from ..fermion import FermionOperator, MajoranaOperator
from ..paulis import PauliString, QubitOperator
from ..paulis.algebra import mul_xzk
from ..paulis.table import PauliTable

__all__ = ["map_majorana_operator", "map_fermion_operator"]

_PHASE = (1.0 + 0j, 1j, -1.0 + 0j, -1j)


def _validate_qubit_counts(
    strings: "list[PauliString] | PauliTable", n_qubits: int
) -> int:
    """Check every Majorana string acts on ``n_qubits``; return the count."""
    if isinstance(strings, PauliTable):
        if strings.n != n_qubits:
            raise ValueError(
                f"Majorana table acts on {strings.n} qubits but the target "
                f"operator was requested on n_qubits={n_qubits}"
            )
        return strings.n_terms
    if not strings:
        raise ValueError("no Majorana strings supplied")
    for i, s in enumerate(strings):
        if s.n != n_qubits:
            raise ValueError(
                f"Majorana string {i} acts on {s.n} qubits but the target "
                f"operator was requested on n_qubits={n_qubits}"
            )
    return len(strings)


def _check_coverage(n_majoranas: int, n_strings: int) -> None:
    """A full mapping supplies 2 strings per mode; require that coverage."""
    n_modes = (n_majoranas + 1) // 2
    needed = 2 * n_modes
    if needed > n_strings:
        raise ValueError(
            f"operator spans {n_modes} modes and needs {needed} Majorana "
            f"strings (2 per mode) but only {n_strings} were supplied"
        )


def _map_majorana_scalar(
    op: MajoranaOperator, strings: list[PauliString], n_qubits: int
) -> QubitOperator:
    """Reference implementation: per-term products on raw integer triples."""
    raw = [(s.x, s.z, s.phase) for s in strings]
    out = QubitOperator(n_qubits)
    for indices, coeff in op.terms():
        x = z = k = 0
        for i in indices:
            sx, sz, sk = raw[i]
            x, z, k = mul_xzk(x, z, k, sx, sz, sk)
        out.add_raw(x, z, coeff * _PHASE[k])
    return out.simplify()


def _map_majorana_table(op: MajoranaOperator, table: PauliTable) -> QubitOperator:
    """Vectorized implementation: batch product-accumulate on a PauliTable.

    The operator's padded index plan (cached on the operator, see
    :meth:`MajoranaOperator.packed_terms`) is replayed against the packed
    string table, so re-mapping the same Hamiltonian under another candidate
    mapping pays no per-term Python cost at all.
    """
    idx, coeffs = op.packed_terms()
    # Plan indices are shifted by one (0 = identity pad), so the largest entry
    # equals the highest touched Majorana index + 1 == n_majoranas.
    _check_coverage(int(idx.max()) if idx.size else 0, table.n_terms)
    products = table.padded_row_products(idx)
    return products.to_qubit_operator(coeffs)


def map_majorana_operator(
    op: MajoranaOperator,
    strings: "list[PauliString] | PauliTable",
    n_qubits: int,
    backend: str = "table",
) -> QubitOperator:
    """Map ``Σ c_T Π_{i∈T} M_i`` to ``Σ c_T Π_{i∈T} S_i``, combining terms.

    ``strings[i]`` is the Pauli string assigned to Majorana ``M_i`` (a packed
    :class:`~repro.paulis.PauliTable` is also accepted); every string must act
    on exactly ``n_qubits`` qubits and the table must cover all
    ``2 · n_modes`` Majoranas the operator spans.  Terms that cancel exactly
    disappear; the result is simplified to drop numerical dust below 1e-10.
    ``backend`` selects ``"table"`` (vectorized, default) or ``"scalar"``
    (reference loop).

    The two backends return equal operators (term-order-insensitive ``==``)
    but store terms differently: the table backend emits them in canonical
    lexicographic ``(x, z)`` order, the scalar backend in insertion order.
    Order-sensitive consumers (e.g. Trotter gate sequences) may therefore
    compile to differently ordered — equally valid — circuits.
    """
    n_strings = _validate_qubit_counts(strings, n_qubits)
    if backend == "table":
        table = (
            strings
            if isinstance(strings, PauliTable)
            else PauliTable.from_strings(strings, n=n_qubits)
        )
        return _map_majorana_table(op, table)
    if backend == "scalar":
        _check_coverage(op.n_majoranas, n_strings)
        scalar_strings = (
            strings.to_strings() if isinstance(strings, PauliTable) else strings
        )
        return _map_majorana_scalar(op, scalar_strings, n_qubits)
    raise ValueError(f"unknown backend {backend!r}; expected 'table' or 'scalar'")


def map_fermion_operator(
    op: FermionOperator,
    strings: "list[PauliString] | PauliTable",
    n_qubits: int,
    backend: str = "table",
) -> QubitOperator:
    """Convenience wrapper: expand to Majoranas (paper Eq. 2) then map."""
    return map_majorana_operator(
        MajoranaOperator.from_fermion_operator(op), strings, n_qubits, backend=backend
    )
