"""Stock fermion-to-qubit mappings: JW, parity, Bravyi–Kitaev, balanced tree.

All constructors return a :class:`~repro.mappings.base.FermionQubitMapping`.
JW, parity and BTT are built through the generic ternary-tree machinery with
vacuum pairing; Bravyi–Kitaev uses the Fenwick-tree set construction.
"""

from __future__ import annotations

from ..paulis import PauliString
from .base import FermionQubitMapping
from .tree import TernaryTree, balanced_tree, jw_tree, parity_tree

__all__ = [
    "jordan_wigner",
    "parity_mapping",
    "bravyi_kitaev",
    "balanced_ternary_tree",
    "mapping_from_tree",
    "fenwick_sets",
]


def mapping_from_tree(
    tree: TernaryTree, name: str, vacuum: bool = True
) -> FermionQubitMapping:
    """Extract a mapping from a complete ternary tree.

    With ``vacuum=True`` the Majorana assignment follows
    :meth:`TernaryTree.vacuum_pairing`; otherwise strings are assigned by leaf
    index (HATT assigns leaf ``i`` to ``M_i`` by construction).
    """
    tree.validate()
    if vacuum:
        strings, discarded = tree.vacuum_pairing()
        return FermionQubitMapping(strings, name=name, discarded=discarded)
    by_leaf = tree.strings_by_leaf_index()
    return FermionQubitMapping(by_leaf[:-1], name=name, discarded=by_leaf[-1])


def jordan_wigner(n_modes: int) -> FermionQubitMapping:
    """Jordan–Wigner: ``M_2j = Z_{j-1}…Z_0 X_j``, ``M_2j+1 = Z_{j-1}…Z_0 Y_j``."""
    mapping = mapping_from_tree(jw_tree(n_modes), "JW", vacuum=True)
    return mapping


def parity_mapping(n_modes: int) -> FermionQubitMapping:
    """Parity transform: running occupation parity lives on qubit ``j``."""
    return mapping_from_tree(parity_tree(n_modes), "Parity", vacuum=True)


def balanced_ternary_tree(n_modes: int) -> FermionQubitMapping:
    """Balanced ternary tree (BTT) of [Jiang et al. 2020] with vacuum pairing."""
    return mapping_from_tree(balanced_tree(n_modes), "BTT", vacuum=True)


# ----------------------------------------------------------------------
# Bravyi–Kitaev via Fenwick-tree index sets
# ----------------------------------------------------------------------
def fenwick_sets(n_modes: int) -> list[tuple[set[int], set[int], set[int]]]:
    """Per-mode ``(update, parity, rho)`` qubit sets of the BK transform.

    Using 1-based Fenwick (binary indexed tree) arithmetic on ``i = j + 1``:

    * update set U(j): strict ancestors ``i + lowbit(i)`` chains (≤ n),
    * parity set P(j): the prefix [0, j) decomposition, descent ``i - lowbit(i)``,
    * flip set  F(j): direct children ``i - 2^t`` for ``2^t < lowbit(i)``,
    * rho set   R(j) = P(j) \\ F(j) (classic BK: equals P(j) for even j).

    All returned sets use 0-based qubit indices.
    """
    n = n_modes
    sets = []
    for j in range(n):
        i = j + 1
        update = set()
        k = i + (i & -i)
        while k <= n:
            update.add(k - 1)
            k += k & -k
        parity = set()
        k = j
        while k > 0:
            parity.add(k - 1)
            k -= k & -k
        flip = set()
        t = 1
        while t < (i & -i):
            flip.add(i - t - 1)
            t <<= 1
        rho = parity - flip
        sets.append((update, parity, rho))
    return sets


def bravyi_kitaev(n_modes: int) -> FermionQubitMapping:
    """Bravyi–Kitaev: ``M_2j = X_U(j) X_j Z_P(j)``, ``M_2j+1 = X_U(j) Y_j Z_R(j)``."""
    strings: list[PauliString] = []
    for j, (update, parity, rho) in enumerate(fenwick_sets(n_modes)):
        even_ops = {q: "X" for q in update}
        even_ops.update({q: "Z" for q in parity})
        even_ops[j] = "X"
        odd_ops = {q: "X" for q in update}
        odd_ops.update({q: "Z" for q in rho})
        odd_ops[j] = "Y"
        strings.append(PauliString.from_ops(even_ops, n_modes))
        strings.append(PauliString.from_ops(odd_ops, n_modes))
    return FermionQubitMapping(strings, name="BK")
