"""Job queue with cross-client request coalescing over the compile executors.

The PR-4 :class:`~repro.service.MappingService` single-flights concurrent
identical requests *inside* one process with per-fingerprint locks — every
follower still blocks a thread for the whole compile.  :class:`JobQueue`
generalizes that into request-level coalescing for a served system:

* every submission is keyed by :meth:`CompileRequest.coalesce_key`
  (engine hints excluded);
* the first submission of a key creates a :class:`~repro.serve.schema
  .JobRecord` and dispatches exactly one executor task;
* any submission arriving while that job is still pending/running is
  **coalesced**: it gets the same record back (``subscribers`` incremented)
  and shares the same future — N concurrent identical cold requests cost
  one compile, with N-1 clients never touching an executor slot;
* once the job finishes, the key is released — later identical requests
  become new jobs that complete near-instantly from the warm caches.

Work routes onto either a ``ThreadPoolExecutor`` (``executor="thread"`` —
compiles run in-process and share the service's memory LRU; the numpy
kernels release the GIL for most of a compile) or a ``ProcessPoolExecutor``
(``executor="process"`` — the same fork-based pool the batch orchestrator
uses, sharing the service's *disk* store via its cache directory).  Results
travel as plain JSON dicts either way, so the two executors are
interchangeable.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor

from ..models import load_case
from ..service import MappingService, pool_context
from .schema import CompileRequest, JobRecord, JobStatus

__all__ = ["EXECUTORS", "JobQueue", "execute_request"]

#: Executor kinds a queue can route onto.
EXECUTORS = ("thread", "process")

#: Completed-job retention: the record table keeps at most this many entries,
#: evicting oldest finished jobs first (live jobs are never evicted).
_DEFAULT_MAX_JOBS = 4096


def _run_request(request: CompileRequest, service: MappingService) -> dict:
    """Execute one request against a service; the job-family dispatch."""
    h = load_case(request.case)
    if request.job == "map":
        result = service.get_or_compile(h, request.spec())
        mapping = result.mapping
        return {
            "job": "map",
            "case": request.case,
            "kind": request.kind,
            "fingerprint": result.fingerprint,
            "source": result.source,
            "compile_seconds": round(result.compile_seconds, 6),
            "n_modes": mapping.n_modes,
            "n_qubits": mapping.n_qubits,
            "pauli_weight": int(mapping.map(h).pauli_weight()),
        }
    # job == "compile": mapping + Trotter synthesis + routing, via the
    # hardware pipeline (its circuits/ artifacts ride the same store).
    from ..compile import CompilationPipeline

    pipeline = CompilationPipeline(
        service=service,
        options=request.options(),
        hatt_backend=request.hatt_backend,
        arch_weight=request.arch_weight,
    )
    metrics = pipeline.compile_one(h, request.kind, request.arch)
    return {
        "job": "compile",
        "case": request.case,
        "kind": request.kind,
        "architecture": request.arch,
        "fingerprint": metrics.fingerprint,
        "source": metrics.source,
        "metrics": metrics.to_dict(),
    }


def execute_request(request_doc: dict, cache_dir: str | None, use_disk: bool) -> dict:
    """Process-pool entry point (module-level, picklable).

    Workers build their own :class:`MappingService` over the shared cache
    directory; the parent's disk store sees every artifact they write.
    """
    request = CompileRequest.from_dict(request_doc)
    service = MappingService(cache_dir=cache_dir, use_disk=use_disk)
    return _run_request(request, service)


class JobQueue:
    """Coalescing job queue in front of a :class:`MappingService`.

    Parameters
    ----------
    service:
        The shared compilation service (its store also holds routed-circuit
        artifacts).  Built from ``cache_dir`` when omitted.
    workers:
        Executor width (≥ 1).
    executor:
        ``"thread"`` (default) or ``"process"`` — see module docstring.
    max_jobs:
        Completed-record retention bound.
    """

    def __init__(
        self,
        service: MappingService | None = None,
        cache_dir: str | None = None,
        workers: int = 1,
        executor: str = "thread",
        max_jobs: int = _DEFAULT_MAX_JOBS,
    ):
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        self.service = service if service is not None else MappingService(cache_dir)
        self.executor_kind = executor
        workers = max(1, int(workers))
        self.workers = workers
        if executor == "process":
            self._pool = ProcessPoolExecutor(
                max_workers=workers, mp_context=pool_context()
            )
        else:
            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-serve"
            )
        self._lock = threading.Lock()
        self._jobs: OrderedDict[str, JobRecord] = OrderedDict()
        self._futures: dict[str, Future] = {}
        self._by_key: dict[str, str] = {}
        #: job id → count of live waiters; pinned records survive trimming.
        self._pins: dict[str, int] = {}
        self._ids = itertools.count(1)
        self.max_jobs = int(max_jobs)
        self._counters = {"submitted": 0, "coalesced": 0, "executed": 0, "errors": 0}

    # ------------------------------------------------------------------
    # Submission and coalescing
    # ------------------------------------------------------------------
    def submit(self, request: CompileRequest) -> tuple[JobRecord, bool]:
        """Enqueue one request; returns ``(record, coalesced)``.

        ``coalesced=True`` means an identical request was already in flight
        and this submission subscribed to it instead of dispatching work.
        """
        key = request.coalesce_key()
        with self._lock:
            self._counters["submitted"] += 1
            jid = self._by_key.get(key)
            if jid is not None:
                record = self._jobs[jid]
                future = self._futures.get(jid)
                if future is not None and future.done():
                    # Completed but not yet finalized (no one polled it);
                    # settle it now so this submission starts a fresh job.
                    self._finalize_locked(record, future)
                if not record.done:
                    record.subscribers += 1
                    self._counters["coalesced"] += 1
                    return record, True
            record = JobRecord(
                id=f"j{next(self._ids):08d}",
                request=request,
                status=JobStatus.QUEUED,
                created_at=time.time(),
            )
            self._jobs[record.id] = record
            self._by_key[key] = record.id
            self._trim_locked()
            if self.executor_kind == "process":
                # The pool owns the work from here; RUNNING means
                # "dispatched" (worker start isn't observable cross-process).
                record.status = JobStatus.RUNNING
                record.started_at = time.time()
        if self.executor_kind == "process":
            store = self.service.store
            cache_dir = str(store.root) if store is not None else None
            future = self._pool.submit(
                execute_request, request.to_dict(), cache_dir, store is not None
            )
        else:
            future = self._pool.submit(self._run_local, record)
        with self._lock:
            self._futures[record.id] = future
        future.add_done_callback(lambda fut, rec=record: self._on_done(rec, fut))
        return record, False

    def _run_local(self, record: JobRecord) -> dict:
        with self._lock:
            record.status = JobStatus.RUNNING
            record.started_at = time.time()
        return _run_request(record.request, self.service)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _on_done(self, record: JobRecord, future: Future) -> None:
        with self._lock:
            self._finalize_locked(record, future)

    def _finalize_locked(self, record: JobRecord, future: Future) -> None:
        """Settle one finished future into its record (idempotent)."""
        if record.done:
            return
        try:
            result = future.result()
            record.result = result
            record.fingerprint = result.get("fingerprint")
            record.source = result.get("source")
            record.status = JobStatus.DONE
            self._counters["executed"] += 1
        except Exception as exc:  # noqa: BLE001 - reported per-job, never fatal
            record.error = f"{type(exc).__name__}: {exc}"
            record.status = JobStatus.ERROR
            self._counters["errors"] += 1
        record.finished_at = time.time()
        key = record.request.coalesce_key()
        if self._by_key.get(key) == record.id:
            del self._by_key[key]

    def _trim_locked(self) -> None:
        if len(self._jobs) <= self.max_jobs:
            return
        for jid in list(self._jobs):
            if len(self._jobs) <= self.max_jobs:
                break
            record = self._jobs[jid]
            # A record is evictable only once finished AND unobserved: a
            # pinned record still has a ``wait()``/``?wait=1`` client about
            # to read it — evicting it would turn their poll into a 404.
            if record.done and self._pins.get(jid, 0) == 0:
                del self._jobs[jid]
                self._futures.pop(jid, None)

    # ------------------------------------------------------------------
    # Lookup and waiting
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> JobRecord | None:
        """The job's current record, settling a finished future if needed."""
        with self._lock:
            record = self._jobs.get(job_id)
            if record is None:
                return None
            future = self._futures.get(job_id)
            if future is not None and future.done() and not record.done:
                self._finalize_locked(record, future)
            return record

    def future(self, job_id: str) -> Future | None:
        """The job's future (for ``asyncio.wrap_future`` bridging)."""
        with self._lock:
            return self._futures.get(job_id)

    def pin(self, job_id: str) -> None:
        """Shield a record from retention trimming while a waiter holds it."""
        with self._lock:
            self._pins[job_id] = self._pins.get(job_id, 0) + 1

    def unpin(self, job_id: str) -> None:
        """Release one :meth:`pin`; the record becomes evictable at zero."""
        with self._lock:
            count = self._pins.get(job_id, 0) - 1
            if count > 0:
                self._pins[job_id] = count
            else:
                self._pins.pop(job_id, None)

    def wait(self, job_id: str, timeout: float | None = None) -> JobRecord:
        """Block until the job settles (or ``timeout``); returns its record.

        The record is pinned for the duration, so a burst of submissions
        trimming the completed-job table cannot evict it mid-wait.
        """
        self.pin(job_id)
        try:
            future = self.future(job_id)
            if future is None:
                record = self.get(job_id)
                if record is None:
                    raise KeyError(f"unknown job {job_id!r}")
                return record
            try:
                future.exception(timeout)
            except TimeoutError:
                pass
            return self.get(job_id)
        finally:
            self.unpin(job_id)

    # ------------------------------------------------------------------
    # Introspection and shutdown
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            by_status = {status: 0 for status in JobStatus.ALL}
            for record in self._jobs.values():
                by_status[record.status] += 1
            out = dict(self._counters)
        out["jobs"] = by_status
        out["executor"] = self.executor_kind
        out["workers"] = self.workers
        out["service"] = self.service.stats()
        return out

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
