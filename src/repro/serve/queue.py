"""Fault-tolerant coalescing job queue over the compile executors.

The PR-4 :class:`~repro.service.MappingService` single-flights concurrent
identical requests *inside* one process with per-fingerprint locks — every
follower still blocks a thread for the whole compile.  :class:`JobQueue`
generalizes that into request-level coalescing for a served system:

* every submission is keyed by :meth:`CompileRequest.coalesce_key`
  (engine hints excluded);
* the first submission of a key creates a :class:`~repro.serve.schema
  .JobRecord` and dispatches exactly one executor task;
* any submission arriving while that job is still pending/running is
  **coalesced**: it gets the same record back (``subscribers`` incremented)
  and shares the same settlement — N concurrent identical cold requests
  cost one compile, with N-1 clients never touching an executor slot;
* once the job finishes, the key is released — later identical requests
  become new jobs that complete near-instantly from the warm caches.

Work routes onto either a ``ThreadPoolExecutor`` (``executor="thread"`` —
compiles run in-process and share the service's memory LRU; the numpy
kernels release the GIL for most of a compile) or a ``ProcessPoolExecutor``
(``executor="process"`` — the same fork-based pool the batch orchestrator
uses, sharing the service's *disk* store via its cache directory).  Results
travel as plain JSON dicts either way, so the two executors are
interchangeable.

On top of that sits the fault-tolerance layer:

* **settlement futures** — every job carries its own
  ``concurrent.futures.Future`` resolved with the record on *any* terminal
  path (success, error, timeout, cancel, drain), so ``wait()`` and the
  server's ``?wait=1`` bridge always unblock, even when the executor future
  never completes (a wedged worker, a crashed pool);
* **executor supervision** — a ``BrokenProcessPool`` is classified as a
  retryable ``worker_crash``; the pool is rebuilt exactly once per break
  (generation counter) and the victim jobs are re-dispatched under the
  retry policy instead of wedging their subscribers;
* **deadlines** — ``CompileRequest.deadline`` (or the queue-wide
  ``job_timeout``) arms a per-attempt watchdog; an expired attempt settles
  the record as a typed ``timeout`` error (timeouts are not retried — the
  budget is the budget);
* **bounded retries** — retryable failures (worker crash, transient I/O)
  re-dispatch with exponential backoff + full jitter, up to
  ``RetryPolicy.max_attempts``, with attempt counts on the record and in
  :meth:`stats`;
* **cancellation** — :meth:`cancel` releases a lone submission (or peels
  one subscriber off a coalesced job, leaving the rest attached);
* **load shedding** — ``max_pending`` caps live (queued + running) jobs;
  past it, cold submissions raise :class:`QueueFull` (the server maps it to
  503 + ``Retry-After``).  Coalesced submissions are always accepted — they
  cost nothing;
* **circuit breaker** — a rolling failure-rate window; while open, cold
  compiles are shed (:class:`BreakerOpen`) but warm cache hits are still
  served, so a poisoned workload can't take down the cached fast path;
* **graceful drain** — :meth:`drain` stops intake, gives in-flight jobs a
  settling budget, then force-settles the stragglers as ``cancelled`` so no
  client is ever left holding a wedged ``running`` record.
"""

from __future__ import annotations

import itertools
import random
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import (
    BrokenExecutor,
    CancelledError,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass

from ..sources import build_case
from ..obs.metrics import get_registry
from ..obs.trace import TraceContext, activate, new_trace_id
from ..service import MappingService, pool_context
from . import faults
from .schema import CompileRequest, JobError, JobRecord, JobStatus

__all__ = [
    "EXECUTORS",
    "JobQueue",
    "execute_request",
    "RetryPolicy",
    "CircuitBreaker",
    "RejectedSubmission",
    "QueueFull",
    "BreakerOpen",
    "ServiceDraining",
]

#: Executor kinds a queue can route onto.
EXECUTORS = ("thread", "process")

#: Completed-job retention: the record table keeps at most this many entries,
#: evicting oldest finished jobs first (live jobs are never evicted).
_DEFAULT_MAX_JOBS = 4096


class RejectedSubmission(RuntimeError):
    """A submission the queue refused to accept (load shedding).

    ``retry_after`` is the backpressure hint in seconds the server forwards
    as the HTTP ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class QueueFull(RejectedSubmission):
    """Live-job count hit ``max_pending``; shed before queueing."""


class BreakerOpen(RejectedSubmission):
    """Circuit breaker open: cold compiles shed, warm hits still served."""


class ServiceDraining(RejectedSubmission):
    """The queue is draining for shutdown and accepts no new work."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff + full jitter.

    Attempt ``k`` (1-based; the retry after the k-th failure) sleeps a
    uniform draw from ``[0, min(max_delay, base_delay * 2**(k-1))]`` — the
    "full jitter" scheme, which decorrelates a thundering herd of retries.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("retry delays must be >= 0")

    def delay(self, failures: int, rng: random.Random) -> float:
        """Backoff before the next attempt, after ``failures`` failures."""
        ceiling = min(self.max_delay, self.base_delay * (2 ** max(0, failures - 1)))
        return rng.uniform(0.0, ceiling)


class CircuitBreaker:
    """Rolling-window failure-rate breaker.

    Outcomes (ok/failed) land in a time-bounded window; once at least
    ``min_samples`` events are in the window and the failure fraction
    reaches ``threshold``, the breaker **trips**: it reports open for
    ``cooldown`` seconds (the window is cleared so one bad burst is
    forgotten once served its cooldown).  The queue sheds *cold* work while
    open; warm cache hits keep flowing.
    """

    def __init__(
        self,
        window: float = 30.0,
        min_samples: int = 8,
        threshold: float = 0.5,
        cooldown: float = 5.0,
    ):
        self.window = float(window)
        self.min_samples = int(min_samples)
        self.threshold = float(threshold)
        self.cooldown = float(cooldown)
        self._lock = threading.Lock()
        self._events: deque[tuple[float, bool]] = deque()
        self._open_until = 0.0
        self._trips = 0

    def _prune_locked(self, now: float) -> None:
        horizon = now - self.window
        while self._events and self._events[0][0] < horizon:
            self._events.popleft()

    def record(self, ok: bool) -> None:
        now = time.monotonic()
        with self._lock:
            if now < self._open_until:
                return  # cooling down; outcomes of in-flight stragglers don't count
            self._events.append((now, ok))
            self._prune_locked(now)
            if len(self._events) < self.min_samples:
                return
            failures = sum(1 for _, event_ok in self._events if not event_ok)
            if failures / len(self._events) >= self.threshold:
                self._open_until = now + self.cooldown
                self._trips += 1
                self._events.clear()

    def is_open(self) -> bool:
        with self._lock:
            return time.monotonic() < self._open_until

    def retry_after(self) -> float:
        with self._lock:
            return max(1.0, self._open_until - time.monotonic())

    def state(self) -> dict:
        now = time.monotonic()
        with self._lock:
            self._prune_locked(now)
            failures = sum(1 for _, ok in self._events if not ok)
            return {
                "open": now < self._open_until,
                "cooldown_remaining": round(max(0.0, self._open_until - now), 3),
                "window_events": len(self._events),
                "window_failures": failures,
                "trips": self._trips,
                "threshold": self.threshold,
                "min_samples": self.min_samples,
            }


def _run_request(
    request: CompileRequest,
    service: MappingService,
    trace_ctx: TraceContext | None = None,
) -> dict:
    """Execute one request against a service; the job-family dispatch.

    When a :class:`TraceContext` is supplied it is activated for the whole
    execution (so service/pipeline spans land on it) and serialized into the
    result's ``trace`` block — the vehicle that carries worker-side spans
    back across a process boundary.
    """
    if trace_ctx is None:
        out = _run_request_traced(request, service)
    else:
        with activate(trace_ctx):
            out = _run_request_traced(request, service)
        out["trace"] = trace_ctx.to_dict()
    return out


def _run_request_traced(request: CompileRequest, service: MappingService) -> dict:
    faults.sleep_if("slow_compile")
    h = build_case(request.case)
    if request.job == "map":
        result = service.get_or_compile(h, request.spec())
        mapping = result.mapping
        return {
            "job": "map",
            "case": request.case,
            "kind": request.kind,
            "fingerprint": result.fingerprint,
            "source": result.source,
            "compile_seconds": round(result.compile_seconds, 6),
            "n_modes": mapping.n_modes,
            "n_qubits": mapping.n_qubits,
            "pauli_weight": int(mapping.map(h).pauli_weight()),
        }
    # job == "compile": mapping + Trotter synthesis + routing, via the
    # hardware pipeline (its circuits/ artifacts ride the same store).
    from ..compile import CompilationPipeline

    pipeline = CompilationPipeline(
        service=service,
        options=request.options(),
        hatt_backend=request.hatt_backend,
        arch_weight=request.arch_weight,
    )
    metrics = pipeline.compile_one(h, request.kind, request.arch)
    return {
        "job": "compile",
        "case": request.case,
        "kind": request.kind,
        "architecture": request.arch,
        "fingerprint": metrics.fingerprint,
        "source": metrics.source,
        "metrics": metrics.to_dict(),
        "timings": pipeline.timings.to_dict(),
    }


def execute_request(
    request_doc: dict,
    cache_dir: str | None,
    use_disk: bool,
    trace: dict | None = None,
) -> dict:
    """Process-pool entry point (module-level, picklable).

    Workers build their own :class:`MappingService` over the shared cache
    directory; the parent's disk store sees every artifact they write.
    ``trace`` is a serialized :class:`TraceContext` — context vars don't
    cross process boundaries, so the trace rides the pickled arguments in
    and the result's ``trace`` block out.
    """
    faults.exit_if("worker_crash")
    request = CompileRequest.from_dict(request_doc)
    service = MappingService(cache_dir=cache_dir, use_disk=use_disk)
    trace_ctx = TraceContext.from_dict(trace) if trace is not None else None
    return _run_request(request, service, trace_ctx=trace_ctx)


def _classify(exc: BaseException) -> tuple[str, bool]:
    """Map one execution failure to ``(error_kind, retryable)``."""
    if isinstance(exc, JobError):
        return exc.kind, exc.retryable
    if isinstance(exc, BrokenExecutor):
        return "worker_crash", True
    if isinstance(exc, CancelledError):
        return "cancelled", False
    # TimeoutError subclasses OSError since 3.10: classify it first, or a
    # hung socket read would masquerade as retryable transient I/O.
    if isinstance(exc, TimeoutError):
        return "timeout", False
    if isinstance(exc, OSError):
        return "transient_io", True
    return "exception", False


class JobQueue:
    """Coalescing, self-healing job queue in front of a :class:`MappingService`.

    Parameters
    ----------
    service:
        The shared compilation service (its store also holds routed-circuit
        artifacts).  Built from ``cache_dir`` when omitted.
    workers:
        Executor width (≥ 1).
    executor:
        ``"thread"`` (default) or ``"process"`` — see module docstring.
    max_jobs:
        Completed-record retention bound.
    job_timeout:
        Default per-attempt execution deadline in seconds (None = no limit);
        ``CompileRequest.deadline`` overrides it per job.
    max_pending:
        Live-job (queued + running) cap; cold submissions past it raise
        :class:`QueueFull`.  None = unbounded.
    retry:
        A :class:`RetryPolicy`, or ``False`` to disable retries (None →
        the default policy: 3 attempts).
    breaker:
        A :class:`CircuitBreaker`, or ``False`` to disable (None → default).
    """

    def __init__(
        self,
        service: MappingService | None = None,
        cache_dir: str | None = None,
        workers: int = 1,
        executor: str = "thread",
        max_jobs: int = _DEFAULT_MAX_JOBS,
        job_timeout: float | None = None,
        max_pending: int | None = None,
        retry: RetryPolicy | None | bool = None,
        breaker: CircuitBreaker | None | bool = None,
        registry=None,
    ):
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        self.service = service if service is not None else MappingService(cache_dir)
        # Share the service's registry unless the caller isolates one; both
        # default to the process-global registry.
        self.registry = registry if registry is not None else getattr(
            self.service, "registry", None
        ) or get_registry()
        self.executor_kind = executor
        workers = max(1, int(workers))
        self.workers = workers
        self._pool = self._make_pool()
        self._lock = threading.Lock()
        self._jobs: OrderedDict[str, JobRecord] = OrderedDict()
        self._futures: dict[str, Future] = {}
        self._by_key: dict[str, str] = {}
        #: job id → settlement future, resolved with the record on ANY
        #: terminal path; what wait()/?wait=1 block on.
        self._settled: dict[str, Future] = {}
        #: job id → live deadline watchdog / pending retry timer.
        self._timers: dict[str, threading.Timer] = {}
        self._retry_timers: dict[str, threading.Timer] = {}
        #: job id → pool generation its current attempt was dispatched to.
        self._job_gen: dict[str, int] = {}
        self._pool_gen = 0
        #: job id → count of live waiters; pinned records survive trimming.
        self._pins: dict[str, int] = {}
        self._ids = itertools.count(1)
        self.max_jobs = int(max_jobs)
        self.job_timeout = float(job_timeout) if job_timeout else None
        self.max_pending = int(max_pending) if max_pending else None
        if retry is False:
            self._retry: RetryPolicy | None = None
        else:
            self._retry = retry if isinstance(retry, RetryPolicy) else RetryPolicy()
        if breaker is False:
            self._breaker: CircuitBreaker | None = None
        else:
            self._breaker = breaker if isinstance(breaker, CircuitBreaker) else CircuitBreaker()
        # Seeded: jitter spacing stays reproducible run to run.
        self._rng = random.Random(0x5EED)
        self._live = 0
        self._draining = False
        self._counters = {
            "submitted": 0,
            "coalesced": 0,
            "executed": 0,
            "errors": 0,
            "retried": 0,
            "timeouts": 0,
            "cancelled": 0,
            "worker_crashes": 0,
            "pool_rebuilds": 0,
            "shed_full": 0,
            "shed_breaker": 0,
            "shed_draining": 0,
        }

    #: Per-queue counter name → global registry metric (name, help, labels).
    #: Terminal states share one ``repro_jobs_total`` family; sheds share
    #: ``repro_jobs_shed_total`` — the Prometheus-idiomatic shapes.
    _METRIC_MAP = {
        "submitted": ("repro_jobs_submitted_total", "Jobs submitted (incl. coalesced).", {}),
        "coalesced": ("repro_jobs_coalesced_total", "Submissions coalesced onto an in-flight job.", {}),
        "executed": ("repro_jobs_total", "Jobs settled, by terminal state.", {"state": "done"}),
        "errors": ("repro_jobs_total", "Jobs settled, by terminal state.", {"state": "error"}),
        "cancelled": ("repro_jobs_total", "Jobs settled, by terminal state.", {"state": "cancelled"}),
        "retried": ("repro_job_retries_total", "Job attempts re-dispatched after retryable failures.", {}),
        "timeouts": ("repro_job_timeouts_total", "Jobs settled by the deadline watchdog.", {}),
        "worker_crashes": ("repro_worker_crashes_total", "Worker-crash failures observed.", {}),
        "pool_rebuilds": ("repro_pool_rebuilds_total", "Process pools rebuilt after breaking.", {}),
        "shed_full": ("repro_jobs_shed_total", "Submissions shed, by reason.", {"reason": "queue_full"}),
        "shed_breaker": ("repro_jobs_shed_total", "Submissions shed, by reason.", {"reason": "breaker_open"}),
        "shed_draining": ("repro_jobs_shed_total", "Submissions shed, by reason.", {"reason": "draining"}),
    }

    def _count(self, name: str, n: int = 1) -> None:
        """The single choke point every queue counter goes through.

        Increments the per-queue counter (``stats()`` back-compat) and the
        process-global registry metric in one place, so no code path can
        bump one without the other.  Callers may hold ``self._lock``; the
        registry's per-instrument locks never reach back into the queue, so
        the nesting cannot deadlock.
        """
        self._counters[name] += n
        metric, help_text, labels = self._METRIC_MAP[name]
        self.registry.counter(metric, help=help_text, **labels).inc(n)

    def _set_depth_locked(self) -> None:
        self.registry.gauge(
            "repro_queue_depth", help="Live (queued + running) jobs."
        ).set(self._live)

    def _make_pool(self):
        if self.executor_kind == "process":
            return ProcessPoolExecutor(
                max_workers=self.workers, mp_context=pool_context()
            )
        return ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )

    # ------------------------------------------------------------------
    # Submission, coalescing, load shedding
    # ------------------------------------------------------------------
    def submit(
        self, request: CompileRequest, trace_id: str | None = None
    ) -> tuple[JobRecord, bool]:
        """Enqueue one request; returns ``(record, coalesced)``.

        ``coalesced=True`` means an identical request was already in flight
        and this submission subscribed to it instead of dispatching work.
        Raises :class:`QueueFull` / :class:`BreakerOpen` /
        :class:`ServiceDraining` when shed — never for coalesced
        submissions, which cost nothing.

        ``trace_id`` stamps the job's trace (one is minted when omitted).
        A coalesced submission keeps the in-flight job's original trace.
        """
        key = request.coalesce_key()
        with self._lock:
            coalesced = self._coalesce_locked(key)
            if coalesced is not None:
                return coalesced, True
            breaker_open = self._breaker is not None and self._breaker.is_open()
            if not breaker_open:
                record = self._accept_locked(request, key, trace_id)
                dispatch = True
            else:
                dispatch = False
        if not dispatch:
            # Breaker open: only warm work passes.  The cache probe runs
            # outside the lock (it fingerprints the Hamiltonian).
            if not self._probe_warm(request):
                with self._lock:
                    self._count("shed_breaker")
                raise BreakerOpen(
                    "circuit breaker open (failure-rate spike): cold compiles "
                    "shed; warm cache hits still served",
                    retry_after=self._breaker.retry_after(),
                )
            with self._lock:
                # Re-check: an identical twin may have arrived mid-probe.
                coalesced = self._coalesce_locked(key)
                if coalesced is not None:
                    return coalesced, True
                record = self._accept_locked(request, key, trace_id)
        self._dispatch(record)
        return record, False

    def _coalesce_locked(self, key: str) -> JobRecord | None:
        if self._draining:
            self._count("shed_draining")
            raise ServiceDraining(
                "service is draining for shutdown; not accepting new jobs",
                retry_after=30.0,
            )
        jid = self._by_key.get(key)
        if jid is not None:
            record = self._jobs[jid]
            if not record.done:
                record.subscribers += 1
                self._count("submitted")
                self._count("coalesced")
                return record
        return None

    def _accept_locked(
        self, request: CompileRequest, key: str, trace_id: str | None = None
    ) -> JobRecord:
        if self.max_pending is not None and self._live >= self.max_pending:
            self._count("shed_full")
            raise QueueFull(
                f"queue at capacity ({self._live} live jobs >= "
                f"max_pending={self.max_pending})",
                retry_after=min(30.0, 1.0 + 0.25 * self._live),
            )
        self._count("submitted")
        record = JobRecord(
            id=f"j{next(self._ids):08d}",
            request=request,
            status=JobStatus.QUEUED,
            created_at=time.time(),
            trace_id=trace_id or new_trace_id(),
        )
        self._jobs[record.id] = record
        self._by_key[key] = record.id
        self._settled[record.id] = Future()
        self._live += 1
        self._set_depth_locked()
        self._trim_locked()
        return record

    def _probe_warm(self, request: CompileRequest) -> bool:
        """True when the request would be served from cache (breaker bypass).

        Only ``map`` jobs have a cheap cache probe (fingerprint the
        Hamiltonian, check the service tiers); compile jobs are always
        treated as cold while the breaker is open.
        """
        if request.job != "map":
            return False
        try:
            h = build_case(request.case)
            spec = request.spec().resolve(h)
            return self.service.is_cached(self.service.fingerprint(h, spec))
        except Exception:  # noqa: BLE001 - a failing probe is just "cold"
            return False

    # ------------------------------------------------------------------
    # Dispatch, supervision, retries
    # ------------------------------------------------------------------
    def _dispatch(self, record: JobRecord) -> None:
        """Hand one attempt of ``record`` to the executor (initial or retry)."""
        request = record.request
        try:
            if self.executor_kind == "process":
                with self._lock:
                    if record.done:
                        return
                    # The pool owns the work from here; RUNNING means
                    # "dispatched" (worker start isn't observable
                    # cross-process).
                    record.status = JobStatus.RUNNING
                    record.started_at = time.time()
                store = self.service.store
                cache_dir = str(store.root) if store is not None else None
                future = self._pool.submit(
                    execute_request,
                    request.to_dict(),
                    cache_dir,
                    store is not None,
                    {"trace_id": record.trace_id, "spans": []},
                )
            else:
                future = self._pool.submit(self._run_local, record)
        except Exception as exc:  # noqa: BLE001 - broken/shut pool at dispatch
            self._handle_failure(record, exc)
            return
        with self._lock:
            settled_meanwhile = record.done
            if not settled_meanwhile:
                self._futures[record.id] = future
                self._job_gen[record.id] = self._pool_gen
                self._retry_timers.pop(record.id, None)
        if settled_meanwhile:
            # Cancel outside the lock: a successful cancel runs done
            # callbacks synchronously, and _on_done needs the lock.
            future.cancel()
            return
        self._arm_deadline(record, future)
        future.add_done_callback(lambda fut, rec=record: self._on_done(rec, fut))

    def _run_local(self, record: JobRecord) -> dict:
        with self._lock:
            if record.done:
                raise CancelledError(f"job {record.id} settled before execution")
            record.status = JobStatus.RUNNING
            record.started_at = time.time()
        faults.crash_if("worker_crash")
        # Activate the trace here rather than passing trace_ctx down —
        # tests monkeypatch _run_request with two-argument fakes, so the
        # (request, service) call shape is part of the contract.
        trace_ctx = TraceContext(record.trace_id)
        with activate(trace_ctx):
            out = _run_request(record.request, self.service)
        if isinstance(out, dict) and "trace" not in out:
            out = dict(out)
            out["trace"] = trace_ctx.to_dict()
        return out

    def _arm_deadline(self, record: JobRecord, future: Future) -> None:
        timeout = record.request.deadline or self.job_timeout
        if not timeout:
            return
        timer = threading.Timer(timeout, self._on_deadline, args=(record, future))
        timer.daemon = True
        with self._lock:
            if record.done:
                return
            old = self._timers.pop(record.id, None)
            self._timers[record.id] = timer
        if old is not None:
            old.cancel()
        timer.start()

    def _on_deadline(self, record: JobRecord, future: Future) -> None:
        with self._lock:
            if record.done or self._futures.get(record.id) is not future:
                return  # settled, or a retry superseded this attempt
            timeout = record.request.deadline or self.job_timeout
            self._count("timeouts")
            self._settle_locked(
                record,
                error=(
                    f"job exceeded its {timeout:g}s deadline "
                    f"(attempt {record.attempts})"
                ),
                kind="timeout",
            )
        # Outside the lock: a successful cancel runs _on_done synchronously,
        # which re-takes the lock (and then no-ops on the settled record).
        future.cancel()
        if self._breaker is not None:
            self._breaker.record(False)

    def _on_done(self, record: JobRecord, future: Future) -> None:
        with self._lock:
            if self._futures.get(record.id) is not future or record.done:
                return  # superseded by a retry, or already settled
            if future.cancelled():
                exc: BaseException | None = CancelledError(
                    f"job {record.id} future cancelled"
                )
            else:
                exc = future.exception()
            if exc is None:
                self._settle_locked(record, result=future.result())
        if exc is None:
            if self._breaker is not None:
                self._breaker.record(True)
            return
        self._handle_failure(record, exc)

    def _handle_failure(self, record: JobRecord, exc: BaseException) -> None:
        """Classify one failed attempt: retry it or settle the record."""
        kind, retryable = _classify(exc)
        retry_delay = None
        with self._lock:
            if record.done:
                return
            gen = self._job_gen.get(record.id)
            if kind == "worker_crash":
                self._count("worker_crashes")
            if (
                retryable
                and self._retry is not None
                and record.attempts < self._retry.max_attempts
                and not self._draining
            ):
                record.attempts += 1
                record.status = JobStatus.QUEUED
                record.started_at = None
                self._count("retried")
                # Drop this attempt's future/watchdog so stale callbacks
                # can't settle the record while the retry is pending.
                self._futures.pop(record.id, None)
                timer = self._timers.pop(record.id, None)
                if timer is not None:
                    timer.cancel()
                retry_delay = self._retry.delay(record.attempts - 1, self._rng)
            else:
                status = JobStatus.CANCELLED if kind in ("cancelled", "shutdown") else None
                self._settle_locked(
                    record,
                    error=f"{type(exc).__name__}: {exc}",
                    kind=kind,
                    status=status,
                )
        if self._breaker is not None and kind not in ("cancelled", "shutdown"):
            self._breaker.record(False)
        if isinstance(exc, BrokenExecutor):
            self._maybe_rebuild(gen)
        if retry_delay is None:
            return
        retry_timer = threading.Timer(retry_delay, self._redispatch, args=(record,))
        retry_timer.daemon = True
        with self._lock:
            if record.done:
                return  # a drain/cancel raced the backoff window
            self._retry_timers[record.id] = retry_timer
        retry_timer.start()

    def _redispatch(self, record: JobRecord) -> None:
        with self._lock:
            self._retry_timers.pop(record.id, None)
            if record.done or self._draining:
                if not record.done:
                    self._count("cancelled")
                    self._settle_locked(
                        record,
                        error="service drained before the retry could run",
                        kind="shutdown",
                        status=JobStatus.CANCELLED,
                    )
                return
        self._dispatch(record)

    def _maybe_rebuild(self, gen: int | None) -> None:
        """Replace a broken process pool exactly once per generation."""
        if self.executor_kind != "process":
            return
        with self._lock:
            if gen is None or gen != self._pool_gen or self._draining:
                return
            self._pool_gen += 1
            old = self._pool
            self._pool = self._make_pool()
            self._count("pool_rebuilds")
        old.shutdown(wait=False)

    # ------------------------------------------------------------------
    # Settlement (the single terminal path)
    # ------------------------------------------------------------------
    def _settle_locked(
        self,
        record: JobRecord,
        result: dict | None = None,
        error: str | None = None,
        kind: str | None = None,
        status: str | None = None,
    ) -> None:
        """Settle one record terminally (idempotent; call under the lock).

        Every terminal transition funnels through here: the coalesce key is
        released, the live gauge drops, watchdogs die, and the settlement
        future resolves so every waiter unblocks.
        """
        if record.done:
            return
        if result is not None:
            record.result = result
            record.fingerprint = result.get("fingerprint")
            record.source = result.get("source")
            record.status = JobStatus.DONE
            self._count("executed")
        else:
            record.error = error
            record.error_kind = kind
            record.status = status or JobStatus.ERROR
            if record.status == JobStatus.ERROR:
                self._count("errors")
        record.finished_at = time.time()
        self.registry.histogram(
            "repro_job_seconds",
            help="Job wall time, submission to settlement.",
        ).observe(max(0.0, record.finished_at - record.created_at))
        key = record.request.coalesce_key()
        if self._by_key.get(key) == record.id:
            del self._by_key[key]
        self._live = max(0, self._live - 1)
        self._set_depth_locked()
        self._job_gen.pop(record.id, None)
        for table in (self._timers, self._retry_timers):
            timer = table.pop(record.id, None)
            if timer is not None:
                timer.cancel()
        settled = self._settled.get(record.id)
        if settled is not None and not settled.done():
            settled.set_result(record)

    def _trim_locked(self) -> None:
        if len(self._jobs) <= self.max_jobs:
            return
        for jid in list(self._jobs):
            if len(self._jobs) <= self.max_jobs:
                break
            record = self._jobs[jid]
            # A record is evictable only once finished AND unobserved: a
            # pinned record still has a ``wait()``/``?wait=1`` client about
            # to read it — evicting it would turn their poll into a 404.
            if record.done and self._pins.get(jid, 0) == 0:
                del self._jobs[jid]
                self._futures.pop(jid, None)
                self._settled.pop(jid, None)
                self._job_gen.pop(jid, None)

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def cancel(self, job_id: str) -> tuple[JobRecord | None, bool]:
        """Cancel one submission of a job; returns ``(record, cancelled)``.

        With multiple coalesced subscribers this peels one off (the job
        keeps running for the rest: ``cancelled=False``).  The last (or
        only) subscriber actually cancels: the executor future is cancelled
        if still possible, the record settles ``cancelled``, and the
        coalesce key is released so an identical re-submission starts
        fresh.  Unknown ids return ``(None, False)``; settled records are
        returned unchanged.
        """
        with self._lock:
            record = self._jobs.get(job_id)
            if record is None:
                return None, False
            if record.done:
                return record, False
            if record.subscribers > 1:
                record.subscribers -= 1
                return record, False
            future = self._futures.get(job_id)
            self._count("cancelled")
            self._settle_locked(
                record,
                error="cancelled by client request",
                kind="cancelled",
                status=JobStatus.CANCELLED,
            )
        if future is not None:
            future.cancel()  # outside the lock; stale _on_done no-ops
        return record, True

    # ------------------------------------------------------------------
    # Lookup and waiting
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> JobRecord | None:
        """The job's current record."""
        with self._lock:
            return self._jobs.get(job_id)

    def future(self, job_id: str) -> Future | None:
        """The job's *current attempt's* executor future (may be superseded)."""
        with self._lock:
            return self._futures.get(job_id)

    def settlement(self, job_id: str) -> Future | None:
        """The job's settlement future — resolves with the record on any
        terminal path (for ``asyncio.wrap_future`` bridging)."""
        with self._lock:
            return self._settled.get(job_id)

    def pin(self, job_id: str) -> None:
        """Shield a record from retention trimming while a waiter holds it."""
        with self._lock:
            self._pins[job_id] = self._pins.get(job_id, 0) + 1

    def unpin(self, job_id: str) -> None:
        """Release one :meth:`pin`; the record becomes evictable at zero."""
        with self._lock:
            count = self._pins.get(job_id, 0) - 1
            if count > 0:
                self._pins[job_id] = count
            else:
                self._pins.pop(job_id, None)

    def wait(self, job_id: str, timeout: float | None = None) -> JobRecord:
        """Block until the job settles (or ``timeout``); returns its record.

        The record is pinned for the duration, so a burst of submissions
        trimming the completed-job table cannot evict it mid-wait.  Blocks
        on the settlement future, which resolves on *any* terminal path —
        success, failure, timeout, cancellation, drain — so a crashed
        worker can never wedge a waiter.
        """
        self.pin(job_id)
        try:
            with self._lock:
                record = self._jobs.get(job_id)
                if record is None:
                    raise KeyError(f"unknown job {job_id!r}")
                settled = self._settled.get(job_id)
            if settled is not None and not record.done:
                try:
                    settled.result(timeout)
                except TimeoutError:
                    pass
            return self.get(job_id) or record
        finally:
            self.unpin(job_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            by_status = {status: 0 for status in JobStatus.ALL}
            for record in self._jobs.values():
                by_status[record.status] += 1
            out = dict(self._counters)
            out["live"] = self._live
            out["draining"] = self._draining
        out["jobs"] = by_status
        out["executor"] = self.executor_kind
        out["workers"] = self.workers
        out["job_timeout"] = self.job_timeout
        out["max_pending"] = self.max_pending
        if self._retry is not None:
            out["retry"] = {
                "max_attempts": self._retry.max_attempts,
                "base_delay": self._retry.base_delay,
                "max_delay": self._retry.max_delay,
            }
        if self._breaker is not None:
            out["breaker"] = self._breaker.state()
        injector = faults.get_injector()
        if injector.active:
            out["faults"] = injector.stats()
        out["service"] = self.service.stats()
        return out

    def health(self) -> dict:
        """Operational state for ``/v1/healthz``: ok / degraded / draining."""
        breaker_state = self._breaker.state() if self._breaker is not None else None
        with self._lock:
            draining = self._draining
            live = self._live
        if draining:
            state = "draining"
        elif breaker_state is not None and breaker_state["open"]:
            state = "degraded"
        else:
            state = "ok"
        out = {"state": state, "draining": draining, "live": live}
        if breaker_state is not None:
            out["breaker"] = breaker_state
        return out

    # ------------------------------------------------------------------
    # Drain and shutdown
    # ------------------------------------------------------------------
    def drain(self, timeout: float = 30.0) -> dict:
        """Graceful shutdown: stop intake, settle in-flight, stop the pool.

        New submissions raise :class:`ServiceDraining` from the moment this
        is called.  In-flight jobs get up to ``timeout`` seconds to settle
        naturally; stragglers are force-settled as ``cancelled`` (kind
        ``"shutdown"``) so every waiter — local or ``?wait=1`` — unblocks.
        Returns ``{"settled": n, "forced": n}``.
        """
        deadline = time.monotonic() + max(0.0, timeout)
        with self._lock:
            self._draining = True
            pending = [
                (record, self._settled.get(record.id))
                for record in self._jobs.values()
                if not record.done
            ]
        for _record, settled in pending:
            if settled is None:
                continue
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                settled.result(remaining)
            except TimeoutError:
                break
        forced = 0
        to_cancel = []
        with self._lock:
            for record in list(self._jobs.values()):
                if record.done:
                    continue
                future = self._futures.get(record.id)
                if future is not None:
                    to_cancel.append(future)
                self._count("cancelled")
                self._settle_locked(
                    record,
                    error=(
                        f"service drained: job cancelled after the "
                        f"{timeout:g}s settling budget"
                    ),
                    kind="shutdown",
                    status=JobStatus.CANCELLED,
                )
                forced += 1
        for future in to_cancel:
            future.cancel()  # outside the lock; stale _on_done no-ops
        self._pool.shutdown(wait=False, cancel_futures=True)
        return {"settled": len(pending) - forced, "forced": forced}

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        """Stop the executors.

        ``cancel_futures=True`` (the Ctrl-C path) first settles every
        unfinished record as ``cancelled`` so no ``wait()``/``?wait=1``
        client is left hanging, then cancels whatever the pool hasn't
        started.
        """
        if cancel_futures:
            to_cancel = []
            with self._lock:
                self._draining = True
                for record in self._jobs.values():
                    if record.done:
                        continue
                    future = self._futures.get(record.id)
                    if future is not None:
                        to_cancel.append(future)
                    self._count("cancelled")
                    self._settle_locked(
                        record,
                        error="service shut down before the job completed",
                        kind="shutdown",
                        status=JobStatus.CANCELLED,
                    )
            for future in to_cancel:
                future.cancel()  # outside the lock; stale _on_done no-ops
        self._pool.shutdown(wait=wait, cancel_futures=cancel_futures)

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
