"""``repro serve`` — the async compilation-service API.

One typed request/response surface (:mod:`repro.serve.schema`) shared by the
HTTP server, the batch orchestrator, and the CLI; a fault-tolerant
coalescing job queue (:mod:`repro.serve.queue`) in front of the PR-4
compilation service — executor supervision, deadlines, bounded retries,
cancellation, load shedding, a circuit breaker, and graceful drain; an
asyncio HTTP front end (:mod:`repro.serve.server`) with stdlib clients
(:mod:`repro.serve.client`); and a deterministic fault-injection harness
(:mod:`repro.serve.faults`) the chaos tests and benchmarks drive.
"""

from . import faults
from .client import AsyncServiceClient, ServiceClient, ServiceError
from .queue import (
    EXECUTORS,
    BreakerOpen,
    CircuitBreaker,
    JobQueue,
    QueueFull,
    RejectedSubmission,
    RetryPolicy,
    ServiceDraining,
    execute_request,
)
from .schema import (
    JOB_KINDS,
    SCHEMA,
    CompileRequest,
    JobError,
    JobRecord,
    JobStatus,
    check_envelope,
    envelope,
)
from .server import BackgroundServer, CompileServer, run_server

__all__ = [
    "SCHEMA",
    "JOB_KINDS",
    "EXECUTORS",
    "JobStatus",
    "JobError",
    "CompileRequest",
    "JobRecord",
    "envelope",
    "check_envelope",
    "JobQueue",
    "execute_request",
    "RetryPolicy",
    "CircuitBreaker",
    "RejectedSubmission",
    "QueueFull",
    "BreakerOpen",
    "ServiceDraining",
    "CompileServer",
    "BackgroundServer",
    "run_server",
    "ServiceClient",
    "AsyncServiceClient",
    "ServiceError",
    "faults",
]
