"""``repro serve`` — the async compilation-service API.

One typed request/response surface (:mod:`repro.serve.schema`) shared by the
HTTP server, the batch orchestrator, and the CLI; a coalescing job queue
(:mod:`repro.serve.queue`) in front of the PR-4 compilation service; and an
asyncio HTTP front end (:mod:`repro.serve.server`) with stdlib clients
(:mod:`repro.serve.client`).
"""

from .client import AsyncServiceClient, ServiceClient, ServiceError
from .queue import EXECUTORS, JobQueue, execute_request
from .schema import (
    JOB_KINDS,
    SCHEMA,
    CompileRequest,
    JobRecord,
    JobStatus,
    check_envelope,
    envelope,
)
from .server import BackgroundServer, CompileServer, run_server

__all__ = [
    "SCHEMA",
    "JOB_KINDS",
    "EXECUTORS",
    "JobStatus",
    "CompileRequest",
    "JobRecord",
    "envelope",
    "check_envelope",
    "JobQueue",
    "execute_request",
    "CompileServer",
    "BackgroundServer",
    "run_server",
    "ServiceClient",
    "AsyncServiceClient",
    "ServiceError",
]
