"""Asyncio HTTP front end for the compilation service (``repro serve``).

A deliberately small HTTP/1.1 server on stdlib ``asyncio`` streams — no
framework dependency — speaking JSON envelopes (:func:`~repro.serve.schema
.envelope`) over keep-alive connections:

========  ======================  ===========================================
method    path                    action
========  ======================  ===========================================
POST      ``/v1/jobs``            submit a :class:`CompileRequest` body; 202
                                  with the queued/coalesced job record, or
                                  200 with the settled record when
                                  ``?wait=1`` (optional ``&timeout=SECONDS``)
GET       ``/v1/jobs/{id}``       poll one job record
GET       ``/v1/artifacts/{fp}``  fetch a stored artifact by fingerprint
                                  (mapping document or routed-circuit
                                  metrics, whichever namespace holds it)
GET       ``/v1/stats``           queue + service + store counters
GET       ``/v1/metrics``         Prometheus text exposition of the metrics
                                  registry (the scrape endpoint)
GET       ``/v1/healthz``         liveness probe
========  ======================  ===========================================

Blocking work never runs on the event loop: submissions go to the
:class:`~repro.serve.queue.JobQueue` executors and ``?wait`` bridges the
job's future back via :func:`asyncio.wrap_future`.  Artifact/stats reads are
small local-disk JSON reads, served inline.

:class:`BackgroundServer` runs the same server on a dedicated thread with
its own event loop — the harness the tests, the latency benchmark, and the
example client share.
"""

from __future__ import annotations

import asyncio
import json
import logging
import math
import signal
import threading
import time
from urllib.parse import parse_qs, urlsplit

from . import faults
from .queue import JobQueue, RejectedSubmission
from .schema import CompileRequest, envelope
from ..obs.trace import new_trace_id
from ..service.store import NAMESPACES

__all__ = ["CompileServer", "BackgroundServer", "run_server"]

logger = logging.getLogger(__name__)

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Request bodies above this are rejected (requests are tiny JSON specs).
_MAX_BODY = 1 << 20

#: Default cap on one ``?wait=1`` hold (seconds); clients pass ``timeout=``
#: to shorten it.  Long compiles past the cap degrade to 202 + polling.
_DEFAULT_WAIT_TIMEOUT = 300.0


class _RawText:
    """A non-JSON response payload (the ``/v1/metrics`` scrape body)."""

    def __init__(self, text: str, content_type: str = "text/plain; version=0.0.4"):
        self.text = text
        self.content_type = content_type


class _BadRequest(Exception):
    """Client-side error carrying its HTTP status (plus optional headers
    and extra envelope fields)."""

    def __init__(
        self,
        message: str,
        status: int = 400,
        headers: dict[str, str] | None = None,
        **extra,
    ):
        super().__init__(message)
        self.status = status
        self.headers = headers or {}
        self.extra = extra


class _Unavailable(_BadRequest):
    """503 with a ``Retry-After`` backpressure hint (load shedding)."""

    def __init__(self, message: str, retry_after: float = 1.0):
        retry_after_s = max(1, math.ceil(retry_after))
        super().__init__(
            message,
            status=503,
            headers={"Retry-After": str(retry_after_s)},
            retry_after=retry_after_s,
        )


class CompileServer:
    """One listening endpoint over a shared :class:`JobQueue`."""

    def __init__(
        self,
        queue: JobQueue,
        host: str = "127.0.0.1",
        port: int = 0,
        wait_timeout: float = _DEFAULT_WAIT_TIMEOUT,
    ):
        self.queue = queue
        self.host = host
        self.port = port  # 0 → ephemeral; rewritten once bound
        self.wait_timeout = float(wait_timeout)
        self._server: asyncio.AbstractServer | None = None
        self._started_at: float | None = None
        self.requests_served = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.time()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or request_line.strip() == b"":
                    break
                try:
                    method, target, _version = (
                        request_line.decode("ascii", "replace").split(None, 2)
                    )
                except ValueError:
                    await self._respond(
                        writer, 400, envelope("error", None, error="malformed request line")
                    )
                    break
                headers = await self._read_headers(reader)
                try:
                    body = await self._read_body(reader, headers)
                except _BadRequest as exc:
                    # The body was never consumed, so the connection state is
                    # unknown: answer the error explicitly and close, rather
                    # than letting the exception silently drop the socket.
                    await self._respond(
                        writer,
                        exc.status,
                        envelope("error", None, error=str(exc), **exc.extra),
                        close=True,
                        headers=exc.headers,
                    )
                    break
                close = headers.get("connection", "").lower() == "close"
                extra_headers: dict[str, str] = {}
                started = time.perf_counter()
                try:
                    status, payload = await self._dispatch(method, target, body)
                except _BadRequest as exc:
                    status = exc.status
                    payload = envelope("error", None, error=str(exc), **exc.extra)
                    extra_headers = exc.headers
                except Exception as exc:  # noqa: BLE001 - must never kill the loop
                    status, payload = 500, envelope(
                        "error", None, error=f"{type(exc).__name__}: {exc}"
                    )
                self.requests_served += 1
                self._observe_http(
                    method, target, status, time.perf_counter() - started
                )
                await self._respond(
                    writer, status, payload, close=close, headers=extra_headers
                )
                if close:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass
        except asyncio.CancelledError:
            # Shutdown unwinds parked keep-alive handlers by cancelling
            # them; finish normally so streams' connection_made callback
            # (which calls task.exception()) doesn't re-raise into the loop.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    @staticmethod
    async def _read_headers(reader: asyncio.StreamReader) -> dict[str, str]:
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                return headers
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()

    @staticmethod
    async def _read_body(
        reader: asyncio.StreamReader, headers: dict[str, str]
    ) -> bytes:
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError as exc:
            raise _BadRequest(f"bad Content-Length: {exc}") from exc
        if length <= 0:
            return b""
        if length > _MAX_BODY:
            raise _BadRequest("request body too large", status=413)
        return await reader.readexactly(length)

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict | _RawText,
        close: bool = False,
        headers: dict[str, str] | None = None,
    ) -> None:
        if isinstance(payload, _RawText):
            body = payload.text.encode("utf-8")
            content_type = payload.content_type
        else:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            content_type = "application/json"
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        data = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body
        # Chaos hook: drop the connection mid-response so client truncation
        # handling (idempotent-retry vs typed connection error) is testable.
        cut = faults.partial_cut(len(data))
        if cut is not None:
            writer.write(data[:cut])
            await writer.drain()
            raise ConnectionResetError("injected fault: partial response write")
        writer.write(data)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    @staticmethod
    def _route_label(target: str) -> str:
        """Coarse route label for metrics (ids collapsed, unknowns bucketed)."""
        path = urlsplit(target).path.rstrip("/")
        if path == "/v1/jobs":
            return "/v1/jobs"
        if path.startswith("/v1/jobs/"):
            return "/v1/jobs/{id}"
        if path.startswith("/v1/artifacts/"):
            return "/v1/artifacts/{fp}"
        if path in ("/v1/stats", "/v1/healthz", "/v1/metrics"):
            return path
        return "other"

    def _observe_http(
        self, method: str, target: str, status: int, seconds: float
    ) -> None:
        registry = self.queue.registry
        route = self._route_label(target)
        registry.counter(
            "repro_http_requests_total",
            help="HTTP requests served, by method/route/status.",
            method=method,
            route=route,
            status=str(status),
        ).inc()
        registry.histogram(
            "repro_http_request_seconds",
            help="HTTP request handling time.",
            route=route,
        ).observe(seconds)

    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, dict | _RawText]:
        parts = urlsplit(target)
        path = parts.path.rstrip("/")
        query = {k: v[-1] for k, v in parse_qs(parts.query).items()}

        if path == "/v1/jobs" and method == "POST":
            return await self._post_job(body, query)
        if path.startswith("/v1/jobs/") and method == "GET":
            return self._get_job(path.removeprefix("/v1/jobs/"))
        if path.startswith("/v1/jobs/") and method == "DELETE":
            return self._delete_job(path.removeprefix("/v1/jobs/"))
        if path.startswith("/v1/artifacts/") and method == "GET":
            return self._get_artifact(path.removeprefix("/v1/artifacts/"))
        if path == "/v1/stats" and method == "GET":
            return 200, envelope("stats", self._stats())
        if path == "/v1/metrics" and method == "GET":
            return 200, _RawText(self.queue.registry.render())
        if path == "/v1/healthz" and method == "GET":
            return self._healthz()
        if path in (
            "/v1/jobs", "/v1/stats", "/v1/metrics", "/v1/healthz"
        ) or path.startswith(("/v1/jobs/", "/v1/artifacts/")):
            return 405, envelope("error", None, error=f"{method} not allowed on {path}")
        return 404, envelope("error", None, error=f"no route for {path!r}")

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    #: Accepted ``?wait=`` spellings; anything else is a client error.
    _WAIT_FALSE = ("", "0", "false", "no")
    _WAIT_TRUE = ("1", "true", "yes")

    def _parse_wait_query(self, query: dict[str, str]) -> tuple[bool, float]:
        """Validate ``?wait=``/``?timeout=`` *before* any work is enqueued.

        Malformed values must never reach the queue (the job would already
        be dispatched by the time the error surfaced) and must never escape
        as a 500 — they are client errors, so they raise :class:`_BadRequest`
        and come back as a 400 envelope.
        """
        wait_raw = query.get("wait", "").lower()
        if wait_raw in self._WAIT_FALSE:
            wait = False
        elif wait_raw in self._WAIT_TRUE:
            wait = True
        else:
            raise _BadRequest(
                f"bad wait value {query.get('wait')!r}; expected one of "
                f"{self._WAIT_TRUE + tuple(v for v in self._WAIT_FALSE if v)}"
            )
        timeout = self.wait_timeout
        if "timeout" in query:
            try:
                timeout = float(query["timeout"])
            except ValueError as exc:
                raise _BadRequest(f"bad timeout: {exc}") from exc
            if not math.isfinite(timeout) or timeout <= 0:
                raise _BadRequest(
                    f"timeout must be a positive number of seconds, "
                    f"got {query['timeout']!r}"
                )
            timeout = min(timeout, self.wait_timeout)
        return wait, timeout

    async def _post_job(self, body: bytes, query: dict[str, str]) -> tuple[int, dict]:
        handler_started = time.perf_counter()
        trace_id = new_trace_id()
        try:
            doc = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _BadRequest(f"body is not valid JSON: {exc}") from exc
        try:
            request = CompileRequest.from_dict(doc)
        except ValueError as exc:
            raise _BadRequest(str(exc)) from exc
        wait, timeout = self._parse_wait_query(query)
        try:
            record, coalesced = self.queue.submit(request, trace_id=trace_id)
        except RejectedSubmission as exc:
            # Load shedding (queue full / breaker open / draining) → 503 +
            # Retry-After so well-behaved clients back off.
            logger.warning(
                "shed submission (503 %s): %s",
                type(exc).__name__,
                exc,
                extra={"trace_id": trace_id, "reason": type(exc).__name__},
            )
            raise _Unavailable(str(exc), retry_after=exc.retry_after) from exc
        if wait:
            # Pin while waiting: a submission burst may trim the completed
            # table before we re-read the record, which would 404 this very
            # client's follow-up.
            self.queue.pin(record.id)
            try:
                # Bridge the *settlement* future (resolved on every terminal
                # path — success, error, timeout, cancel, drain), so a
                # crashed worker can't wedge this hold.
                settled = self.queue.settlement(record.id)
                if settled is not None and not record.done:
                    try:
                        await asyncio.wait_for(
                            asyncio.shield(asyncio.wrap_future(settled)), timeout
                        )
                    except asyncio.TimeoutError:
                        pass  # still running: degrade to 202 + polling
                    except asyncio.CancelledError:
                        raise  # connection teardown: let the handler unwind
                    except Exception:  # noqa: BLE001 - settlement futures only
                        # ever resolve with the record, so anything else is a
                        # server bug: log it loudly, then degrade to 202 so
                        # the client still gets a valid (pollable) response.
                        logger.exception(
                            "unexpected error awaiting settlement of job %s",
                            record.id,
                        )
                record = self.queue.get(record.id) or record
            finally:
                self.queue.unpin(record.id)
        status = 200 if record.done else 202
        # The envelope's trace block: the job's end-to-end trace ID (a
        # coalesced submission inherits the in-flight job's trace) plus how
        # long this handler held the request.
        trace = {
            "trace_id": record.trace_id or trace_id,
            "duration_ms": round((time.perf_counter() - handler_started) * 1000.0, 3),
        }
        return status, envelope(
            "jobs.submit", record.to_dict(), coalesced=coalesced, trace=trace
        )

    def _get_job(self, job_id: str) -> tuple[int, dict]:
        record = self.queue.get(job_id)
        if record is None:
            return 404, envelope("error", None, error=f"unknown job {job_id!r}")
        return 200, envelope("jobs.get", record.to_dict())

    def _delete_job(self, job_id: str) -> tuple[int, dict]:
        record, cancelled = self.queue.cancel(job_id)
        if record is None:
            return 404, envelope("error", None, error=f"unknown job {job_id!r}")
        return 200, envelope("jobs.cancel", record.to_dict(), cancelled=cancelled)

    def _healthz(self) -> tuple[int, dict]:
        health = self.queue.health()
        payload = {"ok": health["state"] != "draining", **health}
        status = 503 if health["state"] == "draining" else 200
        return status, envelope("healthz", payload)

    def _get_artifact(self, fingerprint: str) -> tuple[int, dict]:
        store = self.queue.service.store
        if store is None:
            return 404, envelope("error", None, error="server runs without a disk store")
        try:
            for namespace, load in (
                ("mappings", store.get_mapping_doc),
                ("circuits", store.get_circuit_report),
            ):
                doc = load(fingerprint)
                if doc is not None:
                    return 200, envelope(
                        "artifacts.get",
                        {
                            "fingerprint": fingerprint,
                            "namespace": namespace,
                            "artifact": doc,
                        },
                    )
        except ValueError as exc:  # malformed fingerprint
            raise _BadRequest(str(exc)) from exc
        return 404, envelope(
            "error", None, error=f"no artifact for fingerprint {fingerprint!r}"
        )

    def _stats(self) -> dict:
        out = self.queue.stats()
        # The load-shedding view: current depth plus the Retry-After hint a
        # 503 would carry right now (same formula QueueFull uses), so
        # operators can see backpressure before clients feel it.
        depth = out.get("live", 0)
        out["queue_depth"] = depth
        out["retry_after_hint"] = round(min(30.0, 1.0 + 0.25 * depth), 3)
        out["metrics"] = self.queue.registry.snapshot()
        out["server"] = {
            "host": self.host,
            "port": self.port,
            "uptime_seconds": (
                round(time.time() - self._started_at, 3) if self._started_at else None
            ),
            "requests_served": self.requests_served,
            "namespaces": list(NAMESPACES),
        }
        return out


def run_server(
    queue: JobQueue,
    host: str = "127.0.0.1",
    port: int = 8035,
    ready=None,
    drain_timeout: float = 30.0,
) -> None:
    """Run a server until SIGTERM/SIGINT or cancellation, then drain.

    The graceful-shutdown path: on SIGTERM or SIGINT (installable only from
    the main thread; elsewhere external cancellation is the stop signal) the
    listener closes, then :meth:`JobQueue.drain` runs — intake stops,
    in-flight jobs get ``drain_timeout`` seconds to settle, stragglers are
    force-settled as ``cancelled`` — so no client is ever left holding a
    wedged ``running`` record.

    ``ready`` (optional callable) receives the bound :class:`CompileServer`
    once listening — the CLI uses it to print the address.
    """

    async def _main() -> None:
        server = CompileServer(queue, host=host, port=port)
        await server.start()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        installed = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
                installed.append(sig)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread (tests) or unsupported platform
        if ready is not None:
            ready(server)
        serve_task = asyncio.ensure_future(server.serve_forever())
        stop_task = asyncio.ensure_future(stop.wait())
        try:
            await asyncio.wait(
                {serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
            )
        except asyncio.CancelledError:
            pass  # cancelled from outside: clean shutdown
        finally:
            for task in (serve_task, stop_task):
                task.cancel()
            for sig in installed:
                loop.remove_signal_handler(sig)
            await server.stop()
            # Drain off-loop: it blocks on executor settlement.
            await loop.run_in_executor(None, queue.drain, drain_timeout)

    asyncio.run(_main())


class BackgroundServer:
    """A server on its own thread + event loop (tests, benchmarks, examples).

    ::

        with BackgroundServer(queue) as bg:
            client = ServiceClient("127.0.0.1", bg.port)
            ...

    The queue is *not* shut down on exit — it belongs to the caller.
    """

    def __init__(self, queue: JobQueue, host: str = "127.0.0.1", port: int = 0):
        self._queue = queue
        self._host = host
        self._port = port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self.server: CompileServer | None = None

    @property
    def port(self) -> int:
        assert self.server is not None, "server not started"
        return self.server.port

    @property
    def host(self) -> str:
        return self._host

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        server = CompileServer(self._queue, host=self._host, port=self._port)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # pragma: no cover - bind failure
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self.server = server
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(server.stop())
            # Keep-alive connections may still have handler tasks parked on
            # readline(); unwind them on the live loop so their cleanup
            # (writer.close) doesn't fire at GC time against a closed loop.
            pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop(self) -> None:
        """Stop the server thread; idempotent (drain() + __exit__ both call
        it, and the loop may already be closed by the time the second runs)."""
        if self._loop is not None and self._thread is not None:
            if not self._loop.is_closed():
                try:
                    self._loop.call_soon_threadsafe(self._loop.stop)
                except RuntimeError:
                    pass  # closed between the check and the call
            self._thread.join(timeout=10)

    def drain(self, timeout: float = 30.0) -> dict:
        """SIGTERM-equivalent for the thread harness: stop the listener,
        then drain the queue (stop intake, settle or cancel in-flight).

        The queue still belongs to the caller, but draining it is part of
        the graceful-shutdown contract this harness mirrors.  Returns the
        queue's drain summary ``{"settled": n, "forced": n}``.
        """
        self.stop()
        return self._queue.drain(timeout)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
