"""Asyncio HTTP front end for the compilation service (``repro serve``).

A deliberately small HTTP/1.1 server on stdlib ``asyncio`` streams — no
framework dependency — speaking JSON envelopes (:func:`~repro.serve.schema
.envelope`) over keep-alive connections:

========  ======================  ===========================================
method    path                    action
========  ======================  ===========================================
POST      ``/v1/jobs``            submit a :class:`CompileRequest` body; 202
                                  with the queued/coalesced job record, or
                                  200 with the settled record when
                                  ``?wait=1`` (optional ``&timeout=SECONDS``)
GET       ``/v1/jobs/{id}``       poll one job record
GET       ``/v1/artifacts/{fp}``  fetch a stored artifact by fingerprint
                                  (mapping document or routed-circuit
                                  metrics, whichever namespace holds it)
GET       ``/v1/stats``           queue + service + store counters
GET       ``/v1/healthz``         liveness probe
========  ======================  ===========================================

Blocking work never runs on the event loop: submissions go to the
:class:`~repro.serve.queue.JobQueue` executors and ``?wait`` bridges the
job's future back via :func:`asyncio.wrap_future`.  Artifact/stats reads are
small local-disk JSON reads, served inline.

:class:`BackgroundServer` runs the same server on a dedicated thread with
its own event loop — the harness the tests, the latency benchmark, and the
example client share.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
import time
from urllib.parse import parse_qs, urlsplit

from .queue import JobQueue
from .schema import CompileRequest, envelope
from ..service.store import NAMESPACES

__all__ = ["CompileServer", "BackgroundServer", "run_server"]

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}

#: Request bodies above this are rejected (requests are tiny JSON specs).
_MAX_BODY = 1 << 20

#: Default cap on one ``?wait=1`` hold (seconds); clients pass ``timeout=``
#: to shorten it.  Long compiles past the cap degrade to 202 + polling.
_DEFAULT_WAIT_TIMEOUT = 300.0


class _BadRequest(Exception):
    """Client-side error carrying its HTTP status."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


class CompileServer:
    """One listening endpoint over a shared :class:`JobQueue`."""

    def __init__(
        self,
        queue: JobQueue,
        host: str = "127.0.0.1",
        port: int = 0,
        wait_timeout: float = _DEFAULT_WAIT_TIMEOUT,
    ):
        self.queue = queue
        self.host = host
        self.port = port  # 0 → ephemeral; rewritten once bound
        self.wait_timeout = float(wait_timeout)
        self._server: asyncio.AbstractServer | None = None
        self._started_at: float | None = None
        self.requests_served = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.time()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or request_line.strip() == b"":
                    break
                try:
                    method, target, _version = (
                        request_line.decode("ascii", "replace").split(None, 2)
                    )
                except ValueError:
                    await self._respond(
                        writer, 400, envelope("error", None, error="malformed request line")
                    )
                    break
                headers = await self._read_headers(reader)
                try:
                    body = await self._read_body(reader, headers)
                except _BadRequest as exc:
                    # The body was never consumed, so the connection state is
                    # unknown: answer the error explicitly and close, rather
                    # than letting the exception silently drop the socket.
                    await self._respond(
                        writer,
                        exc.status,
                        envelope("error", None, error=str(exc)),
                        close=True,
                    )
                    break
                close = headers.get("connection", "").lower() == "close"
                try:
                    status, payload = await self._dispatch(method, target, body)
                except _BadRequest as exc:
                    status, payload = exc.status, envelope("error", None, error=str(exc))
                except Exception as exc:  # noqa: BLE001 - must never kill the loop
                    status, payload = 500, envelope(
                        "error", None, error=f"{type(exc).__name__}: {exc}"
                    )
                self.requests_served += 1
                await self._respond(writer, status, payload, close=close)
                if close:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    async def _read_headers(reader: asyncio.StreamReader) -> dict[str, str]:
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                return headers
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()

    @staticmethod
    async def _read_body(
        reader: asyncio.StreamReader, headers: dict[str, str]
    ) -> bytes:
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError as exc:
            raise _BadRequest(f"bad Content-Length: {exc}") from exc
        if length <= 0:
            return b""
        if length > _MAX_BODY:
            raise _BadRequest("request body too large", status=413)
        return await reader.readexactly(length)

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter, status: int, payload: dict, close: bool = False
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            f"\r\n"
        ).encode("ascii")
        writer.write(head + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(self, method: str, target: str, body: bytes) -> tuple[int, dict]:
        parts = urlsplit(target)
        path = parts.path.rstrip("/")
        query = {k: v[-1] for k, v in parse_qs(parts.query).items()}

        if path == "/v1/jobs" and method == "POST":
            return await self._post_job(body, query)
        if path.startswith("/v1/jobs/") and method == "GET":
            return self._get_job(path.removeprefix("/v1/jobs/"))
        if path.startswith("/v1/artifacts/") and method == "GET":
            return self._get_artifact(path.removeprefix("/v1/artifacts/"))
        if path == "/v1/stats" and method == "GET":
            return 200, envelope("stats", self._stats())
        if path == "/v1/healthz" and method == "GET":
            return 200, envelope("healthz", {"ok": True})
        if path in ("/v1/jobs", "/v1/stats", "/v1/healthz") or path.startswith(
            ("/v1/jobs/", "/v1/artifacts/")
        ):
            return 405, envelope("error", None, error=f"{method} not allowed on {path}")
        return 404, envelope("error", None, error=f"no route for {path!r}")

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    #: Accepted ``?wait=`` spellings; anything else is a client error.
    _WAIT_FALSE = ("", "0", "false", "no")
    _WAIT_TRUE = ("1", "true", "yes")

    def _parse_wait_query(self, query: dict[str, str]) -> tuple[bool, float]:
        """Validate ``?wait=``/``?timeout=`` *before* any work is enqueued.

        Malformed values must never reach the queue (the job would already
        be dispatched by the time the error surfaced) and must never escape
        as a 500 — they are client errors, so they raise :class:`_BadRequest`
        and come back as a 400 envelope.
        """
        wait_raw = query.get("wait", "").lower()
        if wait_raw in self._WAIT_FALSE:
            wait = False
        elif wait_raw in self._WAIT_TRUE:
            wait = True
        else:
            raise _BadRequest(
                f"bad wait value {query.get('wait')!r}; expected one of "
                f"{self._WAIT_TRUE + tuple(v for v in self._WAIT_FALSE if v)}"
            )
        timeout = self.wait_timeout
        if "timeout" in query:
            try:
                timeout = float(query["timeout"])
            except ValueError as exc:
                raise _BadRequest(f"bad timeout: {exc}") from exc
            if not math.isfinite(timeout) or timeout <= 0:
                raise _BadRequest(
                    f"timeout must be a positive number of seconds, "
                    f"got {query['timeout']!r}"
                )
            timeout = min(timeout, self.wait_timeout)
        return wait, timeout

    async def _post_job(self, body: bytes, query: dict[str, str]) -> tuple[int, dict]:
        try:
            doc = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _BadRequest(f"body is not valid JSON: {exc}") from exc
        try:
            request = CompileRequest.from_dict(doc)
        except ValueError as exc:
            raise _BadRequest(str(exc)) from exc
        wait, timeout = self._parse_wait_query(query)
        record, coalesced = self.queue.submit(request)
        if wait:
            # Pin while waiting: a submission burst may trim the completed
            # table before we re-read the record, which would 404 this very
            # client's follow-up.
            self.queue.pin(record.id)
            try:
                future = self.queue.future(record.id)
                if future is not None:
                    try:
                        await asyncio.wait_for(
                            asyncio.shield(asyncio.wrap_future(future)), timeout
                        )
                    except (asyncio.TimeoutError, Exception):  # noqa: B014 - job
                        # errors surface through the record's status, not the
                        # transport.
                        pass
                record = self.queue.get(record.id) or record
            finally:
                self.queue.unpin(record.id)
        status = 200 if record.done else 202
        return status, envelope("jobs.submit", record.to_dict(), coalesced=coalesced)

    def _get_job(self, job_id: str) -> tuple[int, dict]:
        record = self.queue.get(job_id)
        if record is None:
            return 404, envelope("error", None, error=f"unknown job {job_id!r}")
        return 200, envelope("jobs.get", record.to_dict())

    def _get_artifact(self, fingerprint: str) -> tuple[int, dict]:
        store = self.queue.service.store
        if store is None:
            return 404, envelope("error", None, error="server runs without a disk store")
        try:
            for namespace, load in (
                ("mappings", store.get_mapping_doc),
                ("circuits", store.get_circuit_report),
            ):
                doc = load(fingerprint)
                if doc is not None:
                    return 200, envelope(
                        "artifacts.get",
                        {
                            "fingerprint": fingerprint,
                            "namespace": namespace,
                            "artifact": doc,
                        },
                    )
        except ValueError as exc:  # malformed fingerprint
            raise _BadRequest(str(exc)) from exc
        return 404, envelope(
            "error", None, error=f"no artifact for fingerprint {fingerprint!r}"
        )

    def _stats(self) -> dict:
        out = self.queue.stats()
        out["server"] = {
            "host": self.host,
            "port": self.port,
            "uptime_seconds": (
                round(time.time() - self._started_at, 3) if self._started_at else None
            ),
            "requests_served": self.requests_served,
            "namespaces": list(NAMESPACES),
        }
        return out


def run_server(
    queue: JobQueue, host: str = "127.0.0.1", port: int = 8035, ready=None
) -> None:
    """Run a server until cancelled (the ``repro serve`` entry point).

    ``ready`` (optional callable) receives the bound :class:`CompileServer`
    once listening — the CLI uses it to print the address.
    """

    async def _main() -> None:
        server = CompileServer(queue, host=host, port=port)
        await server.start()
        if ready is not None:
            ready(server)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass  # cancelled from outside: clean shutdown
        finally:
            await server.stop()

    asyncio.run(_main())


class BackgroundServer:
    """A server on its own thread + event loop (tests, benchmarks, examples).

    ::

        with BackgroundServer(queue) as bg:
            client = ServiceClient("127.0.0.1", bg.port)
            ...

    The queue is *not* shut down on exit — it belongs to the caller.
    """

    def __init__(self, queue: JobQueue, host: str = "127.0.0.1", port: int = 0):
        self._queue = queue
        self._host = host
        self._port = port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self.server: CompileServer | None = None

    @property
    def port(self) -> int:
        assert self.server is not None, "server not started"
        return self.server.port

    @property
    def host(self) -> str:
        return self._host

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        server = CompileServer(self._queue, host=self._host, port=self._port)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # pragma: no cover - bind failure
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self.server = server
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(server.stop())
            loop.close()

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop(self) -> None:
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
