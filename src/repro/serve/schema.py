"""Typed request/response layer shared by the HTTP API, batch, and the CLI.

This module is the API redesign's core: **one** canonical request object
(:class:`CompileRequest`) flows through every entry point — a ``POST
/v1/jobs`` body, a ``repro serve`` job, a batch cell, a CLI invocation — and
fingerprints identically everywhere, because all of them resolve to the same
:class:`~repro.service.MappingSpec` / ``CompileOptions`` pair underneath.

Three layers:

* :class:`CompileRequest` — a validated, immutable job description
  (``"map"`` → compile one fermion-to-qubit mapping; ``"compile"`` → route a
  Trotter step onto one architecture).  Its :meth:`~CompileRequest
  .coalesce_key` is the cross-client request-coalescing key: engine hints
  (``hatt_backend`` / ``router_backend``) are *excluded*, the same exclusion
  the cache fingerprints make, so clients asking for the same physics on
  different engines still share one compile.
* :class:`JobRecord` — the lifecycle of one submitted job
  (:class:`JobStatus` state machine, timestamps, result payload).
* :func:`envelope` — the versioned JSON response wrapper
  ``{"schema": "repro/v1", "command": ..., "result": ...}`` that every
  ``--json`` CLI path and every HTTP response uses.

Everything round-trips through plain JSON dicts (``to_dict``/``from_dict``)
with strict unknown-key rejection, so a typo'd field fails loudly at the
edge instead of silently changing the request.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace

from ..circuits.evolution import TERM_ORDERS
from ..circuits.routing import ROUTER_BACKENDS
from ..compile.pipeline import ARCHITECTURES, CompileOptions
from ..hatt.construction import BACKENDS as HATT_BACKENDS
from ..service import MAPPING_KINDS, MappingSpec

__all__ = [
    "SCHEMA",
    "JOB_KINDS",
    "JobStatus",
    "JobError",
    "CompileRequest",
    "JobRecord",
    "envelope",
    "check_envelope",
]

#: Version tag carried by every envelope; bump on incompatible surface changes.
SCHEMA = "repro/v1"

#: Job families: ``map`` compiles a fermion-to-qubit mapping, ``compile``
#: additionally synthesizes and routes one Trotter step onto hardware.
JOB_KINDS = ("map", "compile")


class JobStatus:
    """Job lifecycle states (string constants, not an enum, so records stay
    plain-JSON all the way through)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    ERROR = "error"
    CANCELLED = "cancelled"

    ALL = (QUEUED, RUNNING, DONE, ERROR, CANCELLED)
    TERMINAL = (DONE, ERROR, CANCELLED)


class JobError(RuntimeError):
    """Typed job-execution failure.

    ``kind`` classifies the failure for operators and the retry policy —
    ``"worker_crash"``, ``"timeout"``, ``"transient_io"``, ``"cancelled"``,
    ``"shutdown"``, or the catch-all ``"exception"`` — and lands on
    :attr:`JobRecord.error_kind` when the job settles.  ``retryable`` marks
    whether a bounded re-dispatch of the same work may plausibly succeed
    (a crashed worker or a transient I/O error: yes; a bad request: no).
    """

    def __init__(self, message: str, kind: str = "exception", retryable: bool = False):
        super().__init__(message)
        self.kind = kind
        self.retryable = retryable


@dataclass(frozen=True)
class CompileRequest:
    """One validated compilation job, identical across every entry point.

    ``hatt_backend`` / ``router_backend`` are engine *hints*: they select
    between bit-identical kernels, so they are excluded from
    :meth:`coalesce_key` (and from the underlying cache fingerprints).
    ``term_order``/``lookahead`` only apply to ``job="compile"``.  ``arch``
    names the routing target for ``compile`` jobs and — for
    ``kind="hatt-arch"`` only — the coupling graph the tree is grown
    against, so ``map`` jobs accept it exactly when the kind is
    architecture-adaptive.  ``arch_weight`` tunes that kind's distance
    blend and is rejected for every other kind.

    ``deadline`` is a per-attempt execution budget in seconds enforced by
    the queue (it overrides the server's ``--job-timeout`` default).  Like
    the engine hints it is *excluded* from :meth:`coalesce_key` — it shapes
    how the work runs, not what the work is — so when identical requests
    coalesce, the first submitter's deadline governs the shared job.
    """

    case: str
    job: str = "map"
    kind: str = "hatt"
    arch: str | None = None
    arch_weight: float | None = None
    term_order: str = "mutual"
    lookahead: int | None = None
    deadline: float | None = None
    hatt_backend: str = "vector"
    router_backend: str = "vector"

    #: Fields that identify the *work* (everything but the engine hints).
    _KEY_FIELDS = (
        "job", "case", "kind", "arch", "arch_weight", "term_order", "lookahead"
    )

    def __post_init__(self):
        if not self.case or not isinstance(self.case, str):
            raise ValueError("request needs a non-empty case spec")
        if self.job not in JOB_KINDS:
            raise ValueError(f"unknown job {self.job!r}; expected one of {JOB_KINDS}")
        if self.kind not in MAPPING_KINDS:
            raise ValueError(
                f"unknown mapping kind {self.kind!r}; expected one of {MAPPING_KINDS}"
            )
        if self.hatt_backend not in HATT_BACKENDS:
            raise ValueError(
                f"unknown hatt backend {self.hatt_backend!r}; "
                f"expected one of {HATT_BACKENDS}"
            )
        if self.router_backend not in ROUTER_BACKENDS:
            raise ValueError(
                f"unknown router backend {self.router_backend!r}; "
                f"expected one of {ROUTER_BACKENDS}"
            )
        if self.term_order not in TERM_ORDERS:
            raise ValueError(
                f"unknown term order {self.term_order!r}; expected one of {TERM_ORDERS}"
            )
        if self.lookahead is not None and (
            not isinstance(self.lookahead, int) or self.lookahead < 1
        ):
            raise ValueError(f"lookahead must be a positive int, got {self.lookahead!r}")
        if self.deadline is not None and (
            isinstance(self.deadline, bool)
            or not isinstance(self.deadline, (int, float))
            or not math.isfinite(self.deadline)
            or self.deadline <= 0
        ):
            raise ValueError(
                f"deadline must be a finite number of seconds > 0, got {self.deadline!r}"
            )
        if self.job == "compile" or self.kind == "hatt-arch":
            if self.arch not in ARCHITECTURES:
                need = "compile jobs" if self.job == "compile" else "hatt-arch requests"
                raise ValueError(
                    f"{need} need arch in {ARCHITECTURES}, got {self.arch!r}"
                )
        elif self.arch is not None:
            raise ValueError("map jobs take no arch (except kind='hatt-arch')")
        if self.arch_weight is not None:
            if self.kind != "hatt-arch":
                raise ValueError("arch_weight only applies to kind='hatt-arch'")
            if (
                isinstance(self.arch_weight, bool)
                or not isinstance(self.arch_weight, (int, float))
                or not math.isfinite(self.arch_weight)
                or self.arch_weight < 0
            ):
                raise ValueError(
                    f"arch_weight must be a finite number >= 0, got {self.arch_weight!r}"
                )

    # ------------------------------------------------------------------
    # Bridges into the compilation stack
    # ------------------------------------------------------------------
    def spec(self) -> MappingSpec:
        """The mapping-compile half of the request."""
        if self.kind == "hatt-arch":
            return MappingSpec(
                kind=self.kind,
                hatt_backend=self.hatt_backend,
                arch=self.arch,
                arch_weight=self.arch_weight,
            )
        return MappingSpec(kind=self.kind, hatt_backend=self.hatt_backend)

    def options(self) -> CompileOptions:
        """The synthesis/routing half (``job="compile"`` only)."""
        kwargs: dict = {
            "term_order": self.term_order,
            "router_backend": self.router_backend,
        }
        if self.lookahead is not None:
            kwargs["lookahead"] = self.lookahead
        return CompileOptions(**kwargs)

    # ------------------------------------------------------------------
    # Wire form
    # ------------------------------------------------------------------
    def coalesce_key(self) -> str:
        """Cross-client coalescing key: the work, minus the engine hints.

        The case spec is canonicalized through the source registry (best
        effort — an unresolvable case keeps its raw string and fails at
        execution), so aliases of one Hamiltonian (``H2_sto3g`` vs
        ``electronic:H2_sto3g``, parameter-tail orderings) coalesce onto a
        single in-flight compile.
        """
        from ..sources import canonical_spec

        values = {name: getattr(self, name) for name in self._KEY_FIELDS}
        try:
            values["case"] = canonical_spec(self.case)
        except ValueError:
            pass
        return "|".join(f"{name}={values[name]!r}" for name in self._KEY_FIELDS)

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, doc: dict) -> "CompileRequest":
        if not isinstance(doc, dict):
            raise ValueError(f"request must be a JSON object, got {type(doc).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(
                f"unknown request fields {sorted(unknown)!r}; expected {sorted(known)!r}"
            )
        if "case" not in doc:
            raise ValueError("request needs a non-empty case spec")
        return cls(**doc)

    def replace(self, **overrides) -> "CompileRequest":
        return replace(self, **overrides)


@dataclass
class JobRecord:
    """Lifecycle of one submitted job (what ``GET /v1/jobs/{id}`` returns).

    ``subscribers`` counts how many submissions this record serves — 1 for a
    lone request, N when N identical concurrent requests coalesced onto it.
    ``result`` is the job-family payload (fingerprint/weight for ``map``,
    routed metrics for ``compile``); ``error`` is set instead on failure,
    with ``error_kind`` carrying the :class:`JobError` classification
    (``"worker_crash"``, ``"timeout"``, ...).  ``attempts`` counts dispatches
    including retries — a record that settled ``done`` with ``attempts > 1``
    survived a worker crash or transient fault.  ``trace_id`` is the
    request's end-to-end trace identifier: stamped at submission, carried
    through the executor (including process-pool workers), and echoed in
    the envelope's ``trace`` block and artifact provenance.
    """

    id: str
    request: CompileRequest
    status: str = JobStatus.QUEUED
    created_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    fingerprint: str | None = None
    source: str | None = None
    subscribers: int = 1
    attempts: int = 1
    result: dict | None = None
    error: str | None = None
    error_kind: str | None = None
    trace_id: str | None = None

    @property
    def done(self) -> bool:
        return self.status in JobStatus.TERMINAL

    @property
    def wall_seconds(self) -> float | None:
        if self.finished_at is None:
            return None
        return self.finished_at - self.created_at

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "request": self.request.to_dict(),
            "status": self.status,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "fingerprint": self.fingerprint,
            "source": self.source,
            "subscribers": self.subscribers,
            "attempts": self.attempts,
            "result": self.result,
            "error": self.error,
            "error_kind": self.error_kind,
            "trace_id": self.trace_id,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "JobRecord":
        if not isinstance(doc, dict):
            raise ValueError(f"job record must be a JSON object, got {type(doc).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown job-record fields {sorted(unknown)!r}")
        data = dict(doc)
        data["request"] = CompileRequest.from_dict(data["request"])
        record = cls(**data)
        if record.status not in JobStatus.ALL:
            raise ValueError(
                f"unknown job status {record.status!r}; expected one of {JobStatus.ALL}"
            )
        return record


def envelope(command: str, result, **extra) -> dict:
    """The versioned response wrapper every JSON surface emits.

    ``command`` names the operation (CLI subcommand or HTTP route action);
    ``result`` is its payload; keyword extras land beside them (e.g.
    ``error=...``, ``coalesced=...``).
    """
    doc = {"schema": SCHEMA, "command": command, "result": result}
    doc.update(extra)
    return doc


def check_envelope(doc: dict, command: str | None = None) -> dict:
    """Validate an envelope and return it (client-side guard)."""
    if not isinstance(doc, dict):
        raise ValueError(f"envelope must be a JSON object, got {type(doc).__name__}")
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"unsupported schema {doc.get('schema')!r}; expected {SCHEMA!r}")
    if "command" not in doc or "result" not in doc:
        raise ValueError("envelope needs 'command' and 'result' fields")
    if command is not None and doc["command"] != command:
        raise ValueError(f"expected command {command!r}, got {doc['command']!r}")
    return doc
