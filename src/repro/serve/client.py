"""Clients for the ``repro serve`` HTTP API.

:class:`ServiceClient` is the synchronous client (stdlib ``http.client``
over one keep-alive connection — what the benchmark's worker threads and
the example script use).  :class:`AsyncServiceClient` is the asyncio
counterpart on raw ``asyncio.open_connection`` streams, used by the
event-loop coalescing tests to fire N requests in one loop tick.

Both validate every response against the versioned envelope contract
(:func:`~repro.serve.schema.check_envelope`) and hand back plain dicts.
"""

from __future__ import annotations

import asyncio
import http.client
import json

from .schema import CompileRequest, JobRecord, check_envelope

__all__ = ["ServiceClient", "AsyncServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A typed service-level failure.

    ``kind="http"``: an HTTP error response; ``status`` carries the code
    and, on a 503 shed, ``retry_after`` carries the server's backpressure
    hint in seconds.

    ``kind="connection"``: the transport died under a non-idempotent
    request (``status=0``).  The POST may or may not have reached the
    server, so the client never auto-retries; re-submit to converge —
    identical submissions coalesce server-side, so a duplicate is safe
    and costs nothing.
    """

    def __init__(
        self,
        status: int,
        message: str,
        kind: str = "http",
        retry_after: float | None = None,
    ):
        super().__init__(
            f"HTTP {status}: {message}" if kind == "http" else message
        )
        self.status = status
        self.kind = kind
        self.retry_after = retry_after


def _check(
    status: int, doc: dict, command: str | None, retry_after: float | None = None
) -> dict:
    if status >= 400:
        raise ServiceError(
            status, str(doc.get("error") or doc), retry_after=retry_after
        )
    return check_envelope(doc, command)


def _parse_retry_after(value: str | None) -> float | None:
    if value is None:
        return None
    try:
        return float(value)
    except ValueError:
        return None


class ServiceClient:
    """Synchronous client over one keep-alive connection (not thread-safe;
    give each thread its own client)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8035, timeout: float = 330.0):
        self.host = host
        self.port = port
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)
        #: ``trace`` block of the most recent submit envelope (trace_id +
        #: server handler duration), or ``None`` before the first submit.
        self.last_trace: dict | None = None

    # ------------------------------------------------------------------
    def _call(
        self, method: str, path: str, body: dict | None = None, command: str | None = None
    ) -> tuple[int, dict]:
        payload = None
        headers = {}
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        idempotent = method in ("GET", "HEAD")
        try:
            status, retry_after, doc = self._roundtrip(method, path, payload, headers)
        except (http.client.HTTPException, ConnectionError, OSError) as exc:
            self._conn.close()
            if not idempotent:
                # The request may already have reached the server (a POST
                # could be submitted, a DELETE could have cancelled);
                # auto-retrying could double-submit.  Surface a typed error
                # and let the caller re-submit — identical submissions
                # coalesce server-side, so convergence is safe and cheap.
                raise ServiceError(
                    0,
                    f"connection lost during {method} {path}: {exc}; the "
                    f"request may have been processed — re-submit to "
                    f"converge (identical submissions coalesce server-side)",
                    kind="connection",
                ) from exc
            # Stale keep-alive on an idempotent request: reconnect, retry once.
            status, retry_after, doc = self._roundtrip(method, path, payload, headers)
        return status, _check(status, doc, command, retry_after=retry_after)

    def _roundtrip(
        self, method: str, path: str, payload: bytes | None, headers: dict
    ) -> tuple[int, float | None, dict]:
        self._conn.request(method, path, body=payload, headers=headers)
        response = self._conn.getresponse()
        raw = response.read()
        retry_after = _parse_retry_after(response.getheader("Retry-After"))
        doc = json.loads(raw.decode("utf-8"))
        return response.status, retry_after, doc

    # ------------------------------------------------------------------
    def submit(
        self,
        request: CompileRequest | dict,
        wait: bool = False,
        timeout: float | None = None,
    ) -> JobRecord:
        """POST a job; with ``wait=True`` block server-side until it settles."""
        if isinstance(request, CompileRequest):
            request = request.to_dict()
        path = "/v1/jobs"
        if wait:
            path += "?wait=1"
            if timeout is not None:
                path += f"&timeout={timeout}"
        _status, doc = self._call("POST", path, body=request, command="jobs.submit")
        self.last_trace = doc.get("trace")
        return JobRecord.from_dict(doc["result"])

    def job(self, job_id: str) -> JobRecord:
        _status, doc = self._call("GET", f"/v1/jobs/{job_id}", command="jobs.get")
        return JobRecord.from_dict(doc["result"])

    def cancel(self, job_id: str) -> tuple[JobRecord, bool]:
        """DELETE one submission of a job; ``(record, actually_cancelled)``.

        ``actually_cancelled=False`` means the job kept running — other
        coalesced subscribers still hold it, or it had already settled.
        """
        _status, doc = self._call(
            "DELETE", f"/v1/jobs/{job_id}", command="jobs.cancel"
        )
        return JobRecord.from_dict(doc["result"]), bool(doc.get("cancelled"))

    def artifact(self, fingerprint: str) -> dict:
        _status, doc = self._call(
            "GET", f"/v1/artifacts/{fingerprint}", command="artifacts.get"
        )
        return doc["result"]

    def stats(self) -> dict:
        _status, doc = self._call("GET", "/v1/stats", command="stats")
        return doc["result"]

    def metrics(self) -> str:
        """GET /v1/metrics — Prometheus text exposition (not an envelope)."""
        try:
            self._conn.request("GET", "/v1/metrics")
            response = self._conn.getresponse()
            raw = response.read()
        except (http.client.HTTPException, ConnectionError, OSError):
            # Stale keep-alive: reconnect and retry once (GET is idempotent).
            self._conn.close()
            self._conn.request("GET", "/v1/metrics")
            response = self._conn.getresponse()
            raw = response.read()
        text = raw.decode("utf-8")
        if response.status >= 400:
            raise ServiceError(response.status, text)
        return text

    def healthy(self) -> bool:
        try:
            _status, doc = self._call("GET", "/v1/healthz", command="healthz")
        except (ServiceError, OSError, ValueError):
            return False
        return bool(doc["result"].get("ok"))

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class AsyncServiceClient:
    """Asyncio client; one connection per request (simple, race-free).

    Exists so tests can put N concurrent submissions *in flight on one event
    loop* — the pattern the server's coalescing must collapse to one compile.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8035):
        self.host = host
        self.port = port

    async def _call(
        self, method: str, path: str, body: dict | None = None, command: str | None = None
    ) -> tuple[int, dict]:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            payload = b""
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode("ascii")
            writer.write(head + payload)
            await writer.drain()
            status_line = await reader.readline()
            status = int(status_line.split()[1])
            length = 0
            while True:
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value.strip())
            raw = await reader.readexactly(length)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        doc = json.loads(raw.decode("utf-8"))
        return status, _check(status, doc, command)

    async def submit(
        self,
        request: CompileRequest | dict,
        wait: bool = False,
        timeout: float | None = None,
    ) -> JobRecord:
        if isinstance(request, CompileRequest):
            request = request.to_dict()
        path = "/v1/jobs"
        if wait:
            path += "?wait=1"
            if timeout is not None:
                path += f"&timeout={timeout}"
        _status, doc = await self._call("POST", path, body=request, command="jobs.submit")
        return JobRecord.from_dict(doc["result"])

    async def job(self, job_id: str) -> JobRecord:
        _status, doc = await self._call("GET", f"/v1/jobs/{job_id}", command="jobs.get")
        return JobRecord.from_dict(doc["result"])

    async def cancel(self, job_id: str) -> tuple[JobRecord, bool]:
        _status, doc = await self._call(
            "DELETE", f"/v1/jobs/{job_id}", command="jobs.cancel"
        )
        return JobRecord.from_dict(doc["result"]), bool(doc.get("cancelled"))

    async def stats(self) -> dict:
        _status, doc = await self._call("GET", "/v1/stats", command="stats")
        return doc["result"]
