"""Deterministic fault-injection harness for the serving stack.

Chaos testing the fault-tolerance layer needs faults that are (a) injected
at well-defined seams, (b) **deterministic** — a 10% rate fires on exactly
every 10th trial, not probabilistically, so test assertions are exact — and
(c) activatable from the environment, so fork-based process-pool workers
inherit the configuration without any plumbing.

Spec grammar (comma-separated rules, set via ``REPRO_FAULTS``)::

    REPRO_FAULTS="worker_crash:0.1,slow_compile:0.25:0.05,store_write:1:0:1"
                  ^point       ^rate          ^param      ^max_fires

``rate`` ∈ [0, 1] is the deterministic firing fraction; optional ``param``
is point-specific (sleep seconds, truncation fraction); optional
``max_fires`` bounds total fires (0 = unlimited).  Because forked workers
each start with fresh trial counters, ``max_fires`` budgets are coordinated
across processes through ticket files in the ``REPRO_FAULTS_STATE``
directory, claimed with ``O_CREAT | O_EXCL`` so each fire is claimed by
exactly one process.

Fault points wired into the stack:

=============  ======================  =====================================
point          hook                    effect when it fires
=============  ======================  =====================================
worker_crash   queue executors         process worker: ``os._exit`` (hard
                                       crash → ``BrokenProcessPool``);
                                       thread worker: raises
                                       :class:`WorkerCrashFault`
slow_compile   ``queue._run_request``  sleeps ``param`` seconds
store_write    ``ArtifactStore``       raises ``OSError(ENOSPC)`` before the
                                       atomic rename (must leave no partial
                                       documents behind)
partial_write  HTTP ``_respond``       truncates the response at ``param``
                                       fraction of the bytes and drops the
                                       connection
=============  ======================  =====================================
"""

from __future__ import annotations

import errno
import math
import os
import threading
import time
from dataclasses import dataclass

from ..obs.metrics import get_registry
from .schema import JobError

__all__ = [
    "FAULTS_ENV",
    "FAULTS_STATE_ENV",
    "POINTS",
    "FaultRule",
    "FaultInjector",
    "InjectedFault",
    "WorkerCrashFault",
    "get_injector",
    "reset",
    "should_fire",
    "sleep_if",
    "raise_if",
    "crash_if",
    "exit_if",
    "partial_cut",
    "store_write_error",
]

#: Environment variable holding the fault spec (see module docstring).
FAULTS_ENV = "REPRO_FAULTS"

#: Directory used to coordinate ``max_fires`` budgets across processes.
FAULTS_STATE_ENV = "REPRO_FAULTS_STATE"

#: Fault points the stack wires in.  Unknown points in a spec are rejected
#: so a typo'd chaos experiment fails loudly instead of injecting nothing.
POINTS = ("worker_crash", "slow_compile", "store_write", "partial_write")

#: Default ``param`` per point when the spec omits it.
_DEFAULT_PARAMS = {"slow_compile": 0.25, "partial_write": 0.5}


class InjectedFault(JobError):
    """Base for exceptions raised by fired fault points (a typed JobError)."""

    def __init__(self, message: str, kind: str = "exception", retryable: bool = False):
        super().__init__(message, kind=kind, retryable=retryable)


class WorkerCrashFault(InjectedFault):
    """Thread-executor stand-in for a dead worker process (retryable)."""

    def __init__(self):
        super().__init__(
            "injected fault: simulated worker crash",
            kind="worker_crash",
            retryable=True,
        )


def store_write_error() -> OSError:
    """The error the ``store_write`` point injects (classified transient)."""
    return OSError(errno.ENOSPC, "injected fault: no space left on device")


@dataclass(frozen=True)
class FaultRule:
    """One armed fault point."""

    point: str
    rate: float
    param: float = 0.0
    max_fires: int = 0  # 0 = unlimited

    def __post_init__(self):
        if self.point not in POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r}; expected one of {POINTS}"
            )
        if not isinstance(self.rate, (int, float)) or not math.isfinite(self.rate) \
                or not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate!r}")
        if self.max_fires < 0:
            raise ValueError(f"max_fires must be >= 0, got {self.max_fires!r}")


class FaultInjector:
    """A parsed set of fault rules with deterministic per-point firing.

    Each point keeps a trial counter ``n``; trial ``n`` fires iff
    ``floor((n + 1) * rate) > floor(n * rate)`` — the evenly-spaced
    deterministic sequence hitting exactly ``rate`` of trials (rate 0.1
    fires trials 9, 19, 29, ...; rate 1 fires every trial).
    """

    def __init__(self, rules=(), state_dir: str | None = None):
        self._rules: dict[str, FaultRule] = {}
        for rule in rules:
            self._rules[rule.point] = rule
        self._state_dir = state_dir
        self._lock = threading.Lock()
        self._trials = {point: 0 for point in POINTS}
        self._fired = {point: 0 for point in POINTS}

    @classmethod
    def from_spec(cls, spec: str, state_dir: str | None = None) -> "FaultInjector":
        """Parse the ``REPRO_FAULTS`` grammar; raises ValueError on bad specs."""
        rules = []
        for part in (spec or "").split(","):
            part = part.strip()
            if not part:
                continue
            fields = part.split(":")
            if len(fields) < 2 or len(fields) > 4:
                raise ValueError(
                    f"bad fault spec {part!r}; expected point:rate[:param[:max_fires]]"
                )
            point = fields[0].strip()
            try:
                rate = float(fields[1])
                param = (
                    float(fields[2])
                    if len(fields) > 2 and fields[2] != ""
                    else _DEFAULT_PARAMS.get(point, 0.0)
                )
                max_fires = int(fields[3]) if len(fields) > 3 else 0
            except ValueError as exc:
                raise ValueError(f"bad fault spec {part!r}: {exc}") from exc
            rules.append(FaultRule(point, rate, param=param, max_fires=max_fires))
        return cls(rules, state_dir=state_dir)

    @property
    def active(self) -> bool:
        return bool(self._rules)

    def rule(self, point: str) -> FaultRule | None:
        return self._rules.get(point)

    def should_fire(self, point: str) -> bool:
        """Count one trial at ``point``; True when this trial fires."""
        rule = self._rules.get(point)
        if rule is None or rule.rate <= 0.0:
            return False
        with self._lock:
            n = self._trials[point]
            self._trials[point] = n + 1
            if math.floor((n + 1) * rule.rate) <= math.floor(n * rule.rate):
                return False
            if rule.max_fires and not self._claim_fire_locked(rule):
                return False
            self._fired[point] += 1
        get_registry().counter(
            "repro_faults_fired_total",
            help="Injected faults fired, by point.",
            point=point,
        ).inc()
        return True

    def _claim_fire_locked(self, rule: FaultRule) -> bool:
        if self._state_dir is None:
            return self._fired[rule.point] < rule.max_fires
        # Cross-process budget: one O_EXCL ticket file per allowed fire, so
        # forked workers (whose counters restart) still share one budget.
        for i in range(rule.max_fires):
            path = os.path.join(self._state_dir, f"{rule.point}.fired.{i}")
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            except OSError:
                return False
            os.close(fd)
            return True
        return False

    def stats(self) -> dict:
        with self._lock:
            return {
                "rules": {
                    point: {
                        "rate": rule.rate,
                        "param": rule.param,
                        "max_fires": rule.max_fires,
                    }
                    for point, rule in self._rules.items()
                },
                "trials": {p: n for p, n in self._trials.items() if n},
                "fired": {p: n for p, n in self._fired.items() if n},
            }


# ----------------------------------------------------------------------
# Process-global injector (env-configured, re-parsed when the env changes)
# ----------------------------------------------------------------------
_global_lock = threading.Lock()
_injector: FaultInjector | None = None
_snapshot: tuple[str, str | None] | None = None


def get_injector() -> FaultInjector:
    """The process-global injector for the current ``REPRO_FAULTS`` env."""
    global _injector, _snapshot
    spec = os.environ.get(FAULTS_ENV, "")
    state_dir = os.environ.get(FAULTS_STATE_ENV) or None
    with _global_lock:
        if _injector is None or _snapshot != (spec, state_dir):
            if state_dir:
                os.makedirs(state_dir, exist_ok=True)
            _injector = FaultInjector.from_spec(spec, state_dir=state_dir)
            _snapshot = (spec, state_dir)
        return _injector


def reset() -> None:
    """Drop the global injector (fresh counters on next :func:`get_injector`)."""
    global _injector, _snapshot
    with _global_lock:
        _injector = None
        _snapshot = None


def should_fire(point: str) -> bool:
    return get_injector().should_fire(point)


def sleep_if(point: str = "slow_compile") -> bool:
    """Sleep the rule's ``param`` seconds when the point fires."""
    injector = get_injector()
    rule = injector.rule(point)
    if rule is None or not injector.should_fire(point):
        return False
    time.sleep(rule.param if rule.param > 0 else _DEFAULT_PARAMS.get(point, 0.25))
    return True


def raise_if(point: str, exc_factory=None) -> None:
    """Raise (factory result, or :class:`InjectedFault`) when the point fires."""
    if should_fire(point):
        if exc_factory is not None:
            raise exc_factory()
        raise InjectedFault(f"injected fault at {point!r}", kind=point)


def crash_if(point: str = "worker_crash") -> None:
    """Thread-executor crash: raise the retryable :class:`WorkerCrashFault`."""
    if should_fire(point):
        raise WorkerCrashFault()


def exit_if(point: str = "worker_crash", code: int = 86) -> None:
    """Process-worker crash: hard ``os._exit`` — no cleanup, no excuses.

    The parent observes exactly what a segfault produces: a dead worker and
    a ``BrokenProcessPool`` on every in-flight future.
    """
    if should_fire(point):
        os._exit(code)


def partial_cut(total: int, point: str = "partial_write") -> int | None:
    """Byte count to truncate a ``total``-byte response to, or None (no cut)."""
    injector = get_injector()
    rule = injector.rule(point)
    if rule is None or not injector.should_fire(point):
        return None
    fraction = rule.param if 0.0 < rule.param < 1.0 else 0.5
    return max(0, min(total - 1, int(total * fraction)))
