"""Immutable Pauli strings with exact phase tracking.

A :class:`PauliString` is ``i**phase`` times a tensor product of canonical
single-qubit Pauli operators.  Qubit 0 is the least-significant position; the
text label lists operators from qubit ``n-1`` (leftmost) down to qubit 0
(rightmost), matching the paper's ``XYIZ = X3 Y2 Z0`` convention.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, Mapping

import numpy as np

from .algebra import BITS_TO_OP, OP_TO_BITS, commutes, mul_xzk, weight

__all__ = ["PauliString"]

_PHASE_STR = {0: "", 1: "i*", 2: "-", 3: "-i*"}
_PHASE_VALUE = {0: 1, 1: 1j, 2: -1, 3: -1j}

_SINGLE_QUBIT_MATRICES = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}

_COMPACT_RE = re.compile(r"([XYZ])(\d+)")


class PauliString:
    """An ``n``-qubit Pauli string ``i**phase · O_{n-1} ⊗ … ⊗ O_0``.

    Instances are immutable and hashable.  Multiplication, commutation checks
    and weight queries run on integer bitmasks (see :mod:`repro.paulis.algebra`).
    """

    __slots__ = ("n", "x", "z", "phase")

    def __init__(self, n: int, x: int = 0, z: int = 0, phase: int = 0):
        if n < 0:
            raise ValueError(f"number of qubits must be non-negative, got {n}")
        mask = (1 << n) - 1
        if x & ~mask or z & ~mask:
            raise ValueError("x/z masks have bits outside the qubit range")
        object.__setattr__(self, "n", n)
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "z", z)
        object.__setattr__(self, "phase", phase & 3)

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("PauliString is immutable")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, n: int) -> "PauliString":
        """The identity string on ``n`` qubits."""
        return cls(n)

    @classmethod
    def from_label(cls, label: str, phase: int = 0) -> "PauliString":
        """Parse a dense label such as ``"XYIZ"`` (leftmost = highest qubit)."""
        n = len(label)
        x = z = 0
        for pos, ch in enumerate(label):
            qubit = n - 1 - pos
            try:
                xb, zb = OP_TO_BITS[ch]
            except KeyError:
                raise ValueError(f"invalid Pauli letter {ch!r} in {label!r}") from None
            x |= xb << qubit
            z |= zb << qubit
        return cls(n, x, z, phase)

    @classmethod
    def from_compact(cls, compact: str, n: int, phase: int = 0) -> "PauliString":
        """Parse a compact label such as ``"X3Y2Z0"`` on ``n`` qubits."""
        stripped = compact.replace(" ", "")
        if stripped in ("", "I"):
            return cls(n, phase=phase)
        consumed = "".join(m.group(0) for m in _COMPACT_RE.finditer(stripped))
        if consumed != stripped:
            raise ValueError(f"cannot parse compact Pauli label {compact!r}")
        x = z = 0
        seen = set()
        for m in _COMPACT_RE.finditer(stripped):
            op, qubit = m.group(1), int(m.group(2))
            if qubit >= n:
                raise ValueError(f"qubit {qubit} out of range for n={n}")
            if qubit in seen:
                raise ValueError(f"qubit {qubit} appears twice in {compact!r}")
            seen.add(qubit)
            xb, zb = OP_TO_BITS[op]
            x |= xb << qubit
            z |= zb << qubit
        return cls(n, x, z, phase)

    @classmethod
    def from_ops(cls, ops: Mapping[int, str], n: int, phase: int = 0) -> "PauliString":
        """Build from a ``{qubit: letter}`` mapping."""
        x = z = 0
        for qubit, op in ops.items():
            if not 0 <= qubit < n:
                raise ValueError(f"qubit {qubit} out of range for n={n}")
            xb, zb = OP_TO_BITS[op]
            x |= xb << qubit
            z |= zb << qubit
        return cls(n, x, z, phase)

    @classmethod
    def single(cls, n: int, qubit: int, op: str, phase: int = 0) -> "PauliString":
        """A single non-identity operator ``op`` acting on ``qubit``."""
        return cls.from_ops({qubit: op}, n, phase)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def op_at(self, qubit: int) -> str:
        """Canonical operator letter on ``qubit``."""
        return BITS_TO_OP[((self.x >> qubit) & 1, (self.z >> qubit) & 1)]

    @property
    def weight(self) -> int:
        """Number of non-identity single-qubit operators."""
        return weight(self.x, self.z)

    @property
    def support(self) -> tuple[int, ...]:
        """Qubits carrying a non-identity operator, ascending."""
        mask = self.x | self.z
        return tuple(q for q in range(self.n) if (mask >> q) & 1)

    @property
    def phase_value(self) -> complex:
        """The scalar ``i**phase`` as a Python complex."""
        return _PHASE_VALUE[self.phase]

    @property
    def is_identity(self) -> bool:
        return self.x == 0 and self.z == 0

    @property
    def is_hermitian(self) -> bool:
        """True iff the string equals its adjoint (phase is ±1)."""
        return self.phase % 2 == 0

    def ops(self) -> Iterator[tuple[int, str]]:
        """Yield ``(qubit, letter)`` for each non-identity position, ascending."""
        mask = self.x | self.z
        q = 0
        while mask:
            if mask & 1:
                yield q, self.op_at(q)
            mask >>= 1
            q += 1

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def __mul__(self, other: "PauliString") -> "PauliString":
        if not isinstance(other, PauliString):
            return NotImplemented
        if self.n != other.n:
            raise ValueError("cannot multiply Pauli strings on different qubit counts")
        x, z, k = mul_xzk(self.x, self.z, self.phase, other.x, other.z, other.phase)
        return PauliString(self.n, x, z, k)

    def commutes_with(self, other: "PauliString") -> bool:
        if self.n != other.n:
            raise ValueError("qubit count mismatch")
        return commutes(self.x, self.z, other.x, other.z)

    def anticommutes_with(self, other: "PauliString") -> bool:
        return not self.commutes_with(other)

    def adjoint(self) -> "PauliString":
        """Hermitian adjoint (canonical operators are Hermitian; conjugate phase)."""
        return PauliString(self.n, self.x, self.z, (-self.phase) & 3)

    def with_phase(self, phase: int) -> "PauliString":
        """Copy with the phase exponent replaced."""
        return PauliString(self.n, self.x, self.z, phase)

    def tensor(self, other: "PauliString") -> "PauliString":
        """``self ⊗ other`` — ``other`` occupies the low qubits."""
        return PauliString(
            self.n + other.n,
            (self.x << other.n) | other.x,
            (self.z << other.n) | other.z,
            self.phase + other.phase,
        )

    # ------------------------------------------------------------------
    # Dense matrix (tests / tiny systems only)
    # ------------------------------------------------------------------
    def to_matrix(self) -> np.ndarray:
        """Dense ``2^n × 2^n`` matrix.  Intended for n ≲ 12 (tests)."""
        result = np.array([[1.0 + 0j]])
        for qubit in range(self.n - 1, -1, -1):
            result = np.kron(result, _SINGLE_QUBIT_MATRICES[self.op_at(qubit)])
        return _PHASE_VALUE[self.phase] * result

    def apply_to_basis_state(self, bits: int) -> tuple[int, complex]:
        """Apply to computational basis state ``|bits⟩``.

        Returns ``(new_bits, amplitude)`` such that ``P|bits⟩ = amplitude·|new_bits⟩``.
        X flips the bit; Z contributes ``(-1)^bit``; Y flips with ``±i``.
        """
        amp: complex = _PHASE_VALUE[self.phase]
        # Z (and the Z component of Y) phases are read off the *input* bit for
        # the canonical convention Y|0> = i|1>, Y|1> = -i|0>.
        y_mask = self.x & self.z
        z_only = self.z & ~self.x
        neg = (z_only & bits).bit_count()
        # Y on bit b: amplitude i·(-1)^b  (since Y = i X Z and Z acts first).
        neg += (y_mask & bits).bit_count()
        amp *= (-1) ** neg
        amp *= 1j ** (y_mask.bit_count() % 4)
        return bits ^ self.x, amp

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, PauliString):
            return NotImplemented
        return (
            self.n == other.n
            and self.x == other.x
            and self.z == other.z
            and self.phase == other.phase
        )

    def __hash__(self) -> int:
        return hash((self.n, self.x, self.z, self.phase))

    def label(self) -> str:
        """Dense label, leftmost = qubit ``n-1`` (no phase prefix)."""
        return "".join(self.op_at(q) for q in range(self.n - 1, -1, -1))

    def compact(self) -> str:
        """Compact label such as ``X3Y2Z0`` (``I`` for identity, no phase)."""
        parts = [f"{op}{q}" for q, op in self.ops()]
        return "".join(reversed(parts)) or "I"

    def __repr__(self) -> str:
        return f"{_PHASE_STR[self.phase]}{self.label()}"


def pauli_strings_anticommute_pairwise(strings: Iterable[PauliString]) -> bool:
    """Check that every distinct pair in ``strings`` anticommutes."""
    items = list(strings)
    return all(
        items[i].anticommutes_with(items[j])
        for i in range(len(items))
        for j in range(i + 1, len(items))
    )
