"""Low-level symplectic Pauli algebra on raw ``(x, z, k)`` triples.

A Pauli string on ``n`` qubits is represented by two integer bitmasks and a
phase exponent:

* ``x`` — bit ``j`` set iff the operator on qubit ``j`` has an X component,
* ``z`` — bit ``j`` set iff the operator on qubit ``j`` has a Z component,
* ``k`` — phase exponent modulo 4; the represented operator is
  ``i**k * (O_{n-1} ⊗ … ⊗ O_0)`` with the *canonical* single-qubit operators

  ====  ====  ========
  x_j   z_j   operator
  ====  ====  ========
  0     0     I
  1     0     X
  1     1     Y
  0     1     Z
  ====  ====  ========

These free functions are the hot path shared by :class:`~repro.paulis.PauliString`
and the bulk mapping application in :mod:`repro.mappings.apply`; they avoid
object construction entirely.
"""

from __future__ import annotations

__all__ = [
    "mul_xzk",
    "phase_of_product",
    "commutes",
    "weight",
    "OP_TO_BITS",
    "BITS_TO_OP",
]

# Canonical operator letter <-> (x, z) bit pair.
OP_TO_BITS = {"I": (0, 0), "X": (1, 0), "Y": (1, 1), "Z": (0, 1)}
BITS_TO_OP = {(0, 0): "I", (1, 0): "X", (1, 1): "Y", (0, 1): "Z"}


def mul_xzk(x1: int, z1: int, k1: int, x2: int, z2: int, k2: int) -> tuple[int, int, int]:
    """Multiply two Pauli strings given as ``(x, z, k)`` triples.

    Derivation: with ``Y = i·X·Z`` the canonical tensor product equals
    ``i**g · X^x Z^z`` where ``g = popcount(x & z)``.  Commuting ``X^{x2}``
    through ``Z^{z1}`` contributes ``(-1)**popcount(z1 & x2)``.
    """
    x3 = x1 ^ x2
    z3 = z1 ^ z2
    k3 = (
        k1
        + k2
        + (x1 & z1).bit_count()
        + (x2 & z2).bit_count()
        + 2 * (z1 & x2).bit_count()
        - (x3 & z3).bit_count()
    ) & 3
    return x3, z3, k3


def phase_of_product(x1: int, z1: int, x2: int, z2: int) -> int:
    """Phase exponent (mod 4) of the product of two phase-0 Pauli strings."""
    x3 = x1 ^ x2
    z3 = z1 ^ z2
    return (
        (x1 & z1).bit_count()
        + (x2 & z2).bit_count()
        + 2 * (z1 & x2).bit_count()
        - (x3 & z3).bit_count()
    ) & 3


def commutes(x1: int, z1: int, x2: int, z2: int) -> bool:
    """True iff the two Pauli strings commute (symplectic inner product 0)."""
    return ((x1 & z2).bit_count() + (z1 & x2).bit_count()) % 2 == 0


def weight(x: int, z: int) -> int:
    """Pauli weight: number of non-identity single-qubit operators."""
    return (x | z).bit_count()
