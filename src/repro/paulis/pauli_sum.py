"""Weighted sums of Pauli strings (qubit Hamiltonians).

A :class:`QubitOperator` stores ``H = Σ c_j · P_j`` as a dictionary keyed by
the phase-0 symplectic pair ``(x, z)``; any ``i**k`` phase carried by an added
:class:`~repro.paulis.PauliString` is folded into its coefficient.  This makes
term combination exact and keeps the paper's Pauli-weight metric
(`pauli_weight`, §II-B3) a pure popcount sum.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from .algebra import mul_xzk, weight
from .pauli import PauliString, _PHASE_VALUE

__all__ = ["QubitOperator"]

#: Coefficients with magnitude below this are dropped by :meth:`QubitOperator.simplify`.
DEFAULT_TOLERANCE = 1e-10


class QubitOperator:
    """A weighted sum of Pauli strings on a fixed number of qubits."""

    __slots__ = ("n", "_terms")

    def __init__(self, n: int, terms: dict[tuple[int, int], complex] | None = None):
        self.n = n
        self._terms: dict[tuple[int, int], complex] = dict(terms) if terms else {}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, n: int) -> "QubitOperator":
        return cls(n)

    #: Term count above which :meth:`from_terms` switches to the vectorized
    #: :class:`~repro.paulis.PauliTable` combination path.
    TABLE_THRESHOLD = 64

    @classmethod
    def from_terms(
        cls, terms: Iterable[tuple[PauliString, complex]], n: int | None = None
    ) -> "QubitOperator":
        """Build from ``(PauliString, coefficient)`` pairs, combining duplicates.

        Large term lists are combined through the packed
        :class:`~repro.paulis.PauliTable` backend (lexsort + reduceat) instead
        of per-term dictionary updates; both paths are exact.
        """
        terms = list(terms)
        if n is None:
            if not terms:
                raise ValueError("cannot infer qubit count from an empty term list")
            n = terms[0][0].n
        if len(terms) >= cls.TABLE_THRESHOLD:
            from .table import PauliTable

            table = PauliTable.from_strings([s for s, _ in terms], n=n)
            return table.to_qubit_operator([c for _, c in terms], tol=0.0)
        op = cls(n)
        for string, coeff in terms:
            op.add_string(string, coeff)
        return op

    @classmethod
    def from_table(
        cls, table, coeffs, tol: float = DEFAULT_TOLERANCE
    ) -> "QubitOperator":
        """Build from a :class:`~repro.paulis.PauliTable` plus coefficients."""
        return table.to_qubit_operator(coeffs, tol=tol)

    def to_table(self):
        """Pack into ``(PauliTable, coefficient vector)`` for bulk queries."""
        from .table import PauliTable

        return PauliTable.from_qubit_operator(self)

    @classmethod
    def from_label_dict(cls, labels: dict[str, complex]) -> "QubitOperator":
        """Build from dense labels, e.g. ``{"XYIZ": 0.5, "IIII": 1.0}``."""
        if not labels:
            raise ValueError("empty label dict")
        strings = [(PauliString.from_label(lbl), c) for lbl, c in labels.items()]
        return cls.from_terms(strings)

    # ------------------------------------------------------------------
    # Mutation (building-phase API)
    # ------------------------------------------------------------------
    def add_string(self, string: PauliString, coeff: complex = 1.0) -> None:
        """Add ``coeff · string``, folding the string's phase into the coefficient."""
        if string.n != self.n:
            raise ValueError("qubit count mismatch")
        self.add_raw(string.x, string.z, coeff * _PHASE_VALUE[string.phase])

    def add_raw(self, x: int, z: int, coeff: complex) -> None:
        """Add ``coeff`` times the phase-0 string with masks ``(x, z)``."""
        key = (x, z)
        new = self._terms.get(key, 0.0) + coeff
        if new == 0:
            self._terms.pop(key, None)
        else:
            self._terms[key] = new

    def simplify(self, tol: float = DEFAULT_TOLERANCE) -> "QubitOperator":
        """Drop terms with |coefficient| ≤ ``tol`` (returns self for chaining)."""
        self._terms = {k: c for k, c in self._terms.items() if abs(c) > tol}
        return self

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._terms)

    def terms(self) -> Iterator[tuple[PauliString, complex]]:
        """Yield ``(PauliString, coefficient)`` pairs (phase-0 strings)."""
        for (x, z), coeff in self._terms.items():
            yield PauliString(self.n, x, z), coeff

    def raw_terms(self) -> Iterator[tuple[int, int, complex]]:
        """Yield ``(x, z, coefficient)`` triples without object construction."""
        for (x, z), coeff in self._terms.items():
            yield x, z, coeff

    def coefficient(self, string: PauliString) -> complex:
        """Coefficient of ``string`` (phase folded), 0 if absent."""
        c = self._terms.get((string.x, string.z), 0.0)
        return c * _PHASE_VALUE[string.phase].conjugate() if c else 0.0

    @property
    def identity_coefficient(self) -> complex:
        return self._terms.get((0, 0), 0.0)

    def pauli_weight(self, tol: float = DEFAULT_TOLERANCE) -> int:
        """Total Pauli weight ``Σ_j w(P_j)`` over non-negligible terms (paper §II-B3)."""
        return sum(weight(x, z) for (x, z), c in self._terms.items() if abs(c) > tol)

    def max_weight(self) -> int:
        """Largest single-term Pauli weight."""
        return max((weight(x, z) for (x, z) in self._terms), default=0)

    def is_hermitian(self, tol: float = DEFAULT_TOLERANCE) -> bool:
        """Hermitian iff every (phase-0 canonical) coefficient is real."""
        return all(abs(c.imag) <= tol for c in self._terms.values())

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def copy(self) -> "QubitOperator":
        return QubitOperator(self.n, self._terms)

    def __add__(self, other: "QubitOperator") -> "QubitOperator":
        if not isinstance(other, QubitOperator):
            return NotImplemented
        if self.n != other.n:
            raise ValueError("qubit count mismatch")
        out = self.copy()
        for (x, z), c in other._terms.items():
            out.add_raw(x, z, c)
        return out

    def __sub__(self, other: "QubitOperator") -> "QubitOperator":
        return self + (other * -1.0)

    def __mul__(self, other) -> "QubitOperator":
        if isinstance(other, (int, float, complex)):
            return QubitOperator(self.n, {k: c * other for k, c in self._terms.items()})
        if isinstance(other, QubitOperator):
            if self.n != other.n:
                raise ValueError("qubit count mismatch")
            out = QubitOperator(self.n)
            for (x1, z1), c1 in self._terms.items():
                for (x2, z2), c2 in other._terms.items():
                    x3, z3, k3 = mul_xzk(x1, z1, 0, x2, z2, 0)
                    out.add_raw(x3, z3, c1 * c2 * _PHASE_VALUE[k3])
            return out
        return NotImplemented

    def __rmul__(self, other) -> "QubitOperator":
        if isinstance(other, (int, float, complex)):
            return self * other
        return NotImplemented

    def __eq__(self, other) -> bool:
        if not isinstance(other, QubitOperator):
            return NotImplemented
        if self.n != other.n:
            return False
        keys = set(self._terms) | set(other._terms)
        return all(
            abs(self._terms.get(k, 0.0) - other._terms.get(k, 0.0)) <= DEFAULT_TOLERANCE
            for k in keys
        )

    # ------------------------------------------------------------------
    # Dense matrix (tests / tiny systems only)
    # ------------------------------------------------------------------
    def to_matrix(self) -> np.ndarray:
        """Dense matrix; intended for n ≲ 12."""
        dim = 1 << self.n
        out = np.zeros((dim, dim), dtype=complex)
        for string, coeff in self.terms():
            out += coeff * string.to_matrix()
        return out

    def ground_energy(self) -> float:
        """Smallest eigenvalue of the (Hermitian) dense matrix."""
        mat = self.to_matrix()
        return float(np.linalg.eigvalsh(mat)[0])

    def expectation_basis_state(self, bits: int) -> complex:
        """⟨bits|H|bits⟩ evaluated symbolically (no dense matrix)."""
        total = 0.0 + 0j
        for (x, z), coeff in self._terms.items():
            if x:  # any X/Y component moves the basis state off-diagonal
                continue
            total += coeff * (-1) ** ((z & bits).bit_count())
        return total

    def __repr__(self) -> str:
        if not self._terms:
            return f"QubitOperator(n={self.n}, 0)"
        parts = []
        for string, coeff in sorted(self.terms(), key=lambda t: -abs(t[1]))[:6]:
            parts.append(f"({coeff:.4g})·{string.compact()}")
        more = f" … ({len(self)} terms)" if len(self) > 6 else ""
        return f"QubitOperator(n={self.n}, {' + '.join(parts)}{more})"
