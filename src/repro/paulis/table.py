"""Vectorized symplectic Pauli-table backend for bulk workloads.

A :class:`PauliTable` is a batch of Pauli strings stored as rows of a binary
X|Z matrix packed into ``uint64`` words — the representation used by
stabilizer tableaus.  Row ``i`` holds the string ``i**phase[i] · P_i`` with

* ``x[i, w]`` — bit ``b`` set iff qubit ``64*w + b`` carries an X component,
* ``z[i, w]`` — bit ``b`` set iff qubit ``64*w + b`` carries a Z component,
* ``phase[i]`` — the ``i**k`` exponent modulo 4,

matching the canonical single-qubit convention of :mod:`repro.paulis.algebra`
(``(x, z) = (1, 1)`` is Y, phases multiply exactly).  All bulk operations —
row-wise products, commutation tests, weights, duplicate combination — run as
NumPy bitwise kernels over the packed words, so mapping tens of thousands of
Majorana monomials costs a handful of array passes instead of a Python loop
per term.

The scalar ``(x, z, k)`` integer path in :mod:`repro.paulis.algebra` remains
the reference implementation; the property tests cross-check the two on
random operators past the single-word (64-qubit) boundary.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .pauli import PauliString
from .pauli_sum import DEFAULT_TOLERANCE, QubitOperator

__all__ = [
    "PauliTable",
    "pack_monomials",
    "pack_incidence",
    "WORD_BITS",
]

#: Number of qubits packed into one table word.
WORD_BITS = 64

_WORD_MASK = (1 << WORD_BITS) - 1

#: ``i**k`` lookup indexed by phase exponent.
_PHASE_VALUES = np.array([1.0, 1.0j, -1.0, -1.0j], dtype=complex)


def _n_words(n_qubits: int) -> int:
    """Words needed for ``n_qubits`` (at least one, so empty tables stay 2-D)."""
    return max(1, -(-n_qubits // WORD_BITS))


def _masks_to_words(masks: Sequence[int], n_words: int) -> np.ndarray:
    """Pack arbitrary-precision Python-int bitmasks into ``(m, n_words)`` uint64."""
    m = len(masks)
    out = np.zeros((m, n_words), dtype=np.uint64)
    if not m:
        return out
    if n_words == 1:
        out[:, 0] = np.fromiter((int(v) for v in masks), dtype=np.uint64, count=m)
        return out
    obj = np.array([int(v) for v in masks], dtype=object)
    for w in range(n_words):
        out[:, w] = ((obj >> (WORD_BITS * w)) & _WORD_MASK).astype(np.uint64)
    return out


def _words_to_masks(words: np.ndarray) -> list[int]:
    """Unpack ``(m, n_words)`` uint64 rows back into Python-int bitmasks."""
    if words.shape[1] == 1:
        return words[:, 0].tolist()
    total = words[:, -1].astype(object)
    for w in range(words.shape[1] - 2, -1, -1):
        total = (total << WORD_BITS) | words[:, w].astype(object)
    return total.tolist()


def _popcount_rows(words: np.ndarray) -> np.ndarray:
    """Total set bits per row (summed over words), as int64."""
    return np.bitwise_count(words).sum(axis=-1, dtype=np.int64)


def pack_incidence(sets: Sequence[Sequence[int]], n_rows: int) -> np.ndarray:
    """Pack membership sets into a ``(n_rows, n_words)`` uint64 bitmask matrix.

    Bit ``j`` of row ``i`` is set iff ``i ∈ sets[j]`` — the transposed
    incidence matrix of the sets, 64 bits per word.  This is the layout the
    HATT construction uses for per-node term-membership masks: row ``i`` is
    the packed equivalent of the Python-int mask
    ``Σ_j (i in sets[j]) << j``.
    """
    n_bits = len(sets)
    out = np.zeros((n_rows, _n_words(n_bits)), dtype=np.uint64)
    rows: list[int] = []
    cols: list[int] = []
    bits: list[np.uint64] = []
    for j, members in enumerate(sets):
        word, b = divmod(j, WORD_BITS)
        bit = np.uint64(1 << b)
        for i in members:
            if not 0 <= i < n_rows:
                raise ValueError(f"set {j} contains index {i} outside 0..{n_rows - 1}")
            rows.append(i)
            cols.append(word)
            bits.append(bit)
    if rows:
        np.bitwise_or.at(
            out,
            (np.array(rows, dtype=np.intp), np.array(cols, dtype=np.intp)),
            np.array(bits, dtype=np.uint64),
        )
    return out


def pack_monomials(monomials: Sequence[Sequence[int]]) -> np.ndarray:
    """Pad variable-length index monomials into the plan matrix consumed by
    :meth:`PauliTable.padded_row_products`.

    Every index is shifted up by one and rows are right-padded with ``0``
    (the virtual identity row), giving a ``(len(monomials), max_len)`` intp
    matrix.  This is the single definition of the plan encoding; build plans
    only through it.
    """
    max_len = max(map(len, monomials), default=0)
    flat: list[int] = []
    pad = (0,) * max_len
    for term in monomials:
        for i in term:
            flat.append(i + 1)
        flat.extend(pad[len(term):])
    return np.array(flat, dtype=np.intp).reshape(len(monomials), max_len)


class PauliTable:
    """A batch of ``m`` Pauli strings on ``n`` qubits in packed symplectic form."""

    __slots__ = ("n", "x", "z", "phase", "_aug")

    def __init__(self, n: int, x: np.ndarray, z: np.ndarray, phase: np.ndarray | None = None):
        if n < 0:
            raise ValueError(f"number of qubits must be non-negative, got {n}")
        x = np.ascontiguousarray(x, dtype=np.uint64)
        z = np.ascontiguousarray(z, dtype=np.uint64)
        if x.ndim != 2 or x.shape != z.shape:
            raise ValueError(f"x/z must be equal-shape 2-D arrays, got {x.shape} vs {z.shape}")
        if x.shape[1] != _n_words(n):
            raise ValueError(
                f"expected {_n_words(n)} words for {n} qubits, got {x.shape[1]}"
            )
        if phase is None:
            phase = np.zeros(x.shape[0], dtype=np.uint8)
        else:
            phase = np.asarray(phase)
            phase = (phase.astype(np.int64) & 3).astype(np.uint8)
            if phase.shape != (x.shape[0],):
                raise ValueError("phase vector length must match the row count")
        # Reject bits beyond the qubit range (mirrors PauliString's guard).
        spare = x.shape[1] * WORD_BITS - n
        if spare and x.shape[0]:
            tail_mask = np.uint64(((1 << spare) - 1) << (WORD_BITS - spare))
            if np.any(x[:, -1] & tail_mask) or np.any(z[:, -1] & tail_mask):
                raise ValueError("x/z masks have bits outside the qubit range")
        self.n = n
        self.x = x
        self.z = z
        self.phase = phase
        self._aug = None

    # ------------------------------------------------------------------
    # Constructors / round-trips
    # ------------------------------------------------------------------
    @classmethod
    def _unsafe(cls, n: int, x: np.ndarray, z: np.ndarray, phase: np.ndarray) -> "PauliTable":
        """Internal constructor skipping validation — arrays must already be
        well-formed ``uint64 (m, words)`` / ``uint8 (m,)``.  Used by the hot
        paths whose inputs are derived from already-validated tables."""
        table = object.__new__(cls)
        table.n = n
        table.x = x
        table.z = z
        table.phase = phase
        table._aug = None
        return table

    @classmethod
    def identity(cls, n: int, m: int = 1) -> "PauliTable":
        """``m`` identity rows on ``n`` qubits."""
        w = _n_words(n)
        zeros = np.zeros((m, w), dtype=np.uint64)
        return cls(n, zeros, zeros.copy())

    @classmethod
    def from_masks(
        cls,
        n: int,
        xs: Sequence[int],
        zs: Sequence[int],
        phases: Iterable[int] | None = None,
    ) -> "PauliTable":
        """Build from parallel lists of Python-int ``x``/``z`` masks."""
        if len(xs) != len(zs):
            raise ValueError("x and z mask lists differ in length")
        w = _n_words(n)
        phase = None if phases is None else np.fromiter(phases, dtype=np.int64, count=len(xs))
        return cls(n, _masks_to_words(xs, w), _masks_to_words(zs, w), phase)

    @classmethod
    def from_strings(
        cls, strings: Sequence[PauliString], n: int | None = None
    ) -> "PauliTable":
        """Pack a list of :class:`PauliString` (lossless, phases included)."""
        if n is None:
            if not strings:
                raise ValueError("cannot infer qubit count from an empty string list")
            n = strings[0].n
        for s in strings:
            if s.n != n:
                raise ValueError(
                    f"string {s!r} acts on {s.n} qubits, expected {n}"
                )
        return cls.from_masks(
            n, [s.x for s in strings], [s.z for s in strings], (s.phase for s in strings)
        )

    def to_strings(self) -> list[PauliString]:
        """Unpack back into :class:`PauliString` objects (lossless)."""
        return [
            PauliString(self.n, x, z, k)
            for x, z, k in zip(
                _words_to_masks(self.x), _words_to_masks(self.z), self.phase.tolist()
            )
        ]

    @classmethod
    def from_qubit_operator(cls, op: QubitOperator) -> tuple["PauliTable", np.ndarray]:
        """Pack a :class:`QubitOperator` into a phase-0 table plus coefficients."""
        xs, zs, coeffs = [], [], []
        for x, z, c in op.raw_terms():
            xs.append(x)
            zs.append(z)
            coeffs.append(c)
        return cls.from_masks(op.n, xs, zs), np.asarray(coeffs, dtype=complex)

    def to_qubit_operator(
        self, coeffs: np.ndarray | Sequence[complex], tol: float = DEFAULT_TOLERANCE
    ) -> QubitOperator:
        """Materialize ``Σ coeffs[i] · row_i`` as a :class:`QubitOperator`.

        Rows are combined with :meth:`simplify` first, so the (slow) Python-int
        unpacking only touches the unique surviving terms.
        """
        table, coeffs = self.simplify(coeffs, tol=tol)
        # Rows are now unique with non-negligible coefficients; build the term
        # dictionary directly instead of going through add_raw.
        keys = zip(_words_to_masks(table.x), _words_to_masks(table.z))
        out = QubitOperator(self.n)
        out._terms = dict(zip(keys, coeffs.tolist()))
        return out

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def n_terms(self) -> int:
        return self.x.shape[0]

    @property
    def n_words(self) -> int:
        return self.x.shape[1]

    def __len__(self) -> int:
        return self.n_terms

    def phase_values(self) -> np.ndarray:
        """The per-row scalar ``i**phase`` as a complex vector."""
        return _PHASE_VALUES[self.phase]

    def weights(self) -> np.ndarray:
        """Per-row Pauli weight (popcount of ``x | z``), int64."""
        return _popcount_rows(self.x | self.z)

    def is_identity(self) -> np.ndarray:
        """Per-row identity test (phase ignored)."""
        return self.weights() == 0

    def take(self, indices) -> "PauliTable":
        """Row gather: a new table holding ``rows[indices]`` (repeats allowed)."""
        return PauliTable(
            self.n, self.x[indices], self.z[indices], self.phase[indices]
        )

    # ------------------------------------------------------------------
    # Vectorized algebra
    # ------------------------------------------------------------------
    def mul_rows(self, other: "PauliTable") -> "PauliTable":
        """Row-aligned product ``row_i · other_row_i`` with exact phase tracking.

        Either operand may have a single row, which broadcasts against the
        other.  This is the vector counterpart of
        :func:`repro.paulis.algebra.mul_xzk`.
        """
        if self.n != other.n:
            raise ValueError("cannot multiply tables on different qubit counts")
        if (
            self.n_terms != other.n_terms
            and self.n_terms != 1
            and other.n_terms != 1
        ):
            raise ValueError(
                f"row counts {self.n_terms} and {other.n_terms} do not broadcast"
            )
        x3 = self.x ^ other.x
        z3 = self.z ^ other.z
        k = (
            self.phase.astype(np.int64)
            + other.phase.astype(np.int64)
            + _popcount_rows(self.x & self.z)
            + _popcount_rows(other.x & other.z)
            + 2 * _popcount_rows(self.z & other.x)
            - _popcount_rows(x3 & z3)
        ) & 3
        return PauliTable(self.n, x3, z3, k)

    def monomial_products(self, monomials: Sequence[Sequence[int]]) -> "PauliTable":
        """Batched product of table rows: row ``i`` of the result is
        ``Π_l rows[monomials[i][l]]`` (left to right, exact phases).

        Monomials of different lengths are padded with a virtual identity row,
        so the whole batch costs ``max_len - 1`` vectorized multiplication
        steps no matter how many monomials there are.  An empty monomial
        yields the identity.
        """
        return self.padded_row_products(pack_monomials(monomials))

    def padded_row_products(self, idx: np.ndarray) -> "PauliTable":
        """Batched row products from a padded ``(m, max_len)`` index matrix.

        Index ``0`` denotes a virtual identity row and index ``i + 1`` the
        table's row ``i`` (the convention produced by
        :meth:`repro.fermion.MajoranaOperator.packed_terms`), so one padded
        plan can be replayed against any table with the same row count.  This
        is the kernel behind the bulk Majorana-to-qubit mapping in
        :mod:`repro.mappings.apply`.
        """
        idx = np.asarray(idx, dtype=np.intp)
        if idx.ndim != 2:
            raise ValueError("index matrix must be 2-D")
        m, max_len = idx.shape
        w = self.n_words
        if m == 0 or max_len == 0:
            return PauliTable.identity(self.n, m)
        if idx.size and (int(idx.max()) > self.n_terms or int(idx.min()) < 0):
            raise IndexError("monomial index out of range for this table")
        if self._aug is None:
            # Augmented arrays: row 0 is the padding identity, row i+1 is
            # row i; pcs holds the per-row pc(x & z).  Cached, since replaying
            # many plans against one table is the common workload.
            self._aug = (
                np.vstack([np.zeros((1, w), dtype=np.uint64), self.x]),
                np.vstack([np.zeros((1, w), dtype=np.uint64), self.z]),
                np.concatenate([[0], self.phase.astype(np.int64)]),
                np.concatenate([[0], _popcount_rows(self.x & self.z)]),
            )
        xw, zw, ph, pcs = self._aug
        first = idx[:, 0]
        gk = ph[first].copy()
        pc_acc = pcs[first]  # pc(gx & gz), carried across steps
        if w == 1:
            # Flat single-word path: per-step popcounts need no word reduction.
            xf = xw[:, 0]
            zf = zw[:, 0]
            gx = xf[first]
            gz = zf[first]
            for step in range(1, max_len):
                j = idx[:, step]
                ox = xf[j]
                x3 = gx ^ ox
                z3 = gz ^ zf[j]
                pc_new = np.bitwise_count(x3 & z3).astype(np.int64)
                gk += ph[j] + pc_acc + pcs[j] + 2 * np.bitwise_count(gz & ox) - pc_new
                gx, gz, pc_acc = x3, z3, pc_new
            return PauliTable._unsafe(
                self.n, gx[:, None], gz[:, None], (gk & 3).astype(np.uint8)
            )
        gx = xw[first]
        gz = zw[first]
        for step in range(1, max_len):
            j = idx[:, step]
            ox = xw[j]
            oz = zw[j]
            x3 = gx ^ ox
            z3 = gz ^ oz
            pc_new = _popcount_rows(x3 & z3)
            gk += ph[j] + pc_acc + pcs[j] + 2 * _popcount_rows(gz & ox) - pc_new
            gx, gz, pc_acc = x3, z3, pc_new
        return PauliTable._unsafe(self.n, gx, gz, (gk & 3).astype(np.uint8))

    # ------------------------------------------------------------------
    # Dense-statevector expectation kernel
    # ------------------------------------------------------------------
    def expectation_values(
        self, amplitudes: np.ndarray, coeffs: np.ndarray | Sequence[complex] | None = None
    ) -> np.ndarray:
        """Bulk ``⟨ψ_t| row_j |ψ_t⟩`` over a batch of dense statevectors.

        ``amplitudes`` is a ``(batch, 2^n)`` (or ``(2^n,)``) complex array of
        normalized statevectors with qubit 0 as the least-significant basis
        bit, matching :class:`repro.sim.Statevector`.  Each row ``P_j`` acts
        on a basis state as ``P_j|b⟩ = c_j(b) |b ^ x_j⟩`` with
        ``c_j(b) = i^{phase_j + pc(x_j & z_j)} · (-1)^{pc(z_j & b)}``, so the
        expectation reduces to one permuted gather plus a sign-weighted inner
        product per row — no per-string matrices or per-trajectory copies.

        Returns the ``(batch, n_terms)`` complex matrix of per-row values, or
        the ``(batch,)`` contraction ``E @ coeffs`` when ``coeffs`` is given.
        The kernel is dense (cost ``n_terms × batch × 2^n``) and therefore
        restricted to single-word tables (``n ≤ 64`` — far beyond any
        statevector that fits in memory anyway).
        """
        if self.n_words != 1:
            raise ValueError("dense expectation kernel requires n <= 64 qubits")
        amps = np.asarray(amplitudes, dtype=complex)
        squeeze = amps.ndim == 1
        amps = np.atleast_2d(amps)
        dim = 1 << self.n
        if amps.shape[1] != dim:
            raise ValueError(
                f"amplitude batch has dimension {amps.shape[1]}, expected {dim}"
            )
        xs = self.x[:, 0]
        zs = self.z[:, 0]
        # Per-row scalar i^{phase + pc(x & z)} (the Y = iXZ bookkeeping).
        row_phase = _PHASE_VALUES[
            (self.phase.astype(np.int64) + np.bitwise_count(xs & zs)) & 3
        ]
        b = np.arange(dim, dtype=np.uint64)
        conj = amps.conj()
        out = np.empty((amps.shape[0], self.n_terms), dtype=complex)
        for j in range(self.n_terms):
            sign = 1.0 - 2.0 * (np.bitwise_count(zs[j] & b) & np.uint64(1))
            if xs[j]:
                perm = (b ^ xs[j]).astype(np.intp)
                out[:, j] = np.einsum("tb,tb->t", conj[:, perm], amps * sign)
            else:
                out[:, j] = np.einsum("tb,tb->t", conj, amps * sign)
            out[:, j] *= row_phase[j]
        if coeffs is not None:
            out = out @ np.asarray(coeffs, dtype=complex)
        return out[0] if squeeze else out

    def commutes_with(self, other: "PauliTable") -> np.ndarray:
        """Row-aligned (broadcastable) commutation test, boolean per row."""
        if self.n != other.n:
            raise ValueError("qubit count mismatch")
        parity = (
            _popcount_rows(self.x & other.z) + _popcount_rows(self.z & other.x)
        ) & 1
        return parity == 0

    def commutation_matrix(self, chunk: int = 256) -> np.ndarray:
        """All-pairs boolean matrix ``C[i, j] = rows i and j commute``.

        Work is chunked over ``i`` so peak intermediate memory stays at
        ``chunk × m × n_words`` words.
        """
        return self.commutation_matrix_with(self, chunk=chunk)

    def commutation_matrix_with(
        self, other: "PauliTable", chunk: int = 256
    ) -> np.ndarray:
        """Cross-table commutation matrix ``C[i, j] = self_i commutes with other_j``."""
        if self.n != other.n:
            raise ValueError("qubit count mismatch")
        m = self.n_terms
        out = np.empty((m, other.n_terms), dtype=bool)
        for lo in range(0, m, chunk):
            hi = min(lo + chunk, m)
            xa = self.x[lo:hi, None, :]
            za = self.z[lo:hi, None, :]
            parity = (
                np.bitwise_count(xa & other.z[None, :, :]).sum(axis=-1, dtype=np.int64)
                + np.bitwise_count(za & other.x[None, :, :]).sum(axis=-1, dtype=np.int64)
            ) & 1
            out[lo:hi] = parity == 0
        return out

    # ------------------------------------------------------------------
    # Duplicate combination
    # ------------------------------------------------------------------
    def simplify(
        self,
        coeffs: np.ndarray | Sequence[complex],
        tol: float = DEFAULT_TOLERANCE,
    ) -> tuple["PauliTable", np.ndarray]:
        """Combine duplicate rows and drop negligible coefficients.

        Folds each row's ``i**phase`` into its coefficient, lexsorts the
        packed symplectic rows, sums coefficients of equal rows with
        ``np.add.reduceat``, and keeps rows with ``|coeff| > tol``.  Returns a
        phase-0 table plus the combined coefficient vector; row order follows
        the lexicographic sort, making the output canonical.
        """
        coeffs = np.asarray(coeffs, dtype=complex)
        if coeffs.shape != (self.n_terms,):
            raise ValueError("coefficient vector length must match the row count")
        if self.n_terms == 0:
            return self, coeffs
        folded = coeffs * self.phase_values()
        w = self.n_words
        if self.n <= 32:
            # Both masks fit one uint64 sort key: a single argsort suffices.
            key = (self.x[:, 0] << np.uint64(32)) | self.z[:, 0]
            order = np.argsort(key)
            sk = key[order]
            boundaries = np.empty(self.n_terms, dtype=bool)
            boundaries[0] = True
            np.not_equal(sk[1:], sk[:-1], out=boundaries[1:])
            starts = np.flatnonzero(boundaries)
            summed = np.add.reduceat(folded[order], starts)
            keep = np.abs(summed) > tol
            kept = sk[starts[keep]]
            table = PauliTable._unsafe(
                self.n,
                (kept >> np.uint64(32))[:, None],
                (kept & np.uint64(0xFFFFFFFF))[:, None],
                np.zeros(len(kept), dtype=np.uint8),
            )
            return table, summed[keep]
        if w == 1:
            # Single-word fast path: sort on the two columns directly.
            xcol = self.x[:, 0]
            zcol = self.z[:, 0]
            order = np.lexsort((zcol, xcol))
            sx = xcol[order]
            sz = zcol[order]
            boundaries = np.empty(self.n_terms, dtype=bool)
            boundaries[0] = True
            np.not_equal(sx[1:], sx[:-1], out=boundaries[1:])
            boundaries[1:] |= sz[1:] != sz[:-1]
            starts = np.flatnonzero(boundaries)
            summed = np.add.reduceat(folded[order], starts)
            keep = np.abs(summed) > tol
            first = starts[keep]
            table = PauliTable._unsafe(
                self.n,
                sx[first, None],
                sz[first, None],
                np.zeros(len(first), dtype=np.uint8),
            )
            return table, summed[keep]
        keys = np.concatenate([self.x, self.z], axis=1)
        # np.lexsort treats the *last* key as primary; reverse for x-major order.
        order = np.lexsort(keys.T[::-1])
        sorted_keys = keys[order]
        boundaries = np.empty(self.n_terms, dtype=bool)
        boundaries[0] = True
        np.any(sorted_keys[1:] != sorted_keys[:-1], axis=1, out=boundaries[1:])
        starts = np.flatnonzero(boundaries)
        summed = np.add.reduceat(folded[order], starts)
        keep = np.abs(summed) > tol
        unique_rows = sorted_keys[starts[keep]]
        table = PauliTable._unsafe(
            self.n,
            np.ascontiguousarray(unique_rows[:, :w]),
            np.ascontiguousarray(unique_rows[:, w:]),
            np.zeros(unique_rows.shape[0], dtype=np.uint8),
        )
        return table, summed[keep]

    def __repr__(self) -> str:
        return f"PauliTable(n={self.n}, terms={self.n_terms}, words={self.n_words})"
