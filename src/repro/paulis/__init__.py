"""Pauli algebra substrate: strings, sums, and raw symplectic helpers.

Two interchangeable backends cover the Pauli arithmetic:

* **scalar** — arbitrary-precision integer bitmask triples ``(x, z, k)``
  (:mod:`~repro.paulis.algebra`, :class:`PauliString`).  Exact, allocation-free
  per string, and the reference implementation for everything below.
* **table** — :class:`PauliTable`, a batch of strings packed as rows of a
  ``uint64`` X|Z bit matrix plus a phase vector.  Row-wise products,
  commutation tests, weights and duplicate combination run as vectorized
  NumPy kernels; this is the backend behind the bulk mapping and analysis
  hot paths (``repro.mappings.apply``, ``repro.analysis``).

The two are cross-checked on random operators (including >64-qubit,
multi-word masks) in ``tests/test_pauli_table.py``; conversions between them
(:meth:`PauliTable.from_strings`, :meth:`QubitOperator.to_table`, …) are
lossless.
"""

from .algebra import BITS_TO_OP, OP_TO_BITS, commutes, mul_xzk, phase_of_product, weight
from .pauli import PauliString, pauli_strings_anticommute_pairwise
from .pauli_sum import QubitOperator
from .table import PauliTable

__all__ = [
    "PauliString",
    "PauliTable",
    "QubitOperator",
    "pauli_strings_anticommute_pairwise",
    "mul_xzk",
    "phase_of_product",
    "commutes",
    "weight",
    "OP_TO_BITS",
    "BITS_TO_OP",
]
