"""Pauli algebra substrate: strings, sums, and raw symplectic helpers."""

from .algebra import BITS_TO_OP, OP_TO_BITS, commutes, mul_xzk, phase_of_product, weight
from .pauli import PauliString, pauli_strings_anticommute_pairwise
from .pauli_sum import QubitOperator

__all__ = [
    "PauliString",
    "QubitOperator",
    "pauli_strings_anticommute_pairwise",
    "mul_xzk",
    "phase_of_product",
    "commutes",
    "weight",
    "OP_TO_BITS",
    "BITS_TO_OP",
]
