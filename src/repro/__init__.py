"""HATT: Hamiltonian-Adaptive Ternary Tree fermion-to-qubit mapping.

Full reproduction of "HATT: Hamiltonian Adaptive Ternary Tree for Optimizing
Fermion-to-Qubit Mapping" (HPCA 2025), including every substrate the paper's
evaluation depends on.  See DESIGN.md for the system inventory.

Quickstart::

    from repro import hatt_mapping, jordan_wigner
    from repro.models import fermi_hubbard

    h = fermi_hubbard(2, 2)                  # 8-mode Fermi-Hubbard lattice
    mapping = hatt_mapping(h)                # Hamiltonian-adaptive mapping
    print(mapping.map(h).pauli_weight())     # < JW's weight
    print(jordan_wigner(8).map(h).pauli_weight())
"""

from .fermion import FermionOperator, MajoranaOperator
from .hatt import HattConstruction, hatt_mapping
from .mappings import (
    FermionQubitMapping,
    balanced_ternary_tree,
    bravyi_kitaev,
    jordan_wigner,
    parity_mapping,
)
from .paulis import PauliString, QubitOperator

__version__ = "1.0.0"

__all__ = [
    "PauliString",
    "QubitOperator",
    "FermionOperator",
    "MajoranaOperator",
    "FermionQubitMapping",
    "hatt_mapping",
    "HattConstruction",
    "jordan_wigner",
    "bravyi_kitaev",
    "parity_mapping",
    "balanced_ternary_tree",
    "__version__",
]
