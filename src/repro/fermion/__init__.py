"""Fermionic operator substrate: ladder operators and Majorana algebra."""

from .majorana import MajoranaOperator, normal_order_majorana_product
from .operators import Action, FermionOperator

__all__ = [
    "FermionOperator",
    "MajoranaOperator",
    "Action",
    "normal_order_majorana_product",
]
