"""Majorana-operator algebra.

The 2N Majorana operators of an N-mode fermionic system satisfy

    {M_i, M_j} = 2 δ_ij,    M_i† = M_i,    M_i² = 1,

and relate to the ladder operators by the paper's Eq. (2):

    a†_j = (M_2j - i·M_2j+1) / 2,      a_j = (M_2j + i·M_2j+1) / 2.

A :class:`MajoranaOperator` stores a weighted sum of *Majorana monomials*;
each monomial is a strictly-increasing tuple of Majorana indices (the product
``M_{i1} M_{i2} …`` in ascending order).  Reordering an arbitrary product into
this canonical form contributes a sign from anticommutation and removes
squared factors.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from .operators import FermionOperator

__all__ = ["MajoranaOperator", "normal_order_majorana_product"]

_COEFF_TOLERANCE = 1e-12


def normal_order_majorana_product(
    left: tuple[int, ...], right: tuple[int, ...]
) -> tuple[tuple[int, ...], int]:
    """Multiply two canonical (sorted, duplicate-free) Majorana monomials.

    Returns ``(canonical_product, sign)`` where ``sign ∈ {+1, -1}`` accounts
    for the anticommutations needed to merge-sort the concatenation, and
    indices appearing in both factors cancel (``M² = 1``).
    """
    # Merge-count inversions between the two sorted sequences.
    sign = 1
    merged: list[int] = []
    i = j = 0
    # Number of elements of `left` not yet consumed; each right-element that
    # jumps past them contributes that many transpositions.
    while i < len(left) and j < len(right):
        if left[i] <= right[j]:
            merged.append(left[i])
            i += 1
        else:
            # right[j] moves past the remaining left elements.
            if (len(left) - i) % 2 == 1:
                sign = -sign
            merged.append(right[j])
            j += 1
    merged.extend(left[i:])
    merged.extend(right[j:])
    # Cancel adjacent equal pairs (M_i M_i = 1); merged is sorted.
    out: list[int] = []
    k = 0
    while k < len(merged):
        if k + 1 < len(merged) and merged[k] == merged[k + 1]:
            k += 2
        else:
            out.append(merged[k])
            k += 1
    return tuple(out), sign


class MajoranaOperator:
    """Weighted sum of canonical Majorana monomials."""

    __slots__ = ("_terms", "_packed", "_fingerprint_cache")

    def __init__(self, terms: dict[tuple[int, ...], complex] | None = None):
        self._terms: dict[tuple[int, ...], complex] = dict(terms) if terms else {}
        #: Cached bulk-mapping plan (padded index matrix + coefficient vector);
        #: rebuilt lazily by :meth:`packed_terms`, cleared on mutation.
        self._packed = None
        #: Service-layer memo for the canonical fingerprint form — owned by
        #: repro.service.fingerprint, cleared on mutation like _packed.
        self._fingerprint_cache = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls) -> "MajoranaOperator":
        return cls()

    @classmethod
    def identity(cls, coeff: complex = 1.0) -> "MajoranaOperator":
        return cls({(): coeff})

    @classmethod
    def single(cls, index: int, coeff: complex = 1.0) -> "MajoranaOperator":
        """``coeff · M_index``."""
        return cls({(index,): coeff})

    @classmethod
    def from_term(cls, indices: Iterable[int], coeff: complex = 1.0) -> "MajoranaOperator":
        """Build from an arbitrary (possibly unsorted/repeated) index product."""
        out = cls.identity(coeff)
        for idx in indices:
            out = out * cls.single(idx)
        return out

    @classmethod
    def from_fermion_operator(cls, op: FermionOperator) -> "MajoranaOperator":
        """Expand ladder monomials through the paper's Eq. (2)."""
        total = cls.zero()
        for actions, coeff in op.terms():
            factor = cls.identity(coeff)
            for mode, dagger in actions:
                even = cls.single(2 * mode, 0.5)
                odd = cls.single(2 * mode + 1, -0.5j if dagger else 0.5j)
                factor = factor * (even + odd)
            total = total + factor
        return total.simplify()

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._terms)

    def terms(self) -> Iterator[tuple[tuple[int, ...], complex]]:
        yield from self._terms.items()

    @property
    def constant(self) -> complex:
        return self._terms.get((), 0.0)

    def coefficient(self, indices: tuple[int, ...]) -> complex:
        return self._terms.get(tuple(sorted(indices)), 0.0)

    @property
    def n_majoranas(self) -> int:
        """1 + highest Majorana index in any term."""
        # Monomials are canonical (strictly increasing), so the last entry of
        # each is its maximum.
        return max((term[-1] for term in self._terms if term), default=-1) + 1

    @property
    def n_modes(self) -> int:
        """Number of fermionic modes this operator acts on (ceil of index/2)."""
        return (self.n_majoranas + 1) // 2

    def support_terms(self, drop_identity: bool = True) -> list[tuple[int, ...]]:
        """The monomial index sets, optionally without the identity term."""
        return [t for t in self._terms if t or not drop_identity]

    def packed_terms(self) -> tuple[np.ndarray, np.ndarray]:
        """Bulk-mapping plan: ``(index matrix, coefficient vector)``, cached.

        The index matrix is ``(n_terms, max_len)`` with every monomial's
        Majorana indices **shifted up by one** and right-padded with ``0`` —
        the convention of :meth:`repro.paulis.PauliTable.padded_row_products`,
        whose virtual identity row sits at index 0.  Because the padding does
        not depend on any particular mapping, one plan serves every mapping
        this operator is evaluated under (the HATT workload maps one
        Hamiltonian with many candidate trees); mutation through
        :meth:`add_term` or :meth:`simplify` invalidates the cache.
        """
        if self._packed is None:
            from ..paulis.table import pack_monomials

            idx = pack_monomials(list(self._terms.keys()))
            coeffs = np.fromiter(
                self._terms.values(), dtype=complex, count=len(self._terms)
            )
            self._packed = (idx, coeffs)
        return self._packed

    def is_hermitian(self, tol: float = 1e-9) -> bool:
        """A monomial of k Majoranas conjugates to ``(-1)^{k(k-1)/2}`` itself."""
        for term, coeff in self._terms.items():
            k = len(term)
            sign = -1 if (k * (k - 1) // 2) % 2 else 1
            if abs(complex(coeff).conjugate() * sign - coeff) > tol:
                return False
        return True

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def add_term(self, indices: tuple[int, ...], coeff: complex) -> None:
        self._packed = None
        self._fingerprint_cache = None
        new = self._terms.get(indices, 0.0) + coeff
        if new == 0:
            self._terms.pop(indices, None)
        else:
            self._terms[indices] = new

    def simplify(self, tol: float = _COEFF_TOLERANCE) -> "MajoranaOperator":
        self._packed = None
        self._fingerprint_cache = None
        self._terms = {t: c for t, c in self._terms.items() if abs(c) > tol}
        return self

    def copy(self) -> "MajoranaOperator":
        return MajoranaOperator(self._terms)

    def __add__(self, other: "MajoranaOperator") -> "MajoranaOperator":
        if not isinstance(other, MajoranaOperator):
            return NotImplemented
        out = self.copy()
        for term, coeff in other._terms.items():
            out.add_term(term, coeff)
        return out

    def __sub__(self, other: "MajoranaOperator") -> "MajoranaOperator":
        return self + (other * -1.0)

    def __mul__(self, other) -> "MajoranaOperator":
        if isinstance(other, (int, float, complex)):
            return MajoranaOperator({t: c * other for t, c in self._terms.items()})
        if isinstance(other, MajoranaOperator):
            out = MajoranaOperator()
            for t1, c1 in self._terms.items():
                for t2, c2 in other._terms.items():
                    prod, sign = normal_order_majorana_product(t1, t2)
                    out.add_term(prod, sign * c1 * c2)
            return out
        return NotImplemented

    def __rmul__(self, other) -> "MajoranaOperator":
        if isinstance(other, (int, float, complex)):
            return self * other
        return NotImplemented

    def __eq__(self, other) -> bool:
        if not isinstance(other, MajoranaOperator):
            return NotImplemented
        keys = set(self._terms) | set(other._terms)
        return all(
            abs(self._terms.get(k, 0.0) - other._terms.get(k, 0.0)) <= 1e-9 for k in keys
        )

    def __repr__(self) -> str:
        def fmt(term):
            return " ".join(f"M{i}" for i in term) or "1"

        parts = [f"({c:.4g})·{fmt(t)}" for t, c in list(self._terms.items())[:6]]
        more = f" … ({len(self)} terms)" if len(self) > 6 else ""
        return f"MajoranaOperator({' + '.join(parts) or '0'}{more})"
