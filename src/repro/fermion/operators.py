"""Second-quantized fermionic operators.

A :class:`FermionOperator` is a complex-weighted sum of *ladder monomials*.
Each monomial is an ordered product of creation/annihilation operators,
stored as a tuple of ``(mode, dagger)`` actions applied left-to-right, e.g.
``((0, True), (0, False))`` is ``a†_0 a_0``.

The canonical anticommutation relations (CAR) are

    {a_i, a†_j} = δ_ij,   {a_i, a_j} = {a†_i, a†_j} = 0,

implemented exactly by :meth:`FermionOperator.normal_order`.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["FermionOperator", "Action"]

#: One ladder operator: ``(mode index, True for creation)``.
Action = tuple[int, bool]

_COEFF_TOLERANCE = 1e-12


class FermionOperator:
    """Weighted sum of products of fermionic creation/annihilation operators."""

    __slots__ = ("_terms", "_fingerprint_cache")

    def __init__(self, terms: dict[tuple[Action, ...], complex] | None = None):
        self._terms: dict[tuple[Action, ...], complex] = dict(terms) if terms else {}
        #: Service-layer memo for the canonical (normal-ordered, quantized)
        #: fingerprint form — owned by repro.service.fingerprint, cleared on
        #: mutation (the same contract as MajoranaOperator._packed).
        self._fingerprint_cache = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls) -> "FermionOperator":
        return cls()

    @classmethod
    def identity(cls, coeff: complex = 1.0) -> "FermionOperator":
        return cls({(): coeff})

    @classmethod
    def from_term(cls, actions: Iterable[Action], coeff: complex = 1.0) -> "FermionOperator":
        return cls({tuple(actions): coeff})

    @classmethod
    def creation(cls, mode: int, coeff: complex = 1.0) -> "FermionOperator":
        """``coeff · a†_mode``."""
        return cls({((mode, True),): coeff})

    @classmethod
    def annihilation(cls, mode: int, coeff: complex = 1.0) -> "FermionOperator":
        """``coeff · a_mode``."""
        return cls({((mode, False),): coeff})

    @classmethod
    def number(cls, mode: int, coeff: complex = 1.0) -> "FermionOperator":
        """``coeff · a†_mode a_mode`` (occupation-number operator)."""
        return cls({((mode, True), (mode, False)): coeff})

    @classmethod
    def hopping(cls, i: int, j: int, coeff: complex = 1.0) -> "FermionOperator":
        """``coeff · a†_i a_j + conj(coeff) · a†_j a_i`` (Hermitian hopping term)."""
        out = cls()
        out.add_term(((i, True), (j, False)), coeff)
        out.add_term(((j, True), (i, False)), complex(coeff).conjugate())
        return out

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._terms)

    def terms(self) -> Iterator[tuple[tuple[Action, ...], complex]]:
        yield from self._terms.items()

    @property
    def n_modes(self) -> int:
        """1 + highest mode index appearing in any term (0 for scalars)."""
        modes = [mode for term in self._terms for mode, _ in term]
        return max(modes) + 1 if modes else 0

    @property
    def constant(self) -> complex:
        return self._terms.get((), 0.0)

    def coefficient(self, actions: Iterable[Action]) -> complex:
        return self._terms.get(tuple(actions), 0.0)

    # ------------------------------------------------------------------
    # Building / arithmetic
    # ------------------------------------------------------------------
    def add_term(self, actions: tuple[Action, ...], coeff: complex) -> None:
        self._fingerprint_cache = None
        new = self._terms.get(actions, 0.0) + coeff
        if abs(new) <= _COEFF_TOLERANCE:
            self._terms.pop(actions, None)
        else:
            self._terms[actions] = new

    def copy(self) -> "FermionOperator":
        return FermionOperator(self._terms)

    def __add__(self, other: "FermionOperator") -> "FermionOperator":
        if not isinstance(other, FermionOperator):
            return NotImplemented
        out = self.copy()
        for term, coeff in other._terms.items():
            out.add_term(term, coeff)
        return out

    def __sub__(self, other: "FermionOperator") -> "FermionOperator":
        return self + (other * -1.0)

    def __mul__(self, other) -> "FermionOperator":
        if isinstance(other, (int, float, complex)):
            return FermionOperator({t: c * other for t, c in self._terms.items()})
        if isinstance(other, FermionOperator):
            out = FermionOperator()
            for t1, c1 in self._terms.items():
                for t2, c2 in other._terms.items():
                    out.add_term(t1 + t2, c1 * c2)
            return out
        return NotImplemented

    def __rmul__(self, other) -> "FermionOperator":
        if isinstance(other, (int, float, complex)):
            return self * other
        return NotImplemented

    def hermitian_conjugate(self) -> "FermionOperator":
        """Reverse each monomial, flip daggers, conjugate coefficients."""
        out = FermionOperator()
        for term, coeff in self._terms.items():
            conj_term = tuple((mode, not dagger) for mode, dagger in reversed(term))
            out.add_term(conj_term, complex(coeff).conjugate())
        return out

    def is_hermitian(self, tol: float = 1e-9) -> bool:
        """Check ``H == H†`` after normal ordering both sides."""
        diff = (self - self.hermitian_conjugate()).normal_order()
        return all(abs(c) <= tol for _, c in diff.terms())

    # ------------------------------------------------------------------
    # Normal ordering (exact CAR algebra)
    # ------------------------------------------------------------------
    def normal_order(self) -> "FermionOperator":
        """Rewrite as a sum of normal-ordered monomials.

        Normal order: all creations (descending mode) before all annihilations
        (ascending mode).  Repeated identical ladder operators annihilate the
        monomial (Pauli exclusion).  Exponential worst case — intended for
        tests and small model Hamiltonians.
        """
        out = FermionOperator()
        for term, coeff in self._terms.items():
            fast = _normal_order_fast(term)
            if fast is not None:
                # Creations-before-annihilations monomials with distinct
                # modes per block (every integral-built molecular term)
                # normal-order by pure anticommutation — a sign, no
                # contractions — so they skip the CAR rewrite machinery.
                ordered, sign = fast
                out.add_term(ordered, sign * coeff)
                continue
            for ordered, sign_coeff in _normal_order_term(term, coeff):
                out.add_term(ordered, sign_coeff)
        return out

    def __eq__(self, other) -> bool:
        if not isinstance(other, FermionOperator):
            return NotImplemented
        a = self.normal_order()._terms
        b = other.normal_order()._terms
        keys = set(a) | set(b)
        return all(abs(a.get(k, 0.0) - b.get(k, 0.0)) <= 1e-9 for k in keys)

    def __repr__(self) -> str:
        def fmt(term):
            if not term:
                return "1"
            return " ".join(f"a†_{m}" if d else f"a_{m}" for m, d in term)

        parts = [f"({c:.4g})·{fmt(t)}" for t, c in list(self._terms.items())[:6]]
        more = f" … ({len(self)} terms)" if len(self) > 6 else ""
        return f"FermionOperator({' + '.join(parts) or '0'}{more})"


def _sort_block(arr: list[int], descending: bool) -> int | None:
    """Insertion-sort a block of modes in place, counting adjacent swaps.

    Returns the swap count, or ``None`` on a repeated mode (the caller must
    fall back to the generic rewrite, where the monomial vanishes by Pauli
    exclusion).
    """
    swaps = 0
    for i in range(1, len(arr)):
        j = i
        while j > 0 and (arr[j - 1] < arr[j] if descending else arr[j - 1] > arr[j]):
            arr[j - 1], arr[j] = arr[j], arr[j - 1]
            swaps += 1
            j -= 1
        if j > 0 and arr[j - 1] == arr[j]:
            return None
    return swaps


def _normal_order_fast(
    term: tuple[Action, ...],
) -> tuple[tuple[Action, ...], int] | None:
    """Normal-order a contraction-free monomial by anticommutation alone.

    Applicable when every creation precedes every annihilation and modes are
    distinct within each block: swapping two such operators never produces a
    ``δ_ij`` contraction, so the normal form is the per-block sort with sign
    ``(-1)^swaps``.  Returns ``(ordered_term, sign)`` or ``None`` when the
    monomial needs the full CAR rewrite.
    """
    created: list[int] = []
    annihilated: list[int] = []
    for mode, dagger in term:
        if dagger:
            if annihilated:
                return None  # annihilation before a creation: contraction
            created.append(mode)
        else:
            annihilated.append(mode)
    swaps_c = _sort_block(created, descending=True)
    if swaps_c is None:
        return None
    swaps_a = _sort_block(annihilated, descending=False)
    if swaps_a is None:
        return None
    ordered = tuple(
        [(m, True) for m in created] + [(m, False) for m in annihilated]
    )
    return ordered, (-1 if (swaps_c + swaps_a) & 1 else 1)


def _normal_order_term(
    term: tuple[Action, ...], coeff: complex
) -> list[tuple[tuple[Action, ...], complex]]:
    """Normal-order one ladder monomial via repeated CAR swaps.

    Returns a list of ``(normal_ordered_term, coefficient)`` contributions.
    """
    # Work list of (term, coeff) pending normal ordering.
    pending = [(list(term), coeff)]
    done: list[tuple[tuple[Action, ...], complex]] = []
    while pending:
        ops, c = pending.pop()
        swapped = False
        for pos in range(len(ops) - 1):
            (m1, d1), (m2, d2) = ops[pos], ops[pos + 1]
            if not d1 and d2:
                # a_i a†_j = δ_ij - a†_j a_i
                if m1 == m2:
                    contracted = ops[:pos] + ops[pos + 2 :]
                    pending.append((contracted, c))
                new_ops = ops[:pos] + [ops[pos + 1], ops[pos]] + ops[pos + 2 :]
                pending.append((new_ops, -c))
                swapped = True
                break
            if d1 == d2:
                if m1 == m2:
                    # a†a† or aa with same mode: zero.
                    swapped = True
                    break
                # Within a dagger block sort descending; within an
                # annihilation block sort ascending.
                wrong = (d1 and m1 < m2) or (not d1 and m1 > m2)
                if wrong:
                    new_ops = ops[:pos] + [ops[pos + 1], ops[pos]] + ops[pos + 2 :]
                    pending.append((new_ops, -c))
                    swapped = True
                    break
        if not swapped:
            done.append((tuple(ops), c))
    return done
