"""Molecular integrals over contracted Cartesian Gaussians.

McMurchie–Davidson scheme: products of Gaussians are expanded in Hermite
Gaussians via the E coefficients; Coulomb-type integrals reduce to the
Hermite Coulomb tensor R built on the Boys function.

Supports arbitrary angular momentum in the recursions, exercised here for
s and p shells (the paper's molecule set needs nothing higher).
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import gammainc, gammaln

from .basis import BasisFunction

__all__ = [
    "boys",
    "overlap_matrix",
    "kinetic_matrix",
    "nuclear_attraction_matrix",
    "eri_tensor",
    "core_hamiltonian",
    "nuclear_repulsion",
]


def boys(m: int, t: float) -> float:
    """Boys function ``F_m(t) = ∫₀¹ u^{2m} e^{-t u²} du``."""
    if t < 1e-12:
        return 1.0 / (2 * m + 1)
    a = m + 0.5
    # F_m(t) = Γ(a)·P(a, t) / (2 t^a) with P the regularized lower gamma.
    return math.exp(gammaln(a)) * float(gammainc(a, t)) / (2.0 * t**a)


def hermite_e_table(l1: int, l2: int, a: float, b: float, xab: float) -> np.ndarray:
    """E[i, j, t] for i ≤ l1, j ≤ l2, t ≤ i+j (1D McMurchie–Davidson)."""
    p = a + b
    q = a * b / p
    table = np.zeros((l1 + 1, l2 + 1, l1 + l2 + 2))
    table[0, 0, 0] = math.exp(-q * xab * xab)
    # Increment i: E(i+1,j,t) = E(i,j,t-1)/(2p) - (q·xab/a)·E(i,j,t) + (t+1)·E(i,j,t+1)
    for i in range(l1):
        for t in range(i + 1 + 1):
            table[i + 1, 0, t] = (
                (table[i, 0, t - 1] / (2 * p) if t > 0 else 0.0)
                - (q * xab / a) * table[i, 0, t]
                + (t + 1) * table[i, 0, t + 1]
            )
    for j in range(l2):
        for i in range(l1 + 1):
            for t in range(i + j + 1 + 1):
                table[i, j + 1, t] = (
                    (table[i, j, t - 1] / (2 * p) if t > 0 else 0.0)
                    + (q * xab / b) * table[i, j, t]
                    + (t + 1) * table[i, j, t + 1]
                )
    return table


def _e_coeff(l1: int, l2: int, t: int, a: float, b: float, xab: float) -> float:
    if t < 0 or t > l1 + l2:
        return 0.0
    return float(hermite_e_table(l1, l2, a, b, xab)[l1, l2, t])


# ----------------------------------------------------------------------
# Primitive integrals
# ----------------------------------------------------------------------
def _overlap_prim(a, lmn1, ra, b, lmn2, rb) -> float:
    p = a + b
    pref = (math.pi / p) ** 1.5
    out = pref
    for d in range(3):
        out *= _e_coeff(lmn1[d], lmn2[d], 0, a, b, ra[d] - rb[d])
    return out


def _kinetic_prim(a, lmn1, ra, b, lmn2, rb) -> float:
    """⟨g1| -∇²/2 |g2⟩ via the 1D-overlap ladder formula."""

    def s1d(d: int, shift: int) -> float:
        l2 = lmn2[d] + shift
        if l2 < 0:
            return 0.0
        return _e_coeff(lmn1[d], l2, 0, a, b, ra[d] - rb[d])

    pref = (math.pi / (a + b)) ** 1.5
    dims = []
    for d in range(3):
        l2 = lmn2[d]
        term = (
            -2.0 * b * b * s1d(d, 2)
            + b * (2 * l2 + 1) * s1d(d, 0)
            - 0.5 * l2 * (l2 - 1) * s1d(d, -2)
        )
        dims.append(term)
    s = [_e_coeff(lmn1[d], lmn2[d], 0, a, b, ra[d] - rb[d]) for d in range(3)]
    return pref * (dims[0] * s[1] * s[2] + s[0] * dims[1] * s[2] + s[0] * s[1] * dims[2])


def _hermite_r(tmax: int, umax: int, vmax: int, alpha: float, rpc) -> dict:
    """Hermite Coulomb tensor R⁰_{tuv} for all t ≤ tmax, u ≤ umax, v ≤ vmax."""
    t2 = alpha * (rpc[0] ** 2 + rpc[1] ** 2 + rpc[2] ** 2)
    nmax = tmax + umax + vmax
    fm = [boys(m, t2) for m in range(nmax + 1)]
    memo: dict[tuple[int, int, int, int], float] = {}

    def r(n: int, t: int, u: int, v: int) -> float:
        if t < 0 or u < 0 or v < 0:
            return 0.0
        key = (n, t, u, v)
        if key in memo:
            return memo[key]
        if t == u == v == 0:
            val = (-2.0 * alpha) ** n * fm[n]
        elif t > 0:
            val = (t - 1) * r(n + 1, t - 2, u, v) + rpc[0] * r(n + 1, t - 1, u, v)
        elif u > 0:
            val = (u - 1) * r(n + 1, t, u - 2, v) + rpc[1] * r(n + 1, t, u - 1, v)
        else:
            val = (v - 1) * r(n + 1, t, u, v - 2) + rpc[2] * r(n + 1, t, u, v - 1)
        memo[key] = val
        return val

    return {
        (t, u, v): r(0, t, u, v)
        for t in range(tmax + 1)
        for u in range(umax + 1)
        for v in range(vmax + 1)
    }


def _nuclear_prim(a, lmn1, ra, b, lmn2, rb, rc) -> float:
    p = a + b
    rp = (a * np.asarray(ra) + b * np.asarray(rb)) / p
    ex = hermite_e_table(lmn1[0], lmn2[0], a, b, ra[0] - rb[0])[lmn1[0], lmn2[0]]
    ey = hermite_e_table(lmn1[1], lmn2[1], a, b, ra[1] - rb[1])[lmn1[1], lmn2[1]]
    ez = hermite_e_table(lmn1[2], lmn2[2], a, b, ra[2] - rb[2])[lmn1[2], lmn2[2]]
    tmax, umax, vmax = lmn1[0] + lmn2[0], lmn1[1] + lmn2[1], lmn1[2] + lmn2[2]
    rt = _hermite_r(tmax, umax, vmax, p, rp - np.asarray(rc))
    total = 0.0
    for t in range(tmax + 1):
        for u in range(umax + 1):
            for v in range(vmax + 1):
                total += ex[t] * ey[u] * ez[v] * rt[(t, u, v)]
    return 2.0 * math.pi / p * total


# ----------------------------------------------------------------------
# Contracted pair data (shared by nuclear + ERI assembly)
# ----------------------------------------------------------------------
class _PairData:
    """Precomputed per-primitive-pair Hermite expansions of a contraction pair."""

    __slots__ = ("p", "rp", "coeff", "ex", "ey", "ez", "tmax", "umax", "vmax")

    def __init__(self, f1: BasisFunction, f2: BasisFunction):
        self.tmax = f1.lmn[0] + f2.lmn[0]
        self.umax = f1.lmn[1] + f2.lmn[1]
        self.vmax = f1.lmn[2] + f2.lmn[2]
        self.p, self.rp, self.coeff = [], [], []
        self.ex, self.ey, self.ez = [], [], []
        ab = f1.center - f2.center
        for c1, a in zip(f1.coeffs, f1.alphas):
            for c2, b in zip(f2.coeffs, f2.alphas):
                p = a + b
                self.p.append(p)
                self.rp.append((a * f1.center + b * f2.center) / p)
                self.coeff.append(c1 * c2)
                self.ex.append(
                    hermite_e_table(f1.lmn[0], f2.lmn[0], a, b, ab[0])[f1.lmn[0], f2.lmn[0]]
                )
                self.ey.append(
                    hermite_e_table(f1.lmn[1], f2.lmn[1], a, b, ab[1])[f1.lmn[1], f2.lmn[1]]
                )
                self.ez.append(
                    hermite_e_table(f1.lmn[2], f2.lmn[2], a, b, ab[2])[f1.lmn[2], f2.lmn[2]]
                )


def _eri_contracted(bra: _PairData, ket: _PairData) -> float:
    """(ab|cd) assembled from two pair expansions."""
    total = 0.0
    for i in range(len(bra.p)):
        p, rp, cb = bra.p[i], bra.rp[i], bra.coeff[i]
        ext, eyt, ezt = bra.ex[i], bra.ey[i], bra.ez[i]
        for j in range(len(ket.p)):
            q, rq, ck = ket.p[j], ket.rp[j], ket.coeff[j]
            exk, eyk, ezk = ket.ex[j], ket.ey[j], ket.ez[j]
            alpha = p * q / (p + q)
            rt = _hermite_r(
                bra.tmax + ket.tmax,
                bra.umax + ket.umax,
                bra.vmax + ket.vmax,
                alpha,
                rp - rq,
            )
            pref = (
                2.0
                * math.pi**2.5
                / (p * q * math.sqrt(p + q))
                * cb
                * ck
            )
            acc = 0.0
            for t in range(bra.tmax + 1):
                for u in range(bra.umax + 1):
                    for v in range(bra.vmax + 1):
                        e_bra = ext[t] * eyt[u] * ezt[v]
                        if e_bra == 0.0:
                            continue
                        for tt in range(ket.tmax + 1):
                            for uu in range(ket.umax + 1):
                                for vv in range(ket.vmax + 1):
                                    e_ket = exk[tt] * eyk[uu] * ezk[vv]
                                    if e_ket == 0.0:
                                        continue
                                    sign = -1.0 if (tt + uu + vv) % 2 else 1.0
                                    acc += (
                                        e_bra
                                        * e_ket
                                        * sign
                                        * rt[(t + tt, u + uu, v + vv)]
                                    )
            total += pref * acc
    return total


# ----------------------------------------------------------------------
# Public matrix builders
# ----------------------------------------------------------------------
def _contract_pairwise(basis, prim_fn) -> np.ndarray:
    n = len(basis)
    out = np.zeros((n, n))
    for i in range(n):
        for j in range(i, n):
            f1, f2 = basis[i], basis[j]
            val = 0.0
            for c1, a in zip(f1.coeffs, f1.alphas):
                for c2, b in zip(f2.coeffs, f2.alphas):
                    val += c1 * c2 * prim_fn(a, f1.lmn, f1.center, b, f2.lmn, f2.center)
            out[i, j] = out[j, i] = val
    return out


def overlap_matrix(basis: list[BasisFunction]) -> np.ndarray:
    return _contract_pairwise(basis, _overlap_prim)


def kinetic_matrix(basis: list[BasisFunction]) -> np.ndarray:
    return _contract_pairwise(basis, _kinetic_prim)


def nuclear_attraction_matrix(
    basis: list[BasisFunction], atoms: list[tuple[int, np.ndarray]]
) -> np.ndarray:
    """``V_{μν} = -Σ_C Z_C ⟨μ| 1/|r-C| |ν⟩``; atoms are (Z, coords-Bohr)."""

    def prim(a, lmn1, ra, b, lmn2, rb):
        return sum(
            -z * _nuclear_prim(a, lmn1, ra, b, lmn2, rb, rc) for z, rc in atoms
        )

    return _contract_pairwise(basis, prim)


def core_hamiltonian(
    basis: list[BasisFunction], atoms: list[tuple[int, np.ndarray]]
) -> np.ndarray:
    return kinetic_matrix(basis) + nuclear_attraction_matrix(basis, atoms)


def nuclear_repulsion(atoms: list[tuple[int, np.ndarray]]) -> float:
    e = 0.0
    for i in range(len(atoms)):
        for j in range(i + 1, len(atoms)):
            zi, ri = atoms[i]
            zj, rj = atoms[j]
            e += zi * zj / float(np.linalg.norm(np.asarray(ri) - np.asarray(rj)))
    return e


def eri_tensor(basis: list[BasisFunction], screen: float = 1e-12) -> np.ndarray:
    """Chemist-notation two-electron tensor ``(μν|λσ)`` with 8-fold symmetry.

    Uses precomputed Hermite pair expansions and Cauchy–Schwarz screening
    ``|(μν|λσ)| ≤ sqrt((μν|μν)·(λσ|λσ))``.
    """
    n = len(basis)
    pairs = {}
    for i in range(n):
        for j in range(i + 1):
            pairs[(i, j)] = _PairData(basis[i], basis[j])
    # Schwarz bounds per pair.
    schwarz = {
        key: math.sqrt(abs(_eri_contracted(pd, pd))) for key, pd in pairs.items()
    }
    eri = np.zeros((n, n, n, n))
    pair_keys = sorted(pairs)
    for a, (i, j) in enumerate(pair_keys):
        for i2, j2 in pair_keys[: a + 1]:
            if schwarz[(i, j)] * schwarz[(i2, j2)] < screen:
                continue
            val = _eri_contracted(pairs[(i, j)], pairs[(i2, j2)])
            for p, q in ((i, j), (j, i)):
                for r, s in ((i2, j2), (j2, i2)):
                    eri[p, q, r, s] = eri[r, s, p, q] = val
    return eri
