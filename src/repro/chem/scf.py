"""Restricted Hartree–Fock with DIIS and damping.

Produces canonical molecular orbitals and MO-basis integrals — the inputs the
paper obtains from PySCF before second quantization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .basis import BasisFunction
from .integrals import (
    core_hamiltonian,
    eri_tensor,
    nuclear_repulsion,
    overlap_matrix,
)

__all__ = ["SCFResult", "restricted_hartree_fock", "mo_integrals"]


@dataclass
class SCFResult:
    """Converged (or best-effort) RHF state."""

    energy: float
    nuclear_repulsion: float
    mo_energies: np.ndarray
    mo_coeffs: np.ndarray  # columns are MOs over the AO basis
    n_electrons: int
    converged: bool
    n_iterations: int
    overlap: np.ndarray
    h_core: np.ndarray
    eri_ao: np.ndarray

    @property
    def n_orbitals(self) -> int:
        return self.mo_coeffs.shape[1]

    @property
    def electronic_energy(self) -> float:
        return self.energy - self.nuclear_repulsion


def _build_fock(h: np.ndarray, eri: np.ndarray, density: np.ndarray) -> np.ndarray:
    # Coulomb J_mn = (mn|ls) D_ls ; exchange K_mn = (ml|ns) D_ls.
    j = np.einsum("mnls,ls->mn", eri, density, optimize=True)
    k = np.einsum("mlns,ls->mn", eri, density, optimize=True)
    return h + j - 0.5 * k


def restricted_hartree_fock(
    basis: list[BasisFunction],
    atoms: list[tuple[int, np.ndarray]],
    n_electrons: int,
    max_iterations: int = 300,
    tol: float = 1e-9,
    diis_depth: int = 8,
    damping: float = 0.35,
) -> SCFResult:
    """Closed-shell RHF.  ``n_electrons`` must be even.

    DIIS acceleration with density damping during the first iterations; open
    π-shell cases (e.g. O2 forced closed-shell) may stop at ``max_iterations``
    with ``converged=False`` — the returned orbitals are still a well-defined
    Hermitian mean-field reference, which is all the mapping experiments need.
    """
    if n_electrons % 2 != 0:
        raise ValueError("restricted HF needs an even electron count")
    n_occ = n_electrons // 2
    if n_occ > len(basis):
        raise ValueError("more electron pairs than basis functions")

    s = overlap_matrix(basis)
    h = core_hamiltonian(basis, atoms)
    eri = eri_tensor(basis)
    e_nuc = nuclear_repulsion(atoms)

    # Symmetric orthogonalization with small-eigenvalue cutoff.
    evals, evecs = np.linalg.eigh(s)
    keep = evals > 1e-10
    x = evecs[:, keep] / np.sqrt(evals[keep])

    def diagonalize(f: np.ndarray):
        f_ortho = x.T @ f @ x
        eps, c_ortho = np.linalg.eigh(f_ortho)
        return eps, _align_degenerate_orbitals(x @ c_ortho, eps)

    eps, c = diagonalize(h)
    density = 2.0 * c[:, :n_occ] @ c[:, :n_occ].T

    fock_history: list[np.ndarray] = []
    error_history: list[np.ndarray] = []
    energy = 0.0
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        fock = _build_fock(h, eri, density)
        # DIIS extrapolation on the commutator residual.
        error = fock @ density @ s - s @ density @ fock
        fock_history.append(fock)
        error_history.append(error)
        if len(fock_history) > diis_depth:
            fock_history.pop(0)
            error_history.pop(0)
        if len(fock_history) > 1:
            m = len(fock_history)
            b = -np.ones((m + 1, m + 1))
            b[m, m] = 0.0
            for i in range(m):
                for j in range(m):
                    b[i, j] = np.vdot(error_history[i], error_history[j])
            rhs = np.zeros(m + 1)
            rhs[m] = -1.0
            try:
                weights = np.linalg.solve(b, rhs)[:m]
                fock = sum(w * f for w, f in zip(weights, fock_history))
            except np.linalg.LinAlgError:
                pass

        eps, c = diagonalize(fock)
        new_density = 2.0 * c[:, :n_occ] @ c[:, :n_occ].T
        if iteration <= 15 and damping > 0:
            new_density = (1 - damping) * new_density + damping * density

        new_energy = 0.5 * np.sum(new_density * (h + _build_fock(h, eri, new_density)))
        delta_e = abs(new_energy - energy)
        delta_d = float(np.max(np.abs(new_density - density)))
        density, energy = new_density, new_energy
        if delta_e < tol and delta_d < _density_tol(tol):
            converged = True
            break

    return SCFResult(
        energy=float(energy + e_nuc),
        nuclear_repulsion=float(e_nuc),
        mo_energies=eps,
        mo_coeffs=c,
        n_electrons=n_electrons,
        converged=converged,
        n_iterations=iteration,
        overlap=s,
        h_core=h,
        eri_ao=eri,
    )


def _density_tol(tol: float) -> float:
    """Density-matrix convergence threshold paired with an energy tolerance."""
    return max(tol**0.5, 1e-7)


def _align_degenerate_orbitals(
    c: np.ndarray, eps: np.ndarray, degeneracy_tol: float = 1e-6
) -> np.ndarray:
    """Fix the arbitrary rotation inside degenerate MO blocks.

    ``eigh`` returns a random orthogonal mixture within each degenerate
    eigenspace (e.g. π orbitals of O2/CO2, t2 of CH4); that mixture densifies
    the MO two-electron integrals and inflates every mapping's Pauli weight.
    Jacobi sweeps maximizing the quartic coefficient sum Σ_μi C_μi⁴ rotate
    each block back onto symmetry axes (the PySCF-canonical orientation),
    restoring the integral sparsity the paper's Hamiltonians have.
    """
    c = c.copy()
    n = len(eps)
    start = 0
    while start < n:
        end = start + 1
        while end < n and abs(eps[end] - eps[start]) < degeneracy_tol:
            end += 1
        block = list(range(start, end))
        if len(block) > 1:
            for _ in range(50):  # Jacobi sweeps to convergence
                improved = False
                for ai in range(len(block)):
                    for bi in range(ai + 1, len(block)):
                        i, j = block[ai], block[bi]
                        ci, cj = c[:, i], c[:, j]
                        thetas = np.linspace(0.0, np.pi / 2, 181, endpoint=False)
                        cos, sin = np.cos(thetas), np.sin(thetas)
                        u = cos[:, None] * ci + sin[:, None] * cj
                        v = -sin[:, None] * ci + cos[:, None] * cj
                        scores = (u**4).sum(axis=1) + (v**4).sum(axis=1)
                        best = int(np.argmax(scores))
                        if best != 0 and scores[best] > scores[0] + 1e-12:
                            c[:, i], c[:, j] = u[best], v[best]
                            improved = True
                if not improved:
                    break
        start = end
    # Deterministic sign convention: largest-magnitude coefficient positive.
    for k in range(n):
        pivot = np.argmax(np.abs(c[:, k]))
        if c[pivot, k] < 0:
            c[:, k] = -c[:, k]
    return c


def mo_integrals(result: SCFResult) -> tuple[np.ndarray, np.ndarray]:
    """Transform core Hamiltonian and ERIs to the MO basis.

    Returns ``(h_mo, eri_mo)`` with ``eri_mo`` in chemist notation (pq|rs).
    """
    c = result.mo_coeffs
    h_mo = c.T @ result.h_core @ c
    eri = result.eri_ao
    # Four quarter-transformations, O(N^5).
    eri = np.einsum("mp,mnls->pnls", c, eri, optimize=True)
    eri = np.einsum("nq,pnls->pqls", c, eri, optimize=True)
    eri = np.einsum("lr,pqls->pqrs", c, eri, optimize=True)
    eri = np.einsum("st,pqrs->pqrt", c, eri, optimize=True)
    return h_mo, eri
