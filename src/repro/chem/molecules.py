"""Molecule catalog with standard experimental geometries.

The paper pulls geometries from PubChem; offline we hard-code the standard
equilibrium structures (bond lengths in Å, converted to Bohr here).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .basis import ANGSTROM_TO_BOHR, ELEMENTS

__all__ = ["Molecule", "molecule"]


@dataclass
class Molecule:
    name: str
    atoms: list[tuple[str, tuple[float, float, float]]]  # symbol, Bohr coords

    @property
    def n_electrons(self) -> int:
        return sum(ELEMENTS[sym] for sym, _ in self.atoms)

    @property
    def charges(self) -> list[tuple[int, np.ndarray]]:
        return [(ELEMENTS[sym], np.asarray(xyz)) for sym, xyz in self.atoms]


def _ang(atoms: list[tuple[str, tuple[float, float, float]]]):
    return [
        (sym, tuple(c * ANGSTROM_TO_BOHR for c in xyz)) for sym, xyz in atoms
    ]


_CH4_A = 1.087 / math.sqrt(3.0)

_GEOMETRIES: dict[str, list[tuple[str, tuple[float, float, float]]]] = {
    "H2": [("H", (0.0, 0.0, 0.0)), ("H", (0.0, 0.0, 0.735))],
    "LiH": [("Li", (0.0, 0.0, 0.0)), ("H", (0.0, 0.0, 1.595))],
    "NH": [("N", (0.0, 0.0, 0.0)), ("H", (0.0, 0.0, 1.036))],
    "H2O": [
        ("O", (0.0, 0.0, 0.1173)),
        ("H", (0.0, 0.7572, -0.4692)),
        ("H", (0.0, -0.7572, -0.4692)),
    ],
    "CH4": [
        ("C", (0.0, 0.0, 0.0)),
        ("H", (_CH4_A, _CH4_A, _CH4_A)),
        ("H", (_CH4_A, -_CH4_A, -_CH4_A)),
        ("H", (-_CH4_A, _CH4_A, -_CH4_A)),
        ("H", (-_CH4_A, -_CH4_A, _CH4_A)),
    ],
    "O2": [("O", (0.0, 0.0, 0.0)), ("O", (0.0, 0.0, 1.208))],
    "BeH2": [
        ("Be", (0.0, 0.0, 0.0)),
        ("H", (0.0, 0.0, 1.326)),
        ("H", (0.0, 0.0, -1.326)),
    ],
    "NaF": [("Na", (0.0, 0.0, 0.0)), ("F", (0.0, 0.0, 1.926))],
    "CO2": [
        ("C", (0.0, 0.0, 0.0)),
        ("O", (0.0, 0.0, 1.162)),
        ("O", (0.0, 0.0, -1.162)),
    ],
}


def molecule(name: str) -> Molecule:
    """Look up a catalog molecule by name (e.g. ``"H2O"``)."""
    try:
        geometry = _GEOMETRIES[name]
    except KeyError:
        known = ", ".join(sorted(_GEOMETRIES))
        raise ValueError(f"unknown molecule {name!r}; known: {known}") from None
    return Molecule(name, _ang(geometry))
