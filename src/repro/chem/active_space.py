"""Frozen-core / active-space reduction of MO integrals.

Implements the standard effective-Hamiltonian transformation: core orbitals
are traced out into a mean-field shift of the one-body integrals plus a
scalar core energy.  This reproduces the paper's 'frz' benchmark variants
(e.g. LiH sto3g frz at 6 modes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ActiveSpace", "active_space_integrals"]


@dataclass
class ActiveSpace:
    """Reduced integrals over active orbitals only."""

    h: np.ndarray  # effective one-body integrals (active × active)
    eri: np.ndarray  # chemist (pq|rs) over active orbitals
    core_energy: float  # frozen-core + nuclear-repulsion scalar
    n_electrons: int  # electrons remaining in the active space

    @property
    def n_orbitals(self) -> int:
        return self.h.shape[0]

    @property
    def n_modes(self) -> int:
        return 2 * self.h.shape[0]


def active_space_integrals(
    h_mo: np.ndarray,
    eri_mo: np.ndarray,
    constant: float,
    n_electrons: int,
    freeze: int = 0,
    active: list[int] | None = None,
) -> ActiveSpace:
    """Freeze the ``freeze`` lowest MOs and restrict to ``active`` orbitals.

    ``active`` defaults to all non-frozen orbitals.  Frozen orbitals must not
    appear in ``active``; every frozen orbital is assumed doubly occupied.

    Effective integrals (chemist notation, spin-summed closed-shell core):

        h'_pq  = h_pq + Σ_c [ 2·(pq|cc) - (pc|cq) ]
        E_core = constant + Σ_c 2·h_cc + Σ_cd [ 2·(cc|dd) - (cd|dc) ]
    """
    n_orb = h_mo.shape[0]
    core = list(range(freeze))
    if active is None:
        active = [p for p in range(n_orb) if p not in core]
    if set(core) & set(active):
        raise ValueError("active orbitals overlap the frozen core")
    if any(p < 0 or p >= n_orb for p in active):
        raise ValueError("active orbital index out of range")
    remaining = n_electrons - 2 * len(core)
    if remaining < 0:
        raise ValueError("froze more electrons than the molecule has")
    dropped_virtuals = [
        p for p in range(n_orb) if p not in core and p not in active
    ]
    # Dropping an occupied (non-virtual) orbital silently would change the
    # electron count; demand the caller keeps enough active orbitals.
    if remaining > 2 * len(active):
        raise ValueError(
            f"{remaining} electrons cannot fit in {len(active)} active orbitals"
        )

    core_energy = constant
    for c in core:
        core_energy += 2.0 * h_mo[c, c]
        for d in core:
            core_energy += 2.0 * eri_mo[c, c, d, d] - eri_mo[c, d, d, c]

    act = np.array(active, dtype=int)
    h_eff = h_mo[np.ix_(act, act)].copy()
    for c in core:
        h_eff += 2.0 * eri_mo[np.ix_(act, act, [c], [c])][:, :, 0, 0]
        h_eff -= eri_mo[np.ix_(act, [c], [c], act)][:, 0, 0, :]
    eri_act = eri_mo[np.ix_(act, act, act, act)].copy()
    _ = dropped_virtuals  # documented: virtuals outside `active` are discarded
    return ActiveSpace(h=h_eff, eri=eri_act, core_energy=core_energy,
                       n_electrons=remaining)
