"""Mini quantum-chemistry substrate: basis sets, integrals, RHF, active spaces."""

from .active_space import ActiveSpace, active_space_integrals
from .basis import (
    ANGSTROM_TO_BOHR,
    ELEMENTS,
    BasisFunction,
    atom_basis,
    build_basis,
    slater_zetas,
)
from .integrals import (
    boys,
    core_hamiltonian,
    eri_tensor,
    kinetic_matrix,
    nuclear_attraction_matrix,
    nuclear_repulsion,
    overlap_matrix,
)
from .molecules import Molecule, molecule
from .scf import SCFResult, mo_integrals, restricted_hartree_fock

__all__ = [
    "ActiveSpace",
    "active_space_integrals",
    "BasisFunction",
    "atom_basis",
    "build_basis",
    "slater_zetas",
    "ELEMENTS",
    "ANGSTROM_TO_BOHR",
    "boys",
    "overlap_matrix",
    "kinetic_matrix",
    "nuclear_attraction_matrix",
    "nuclear_repulsion",
    "core_hamiltonian",
    "eri_tensor",
    "Molecule",
    "molecule",
    "SCFResult",
    "restricted_hartree_fock",
    "mo_integrals",
]
